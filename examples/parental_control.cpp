// Demo application 2 (§3) + the parental-control motivation of §1:
// selective dissemination of a rated content feed over an unsecured
// broadcast channel.
//
// Every receiver gets the same encrypted stream; each child's smart card
// filters it against the household's own rules in real time. "Neither Web
// site nor ISP can predict the diversity of access control rules that
// parents with different sensibility are willing to enforce" — here the
// parents just edit their rules.

#include <cstdio>

#include "dissem/channel.h"
#include "scengen/scenario.h"

using namespace csxa;

namespace {

xml::DomDocument MakeFeedItem(const scengen::Scenario& scenario,
                              uint64_t seed) {
  return scengen::MakeScenarioDocument(scenario, /*elements=*/300, seed,
                                       /*text_avg_len=*/40);
}

void Report(const dissem::BroadcastReport& report) {
  std::printf("  broadcast: %llu wire bytes, %zu elements; slowest card "
              "%.1f s\n",
              static_cast<unsigned long long>(report.broadcast_wire_bytes),
              report.item_elements, report.max_subscriber_seconds);
  for (const auto& d : report.deliveries) {
    std::printf("    %-8s received %6zu bytes | decrypted %6llu of %6llu | "
                "%3zu skips | %4.1f s modeled\n",
                d.subscriber.c_str(), d.view_xml.size(),
                static_cast<unsigned long long>(d.stats.bytes_decrypted),
                static_cast<unsigned long long>(d.stats.bytes_transferred),
                d.stats.skips, d.stats.total_seconds);
  }
}

}  // namespace

int main() {
  scengen::Scenario scenario = scengen::NewsFeedScenario();
  std::printf("=== Selective dissemination / parental control (push) ===\n"
              "%s\n\n",
              scenario.description.c_str());

  dissem::ChannelOptions opt;
  opt.chunk_size = 256;  // small units so the card can discard selectively
  dissem::Channel channel("kids-tv", scenario.rules_text, opt, 424242);

  dissem::Subscriber child("child", soe::CardProfile::EGate());
  dissem::Subscriber teen("teen", soe::CardProfile::EGate());
  dissem::Subscriber premium("premium", soe::CardProfile::EGate());
  channel.Subscribe(&child);
  channel.Subscribe(&teen);
  channel.Subscribe(&premium);

  std::printf("household rules:\n%s\n", scenario.rules_text.c_str());

  std::printf("feed item #1:\n");
  auto r1 = channel.Publish(MakeFeedItem(scenario, 1));
  if (!r1.ok()) {
    std::fprintf(stderr, "publish: %s\n", r1.status().ToString().c_str());
    return 1;
  }
  Report(r1.value());

  std::printf("\nfeed item #2:\n");
  auto r2 = channel.Publish(MakeFeedItem(scenario, 2));
  if (!r2.ok()) return 1;
  Report(r2.value());

  // The parents tighten the teen's profile after a questionable evening:
  // rules change at the *receiver*, the publisher's stream is untouched.
  std::printf("\n--- parents tighten the rules (teen loses PG13) ---\n");
  Status st = channel.UpdateRules(
      "+ child //item[rating=\"G\"]\n"
      "+ teen //item[rating=\"G\"]\n"
      "+ teen //item[rating=\"PG\"]\n"
      "- teen //media\n"
      "+ premium /feed\n");
  if (!st.ok()) return 1;

  std::printf("feed item #3 under the new policy:\n");
  auto r3 = channel.Publish(MakeFeedItem(scenario, 3));
  if (!r3.ok()) return 1;
  Report(r3.value());

  std::printf("\nnote: same broadcast, personal enforcement — the teen's "
              "delivered view shrank under the new policy while the "
              "publisher's stream stayed byte-identical. (Value predicates "
              "like rating=\"G\" keep items pending until the rating is "
              "read, so skips concentrate on predicate-free denials — the "
              "same limitation the original engine has.)\n");
  return 0;
}
