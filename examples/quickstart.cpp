// Quickstart: share an encrypted XML document through an untrusted store
// and query it through a smart-card SOE — the full pipeline of the paper
// in ~80 lines of application code.
//
//   publisher --(encrypted doc + sealed rules)--> DSP
//   publisher --(document key)-----------------> PKI registry
//   terminal  --(key grant)---------------------> card secure storage
//   app       --Query()--> proxy --APDU--> card --chunks--> DSP
//
// Build: cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "dsp/caching.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "xml/dom.h"

int main() {
  using namespace csxa;

  // --- 1. The document to share (any well-formed XML). -------------------
  const char* kDocument = R"(
    <team>
      <member><name>alice</name><salary>72000</salary></member>
      <member><name>bruno</name><salary>65000</salary></member>
      <project><title>csxa</title><budget>40000</budget></project>
    </team>)";
  auto doc = xml::DomDocument::Parse(kDocument);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // --- 2. Access rules: <sign, subject, XPath object>. --------------------
  // Rules are dynamic: update them any time without re-encrypting the doc.
  const char* kRules =
      "+ manager /team\n"            // managers see everything...
      "- manager //salary\n"         // ...except salaries (deny wins deeper)
      "+ auditor //member\n"         // auditors see members incl. salaries
      "- auditor //project\n";

  // --- 3. Infrastructure: untrusted DSP + simulated PKI. ------------------
  dsp::DspServer store;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&store, &registry, /*seed=*/2025);

  auto receipt = publisher.Publish("team-doc", doc.value(), kRules);
  if (!receipt.ok()) {
    std::fprintf(stderr, "publish: %s\n", receipt.status().ToString().c_str());
    return 1;
  }
  std::printf("published %zu container bytes (index overhead %.1f%%)\n",
              receipt.value().container_bytes,
              100.0 * receipt.value().encode_stats.IndexOverhead());

  // --- 4. A user terminal with its smart card. -----------------------------
  // The terminal talks the batch dsp::Service protocol; a CachingClient
  // in front of the store revalidates header + rules by version, so
  // repeated sessions cost one tiny not-modified round trip each.
  dsp::CachingClient cached(&store);
  proxy::Terminal manager("manager", soe::CardProfile::EGate(), &cached,
                          &registry);
  if (!manager.Provision("team-doc").ok()) return 1;

  // --- 5. Query through the XML API. ---------------------------------------
  proxy::QueryOptions q;
  q.query = "//member";  // the card intersects this with the access rules
  auto result = manager.Query("team-doc", q);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmanager's view of //member:\n%s\n\n",
              result.value().xml.c_str());
  std::printf("card session: %.2f s modeled on an e-gate card "
              "(%.2f s transfer, %.2f s crypto), %llu bytes decrypted, "
              "%zu subtree skips, %llu DSP round trips (batched), "
              "RAM peak %zu B of %zu B\n",
              result.value().card.total_seconds,
              result.value().card.transfer_seconds,
              result.value().card.crypto_seconds,
              static_cast<unsigned long long>(result.value().card.bytes_decrypted),
              result.value().card.skips,
              static_cast<unsigned long long>(result.value().dsp_round_trips),
              result.value().card.ram_peak,
              result.value().card.ram_budget);

  // --- 6. Dynamic policy change: one cheap rule update. --------------------
  auto update = publisher.UpdateRules(
      "team-doc", receipt.value().key,
      "+ manager /team\n");  // salaries now visible to managers
  if (!update.ok()) return 1;
  std::printf("\npolicy updated by re-sealing %zu bytes of rules "
              "(no re-encryption, no key redistribution)\n", update.value());
  auto result2 = manager.Query("team-doc", q);
  if (!result2.ok()) return 1;
  std::printf("\nmanager's view after the update:\n%s\n",
              result2.value().xml.c_str());
  return 0;
}
