// Demo application 1 (§3): collaborative work among a community of users.
//
// A research-team agenda is shared through an untrusted DSP. Three
// profiles (secretary, guest, auditor) hold the same document key but see
// personalized views enforced by their cards. The sharing situation then
// evolves — a new partner with diverging interests joins — and the policy
// change costs one rule update instead of a re-encryption campaign.

#include <cstdio>

#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "scengen/publish.h"
#include "scengen/scenario.h"

using namespace csxa;

namespace {

void ShowQuery(proxy::Terminal* term, const std::string& doc_id,
               const std::string& label, const std::string& query) {
  proxy::QueryOptions q;
  q.query = query;
  auto result = term->Query(doc_id, q);
  if (!result.ok()) {
    std::printf("  %-18s %-24s -> error: %s\n", term->user().c_str(),
                label.c_str(), result.status().ToString().c_str());
    return;
  }
  std::printf("  %-18s %-24s -> %5zu bytes, %4.1f s on card, %zu skips\n",
              term->user().c_str(), label.c_str(), result.value().xml.size(),
              result.value().card.total_seconds, result.value().card.skips);
}

}  // namespace

int main() {
  scengen::Scenario scenario = scengen::AgendaScenario();
  std::printf("=== Collaborative agenda (pull) ===\n%s\n\n",
              scenario.description.c_str());

  auto agenda = scengen::MakeScenarioDocument(scenario, /*elements=*/600,
                                              /*seed=*/77);
  std::printf("agenda: %zu elements, depth %d\n", agenda.CountElements(),
              agenda.MaxDepth());

  dsp::DspServer store;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&store, &registry, 31337);
  auto receipt =
      scengen::PublishDocument(&publisher, "agenda", agenda, scenario.rules_text);
  if (!receipt.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 receipt.status().ToString().c_str());
    return 1;
  }
  std::printf("published: %zu bytes on the DSP, rules:\n%s\n",
              receipt.value().container_bytes, scenario.rules_text.c_str());

  proxy::Terminal secretary("secretary", soe::CardProfile::EGate(), &store,
                            &registry);
  proxy::Terminal guest("guest", soe::CardProfile::EGate(), &store, &registry);
  proxy::Terminal auditor("auditor", soe::CardProfile::EGate(), &store,
                          &registry);
  for (proxy::Terminal* t : {&secretary, &guest, &auditor}) {
    if (!t->Provision("agenda").ok()) {
      std::fprintf(stderr, "provisioning failed for %s\n", t->user().c_str());
      return 1;
    }
  }

  std::printf("personalized views (same ciphertext, one card each):\n");
  for (proxy::Terminal* t : {&secretary, &guest, &auditor}) {
    for (const auto& [label, query] : scenario.queries) {
      ShowQuery(t, "agenda", label, query);
    }
  }

  // A small sample of actual content, to see the pruning in action.
  proxy::QueryOptions q;
  q.query = "//meeting/title";
  auto sample = guest.Query("agenda", q);
  if (sample.ok()) {
    std::string text = sample.value().xml.substr(0, 300);
    std::printf("\nguest's //meeting/title view (truncated):\n%s...\n",
                text.c_str());
  }

  // The sharing situation evolves: notes become entirely private and the
  // guest loses meeting rooms. One rule update; ciphertext untouched.
  std::printf("\n--- policy evolution: new partner, diverging interests ---\n");
  std::string new_rules = scenario.rules_text +
                          "- guest //meeting/room\n"
                          "- auditor //notes\n";
  auto update = publisher.UpdateRules("agenda", receipt.value().key, new_rules);
  if (!update.ok()) return 1;
  std::printf("update cost: %zu sealed bytes (vs %zu bytes of document "
              "untouched)\n\n",
              update.value(), receipt.value().container_bytes);
  ShowQuery(&guest, "agenda", "confirmed-rooms", "//meeting/room");
  ShowQuery(&secretary, "agenda", "all-meetings", "//meeting");
  return 0;
}
