// The medical-information exchange scenario of §1: predefined sharing
// policies with situation-driven exceptions.
//
// A hospital folder is shared with doctors, accountants and researchers.
// An emergency occurs: the on-call staff must temporarily see the folders
// of patients with an acute diagnosis — an *exception* to the predefined
// policy (the paper cites Or-BAC [5] for exactly this). With C-SXA the
// exception is one rule-set update; when the emergency ends, another.

#include <cstdio>

#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "scengen/publish.h"
#include "scengen/scenario.h"

using namespace csxa;

namespace {

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

int main() {
  scengen::Scenario scenario = scengen::HospitalScenario();
  std::printf("=== Medical folder exchange (pull, with exceptions) ===\n%s\n\n",
              scenario.description.c_str());

  dsp::DspServer store;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&store, &registry, 613);
  auto receipt = scengen::PublishScenarioDocument(&publisher, scenario,
                                                  "folder", /*elements=*/900,
                                                  /*seed=*/1905);
  if (!receipt.ok()) return 1;

  auto run = [&](const char* who, const char* query) {
    proxy::Terminal term(who, soe::CardProfile::EGate(), &store, &registry);
    if (!term.Provision("folder").ok()) {
      std::printf("  %-12s not provisioned\n", who);
      return std::string();
    }
    proxy::QueryOptions q;
    q.query = query;
    auto result = term.Query("folder", q);
    if (!result.ok()) {
      std::printf("  %-12s error: %s\n", who,
                  result.status().ToString().c_str());
      return std::string();
    }
    std::printf("  %-12s %-42s %6zu bytes, %5.1f s, %3zu skips, RAM %4zu B\n",
                who, query, result.value().xml.size(),
                result.value().card.total_seconds, result.value().card.skips,
                result.value().card.ram_peak);
    return result.value().xml;
  };

  std::printf("normal operation:\n");
  std::string doctor_view = run("doctor", "//patient");
  std::string researcher_view = run("researcher", "//treatment");
  std::string accountant_view = run("accountant", "//billing/amount");
  run("emergency", "//patient");

  std::printf("\nprivacy checks:\n");
  std::printf("  researcher view contains %zu <name> vs doctor's %zu "
              "(identity stripped)\n",
              CountOccurrences(researcher_view, "<name>"),
              CountOccurrences(doctor_view, "<name>"));
  std::printf("  doctor view contains %zu <amount> (billing hidden)\n",
              CountOccurrences(doctor_view, "<amount>"));

  // --- Emergency exception -------------------------------------------------
  std::printf("\n--- emergency declared: on-call staff gains acute folders, "
              "doctor gains billing for triage ---\n");
  // The exception *replaces* the doctor's billing prohibition (appending a
  // permission would lose to Denial-Takes-Precedence) and adds the on-call
  // role. Dynamic rules make this a text edit, not a crypto operation.
  std::string emergency_rules =
      "+ doctor //patient\n"
      "+ accountant //patient/admin\n"
      "+ researcher //patient/medical\n"
      "- researcher //patient/name\n"
      "- researcher //patient/ssn\n"
      "+ emergency //patient[medical/diagnosis/severity=\"acute\"]\n"
      "- emergency //admin\n"
      "+ oncall //patient[medical/diagnosis/severity=\"acute\"]\n";
  auto update =
      publisher.UpdateRules("folder", receipt.value().key, emergency_rules);
  if (!update.ok()) return 1;
  std::printf("exception deployed with a %zu-byte rule update\n\n",
              update.value());
  run("oncall", "//patient");
  std::string doctor_emergency = run("doctor", "//patient");
  std::printf("  doctor now sees %zu <amount>\n",
              CountOccurrences(doctor_emergency, "<amount>"));

  std::printf("\n--- emergency lifted ---\n");
  auto revert =
      publisher.UpdateRules("folder", receipt.value().key, scenario.rules_text);
  if (!revert.ok()) return 1;
  run("oncall", "//patient");
  std::printf("\n(the document on the DSP was never re-encrypted: %zu bytes "
              "of ciphertext stayed byte-identical)\n",
              receipt.value().container_bytes);
  return 0;
}
