#ifndef CSXA_XPATH_AST_H_
#define CSXA_XPATH_AST_H_

/// \file ast.h
/// \brief Abstract syntax for the XPath fragment XP{[],*,//}.
///
/// The paper's access rules and queries use "a rather robust subset of
/// XPath ... node tests, the child axis (/), the descendant axis (//),
/// wildcards (*) and predicates or branches [...]" (§2.2, citing Miklau &
/// Suciu). Predicates are relative paths, optionally ending in a comparison
/// of the target node's string-value against a literal.

#include <memory>
#include <string>
#include <vector>

namespace csxa::xpath {

/// Axis connecting a step to its predecessor.
enum class Axis : uint8_t {
  /// `/` — the step matches a child.
  kChild,
  /// `//` — the step matches any descendant.
  kDescendant,
};

/// Comparison operator in a value predicate; kExists when the predicate is
/// purely structural (`[path]`).
enum class CmpOp : uint8_t {
  kExists,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Human-readable operator token ("=", "!=", ...).
const char* CmpOpToken(CmpOp op);

struct Predicate;

/// \brief One location step: axis, node test, and attached predicates.
struct Step {
  Axis axis = Axis::kChild;
  /// Element name test; ignored when `wildcard` is true.
  std::string tag;
  /// True for `*`.
  bool wildcard = false;
  /// Conjunctive predicates attached to this step.
  std::vector<Predicate> predicates;
};

/// \brief A relative path (used inside predicates).
struct RelativePath {
  std::vector<Step> steps;
};

/// \brief A predicate: `[path]` or `[path op literal]`.
///
/// Semantics are existential within the context node's subtree: the
/// predicate holds iff some node reachable by `path` from the context node
/// exists (kExists) or has a string-value satisfying the comparison.
struct Predicate {
  RelativePath path;
  CmpOp op = CmpOp::kExists;
  /// Comparison literal (string or numeric form as written).
  std::string literal;
};

/// \brief A complete (absolute) path expression.
///
/// The first step's axis distinguishes `/a` (child of the virtual document
/// root, i.e. the root element test) from `//a` (any element).
struct PathExpr {
  std::vector<Step> steps;

  /// True if the expression has at least one step.
  bool valid() const { return !steps.empty(); }
  /// Total number of steps including predicate paths (complexity measure).
  size_t TotalSteps() const;
  /// Number of predicates across all steps (including nested — the
  /// fragment has no nested predicates, so this is a flat count).
  size_t PredicateCount() const;
};

/// Serializes back to XPath syntax (round-trips through the parser).
std::string ToString(const PathExpr& expr);
/// Serializes a relative path.
std::string ToString(const RelativePath& path);

/// \brief Compares a node string-value against a predicate literal.
///
/// `=`/`!=` compare numerically when both sides parse as numbers and as
/// trimmed strings otherwise; ordered operators require both sides to be
/// numeric and are false otherwise (documented deviation: XPath 1.0 would
/// coerce NaN, which the card engine has no float formatting for).
bool CompareValue(const std::string& node_value, CmpOp op,
                  const std::string& literal);

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_AST_H_
