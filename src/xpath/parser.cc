#include "xpath/parser.h"

#include <cctype>
#include <cstring>

namespace csxa::xpath {

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }
  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool Consume(const char* s) {
    SkipWs();
    size_t n = std::strlen(s);
    if (text_.compare(pos_, n, s) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) {
    return Status::ParseError("XPath position " + std::to_string(pos_) + ": " +
                              msg);
  }

  Result<std::string> Name() {
    SkipWs();
    size_t start = pos_;
    auto is_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '-' || c == '.' || c == ':';
    };
    if (pos_ >= text_.size() || !is_start(text_[pos_])) {
      return Error("expected element name");
    }
    while (pos_ < text_.size() && is_char(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> Literal() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("expected literal");
    char c = text_[pos_];
    if (c == '"' || c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != c) ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated string literal");
      std::string lit = text_.substr(start, pos_ - start);
      ++pos_;
      return lit;
    }
    // Number literal.
    size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) return Error("expected string or number literal");
    return text_.substr(start, pos_ - start);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Result<Step> ParseStep(Cursor* cur, Axis axis);

Result<Predicate> ParsePredicateAt(Cursor* cur) {
  Predicate pred;
  // Relative path: optional './/' or './' prefix, or a bare step.
  Axis first_axis = Axis::kChild;
  if (cur->Consume(".//")) {
    first_axis = Axis::kDescendant;
  } else if (cur->Consume("./")) {
    first_axis = Axis::kChild;
  } else if (cur->Peek() == '/') {
    return cur->Error("absolute paths are not allowed inside predicates");
  } else if (cur->Peek() == '@') {
    return cur->Error("attribute tests are outside the supported fragment");
  }
  CSXA_ASSIGN_OR_RETURN(Step first, ParseStep(cur, first_axis));
  pred.path.steps.push_back(std::move(first));
  for (;;) {
    if (cur->Consume("//")) {
      CSXA_ASSIGN_OR_RETURN(Step s, ParseStep(cur, Axis::kDescendant));
      pred.path.steps.push_back(std::move(s));
    } else if (cur->Peek() == '/') {
      cur->Consume("/");
      CSXA_ASSIGN_OR_RETURN(Step s, ParseStep(cur, Axis::kChild));
      pred.path.steps.push_back(std::move(s));
    } else {
      break;
    }
  }
  // Optional comparison. Order matters: match two-char operators first.
  if (cur->Consume("!=")) {
    pred.op = CmpOp::kNe;
  } else if (cur->Consume("<=")) {
    pred.op = CmpOp::kLe;
  } else if (cur->Consume(">=")) {
    pred.op = CmpOp::kGe;
  } else if (cur->Consume("<")) {
    pred.op = CmpOp::kLt;
  } else if (cur->Consume(">")) {
    pred.op = CmpOp::kGt;
  } else if (cur->Consume("=")) {
    pred.op = CmpOp::kEq;
  } else {
    pred.op = CmpOp::kExists;
    return pred;
  }
  CSXA_ASSIGN_OR_RETURN(pred.literal, cur->Literal());
  return pred;
}

Result<Step> ParseStep(Cursor* cur, Axis axis) {
  Step step;
  step.axis = axis;
  if (cur->Consume("*")) {
    step.wildcard = true;
  } else if (cur->Peek() == '@') {
    return cur->Error("attribute steps are outside the supported fragment");
  } else {
    CSXA_ASSIGN_OR_RETURN(step.tag, cur->Name());
    if (cur->Peek() == '(') {
      return cur->Error("function calls are outside the supported fragment");
    }
  }
  while (cur->Consume("[")) {
    // Position predicates ([3]) are outside the fragment.
    if (std::isdigit(static_cast<unsigned char>(cur->Peek()))) {
      return cur->Error("position predicates are outside the supported fragment");
    }
    CSXA_ASSIGN_OR_RETURN(Predicate p, ParsePredicateAt(cur));
    if (!cur->Consume("]")) return cur->Error("expected ']'");
    step.predicates.push_back(std::move(p));
  }
  return step;
}

}  // namespace

Result<PathExpr> ParsePath(const std::string& text) {
  Cursor cur(text);
  PathExpr expr;
  if (cur.AtEnd()) return cur.Error("empty expression");
  for (;;) {
    Axis axis;
    if (cur.Consume("//")) {
      axis = Axis::kDescendant;
    } else if (cur.Consume("/")) {
      axis = Axis::kChild;
    } else if (expr.steps.empty()) {
      return cur.Error("path must start with '/' or '//'");
    } else {
      break;
    }
    CSXA_ASSIGN_OR_RETURN(Step s, ParseStep(&cur, axis));
    expr.steps.push_back(std::move(s));
    if (cur.AtEnd()) break;
  }
  if (!cur.AtEnd()) return cur.Error("trailing characters");
  if (expr.steps.empty()) return cur.Error("no steps");
  return expr;
}

Result<Predicate> ParsePredicateBody(const std::string& text) {
  Cursor cur(text);
  CSXA_ASSIGN_OR_RETURN(Predicate p, ParsePredicateAt(&cur));
  if (!cur.AtEnd()) return cur.Error("trailing characters");
  return p;
}

}  // namespace csxa::xpath
