#ifndef CSXA_XPATH_PARSER_H_
#define CSXA_XPATH_PARSER_H_

/// \file parser.h
/// \brief Recursive-descent parser for the XP{[],*,//} fragment.
///
/// Grammar (whitespace insignificant outside literals):
///
///   path       := ('/' | '//') step (('/' | '//') step)*
///   step       := nametest predicate*
///   nametest   := NAME | '*'
///   predicate  := '[' relpath (cmp literal)? ']'
///   relpath    := ('.//')? step (('/' | '//') step)*
///   cmp        := '=' | '!=' | '<' | '<=' | '>' | '>='
///   literal    := '"' chars '"' | '\'' chars '\'' | number
///
/// Anything outside the fragment (attributes, functions, position
/// predicates, nested predicates within predicates, absolute paths inside
/// predicates) yields NotSupported — mirroring the paper's deliberate
/// restriction to a containment-decidable fragment [7].

#include <string>

#include "common/status.h"
#include "xpath/ast.h"

namespace csxa::xpath {

/// Parses an absolute path expression.
Result<PathExpr> ParsePath(const std::string& text);

/// Parses a relative path with optional trailing comparison — the body of
/// a predicate (exposed for tests).
Result<Predicate> ParsePredicateBody(const std::string& text);

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_PARSER_H_
