#include "xpath/ast.h"

#include <cctype>
#include <cstdlib>

namespace csxa::xpath {

const char* CmpOpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kExists:
      return "";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

size_t PathExpr::TotalSteps() const {
  size_t n = 0;
  for (const Step& s : steps) {
    n += 1;
    for (const Predicate& p : s.predicates) n += p.path.steps.size();
  }
  return n;
}

size_t PathExpr::PredicateCount() const {
  size_t n = 0;
  for (const Step& s : steps) n += s.predicates.size();
  return n;
}

namespace {
void AppendStep(const Step& s, bool first_relative, std::string* out) {
  if (s.axis == Axis::kDescendant) {
    *out += first_relative ? ".//" : "//";
  } else {
    *out += first_relative ? "" : "/";
  }
  *out += s.wildcard ? "*" : s.tag;
  for (const Predicate& p : s.predicates) {
    out->push_back('[');
    *out += ToString(p.path);
    if (p.op != CmpOp::kExists) {
      *out += CmpOpToken(p.op);
      out->push_back('"');
      *out += p.literal;
      out->push_back('"');
    }
    out->push_back(']');
  }
}
}  // namespace

std::string ToString(const PathExpr& expr) {
  std::string out;
  for (const Step& s : expr.steps) {
    AppendStep(s, /*first_relative=*/false, &out);
  }
  return out;
}

std::string ToString(const RelativePath& path) {
  std::string out;
  bool first = true;
  for (const Step& s : path.steps) {
    AppendStep(s, first, &out);
    first = false;
  }
  return out;
}

namespace {
// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseNumber(const std::string& s, double* out) {
  std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}
}  // namespace

bool CompareValue(const std::string& node_value, CmpOp op,
                  const std::string& literal) {
  double a, b;
  bool numeric = ParseNumber(node_value, &a) && ParseNumber(literal, &b);
  switch (op) {
    case CmpOp::kExists:
      return true;
    case CmpOp::kEq:
      return numeric ? a == b : Trim(node_value) == Trim(literal);
    case CmpOp::kNe:
      return numeric ? a != b : Trim(node_value) != Trim(literal);
    case CmpOp::kLt:
      return numeric && a < b;
    case CmpOp::kLe:
      return numeric && a <= b;
    case CmpOp::kGt:
      return numeric && a > b;
    case CmpOp::kGe:
      return numeric && a >= b;
  }
  return false;
}

}  // namespace csxa::xpath
