#include "xpath/eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace csxa::xpath {

using xml::DomNode;

namespace {

bool NameTestMatches(const Step& step, const DomNode* n) {
  if (!n->is_element()) return false;
  return step.wildcard || step.tag == n->tag();
}

void CollectDescendantElements(const DomNode* n, std::vector<const DomNode*>* out) {
  for (const auto& c : n->children()) {
    if (c->is_element()) {
      out->push_back(c.get());
      CollectDescendantElements(c.get(), out);
    }
  }
}

// Applies one step to a single context node, appending matches.
void ApplyStep(const DomNode* ctx, const Step& step,
               std::vector<const DomNode*>* out) {
  if (step.axis == Axis::kChild) {
    for (const auto& c : ctx->children()) {
      if (NameTestMatches(step, c.get()) ) {
        bool ok = true;
        for (const Predicate& p : step.predicates) {
          if (!PredicateHolds(c.get(), p)) {
            ok = false;
            break;
          }
        }
        if (ok) out->push_back(c.get());
      }
    }
  } else {
    std::vector<const DomNode*> descendants;
    CollectDescendantElements(ctx, &descendants);
    for (const DomNode* d : descendants) {
      if (NameTestMatches(step, d)) {
        bool ok = true;
        for (const Predicate& p : step.predicates) {
          if (!PredicateHolds(d, p)) {
            ok = false;
            break;
          }
        }
        if (ok) out->push_back(d);
      }
    }
  }
}

// Deduplicates while keeping first occurrence; then restores document order
// by a pre-order index map.
void Dedupe(std::vector<const DomNode*>* nodes) {
  std::unordered_set<const DomNode*> seen;
  std::vector<const DomNode*> out;
  out.reserve(nodes->size());
  for (const DomNode* n : *nodes) {
    if (seen.insert(n).second) out.push_back(n);
  }
  *nodes = std::move(out);
}

std::vector<const DomNode*> EvalSteps(const std::vector<const DomNode*>& start,
                                      const std::vector<Step>& steps) {
  std::vector<const DomNode*> ctx = start;
  for (const Step& step : steps) {
    std::vector<const DomNode*> next;
    for (const DomNode* c : ctx) {
      ApplyStep(c, step, &next);
    }
    Dedupe(&next);
    ctx = std::move(next);
    if (ctx.empty()) break;
  }
  return ctx;
}

void IndexPreorder(const DomNode* n, size_t* counter,
                   std::unordered_map<const DomNode*, size_t>* idx);

}  // namespace

bool PredicateHolds(const DomNode* ctx, const Predicate& pred) {
  std::vector<const DomNode*> matches = EvalSteps({ctx}, pred.path.steps);
  if (pred.op == CmpOp::kExists) return !matches.empty();
  for (const DomNode* m : matches) {
    // Value predicates compare the matched node's *direct* text — the
    // streaming-friendly semantics shared with core/obligation.h.
    if (CompareValue(m->DirectText(), pred.op, pred.literal)) return true;
  }
  return false;
}

std::vector<const DomNode*> SelectNodes(const DomNode* root,
                                        const PathExpr& expr) {
  if (root == nullptr || !expr.valid()) return {};
  // The virtual document root has `root` as its only child; a first step on
  // the descendant axis ranges over root and all its descendants.
  std::vector<const DomNode*> ctx;
  const Step& first = expr.steps[0];
  std::vector<const DomNode*> candidates;
  if (first.axis == Axis::kChild) {
    candidates.push_back(root);
  } else {
    candidates.push_back(root);
    CollectDescendantElements(root, &candidates);
  }
  for (const DomNode* c : candidates) {
    if (NameTestMatches(first, c)) {
      bool ok = true;
      for (const Predicate& p : first.predicates) {
        if (!PredicateHolds(c, p)) {
          ok = false;
          break;
        }
      }
      if (ok) ctx.push_back(c);
    }
  }
  std::vector<Step> rest(expr.steps.begin() + 1, expr.steps.end());
  std::vector<const DomNode*> result = EvalSteps(ctx, rest);

  // Restore document order.
  std::unordered_map<const DomNode*, size_t> order;
  size_t counter = 0;
  IndexPreorder(root, &counter, &order);
  std::sort(result.begin(), result.end(),
            [&order](const DomNode* a, const DomNode* b) {
              return order[a] < order[b];
            });
  return result;
}

namespace {
void IndexPreorder(const DomNode* n, size_t* counter,
                   std::unordered_map<const DomNode*, size_t>* idx) {
  (*idx)[n] = (*counter)++;
  for (const auto& c : n->children()) {
    if (c->is_element()) IndexPreorder(c.get(), counter, idx);
  }
}
}  // namespace

bool MatchesNode(const DomNode* root, const PathExpr& expr,
                 const DomNode* target) {
  std::vector<const DomNode*> all = SelectNodes(root, expr);
  return std::find(all.begin(), all.end(), target) != all.end();
}

}  // namespace csxa::xpath
