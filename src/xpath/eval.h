#ifndef CSXA_XPATH_EVAL_H_
#define CSXA_XPATH_EVAL_H_

/// \file eval.h
/// \brief DOM-based XPath evaluation — the reference oracle.
///
/// This evaluator materializes the document (which the SOE cannot do) and
/// is used only by tests, the trusted-server baseline and the
/// subset-encryption baseline. The streaming engine in core/ must agree
/// with it on every document; that agreement is the central property test.

#include <vector>

#include "xml/dom.h"
#include "xpath/ast.h"

namespace csxa::xpath {

/// Selects the element nodes matched by an absolute expression, in
/// document order, without duplicates. `root` is the document root element.
std::vector<const xml::DomNode*> SelectNodes(const xml::DomNode* root,
                                             const PathExpr& expr);

/// True iff `pred` holds at context element `ctx` (existential semantics
/// over ctx's subtree; see ast.h for comparison rules).
bool PredicateHolds(const xml::DomNode* ctx, const Predicate& pred);

/// True iff `target` (an element) is matched by `expr` evaluated from
/// `root`. Equivalent to membership in SelectNodes but short-circuits.
bool MatchesNode(const xml::DomNode* root, const PathExpr& expr,
                 const xml::DomNode* target);

}  // namespace csxa::xpath

#endif  // CSXA_XPATH_EVAL_H_
