#ifndef CSXA_COMMON_RANDOM_H_
#define CSXA_COMMON_RANDOM_H_

/// \file random.h
/// \brief Deterministic PRNG for workload generation and tests.
///
/// All randomized tests and benchmark workloads are seeded so that runs are
/// reproducible; this is the xoshiro256** generator seeded via splitmix64.

#include <cstdint>
#include <string>
#include <vector>

namespace csxa {

/// \brief Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0xC5A4E1B3u);

  /// Next raw 64-bit value.
  uint64_t Next();
  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Bernoulli trial with probability p.
  bool Chance(double p);
  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }
  /// Random lowercase ASCII identifier of the given length.
  std::string Ident(size_t len);
  /// Zipf-distributed rank in [0, n) with skew parameter `theta` in (0,1].
  /// theta near 1 is highly skewed; used by workload generators.
  size_t Zipf(size_t n, double theta);

 private:
  uint64_t s_[4];
};

}  // namespace csxa

#endif  // CSXA_COMMON_RANDOM_H_
