#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace csxa {

namespace {
LogLevel g_level = LogLevel::kWarning;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, msg.c_str());
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace csxa
