#include "common/bitvec.h"

#include <bit>

namespace csxa {

size_t BitVec::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool BitVec::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVec::IsSubsetOf(const BitVec& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool BitVec::Intersects(const BitVec& other) const {
  size_t n = words_.size() < other.words_.size() ? words_.size() : other.words_.size();
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

void BitVec::UnionWith(const BitVec& other) {
  for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

size_t BitVec::RankBefore(size_t i) const {
  size_t full = i >> 6;
  size_t n = 0;
  for (size_t w = 0; w < full; ++w) n += static_cast<size_t>(std::popcount(words_[w]));
  size_t rem = i & 63;
  if (rem != 0 && full < words_.size()) {
    uint64_t mask = (uint64_t{1} << rem) - 1;
    n += static_cast<size_t>(std::popcount(words_[full] & mask));
  }
  return n;
}

size_t BitVec::SelectSet(size_t k) const {
  for (size_t i = 0; i < nbits_; ++i) {
    if (Test(i)) {
      if (k == 0) return i;
      --k;
    }
  }
  return nbits_;
}

void BitVec::EncodeTo(ByteWriter* out) const {
  size_t nbytes = (nbits_ + 7) / 8;
  for (size_t b = 0; b < nbytes; ++b) {
    uint8_t byte = 0;
    for (size_t bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + bit;
      if (i < nbits_ && Test(i)) byte |= static_cast<uint8_t>(1u << bit);
    }
    out->PutU8(byte);
  }
}

bool BitVec::DecodeFrom(ByteReader* in, size_t nbits, BitVec* out) {
  size_t nbytes = (nbits + 7) / 8;
  *out = BitVec(nbits);
  for (size_t b = 0; b < nbytes; ++b) {
    uint8_t byte;
    if (!in->GetU8(&byte)) return false;
    for (size_t bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + bit;
      if (i < nbits && ((byte >> bit) & 1)) out->Set(i);
    }
  }
  return true;
}

}  // namespace csxa
