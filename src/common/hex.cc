#include "common/hex.h"

namespace csxa {

std::string HexEncode(Span s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (size_t i = 0; i < s.size(); ++i) {
    out.push_back(kDigits[s[i] >> 4]);
    out.push_back(kDigits[s[i] & 0xf]);
  }
  return out;
}

namespace {
int NibbleValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Bytes> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = NibbleValue(hex[i]);
    int lo = NibbleValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex digit");
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace csxa
