#include "common/status.h"

namespace csxa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIntegrityError:
      return "IntegrityError";
    case StatusCode::kAccessDenied:
      return "AccessDenied";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace csxa
