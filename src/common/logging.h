#ifndef CSXA_COMMON_LOGGING_H_
#define CSXA_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging and check macros.
///
/// Logging defaults to warnings-and-above so tests and benches stay quiet;
/// CSXA_CHECK aborts on violated internal invariants (never on user input —
/// user input errors flow through Status).

#include <sstream>
#include <string>

namespace csxa {

/// Log severity levels in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
/// Current global minimum level.
LogLevel GetLogLevel();
/// Emits one log line to stderr if `level` passes the global threshold.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

namespace internal {
/// Stream adapter that emits on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

#define CSXA_LOG(level) \
  ::csxa::internal::LogStream(::csxa::LogLevel::level, __FILE__, __LINE__)

/// Aborts with a message when an internal invariant does not hold.
#define CSXA_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::csxa::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

}  // namespace csxa

#endif  // CSXA_COMMON_LOGGING_H_
