#ifndef CSXA_COMMON_BYTES_H_
#define CSXA_COMMON_BYTES_H_

/// \file bytes.h
/// \brief Byte-slice and growable byte-buffer primitives.
///
/// Bytes is the canonical owned byte container; Span is a non-owning view.
/// Both are used for encrypted payloads, APDU frames and index encodings.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace csxa {

/// Owned, contiguous byte storage.
using Bytes = std::vector<uint8_t>;

/// \brief Non-owning view over a contiguous byte range.
///
/// Mirrors rocksdb::Slice: the viewed storage must outlive the Span.
class Span {
 public:
  /// Empty view.
  Span() : data_(nullptr), size_(0) {}
  /// View over [data, data+size).
  Span(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  /// View over the full contents of an owned buffer.
  Span(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT
  /// View over the bytes of a string (no copy).
  explicit Span(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-view of `len` bytes starting at `off`; clamped to bounds.
  Span subspan(size_t off, size_t len = SIZE_MAX) const {
    if (off > size_) off = size_;
    size_t n = size_ - off;
    if (len < n) n = len;
    return Span(data_ + off, n);
  }

  /// Copies the viewed bytes into an owned buffer.
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  /// Copies the viewed bytes into a std::string.
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  /// Byte-wise equality.
  bool operator==(const Span& o) const {
    return size_ == o.size_ &&
           (size_ == 0 || std::memcmp(data_, o.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

/// \brief Append-only writer over an owned Bytes buffer.
///
/// Provides fixed-width little-endian integer encoders used by the document
/// container format, the skip index and the APDU codec.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Appends a single byte.
  void PutU8(uint8_t v) { buf_.push_back(v); }
  /// Appends a 16-bit little-endian integer.
  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }
  /// Appends a 32-bit little-endian integer.
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  /// Appends a 64-bit little-endian integer.
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  /// Appends raw bytes.
  void PutBytes(Span s) { buf_.insert(buf_.end(), s.data(), s.data() + s.size()); }
  /// Appends a length-prefixed (u32) byte string.
  void PutLengthPrefixed(Span s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s);
  }
  /// Appends a length-prefixed (u32) UTF-8 string.
  void PutString(const std::string& s) { PutLengthPrefixed(Span(s)); }

  /// Current number of bytes written.
  size_t size() const { return buf_.size(); }
  /// Borrow the underlying buffer.
  const Bytes& bytes() const { return buf_; }
  /// Move the underlying buffer out; the writer is left empty.
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// \brief Cursor-based reader over a Span with bounds-checked decoders.
///
/// Each Get* returns false on underflow, leaving the cursor unchanged so
/// callers can surface a ParseError.
class ByteReader {
 public:
  explicit ByteReader(Span s) : span_(s), pos_(0) {}

  /// Bytes remaining past the cursor.
  size_t remaining() const { return span_.size() - pos_; }
  /// Current cursor offset.
  size_t position() const { return pos_; }
  /// True when the cursor is at the end.
  bool AtEnd() const { return pos_ == span_.size(); }
  /// Moves the cursor to an absolute offset (clamped).
  void Seek(size_t pos) { pos_ = pos > span_.size() ? span_.size() : pos; }
  /// Advances the cursor by `n` bytes; returns false on underflow.
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = span_[pos_++];
    return true;
  }
  bool GetU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(span_[pos_]) |
         static_cast<uint16_t>(span_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(span_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(span_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  /// Reads `n` raw bytes as a sub-view (no copy).
  bool GetBytes(size_t n, Span* out) {
    if (remaining() < n) return false;
    *out = span_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  /// Reads a u32 length-prefixed byte string as a sub-view.
  bool GetLengthPrefixed(Span* out) {
    size_t save = pos_;
    uint32_t n;
    if (!GetU32(&n) || remaining() < n) {
      pos_ = save;
      return false;
    }
    *out = span_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  /// Reads a u32 length-prefixed UTF-8 string (copies).
  bool GetString(std::string* out) {
    Span s;
    if (!GetLengthPrefixed(&s)) return false;
    *out = s.ToString();
    return true;
  }

 private:
  Span span_;
  size_t pos_;
};

}  // namespace csxa

#endif  // CSXA_COMMON_BYTES_H_
