#include "common/interner.h"

#include "common/varint.h"

namespace csxa {

TagId Interner::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

TagId Interner::Lookup(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoTagId : it->second;
}

void Interner::EncodeTo(ByteWriter* out) const {
  PutVarint(out, names_.size());
  for (const std::string& n : names_) {
    PutVarint(out, n.size());
    out->PutBytes(Span(n));
  }
}

Result<Interner> Interner::DecodeFrom(ByteReader* in) {
  uint64_t count;
  if (!GetVarint(in, &count) || count > 1u << 20) {
    return Status::ParseError("tag dictionary truncated or oversized");
  }
  Interner dict;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len;
    Span bytes;
    if (!GetVarint(in, &len) || !in->GetBytes(len, &bytes)) {
      return Status::ParseError("tag dictionary name truncated");
    }
    dict.Intern(bytes.ToString());
  }
  return dict;
}

size_t Interner::ModeledBytes() const {
  size_t n = 0;
  for (const std::string& s : names_) n += 2 + s.size();
  return n;
}

}  // namespace csxa
