#ifndef CSXA_COMMON_HEX_H_
#define CSXA_COMMON_HEX_H_

/// \file hex.h
/// \brief Hexadecimal encode/decode for key material and test vectors.

#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace csxa {

/// Lower-case hex encoding of a byte span.
std::string HexEncode(Span s);

/// Decodes a hex string (upper or lower case, even length) into bytes.
Result<Bytes> HexDecode(const std::string& hex);

}  // namespace csxa

#endif  // CSXA_COMMON_HEX_H_
