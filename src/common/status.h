#ifndef CSXA_COMMON_STATUS_H_
#define CSXA_COMMON_STATUS_H_

/// \file status.h
/// \brief Error propagation primitives used across all C-SXA libraries.
///
/// Following the conventions of large C++ database systems (RocksDB, Arrow),
/// no exceptions cross public API boundaries. Fallible operations return a
/// Status, or a Result<T> when they also produce a value.

#include <string>
#include <utility>
#include <variant>

namespace csxa {

/// \brief Coarse error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed input (XML syntax, XPath syntax, corrupt encodings).
  kParseError = 1,
  /// Cryptographic integrity check failed (tampered block / bad MAC).
  kIntegrityError = 2,
  /// Operation rejected by access control.
  kAccessDenied = 3,
  /// The SOE's modeled resource budget (RAM, stack) was exceeded.
  kResourceExhausted = 4,
  /// Entity (document, user, key, rule set) not found.
  kNotFound = 5,
  /// Caller misused an API (bad argument, wrong state).
  kInvalidArgument = 6,
  /// Transport failure (APDU framing, truncated stream).
  kIoError = 7,
  /// Feature intentionally outside the supported fragment.
  kNotSupported = 8,
  /// Internal invariant violated; indicates a bug.
  kInternal = 9,
};

/// \brief Human-readable name for a StatusCode (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// \brief Cheap, value-semantic status for fallible operations.
///
/// An OK status carries no allocation. Error statuses carry a code and a
/// message. Statuses are ignorable but callers are expected to check them;
/// tests assert both success and failure paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// \name Named constructors, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IntegrityError(std::string msg) {
    return Status(StatusCode::kIntegrityError, std::move(msg));
  }
  static Status AccessDenied(std::string msg) {
    return Status(StatusCode::kAccessDenied, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK.
  const std::string& message() const { return msg_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value-or-Status sum type, analogous to arrow::Result.
///
/// Either holds a T (status().ok() is true) or an error Status. Accessing
/// the value of an error Result aborts in debug builds; callers must check.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : var_(std::move(status)) {}  // NOLINT(runtime/explicit)

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The held status: OK() when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  /// Borrow the held value. Requires ok().
  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  /// Move the held value out. Requires ok().
  T&& value() && { return std::get<T>(std::move(var_)); }

  /// Returns the value or a fallback when in error state.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

/// Propagates an error Status out of the current function.
#define CSXA_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::csxa::Status _csxa_st = (expr);                 \
    if (!_csxa_st.ok()) return _csxa_st;              \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, propagating errors.
#define CSXA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define CSXA_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define CSXA_ASSIGN_OR_RETURN_NAME(a, b) CSXA_ASSIGN_OR_RETURN_CONCAT(a, b)
#define CSXA_ASSIGN_OR_RETURN(lhs, rexpr) \
  CSXA_ASSIGN_OR_RETURN_IMPL(             \
      CSXA_ASSIGN_OR_RETURN_NAME(_csxa_res_, __LINE__), lhs, rexpr)

}  // namespace csxa

#endif  // CSXA_COMMON_STATUS_H_
