#include "common/varint.h"

namespace csxa {

void PutVarint(ByteWriter* out, uint64_t v) {
  while (v >= 0x80) {
    out->PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->PutU8(static_cast<uint8_t>(v));
}

bool GetVarint(ByteReader* in, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t byte;
    if (!in->GetU8(&byte)) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;  // over-long encoding
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace csxa
