#include "common/random.h"

#include <cmath>

namespace csxa {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::Chance(double p) { return NextDouble() < p; }

std::string Rng::Ident(size_t len) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return s;
}

size_t Rng::Zipf(size_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the (unnormalized) Zipf mass 1/i^theta.
  // O(n) per call; workloads precompute when hot.
  double total = 0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), theta);
  double u = NextDouble() * total;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), theta);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

}  // namespace csxa
