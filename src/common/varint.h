#ifndef CSXA_COMMON_VARINT_H_
#define CSXA_COMMON_VARINT_H_

/// \file varint.h
/// \brief LEB128 variable-length integer coding.
///
/// The skip index stores one subtree size per element; documents are
/// dominated by small subtrees, so sizes are stored as varints — this is
/// one half of the paper's "recursive compression" of the index (§2.3).

#include <cstdint>

#include "common/bytes.h"

namespace csxa {

/// Appends `v` to `out` in unsigned LEB128 (1 byte per 7 bits).
void PutVarint(ByteWriter* out, uint64_t v);

/// Decodes a varint at the reader's cursor. Returns false on truncation or
/// on an over-long (>10 byte) encoding.
bool GetVarint(ByteReader* in, uint64_t* v);

/// Number of bytes PutVarint would emit for `v`.
size_t VarintLength(uint64_t v);

}  // namespace csxa

#endif  // CSXA_COMMON_VARINT_H_
