#ifndef CSXA_COMMON_BITVEC_H_
#define CSXA_COMMON_BITVEC_H_

/// \file bitvec.h
/// \brief Fixed-width bit vector used for skip-index tag sets.
///
/// The skip index encodes, for each subtree, the set of element tags it
/// contains as a bit array over the tag dictionary (§2.3). BitVec supports
/// the subset/intersection tests the skip decision needs and the
/// rank-based remapping used by recursive compression.

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace csxa {

/// \brief Dynamically sized bit vector with set-algebra helpers.
class BitVec {
 public:
  BitVec() = default;
  /// Creates a vector of `nbits` zero bits.
  explicit BitVec(size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return nbits_; }

  /// Sets bit `i` to 1. `i` must be < size().
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  /// Clears bit `i`.
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const;
  /// True iff no bit is set.
  bool None() const;
  /// True iff every set bit of *this is also set in `other` (sizes must match).
  bool IsSubsetOf(const BitVec& other) const;
  /// True iff *this and `other` share at least one set bit.
  bool Intersects(const BitVec& other) const;
  /// In-place union with `other` (sizes must match).
  void UnionWith(const BitVec& other);

  /// Number of set bits strictly below position `i` (rank query).
  size_t RankBefore(size_t i) const;
  /// Position of the `k`-th (0-based) set bit, or size() if none.
  size_t SelectSet(size_t k) const;

  /// Serializes exactly ceil(size()/8) bytes, LSB-first.
  void EncodeTo(ByteWriter* out) const;
  /// Reads ceil(nbits/8) bytes into a vector of `nbits` bits.
  static bool DecodeFrom(ByteReader* in, size_t nbits, BitVec* out);

  bool operator==(const BitVec& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace csxa

#endif  // CSXA_COMMON_BITVEC_H_
