#ifndef CSXA_COMMON_INTERNER_H_
#define CSXA_COMMON_INTERNER_H_

/// \file interner.h
/// \brief Shared tag/name interner (XGRIND-style dictionary, §2.3 [9]).
///
/// One table maps names to dense 32-bit ids and back. It started life as
/// the skip index's tag dictionary; it is now a first-class subsystem used
/// across the event pipeline: the document codec stores ids instead of
/// names, `xml::Event` carries the producer's id so the evaluator can
/// dispatch on integers instead of strings, and the skip index's
/// per-subtree tag sets are bit arrays over it.
///
/// Ownership rules (see src/common/README.md): the interner owns its name
/// strings; `Name()` returns a reference that is stable for the interner's
/// lifetime (names are never removed). Lookup accepts `std::string_view`
/// so hot paths can probe with non-owning slices of a document buffer.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"

namespace csxa {

/// Dense id assigned by an Interner.
using TagId = uint32_t;

/// Sentinel for "name not in the table".
inline constexpr TagId kNoTagId = 0xFFFFFFFFu;

/// \brief An ordered, deduplicated name table with O(1) lookups both ways.
///
/// Ids are assigned in first-Intern order starting at 0, so two interners
/// fed the same name sequence assign identical ids (the property the codec
/// round-trip relies on).
class Interner {
 public:
  Interner() = default;

  /// Adds a name if absent; returns its id.
  TagId Intern(std::string_view name);
  /// Id of `name`, or kNoTagId.
  TagId Lookup(std::string_view name) const;
  /// Name of `id` (must be < size()); stable reference, never invalidated.
  const std::string& Name(TagId id) const { return names_[id]; }
  /// Number of entries.
  size_t size() const { return names_.size(); }

  /// Serialized form: varint count, then per name varint length + bytes.
  void EncodeTo(ByteWriter* out) const;
  static Result<Interner> DecodeFrom(ByteReader* in);

  /// Modeled on-card footprint (the SOE keeps the dictionary in RAM).
  size_t ModeledBytes() const;

 private:
  // Heterogeneous hashing so Lookup(string_view) never materializes a
  // std::string.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // Deque, not vector: Name() hands out references that must survive
  // later Intern() calls (the documented stability contract).
  std::deque<std::string> names_;
  std::unordered_map<std::string, TagId, Hash, Eq> index_;
};

}  // namespace csxa

#endif  // CSXA_COMMON_INTERNER_H_
