#ifndef CSXA_WORKLOAD_SCENARIOS_H_
#define CSXA_WORKLOAD_SCENARIOS_H_

/// \file scenarios.h
/// \brief Canonical demo scenarios: realistic rule sets and queries for the
/// three generated dataset profiles. Shared by examples, tests and benches
/// so the demonstration storyline of §3 is reproducible everywhere.

#include <string>
#include <vector>

#include "core/rule.h"
#include "xml/generator.h"

namespace csxa::workload {

/// \brief A named (subject, rules, sample queries) bundle over a profile.
struct Scenario {
  xml::DocProfile profile;
  std::string description;
  /// Rule text (core::RuleSet::ParseText format), covering 2+ subjects.
  std::string rules_text;
  /// Sample queries with a short label.
  std::vector<std::pair<std::string, std::string>> queries;
};

/// The collaborative-agenda scenario (demo application 1: pull, textual).
Scenario AgendaScenario();
/// The hospital / medical-exchange scenario (§1 motivating example).
Scenario HospitalScenario();
/// The rated-feed scenario (demo application 2: push; parental control).
Scenario NewsFeedScenario();
/// All three.
std::vector<Scenario> AllScenarios();

}  // namespace csxa::workload

#endif  // CSXA_WORKLOAD_SCENARIOS_H_
