#ifndef CSXA_WORKLOAD_SCENARIOS_H_
#define CSXA_WORKLOAD_SCENARIOS_H_

/// \file scenarios.h
/// \brief Forwarding header: the Scenario bundle and the canonical
/// catalog moved to the scenario-generator subsystem (scengen/scenario.h)
/// when the parameterized generator landed. Existing workload:: spellings
/// keep working; new code should include scengen directly.

#include "scengen/scenario.h"

namespace csxa::workload {

using Scenario = scengen::Scenario;
using scengen::AgendaScenario;
using scengen::AllScenarios;
using scengen::HospitalScenario;
using scengen::MakeScenarioDocument;
using scengen::NewsFeedScenario;

}  // namespace csxa::workload

#endif  // CSXA_WORKLOAD_SCENARIOS_H_
