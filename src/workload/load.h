#ifndef CSXA_WORKLOAD_LOAD_H_
#define CSXA_WORKLOAD_LOAD_H_

/// \file load.h
/// \brief Multi-tenant load harness: N concurrent terminal sessions
/// against a sharded, cached, asynchronously-dispatched DSP deployment.
///
/// This is ROADMAP item 1 made measurable. The harness assembles the full
/// serving stack — CachingClient over AsyncDispatcher over ShardedService
/// over N DspServers, one shared pki::KeyRegistry — publishes a pool of
/// scenario documents, then lets `sessions` OS threads replay mixed
/// traffic (authorized queries over the scenario rule sets, cheap policy
/// updates, full republishes) concurrently. Every layer below the
/// terminals is shared mutable state; the harness is both the throughput
/// experiment and, under ThreadSanitizer, the race detector for it.
///
/// Reported throughput divides completed operations by the *modeled*
/// server makespan (the busiest dispatcher lane's accumulated modeled
/// service time) — the same modeled-clock methodology as the card cost
/// model, so the numbers scale with worker count rather than with the CI
/// machine's core count. Per-operation modeled latency (p50/p99) comes
/// from the card session cost model for queries and the round-trip model
/// for writes; per-shard load imbalance comes from the router's request
/// counters.

#include <cstdint>
#include <vector>

#include "dsp/service.h"
#include "soe/card_profile.h"

namespace csxa::workload {

/// Knobs of one load run.
struct LoadOptions {
  /// Concurrent terminal sessions (client threads).
  size_t sessions = 16;
  /// Operations each session replays.
  size_t ops_per_session = 6;
  /// DspServer shards behind the router.
  size_t shards = 4;
  /// AsyncDispatcher worker lanes; 1 is the single-threaded baseline.
  size_t workers = 4;
  /// Shared scenario documents published at setup (round-robin over the
  /// agenda / hospital / news-feed scenarios).
  size_t documents = 6;
  /// Approximate element count of each generated document.
  size_t elements_per_doc = 200;
  /// Fraction of ops that are cheap policy updates (kUpdateRules).
  double update_fraction = 0.15;
  /// Fraction of ops that republish the session's own document.
  double publish_fraction = 0.10;
  uint64_t seed = 1;
  uint32_t max_prefetch = 8;
  size_t chunk_size = 256;
  /// Card hardware model used by every terminal.
  soe::CardProfile card = soe::CardProfile::EGate();
};

/// What one load run measured.
struct LoadReport {
  size_t sessions = 0;
  size_t workers = 0;
  size_t shards = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;
  uint64_t publishes = 0;
  uint64_t failures = 0;  ///< non-OK operations (0 on a correct stack)

  double wall_seconds = 0;  ///< host time (informational; core-count bound)
  /// Modeled server work: sum / busiest-lane of dispatcher lane clocks,
  /// measured over the run (setup excluded).
  double modeled_busy_seconds = 0;
  double modeled_makespan_seconds = 0;
  /// ops / modeled_makespan_seconds — the headline number.
  double throughput_ops_per_sec = 0;
  /// Modeled per-operation latency quantiles, milliseconds.
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;

  std::vector<uint64_t> shard_requests;  ///< per shard, this run
  double shard_imbalance = 0;            ///< max/mean of shard_requests
  std::vector<double> lane_busy_seconds; ///< per dispatcher lane, this run
  uint64_t failovers = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  dsp::ServiceStats backend;  ///< aggregate fleet stats, end of run
};

/// Runs one load experiment; deterministic given options.seed except for
/// wall_seconds and thread interleaving (which the modeled clocks hide).
LoadReport RunLoad(const LoadOptions& options);

}  // namespace csxa::workload

#endif  // CSXA_WORKLOAD_LOAD_H_
