#ifndef CSXA_WORKLOAD_LOAD_H_
#define CSXA_WORKLOAD_LOAD_H_

/// \file load.h
/// \brief Multi-tenant load harness: N concurrent terminal sessions
/// against a replicated, sharded, cached, asynchronously-dispatched DSP
/// deployment — optionally under a scripted fault schedule.
///
/// This is ROADMAP items 1 and 3 made measurable. The harness assembles
/// the full serving stack — RetryingClient over CachingClient over
/// AsyncDispatcher over ReplicatedService over `replicas` fault-injected
/// ShardedService fleets of DspServers, one shared pki::KeyRegistry —
/// publishes a pool of scenario documents, then lets `sessions` OS
/// threads replay mixed traffic (authorized queries over the scenario
/// rule sets, cheap policy updates, full republishes) concurrently. Every
/// layer below the terminals is shared mutable state; the harness is both
/// the throughput experiment and, under ThreadSanitizer, the race
/// detector for it.
///
/// With `faults.enabled`, replicas crash and partition mid-run on the
/// completed-operation clock and heal later; committed policy updates fan
/// out to the shared cache through the dissemination invalidation channel.
/// Heartbeats run on their own *modeled* cadence: every operation (and
/// every retry backoff) advances a shared modeled clock by its modeled
/// latency, and a heartbeat round fires each time the clock crosses the
/// configured interval — the failure detector ticks at a rate set by
/// simulated time, not by how often clients happen to be backing off. The
/// acceptance bar is in the counters: failures and stale_reads_served
/// stay zero while retries, reroutes, promotions and reintegrations
/// record the turbulence.
///
/// The shard fleet is either the in-memory DspServer (default) or the
/// durable encrypted block store (dsp/durable.h) on a hermetic in-RAM
/// filesystem — the same decorator stack, persisting every committed
/// write through the sealed block layer.
///
/// Reported throughput divides completed operations by the *modeled*
/// server makespan (the busiest dispatcher lane's accumulated modeled
/// service time) — the same modeled-clock methodology as the card cost
/// model, so the numbers scale with worker count rather than with the CI
/// machine's core count. Per-operation modeled latency (p50/p99) comes
/// from the card session cost model for queries and the round-trip model
/// for writes; per-shard load imbalance comes from the router's request
/// counters.

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/service.h"
#include "proxy/terminal.h"
#include "scengen/spec.h"
#include "soe/card_profile.h"

namespace csxa::workload {

/// Scripted mid-run fault schedule, on the completed-operation clock
/// (deterministic under any thread interleaving up to +-1 op).
struct FaultPlan {
  bool enabled = false;
  /// Replica crashed once this many client ops completed...
  size_t crash_replica = 1;
  uint64_t crash_at_op = 4;
  /// ...and healed (reintegrated via op-log catch-up) at this count.
  uint64_t crash_heal_at_op = 16;
  /// Replica partitioned away / healed, same clock. Skipped when the
  /// index is out of range (e.g. a 2-replica run).
  size_t partition_replica = 2;
  uint64_t partition_at_op = 10;
  uint64_t partition_heal_at_op = 22;
  /// Per-notification drop probability on the invalidation channel.
  double notify_drop_probability = 0;
  /// Per-request probability (each replica's injector) of an applied-but-
  /// lost-response timeout — the at-least-once hazard the retry edge and
  /// write quorum absorb.
  double timeout_probability = 0;
};

/// Which Service backend each shard runs.
enum class StoreBackend {
  kMemory,   ///< dsp::DspServer (volatile, the original harness)
  kDurable,  ///< dsp::DurableServer on a per-shard MemEnv
};

/// Knobs of one load run.
struct LoadOptions {
  /// Concurrent terminal sessions (client threads).
  size_t sessions = 16;
  /// Operations each session replays.
  size_t ops_per_session = 6;
  /// DspServer shards behind the router.
  size_t shards = 4;
  /// AsyncDispatcher worker lanes; 1 is the single-threaded baseline.
  size_t workers = 4;
  /// Shared scenario documents published at setup (round-robin over the
  /// agenda / hospital / news-feed scenarios).
  size_t documents = 6;
  /// Approximate element count of each generated document.
  size_t elements_per_doc = 200;
  /// Fraction of ops that are cheap policy updates (kUpdateRules).
  double update_fraction = 0.15;
  /// Fraction of ops that republish the session's own document.
  double publish_fraction = 0.10;
  uint64_t seed = 1;
  uint32_t max_prefetch = 8;
  /// Chunk fetch scheduling each terminal runs with. kPlanned exercises
  /// the learn-on-first-run plan cache: terminals persist per session, so
  /// repeated identical queries ride learned multi-span plans.
  proxy::FetchPolicy fetch_policy = proxy::FetchPolicy::kWindowed;
  size_t chunk_size = 256;
  /// Card hardware model used by every terminal.
  soe::CardProfile card = soe::CardProfile::EGate();

  /// Replica groups in the fabric: each replica is its own `shards`-wide
  /// DspServer fleet behind a fault injector. 1 is an unreplicated (but
  /// still fully decorated) stack.
  size_t replicas = 1;
  /// Replicas that must apply a write before it is acked; 0 = majority.
  size_t write_quorum = 0;
  /// Consecutive missed heartbeats before a replica is declared down.
  int suspect_after = 2;
  /// Modeled seconds between heartbeat rounds (failure-detector cadence).
  double heartbeat_interval_sec = 0.01;
  /// Shard backend (see StoreBackend).
  StoreBackend backend = StoreBackend::kMemory;
  /// Terminal-edge retry budget (total attempts; 1 disables retries).
  int retry_attempts = 4;
  /// Scripted crash/partition schedule (needs replicas > 1 to be useful).
  FaultPlan faults;

  /// Generated scenario to replay instead of the canonical agenda /
  /// hospital / news-feed round-robin. When set, the spec governs the
  /// scenario shape — `documents`, `elements_per_doc`, `update_fraction`
  /// and `publish_fraction` above are ignored in favor of the spec's
  /// fleet size, document shape and churn rates; policy updates and
  /// republishes walk the spec's RulesRevision chain (churning mobile
  /// subscribers in and out) instead of resealing a fixed rule text.
  /// Everything else (stack topology, card model, faults, seed for the
  /// op mix) still comes from the fields above.
  std::optional<scengen::ScenarioSpec> spec;
};

/// What one load run measured.
struct LoadReport {
  size_t sessions = 0;
  size_t workers = 0;
  size_t shards = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;
  uint64_t publishes = 0;
  uint64_t failures = 0;  ///< non-OK operations (0 on a correct stack)

  double wall_seconds = 0;  ///< host time (informational; core-count bound)
  /// Modeled server work: sum / busiest-lane of dispatcher lane clocks,
  /// measured over the run (setup excluded).
  double modeled_busy_seconds = 0;
  double modeled_makespan_seconds = 0;
  /// ops / modeled_makespan_seconds — the headline number.
  double throughput_ops_per_sec = 0;
  /// Modeled per-operation latency quantiles, milliseconds.
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;

  std::vector<uint64_t> shard_requests;  ///< per shard (replica 0), this run
  double shard_imbalance = 0;            ///< max/mean of shard_requests
  std::vector<double> lane_busy_seconds; ///< per dispatcher lane, this run
  uint64_t failovers = 0;  ///< layout failovers (replica 0's router)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  dsp::ServiceStats backend;  ///< primary replica's fleet stats, end of run

  // --- Replication / fault-tolerance counters (zero when quiet) ---
  size_t replicas = 0;
  uint64_t retries = 0;          ///< terminal-edge attempts beyond the first
  uint64_t retry_exhausted = 0;  ///< ops that ran out of retry budget
  double modeled_backoff_seconds = 0;  ///< total modeled retry backoff
  uint64_t replica_read_reroutes = 0;  ///< reads served by a non-first replica
  uint64_t primary_promotions = 0;
  uint64_t stale_reads_detected = 0;  ///< stale replies caught and bypassed
  uint64_t stale_reads_served = 0;    ///< MUST stay 0 — the invariant
  uint64_t quorum_failures = 0;
  uint64_t reintegrations = 0;
  uint64_t heartbeats = 0;
  uint64_t heartbeat_failures = 0;
  uint64_t faults_injected = 0;  ///< total over all replica injectors
  uint64_t notifications_delivered = 0;  ///< invalidation fan-out
  uint64_t notifications_dropped = 0;
  uint64_t fanout_invalidations = 0;  ///< cache entries dropped by push

  // --- Fetch-plan counters (kPlanned runs; zero otherwise) ---
  uint64_t plans_learned = 0;    ///< sessions that recorded a new plan
  uint64_t plan_trips = 0;       ///< multi-span planned fetches issued
  uint64_t plan_miss_trips = 0;  ///< fallback trips for plan misses
};

/// Runs one load experiment; deterministic given options.seed except for
/// wall_seconds and thread interleaving (which the modeled clocks hide).
LoadReport RunLoad(const LoadOptions& options);

}  // namespace csxa::workload

#endif  // CSXA_WORKLOAD_LOAD_H_
