#include "workload/load.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dsp/async.h"
#include "dsp/caching.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "workload/scenarios.h"
#include "xml/generator.h"

namespace csxa::workload {

namespace {

// One shared document's replay material: which scenario it instantiates,
// which subjects may open it, which queries make sense against it.
struct DocInfo {
  std::string doc_id;
  size_t scenario = 0;
  std::vector<std::string> subjects;
};

xml::DomDocument MakeDoc(const Scenario& scenario, size_t elements,
                         uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = scenario.profile;
  gp.target_elements = elements;
  gp.seed = seed;
  gp.text_avg_len = 32;
  return xml::GenerateDocument(gp);
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

LoadReport RunLoad(const LoadOptions& options) {
  LoadOptions opt = options;
  if (opt.sessions == 0) opt.sessions = 1;
  if (opt.shards == 0) opt.shards = 1;
  if (opt.documents == 0) opt.documents = 1;

  // --- The deployment under test -----------------------------------------
  std::vector<std::unique_ptr<dsp::DspServer>> stores;
  std::vector<dsp::Service*> shard_ptrs;
  for (size_t i = 0; i < opt.shards; ++i) {
    stores.push_back(std::make_unique<dsp::DspServer>());
    shard_ptrs.push_back(stores.back().get());
  }
  dsp::ShardedService sharded(shard_ptrs);
  dsp::AsyncDispatcher::Options dopt;
  dopt.workers = opt.workers;
  dsp::AsyncDispatcher dispatcher(&sharded, dopt);
  // ONE cache shared by every session: its locks are part of what the
  // harness stresses (and what cache hits make cheap).
  dsp::CachingClient cached(&dispatcher);
  pki::KeyRegistry registry;

  const std::vector<Scenario> scenarios = AllScenarios();

  // --- Setup: publish the shared pool + one owned doc per session --------
  // Each session gets its own Publisher (publishers are single-threaded by
  // contract); all of them push through the shared serving stack.
  std::vector<std::unique_ptr<proxy::Publisher>> publishers;
  for (size_t k = 0; k < opt.sessions; ++k) {
    publishers.push_back(
        std::make_unique<proxy::Publisher>(&cached, &registry, opt.seed + k));
  }
  proxy::Publisher setup_publisher(&cached, &registry, opt.seed + 7777);

  std::vector<DocInfo> shared_docs;
  for (size_t d = 0; d < opt.documents; ++d) {
    DocInfo info;
    info.scenario = d % scenarios.size();
    const Scenario& scn = scenarios[info.scenario];
    info.doc_id = "shared-" + std::to_string(d);
    info.subjects = core::RuleSet::ParseText(scn.rules_text).value().Subjects();
    auto receipt = setup_publisher.Publish(
        info.doc_id, MakeDoc(scn, opt.elements_per_doc, opt.seed + 100 + d),
        scn.rules_text, proxy::PublishOptions{.chunk_size = opt.chunk_size});
    if (!receipt.ok()) continue;  // counted nowhere: setup must succeed
    shared_docs.push_back(std::move(info));
  }

  struct OwnedDoc {
    DocInfo info;
    crypto::SymmetricKey key;
  };
  std::vector<OwnedDoc> owned(opt.sessions);
  for (size_t k = 0; k < opt.sessions; ++k) {
    OwnedDoc& own = owned[k];
    own.info.scenario = k % scenarios.size();
    const Scenario& scn = scenarios[own.info.scenario];
    own.info.doc_id = "own-" + std::to_string(k);
    own.info.subjects =
        core::RuleSet::ParseText(scn.rules_text).value().Subjects();
    auto receipt = publishers[k]->Publish(
        own.info.doc_id, MakeDoc(scn, opt.elements_per_doc, opt.seed + 500 + k),
        scn.rules_text, proxy::PublishOptions{.chunk_size = opt.chunk_size});
    if (receipt.ok()) own.key = receipt.value().key;
  }

  // Measure the run, not the setup: snapshot every monotone counter.
  const std::vector<double> lanes_before = dispatcher.lane_busy_seconds();
  const std::vector<uint64_t> shards_before = sharded.shard_requests();

  // --- The run: N concurrent terminal sessions ---------------------------
  struct SessionOutcome {
    uint64_t queries = 0, updates = 0, publishes = 0, failures = 0;
    std::vector<double> latencies_sec;
  };
  std::vector<SessionOutcome> outcomes(opt.sessions);

  auto session_body = [&](size_t k) {
    SessionOutcome& out = outcomes[k];
    Rng rng(opt.seed * 9176 + k);
    OwnedDoc& own = owned[k];
    const double write_latency = opt.card.round_trip_latency_sec;

    auto run_query = [&](const DocInfo& doc) {
      const Scenario& scn = scenarios[doc.scenario];
      const std::string& subject =
          doc.subjects[rng.Uniform(doc.subjects.size())];
      const auto& q = scn.queries[rng.Uniform(scn.queries.size())];
      proxy::Terminal terminal(subject, opt.card, &cached, &registry);
      if (!terminal.Provision(doc.doc_id).ok()) {
        ++out.failures;
        return;
      }
      proxy::QueryOptions qopt;
      qopt.query = q.second;
      qopt.max_prefetch = opt.max_prefetch;
      auto result = terminal.Query(doc.doc_id, qopt);
      ++out.queries;
      if (!result.ok()) {
        ++out.failures;
        return;
      }
      out.latencies_sec.push_back(result.value().card.total_seconds);
    };

    for (size_t i = 0; i < opt.ops_per_session; ++i) {
      const double dice = rng.NextDouble();
      if (dice < opt.publish_fraction) {
        // Full republish of the session's own document: fresh key, fresh
        // container, version bumped past every cached copy.
        const Scenario& scn = scenarios[own.info.scenario];
        auto receipt = publishers[k]->Publish(
            own.info.doc_id,
            MakeDoc(scn, opt.elements_per_doc, opt.seed + 900 + i * 31 + k),
            scn.rules_text, proxy::PublishOptions{.chunk_size = opt.chunk_size});
        ++out.publishes;
        if (receipt.ok()) {
          own.key = receipt.value().key;
          out.latencies_sec.push_back(write_latency);
        } else {
          ++out.failures;
        }
      } else if (dice < opt.publish_fraction + opt.update_fraction) {
        // The paper's cheap dynamic policy update: reseal rules, bump the
        // version — every cache holding this doc revalidates.
        const Scenario& scn = scenarios[own.info.scenario];
        auto updated = publishers[k]->UpdateRules(own.info.doc_id, own.key,
                                                  scn.rules_text);
        ++out.updates;
        if (updated.ok()) {
          out.latencies_sec.push_back(write_latency);
        } else {
          ++out.failures;
        }
      } else if (!shared_docs.empty() && rng.NextDouble() < 0.8) {
        run_query(shared_docs[rng.Uniform(shared_docs.size())]);
      } else {
        run_query(own.info);  // read-your-own-writes path
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.sessions);
  for (size_t k = 0; k < opt.sessions; ++k) {
    threads.emplace_back(session_body, k);
  }
  for (std::thread& t : threads) t.join();
  const auto wall_end = std::chrono::steady_clock::now();

  // --- The report ---------------------------------------------------------
  LoadReport report;
  report.sessions = opt.sessions;
  report.workers = dispatcher.worker_count();
  report.shards = opt.shards;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  std::vector<double> latencies;
  for (const SessionOutcome& out : outcomes) {
    report.queries += out.queries;
    report.updates += out.updates;
    report.publishes += out.publishes;
    report.failures += out.failures;
    latencies.insert(latencies.end(), out.latencies_sec.begin(),
                     out.latencies_sec.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_ms = Quantile(latencies, 0.50) * 1e3;
  report.p99_latency_ms = Quantile(latencies, 0.99) * 1e3;

  const std::vector<double> lanes_after = dispatcher.lane_busy_seconds();
  for (size_t i = 0; i < lanes_after.size(); ++i) {
    const double busy = lanes_after[i] - lanes_before[i];
    report.lane_busy_seconds.push_back(busy);
    report.modeled_busy_seconds += busy;
    report.modeled_makespan_seconds =
        std::max(report.modeled_makespan_seconds, busy);
  }
  const uint64_t total_ops =
      report.queries + report.updates + report.publishes;
  if (report.modeled_makespan_seconds > 0) {
    report.throughput_ops_per_sec =
        static_cast<double>(total_ops) / report.modeled_makespan_seconds;
  }

  const std::vector<uint64_t> shards_after = sharded.shard_requests();
  uint64_t shard_total = 0, shard_max = 0;
  for (size_t i = 0; i < shards_after.size(); ++i) {
    const uint64_t n = shards_after[i] - shards_before[i];
    report.shard_requests.push_back(n);
    shard_total += n;
    shard_max = std::max(shard_max, n);
  }
  if (shard_total > 0) {
    report.shard_imbalance =
        static_cast<double>(shard_max) * static_cast<double>(opt.shards) /
        static_cast<double>(shard_total);
  }
  report.failovers = sharded.failovers();
  report.cache_hits = cached.hits();
  report.cache_misses = cached.misses();
  report.cache_invalidations = cached.invalidations();
  report.backend = sharded.stats();
  return report;
}

}  // namespace csxa::workload
