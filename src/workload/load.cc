#include "workload/load.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dissem/invalidation.h"
#include "dsp/async.h"
#include "dsp/blockfile.h"
#include "dsp/caching.h"
#include "dsp/durable.h"
#include "dsp/fault.h"
#include "dsp/replicated.h"
#include "dsp/retrying.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "scengen/publish.h"
#include "scengen/spec.h"
#include "workload/scenarios.h"
#include "xml/generator.h"

namespace csxa::workload {

namespace {

// One shared document's replay material: which query set applies to it
// and which subjects may open it. `scenario` indexes the run's query
// catalog — per canonical scenario on the classic path, a single shared
// entry on the spec path.
struct DocInfo {
  std::string doc_id;
  size_t scenario = 0;
  std::vector<std::string> subjects;
};

xml::DomDocument MakeDoc(const Scenario& scenario, size_t elements,
                         uint64_t seed) {
  // text_avg_len 32 is the harness's historical document shape; keep it so
  // classic runs stay byte-identical across releases.
  return scengen::MakeScenarioDocument(scenario, elements, seed, 32);
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

LoadReport RunLoad(const LoadOptions& options) {
  LoadOptions opt = options;
  if (opt.sessions == 0) opt.sessions = 1;
  if (opt.shards == 0) opt.shards = 1;
  if (opt.documents == 0) opt.documents = 1;
  if (opt.replicas == 0) opt.replicas = 1;

  // A generated scenario governs the workload shape: fleet size, document
  // shape and churn rates come from the spec, not the legacy knobs.
  const bool has_spec = opt.spec.has_value();
  scengen::GeneratedScenario gen;
  if (has_spec) {
    gen = scengen::BuildScenario(*opt.spec);
    opt.documents = gen.docs.size();
    opt.update_fraction = gen.spec.churn.update_fraction;
    opt.publish_fraction = gen.spec.churn.publish_fraction;
  }

  // --- The deployment under test -----------------------------------------
  // Per replica: a `shards`-wide DspServer fleet behind one router, wrapped
  // in a fault injector (idle unless the plan scripts otherwise). The
  // replica group runs above the routers; the dispatcher, cache and retry
  // edge stack above the group.
  std::vector<std::unique_ptr<dsp::Service>> stores;
  std::vector<std::unique_ptr<dsp::MemEnv>> envs;  // durable backend disks
  std::vector<std::unique_ptr<dsp::ShardedService>> routers;
  std::vector<std::unique_ptr<dsp::FaultInjectingService>> injectors;
  std::vector<dsp::Service*> replica_ptrs;
  for (size_t r = 0; r < opt.replicas; ++r) {
    std::vector<dsp::Service*> shard_ptrs;
    for (size_t i = 0; i < opt.shards; ++i) {
      if (opt.backend == StoreBackend::kDurable) {
        // Each shard of each replica is its own durable store on its own
        // hermetic in-RAM disk — the full sealed-block write path under
        // the full decorated stack.
        envs.push_back(std::make_unique<dsp::MemEnv>());
        dsp::DurableOptions dur;
        dur.directory = "store";
        dur.store_id =
            "load-r" + std::to_string(r) + "-s" + std::to_string(i);
        Rng key_rng(opt.seed * 63 + r * 17 + i);
        dur.key = crypto::SymmetricKey::Generate(&key_rng);
        dur.env = envs.back().get();
        stores.push_back(std::move(dsp::DurableServer::Open(dur)).value());
      } else {
        stores.push_back(std::make_unique<dsp::DspServer>());
      }
      shard_ptrs.push_back(stores.back().get());
    }
    routers.push_back(std::make_unique<dsp::ShardedService>(shard_ptrs));
    dsp::FaultOptions fopt;
    fopt.seed = opt.seed * 131 + r;
    if (opt.faults.enabled) {
      fopt.timeout_probability = opt.faults.timeout_probability;
    }
    injectors.push_back(std::make_unique<dsp::FaultInjectingService>(
        routers.back().get(), fopt));
    replica_ptrs.push_back(injectors.back().get());
  }
  dsp::ReplicationOptions ropt;
  ropt.write_quorum = opt.write_quorum;
  ropt.suspect_after = opt.suspect_after;
  dsp::ReplicatedService replicated(replica_ptrs, ropt);

  // Policy-update push channel: committed writes fan out to the shared
  // cache (best-effort; the pull path self-heals what this drops).
  dissem::FanoutOptions fanopt;
  fanopt.drop_probability = opt.faults.notify_drop_probability;
  fanopt.seed = opt.seed * 977 + 5;
  dissem::InvalidationFanout fanout(fanopt);
  replicated.set_on_write_committed(
      [&fanout](const std::string& doc_id, uint64_t rules_version) {
        fanout.Publish(doc_id, rules_version);
      });

  dsp::AsyncDispatcher::Options dopt;
  dopt.workers = opt.workers;
  dsp::AsyncDispatcher dispatcher(&replicated, dopt);
  // ONE cache shared by every session: its locks are part of what the
  // harness stresses (and what cache hits make cheap).
  dsp::CachingClient cached(&dispatcher);
  fanout.Subscribe([&cached](const std::string& doc_id, uint64_t version) {
    cached.Invalidate(doc_id, version);
  });
  dsp::RetryOptions retopt;
  retopt.max_attempts = opt.retry_attempts;
  dsp::RetryingClient retrying(&cached, retopt);

  // The failure detector runs on its own modeled cadence: every completed
  // operation and every retry backoff advances this shared modeled clock
  // by its modeled latency, and whichever session crosses the next
  // heartbeat deadline fires exactly one round (the CAS coalesces
  // concurrent crossings — a single long operation advancing the clock by
  // many intervals still pays one tick, like a sleepy monitor catching
  // up). Heartbeats go straight to the replica group (not through the
  // dispatcher), so lane clocks measure serving work only.
  std::atomic<uint64_t> modeled_now_us{0};
  const uint64_t heartbeat_interval_us = static_cast<uint64_t>(
      std::max(opt.heartbeat_interval_sec, 1e-6) * 1e6);
  std::atomic<uint64_t> heartbeat_due_us{heartbeat_interval_us};
  auto advance_modeled_clock = [&](double seconds) {
    if (seconds <= 0) return;
    const uint64_t us = static_cast<uint64_t>(seconds * 1e6);
    const uint64_t now =
        modeled_now_us.fetch_add(us, std::memory_order_relaxed) + us;
    uint64_t due = heartbeat_due_us.load(std::memory_order_relaxed);
    if (now >= due && heartbeat_due_us.compare_exchange_strong(
                          due, now + heartbeat_interval_us,
                          std::memory_order_relaxed)) {
      replicated.HeartbeatTick();
    }
  };
  retrying.set_on_backoff([&advance_modeled_clock](int, double backoff_sec) {
    advance_modeled_clock(backoff_sec);
  });
  pki::KeyRegistry registry;

  const std::vector<Scenario> scenarios = AllScenarios();

  // Query catalog, indexed by DocInfo::scenario. Classic runs keep one
  // entry per canonical scenario; a generated scenario shares one query
  // mix fleet-wide.
  std::vector<std::vector<std::pair<std::string, std::string>>> query_sets;
  if (has_spec) {
    query_sets.push_back(gen.queries);
  } else {
    for (const Scenario& scn : scenarios) query_sets.push_back(scn.queries);
  }
  const proxy::PublishOptions publish_options{.chunk_size = opt.chunk_size};

  // --- Setup: publish the shared pool + one owned doc per session --------
  // Each session gets its own Publisher (publishers are single-threaded by
  // contract); all of them push through the shared serving stack.
  std::vector<std::unique_ptr<proxy::Publisher>> publishers;
  for (size_t k = 0; k < opt.sessions; ++k) {
    publishers.push_back(
        std::make_unique<proxy::Publisher>(&retrying, &registry, opt.seed + k));
  }
  proxy::Publisher setup_publisher(&retrying, &registry, opt.seed + 7777);

  std::vector<DocInfo> shared_docs;
  if (has_spec) {
    for (const scengen::ScenarioDoc& doc : gen.docs) {
      auto pub = scengen::PublishGeneratedDoc(&setup_publisher, gen, doc,
                                              publish_options);
      if (!pub.ok()) continue;  // counted nowhere: setup must succeed
      DocInfo info;
      info.doc_id = pub.value().doc_id;
      info.scenario = 0;  // the fleet-wide query mix
      info.subjects = std::move(pub.value().subjects);
      shared_docs.push_back(std::move(info));
    }
  } else {
    for (size_t d = 0; d < opt.documents; ++d) {
      DocInfo info;
      info.scenario = d % scenarios.size();
      const Scenario& scn = scenarios[info.scenario];
      info.doc_id = "shared-" + std::to_string(d);
      info.subjects =
          core::RuleSet::ParseText(scn.rules_text).value().Subjects();
      auto receipt = setup_publisher.Publish(
          info.doc_id, MakeDoc(scn, opt.elements_per_doc, opt.seed + 100 + d),
          scn.rules_text, publish_options);
      if (!receipt.ok()) continue;  // counted nowhere: setup must succeed
      shared_docs.push_back(std::move(info));
    }
  }

  struct OwnedDoc {
    DocInfo info;
    crypto::SymmetricKey key;
    /// Spec path: the document's index in the generated scenario and its
    /// current content/policy revision (republishes and updates advance it).
    size_t gen_index = 0;
    uint64_t revision = 0;
  };
  std::vector<OwnedDoc> owned(opt.sessions);
  for (size_t k = 0; k < opt.sessions; ++k) {
    OwnedDoc& own = owned[k];
    if (has_spec) {
      // Session-owned documents extend the fleet: indexes past the shared
      // pool, same spec-governed shape, same deterministic minting.
      own.gen_index = gen.spec.documents + k;
      scengen::ScenarioDoc doc = gen.MakeDoc(own.gen_index);
      own.info.doc_id = doc.doc_id;
      own.info.scenario = 0;
      own.info.subjects = doc.subjects;
      auto pub = scengen::PublishGeneratedDoc(publishers[k].get(), gen, doc,
                                              publish_options);
      if (pub.ok()) own.key = pub.value().key;
      continue;
    }
    own.info.scenario = k % scenarios.size();
    const Scenario& scn = scenarios[own.info.scenario];
    own.info.doc_id = "own-" + std::to_string(k);
    own.info.subjects =
        core::RuleSet::ParseText(scn.rules_text).value().Subjects();
    auto receipt = publishers[k]->Publish(
        own.info.doc_id, MakeDoc(scn, opt.elements_per_doc, opt.seed + 500 + k),
        scn.rules_text, publish_options);
    if (receipt.ok()) own.key = receipt.value().key;
  }

  // Measure the run, not the setup: snapshot every monotone counter.
  const std::vector<double> lanes_before = dispatcher.lane_busy_seconds();
  const std::vector<uint64_t> shards_before = routers[0]->shard_requests();

  // --- The scripted fault schedule ----------------------------------------
  // Driven by the completed-operation clock: whichever session crosses a
  // threshold first applies the transition, exactly once. Healing pumps a
  // heartbeat round so the recovered replica reintegrates promptly.
  std::atomic<uint64_t> completed_ops{0};
  std::atomic<bool> crash_applied{false}, crash_healed{false};
  std::atomic<bool> partition_applied{false}, partition_healed{false};
  const FaultPlan& plan = opt.faults;
  const bool crash_active = plan.enabled && plan.crash_replica < opt.replicas;
  const bool partition_active =
      plan.enabled && plan.partition_replica < opt.replicas;
  auto advance_faults = [&](uint64_t done) {
    if (!plan.enabled) return;
    bool expected = false;
    if (crash_active && done >= plan.crash_at_op &&
        crash_applied.compare_exchange_strong(expected, true)) {
      injectors[plan.crash_replica]->set_crashed(true);
    }
    expected = false;
    if (crash_active && done >= plan.crash_heal_at_op &&
        crash_healed.compare_exchange_strong(expected, true)) {
      injectors[plan.crash_replica]->set_crashed(false);
      replicated.HeartbeatTick();
    }
    expected = false;
    if (partition_active && done >= plan.partition_at_op &&
        partition_applied.compare_exchange_strong(expected, true)) {
      injectors[plan.partition_replica]->set_partitioned(true);
    }
    expected = false;
    if (partition_active && done >= plan.partition_heal_at_op &&
        partition_healed.compare_exchange_strong(expected, true)) {
      injectors[plan.partition_replica]->set_partitioned(false);
      replicated.HeartbeatTick();
    }
  };

  // --- The run: N concurrent terminal sessions ---------------------------
  struct SessionOutcome {
    uint64_t queries = 0, updates = 0, publishes = 0, failures = 0;
    uint64_t plans_learned = 0, plan_trips = 0, plan_miss_trips = 0;
    std::vector<double> latencies_sec;
  };
  std::vector<SessionOutcome> outcomes(opt.sessions);

  auto session_body = [&](size_t k) {
    SessionOutcome& out = outcomes[k];
    Rng rng(opt.seed * 9176 + k);
    OwnedDoc& own = owned[k];
    const double write_latency = opt.card.round_trip_latency_sec;

    // Terminals persist for the whole session, one per card holder the
    // session impersonates: the plan cache (and under kPlanned, the
    // learn-once-ride-many payoff) lives inside the Terminal, so repeated
    // identical queries must hit the same instance.
    std::map<std::string, proxy::Terminal> terminals;

    auto run_query = [&](const DocInfo& doc) {
      const auto& queries = query_sets[doc.scenario];
      const std::string& subject =
          doc.subjects[rng.Uniform(doc.subjects.size())];
      const auto& q = queries[rng.Uniform(queries.size())];
      proxy::Terminal& terminal =
          terminals
              .try_emplace(subject, subject, opt.card, &retrying, &registry)
              .first->second;
      if (!terminal.Provision(doc.doc_id).ok()) {
        ++out.failures;
        return;
      }
      proxy::QueryOptions qopt;
      qopt.query = q.second;
      qopt.max_prefetch = opt.max_prefetch;
      qopt.fetch_policy = opt.fetch_policy;
      auto result = terminal.Query(doc.doc_id, qopt);
      ++out.queries;
      if (!result.ok()) {
        ++out.failures;
        return;
      }
      if (result.value().plan_learned) ++out.plans_learned;
      out.plan_trips += result.value().plan_trips;
      out.plan_miss_trips += result.value().plan_miss_trips;
      out.latencies_sec.push_back(result.value().card.total_seconds);
      advance_modeled_clock(result.value().card.total_seconds);
    };

    for (size_t i = 0; i < opt.ops_per_session; ++i) {
      const double dice = rng.NextDouble();
      if (dice < opt.publish_fraction) {
        // Full republish of the session's own document: fresh key, fresh
        // container, version bumped past every cached copy. On the spec
        // path both the body and the policy advance one revision —
        // republishing is how a generated scenario's documents age.
        bool ok;
        if (has_spec) {
          ++own.revision;
          scengen::ScenarioDoc doc =
              gen.MakeDoc(own.gen_index, own.revision);
          doc.rules_text = gen.RulesRevision(own.gen_index, own.revision);
          auto pub = scengen::PublishGeneratedDoc(publishers[k].get(), gen,
                                                  doc, publish_options);
          ok = pub.ok();
          if (ok) own.key = pub.value().key;
        } else {
          const Scenario& scn = scenarios[own.info.scenario];
          auto receipt = publishers[k]->Publish(
              own.info.doc_id,
              MakeDoc(scn, opt.elements_per_doc, opt.seed + 900 + i * 31 + k),
              scn.rules_text, publish_options);
          ok = receipt.ok();
          if (ok) own.key = receipt.value().key;
        }
        ++out.publishes;
        if (ok) {
          out.latencies_sec.push_back(write_latency);
        } else {
          ++out.failures;
        }
        advance_modeled_clock(write_latency);
      } else if (dice < opt.publish_fraction + opt.update_fraction) {
        // The paper's cheap dynamic policy update: reseal rules, bump the
        // version — every cache holding this doc revalidates. On the spec
        // path each update is the next RulesRevision: stable subjects keep
        // access with fresh rule bodies while the mobile-subscriber window
        // slides (newly granted subjects receive the key; churned-out ones
        // keep a key the next republish rotates away).
        const std::string& rules_text =
            has_spec ? gen.RulesRevision(own.gen_index, ++own.revision)
                     : scenarios[own.info.scenario].rules_text;
        auto updated =
            publishers[k]->UpdateRules(own.info.doc_id, own.key, rules_text);
        ++out.updates;
        if (updated.ok()) {
          out.latencies_sec.push_back(write_latency);
        } else {
          ++out.failures;
        }
        advance_modeled_clock(write_latency);
      } else if (!shared_docs.empty() && rng.NextDouble() < 0.8) {
        run_query(shared_docs[rng.Uniform(shared_docs.size())]);
      } else {
        run_query(own.info);  // read-your-own-writes path
      }
      advance_faults(completed_ops.fetch_add(1, std::memory_order_relaxed) +
                     1);
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.sessions);
  for (size_t k = 0; k < opt.sessions; ++k) {
    threads.emplace_back(session_body, k);
  }
  for (std::thread& t : threads) t.join();

  // End healed: clear any fault the schedule never got around to lifting
  // and reintegrate, so the report shows the group's steady end state.
  if (plan.enabled) {
    for (auto& injector : injectors) {
      injector->set_crashed(false);
      injector->set_partitioned(false);
    }
    replicated.HeartbeatTick();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  // --- The report ---------------------------------------------------------
  LoadReport report;
  report.sessions = opt.sessions;
  report.workers = dispatcher.worker_count();
  report.shards = opt.shards;
  report.replicas = opt.replicas;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  std::vector<double> latencies;
  for (const SessionOutcome& out : outcomes) {
    report.queries += out.queries;
    report.updates += out.updates;
    report.publishes += out.publishes;
    report.failures += out.failures;
    report.plans_learned += out.plans_learned;
    report.plan_trips += out.plan_trips;
    report.plan_miss_trips += out.plan_miss_trips;
    latencies.insert(latencies.end(), out.latencies_sec.begin(),
                     out.latencies_sec.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_ms = Quantile(latencies, 0.50) * 1e3;
  report.p99_latency_ms = Quantile(latencies, 0.99) * 1e3;

  const std::vector<double> lanes_after = dispatcher.lane_busy_seconds();
  for (size_t i = 0; i < lanes_after.size(); ++i) {
    const double busy = lanes_after[i] - lanes_before[i];
    report.lane_busy_seconds.push_back(busy);
    report.modeled_busy_seconds += busy;
    report.modeled_makespan_seconds =
        std::max(report.modeled_makespan_seconds, busy);
  }
  const uint64_t total_ops =
      report.queries + report.updates + report.publishes;
  if (report.modeled_makespan_seconds > 0) {
    report.throughput_ops_per_sec =
        static_cast<double>(total_ops) / report.modeled_makespan_seconds;
  }

  const std::vector<uint64_t> shards_after = routers[0]->shard_requests();
  uint64_t shard_total = 0, shard_max = 0;
  for (size_t i = 0; i < shards_after.size(); ++i) {
    const uint64_t n = shards_after[i] - shards_before[i];
    report.shard_requests.push_back(n);
    shard_total += n;
    shard_max = std::max(shard_max, n);
  }
  if (shard_total > 0) {
    report.shard_imbalance =
        static_cast<double>(shard_max) * static_cast<double>(opt.shards) /
        static_cast<double>(shard_total);
  }
  report.failovers = routers[0]->failovers();
  report.cache_hits = cached.hits();
  report.cache_misses = cached.misses();
  report.cache_invalidations = cached.invalidations();
  report.backend = replicated.stats();

  report.retries = retrying.retries();
  report.retry_exhausted = retrying.exhausted();
  report.modeled_backoff_seconds = retrying.modeled_backoff_seconds();
  const dsp::ReplicationStats rstats = replicated.replication_stats();
  report.replica_read_reroutes = rstats.read_reroutes;
  report.primary_promotions = rstats.primary_promotions;
  report.stale_reads_detected = rstats.stale_reads_detected;
  report.stale_reads_served = rstats.stale_reads_served;
  report.quorum_failures = rstats.quorum_failures;
  report.reintegrations = rstats.reintegrations;
  report.heartbeats = rstats.heartbeats;
  report.heartbeat_failures = rstats.heartbeat_failures;
  for (const auto& injector : injectors) {
    report.faults_injected += injector->faults_injected();
  }
  report.notifications_delivered = fanout.delivered();
  report.notifications_dropped = fanout.dropped();
  report.fanout_invalidations = cached.fanout_invalidations();
  return report;
}

}  // namespace csxa::workload
