#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"

namespace csxa::core {

using xml::AttrView;
using xml::Event;
using xml::EventType;
using xml::EventView;

namespace {

// Cap on recycled level vectors / snapshots / pipeline slots; beyond this
// the pools stop growing and retired storage is simply freed.
constexpr size_t kMaxPooled = 64;

// Copies borrowed attribute views into an owning vector, reusing the
// existing elements' string capacity (steady state: no allocation).
void AssignAttrs(std::vector<xml::Attribute>* dst, const AttrView* attrs,
                 size_t n) {
  if (dst->size() > n) dst->resize(n);
  for (size_t i = 0; i < dst->size(); ++i) {
    (*dst)[i].name.assign(attrs[i].name);
    (*dst)[i].value.assign(attrs[i].value);
  }
  for (size_t i = dst->size(); i < n; ++i) {
    dst->push_back(xml::Attribute{std::string(attrs[i].name),
                                  std::string(attrs[i].value)});
  }
}

}  // namespace

size_t StreamingEvaluator::Snapshot::ModeledBytes() const {
  size_t n = 0;
  for (const SnapCand& c : auth) n += 3 + (c.deps_end - c.deps_begin);
  for (const SnapCand& c : query) n += 3 + (c.deps_end - c.deps_begin);
  return n;
}

Result<std::unique_ptr<StreamingEvaluator>> StreamingEvaluator::Create(
    const std::vector<AccessRule>& rules, const xpath::PathExpr* query,
    xml::EventSink* out) {
  auto ev = std::unique_ptr<StreamingEvaluator>(new StreamingEvaluator());
  ev->out_ = out;
  for (const AccessRule& r : rules) {
    CSXA_ASSIGN_OR_RETURN(
        CompiledRule cr, CompileExpr(r.object, r.sign == Sign::kPermit));
    ev->compiled_rules_.push_back(std::move(cr));
  }
  if (query != nullptr) {
    CSXA_ASSIGN_OR_RETURN(CompiledRule cq, CompileExpr(*query, true));
    ev->compiled_query_ = std::make_unique<CompiledRule>(std::move(cq));
  }

  // Intern the rule alphabet: every tag named by a navigational or
  // predicate state, across rules and query.
  auto intern_path = [&ev](CompiledPath* path) {
    for (CompiledPath::State& st : path->states) {
      if (!st.wildcard && !st.tag.empty()) {
        st.tag_id = ev->rule_tags_.Intern(st.tag);
      }
    }
  };
  for (CompiledRule& cr : ev->compiled_rules_) {
    intern_path(&cr.nav);
    for (CompiledPath& p : cr.predicates) intern_path(&p);
  }
  if (ev->compiled_query_) {
    intern_path(&ev->compiled_query_->nav);
    for (CompiledPath& p : ev->compiled_query_->predicates) intern_path(&p);
  }

  // Build the combined transition index: per slot the static self-loop /
  // wildcard masks, plus a dense (TagId × slot) table of literal-edge
  // state masks. Slot = rule index; the query takes the last slot.
  ev->num_slots_ =
      ev->compiled_rules_.size() + (ev->compiled_query_ ? 1 : 0);
  ev->rule_static_.resize(ev->num_slots_);
  ev->edge_masks_.assign(ev->rule_tags_.size() * ev->num_slots_, 0);
  auto index_slot = [&ev](size_t slot, const CompiledPath& nav) {
    RuleStatic& rs = ev->rule_static_[slot];
    if (nav.states.size() > 64) {
      rs.oversize = true;
      return;
    }
    for (size_t s = 0; s + 1 < nav.states.size(); ++s) {
      const CompiledPath::State& st = nav.states[s];
      uint64_t bit = uint64_t{1} << s;
      if (st.self_loop) rs.self_loop_mask |= bit;
      if (st.wildcard) {
        rs.wildcard_edge_mask |= bit;
      } else if (st.tag_id != kNoTagId) {
        ev->edge_masks_[st.tag_id * ev->num_slots_ + slot] |= bit;
      }
    }
    // A self-loop on the final state would keep tokens alive; final states
    // never carry one (chain compilation), but account for safety.
    if (nav.states.back().self_loop && nav.states.size() <= 64) {
      rs.self_loop_mask |= uint64_t{1} << (nav.states.size() - 1);
    }
  };

  // Wire the runs after all compilations (stable pointers).
  auto init_run = [](NavRun* run, const CompiledRule* rule) {
    run->rule = rule;
    run->positive = rule->positive;
    run->tokens.push_back({Token{0, {}}});
    run->cands.push_back({});
    run->live_masks.push_back(1);
    run->level_token_units.push_back(2);  // one token, no deps
    run->level_cand_units.push_back(0);
    run->level_repeats.push_back(0);
  };
  for (size_t i = 0; i < ev->compiled_rules_.size(); ++i) {
    CompiledRule& cr = ev->compiled_rules_[i];
    NavRun run;
    init_run(&run, &cr);
    ev->runs_.push_back(std::move(run));
    index_slot(i, cr.nav);
    ev->run_modeled_units_ += 2;
  }
  if (ev->compiled_query_) {
    auto qr = std::make_unique<NavRun>();
    init_run(qr.get(), ev->compiled_query_.get());
    ev->query_run_ = std::move(qr);
    index_slot(ev->num_slots_ - 1, ev->compiled_query_->nav);
    ev->run_modeled_units_ += 2;
  }
  return ev;
}

void StreamingEvaluator::BindDocumentTags(const Interner& doc_tags) {
  doc_to_rule_.resize(doc_tags.size());
  for (TagId i = 0; i < doc_tags.size(); ++i) {
    doc_to_rule_[i] = rule_tags_.Lookup(doc_tags.Name(i));
  }
}

TagId StreamingEvaluator::ResolveTag(const xml::EventView& event) const {
  if (event.tag_id != kNoTagId && event.tag_id < doc_to_rule_.size()) {
    return doc_to_rule_[event.tag_id];
  }
  return rule_tags_.Lookup(event.name);
}

void StreamingEvaluator::AdvanceNav(NavRun* run, size_t slot, TagId tag) {
  if (run->dormant > 0) {
    // Empty stays empty deeper down; O(1) until the depth closes.
    ++run->dormant;
    return;
  }
  const CompiledPath& nav = run->rule->nav;
  const std::vector<Token>& top = run->tokens.back();
  const RuleStatic& rs = rule_static_[slot];
  if (!rs.oversize) {
    uint64_t live = run->live_masks.back();
    uint64_t advancing =
        live & (rs.wildcard_edge_mask | EdgeMask(slot, tag));
    if (advancing == 0) {
      uint64_t kept = live & rs.self_loop_mask;
      if (kept == 0) {
        // No live transition on this tag: the next level is provably empty.
        stats_.nfa_transitions += top.size();
        ++run->dormant;
        return;
      }
      if (kept == live) {
        // Every token survives via its self-loop and nothing advances:
        // the next level is identical to the top one — just note a repeat.
        stats_.nfa_transitions += top.size();
        run_modeled_units_ += run->level_token_units.back();
        ++run->level_repeats.back();
        return;
      }
      // Partial survival: fall through to the token loop.
    }
  }

  std::vector<Token> next;
  if (!token_level_pool_.empty()) {
    next = std::move(token_level_pool_.back());
    token_level_pool_.pop_back();
  }
  std::vector<Candidate> new_cands;
  if (!cand_level_pool_.empty()) {
    new_cands = std::move(cand_level_pool_.back());
    cand_level_pool_.pop_back();
  }
  uint64_t next_mask = 0;
  uint32_t next_token_units = 0;
  uint32_t next_cand_units = 0;
  // One obligation per (predicate, node) even if several tokens enter the
  // predicated state at this node.
  const bool has_preds = !run->rule->predicates.empty();
  if (has_preds) pred_scratch_.assign(run->rule->predicates.size(), -1);

  for (const Token& t : top) {
    const CompiledPath::State& st = nav.states[static_cast<size_t>(t.state)];
    ++stats_.nfa_transitions;
    if (st.self_loop) {
      next.push_back(t);
      if (t.state < 64) next_mask |= uint64_t{1} << t.state;
      next_token_units += static_cast<uint32_t>(2 + t.deps.size());
    }
    if (t.state + 1 <= nav.final_state &&
        (st.wildcard || (tag != kNoTagId && st.tag_id == tag))) {
      Token nt;
      nt.state = t.state + 1;
      nt.deps = t.deps;
      for (int pid : nav.states[static_cast<size_t>(nt.state)].pred_ids) {
        int& cached = pred_scratch_[static_cast<size_t>(pid)];
        if (cached < 0) {
          cached = obligations_.Create(
              &run->rule->predicates[static_cast<size_t>(pid)], depth_);
          ++stats_.obligations_created;
        }
        nt.deps.push_back(cached);
      }
      if (nt.state == nav.final_state) {
        Candidate c;
        c.depth = depth_;
        c.deps = nt.deps;
        if (!c.deps.empty()) ++run->dep_cand_count;
        new_cands.push_back(std::move(c));
        next_cand_units += static_cast<uint32_t>(3 + nt.deps.size());
        ++run->cand_count;
        ++stats_.candidates_created;
      }
      // Dedupe identical tokens.
      bool dup = false;
      for (const Token& e : next) {
        if (e.state == nt.state && e.deps == nt.deps) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        if (nt.state < 64) next_mask |= uint64_t{1} << nt.state;
        next_token_units += static_cast<uint32_t>(2 + nt.deps.size());
        next.push_back(std::move(nt));
      }
    }
  }
  if (next.empty()) {
    // Oversize fallback only: the mask test already proved this otherwise.
    if (token_level_pool_.size() < kMaxPooled) {
      token_level_pool_.push_back(std::move(next));
    }
    if (cand_level_pool_.size() < kMaxPooled) {
      cand_level_pool_.push_back(std::move(new_cands));
    }
    ++run->dormant;
    return;
  }
  if (!new_cands.empty()) run->cand_level_depths.push_back(depth_);
  run->tokens.push_back(std::move(next));
  run->cands.push_back(std::move(new_cands));
  run->live_masks.push_back(next_mask);
  run->level_token_units.push_back(next_token_units);
  run->level_cand_units.push_back(next_cand_units);
  run->level_repeats.push_back(0);
  run_modeled_units_ += next_token_units + next_cand_units;
}

void StreamingEvaluator::RetreatNav(NavRun* run) {
  if (run->dormant > 0) {
    --run->dormant;
    return;
  }
  if (run->level_repeats.back() > 0) {
    --run->level_repeats.back();
    run_modeled_units_ -= run->level_token_units.back();
    return;
  }
  if (!run->cands.back().empty()) {
    run->cand_level_depths.pop_back();
    for (const Candidate& c : run->cands.back()) {
      if (!c.deps.empty()) --run->dep_cand_count;
    }
  }
  run->cand_count -= run->cands.back().size();
  run_modeled_units_ -=
      run->level_token_units.back() + run->level_cand_units.back();
  run->level_token_units.pop_back();
  run->level_cand_units.pop_back();
  run->live_masks.pop_back();
  run->level_repeats.pop_back();
  std::vector<Token> toks = std::move(run->tokens.back());
  run->tokens.pop_back();
  std::vector<Candidate> cands = std::move(run->cands.back());
  run->cands.pop_back();
  toks.clear();
  cands.clear();
  if (token_level_pool_.size() < kMaxPooled) {
    token_level_pool_.push_back(std::move(toks));
  }
  if (cand_level_pool_.size() < kMaxPooled) {
    cand_level_pool_.push_back(std::move(cands));
  }
}

StreamingEvaluator::CandStatus StreamingEvaluator::StatusOf(
    const Candidate& c) const {
  bool pending = false;
  for (int dep : c.deps) {
    switch (obligations_.state(dep)) {
      case ObligationSet::State::kFalse:
        return CandStatus::kDead;
      case ObligationSet::State::kPending:
        pending = true;
        break;
      case ObligationSet::State::kTrue:
        break;
    }
  }
  return pending ? CandStatus::kPending : CandStatus::kHolds;
}

StreamingEvaluator::CandStatus StreamingEvaluator::StatusOfSpan(
    const Snapshot& snap, const SnapCand& c) const {
  bool pending = false;
  for (uint32_t i = c.deps_begin; i < c.deps_end; ++i) {
    switch (obligations_.state(snap.deps[i])) {
      case ObligationSet::State::kFalse:
        return CandStatus::kDead;
      case ObligationSet::State::kPending:
        pending = true;
        break;
      case ObligationSet::State::kTrue:
        break;
    }
  }
  return pending ? CandStatus::kPending : CandStatus::kHolds;
}

StreamingEvaluator::DecisionResult StreamingEvaluator::Combine(
    const WorldAcc& deny_world, const WorldAcc& permit_world, bool has_query,
    bool query_min, bool query_max) {
  // Authorization, bracketed by two extreme worlds. Pending candidates of
  // negative rules hold in the deny-world; of positive rules in the
  // permit-world. Per-rule monotonicity makes the bracket exact (see
  // DESIGN.md §4).
  DecisionResult r;
  bool permit_in_deny_world = deny_world.Permit();
  bool permit_in_permit_world = permit_world.Permit();
  if (permit_in_deny_world == permit_in_permit_world) {
    r.auth = permit_in_deny_world ? Tri::kYes : Tri::kNo;
  } else {
    r.auth = Tri::kPending;
  }

  if (!has_query) {
    r.query = Tri::kYes;
  } else {
    r.query = (query_min == query_max) ? (query_min ? Tri::kYes : Tri::kNo)
                                       : Tri::kPending;
  }

  if (r.auth == Tri::kNo || r.query == Tri::kNo) {
    r.delivered = Tri::kNo;
  } else if (r.auth == Tri::kYes && r.query == Tri::kYes) {
    r.delivered = Tri::kYes;
  } else {
    r.delivered = Tri::kPending;
  }
  return r;
}

StreamingEvaluator::DecisionResult StreamingEvaluator::DecideLive() const {
  WorldAcc deny_world, permit_world;
  for (const NavRun& run : runs_) {
    if (run.cand_count == 0) continue;
    if (run.dep_cand_count == 0) {
      // Every candidate holds unconditionally in both worlds.
      int eff = run.cand_level_depths.back();
      deny_world.AddRule(eff, run.positive);
      permit_world.AddRule(eff, run.positive);
      continue;
    }
    int eff_deny = -1, eff_permit = -1;
    for (const auto& level : run.cands) {
      for (const Candidate& c : level) {
        CandStatus s = StatusOf(c);
        if (s == CandStatus::kDead) continue;
        bool holds_deny =
            s == CandStatus::kHolds ||
            (s == CandStatus::kPending && !run.positive);
        bool holds_permit =
            s == CandStatus::kHolds ||
            (s == CandStatus::kPending && run.positive);
        if (holds_deny && c.depth > eff_deny) eff_deny = c.depth;
        if (holds_permit && c.depth > eff_permit) eff_permit = c.depth;
      }
    }
    deny_world.AddRule(eff_deny, run.positive);
    permit_world.AddRule(eff_permit, run.positive);
  }
  bool query_min = false, query_max = false;
  if (query_run_ && query_run_->cand_count > 0) {
    if (query_run_->dep_cand_count == 0) {
      query_min = true;
      query_max = true;
    } else {
      for (const auto& level : query_run_->cands) {
        for (const Candidate& c : level) {
          CandStatus s = StatusOf(c);
          if (s == CandStatus::kHolds) {
            query_min = true;
            query_max = true;
          } else if (s == CandStatus::kPending) {
            query_max = true;
          }
        }
      }
    }
  }
  return Combine(deny_world, permit_world, query_run_ != nullptr, query_min,
                 query_max);
}

StreamingEvaluator::DecisionResult StreamingEvaluator::Decide(
    const Snapshot& snap) const {
  WorldAcc deny_world, permit_world;
  size_t i = 0;
  while (i < snap.auth.size()) {
    uint32_t rule = snap.auth[i].rule;
    bool positive = snap.auth[i].positive;
    int eff_deny = -1, eff_permit = -1;
    for (; i < snap.auth.size() && snap.auth[i].rule == rule; ++i) {
      const SnapCand& c = snap.auth[i];
      CandStatus s = StatusOfSpan(snap, c);
      if (s == CandStatus::kDead) continue;
      bool holds_deny =
          s == CandStatus::kHolds || (s == CandStatus::kPending && !positive);
      bool holds_permit =
          s == CandStatus::kHolds || (s == CandStatus::kPending && positive);
      if (holds_deny && c.depth > eff_deny) eff_deny = c.depth;
      if (holds_permit && c.depth > eff_permit) eff_permit = c.depth;
    }
    deny_world.AddRule(eff_deny, positive);
    permit_world.AddRule(eff_permit, positive);
  }
  bool query_min = false, query_max = false;
  for (const SnapCand& c : snap.query) {
    CandStatus s = StatusOfSpan(snap, c);
    if (s == CandStatus::kHolds) {
      query_min = true;
      query_max = true;
    } else if (s == CandStatus::kPending) {
      query_max = true;
    }
  }
  return Combine(deny_world, permit_world, snap.has_query, query_min,
                 query_max);
}

StreamingEvaluator::Snapshot StreamingEvaluator::BuildSnapshot() {
  Snapshot snap;
  if (!snapshot_pool_.empty()) {
    snap = std::move(snapshot_pool_.back());
    snapshot_pool_.pop_back();
    snap.Clear();
  }
  auto append = [&snap](const NavRun& run, uint32_t slot,
                        std::vector<SnapCand>* dst) {
    for (const auto& level : run.cands) {
      for (const Candidate& c : level) {
        SnapCand sc;
        sc.depth = c.depth;
        sc.rule = slot;
        sc.positive = run.positive;
        sc.deps_begin = static_cast<uint32_t>(snap.deps.size());
        snap.deps.insert(snap.deps.end(), c.deps.begin(), c.deps.end());
        sc.deps_end = static_cast<uint32_t>(snap.deps.size());
        dst->push_back(sc);
      }
    }
  };
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].cand_count == 0) continue;
    append(runs_[i], static_cast<uint32_t>(i), &snap.auth);
  }
  if (query_run_) {
    snap.has_query = true;
    if (query_run_->cand_count > 0) {
      append(*query_run_, 0, &snap.query);
    }
  }
  return snap;
}

void StreamingEvaluator::ReleaseSnapshot(Snapshot&& snap) {
  if (snapshot_pool_.size() < kMaxPooled) {
    snap.Clear();
    snapshot_pool_.push_back(std::move(snap));
  }
}

Status StreamingEvaluator::OnEvent(const Event& event) {
  return OnEventView(ViewOf(event, &in_attr_scratch_));
}

Status StreamingEvaluator::OnEventView(const EventView& event) {
  if (finished_) {
    return Status::InvalidArgument("event after end of stream");
  }
  ++stats_.events;
  switch (event.type) {
    case EventType::kOpen:
      return HandleOpen(event);
    case EventType::kValue:
      return HandleValue(event);
    case EventType::kClose:
      return HandleClose(event);
    case EventType::kEnd:
      return Finish();
  }
  return Status::Internal("unknown event type");
}

StreamingEvaluator::OutEvent StreamingEvaluator::AcquireOut(
    const xml::EventView& event, int depth) {
  OutEvent oe;
  if (!out_pool_.empty()) {
    oe = std::move(out_pool_.back());
    out_pool_.pop_back();
  }
  oe.event.type = event.type;
  oe.event.name.assign(event.name);
  oe.event.text.assign(event.text);
  AssignAttrs(&oe.event.attrs, event.attrs, event.num_attrs);
  oe.event.tag_id = event.tag_id;
  oe.depth = depth;
  oe.has_snapshot = false;
  oe.decided = false;
  oe.delivered = false;
  oe.modeled = 2 + event.name.size() + event.text.size();
  for (size_t i = 0; i < event.num_attrs; ++i) {
    oe.modeled += event.attrs[i].name.size() + event.attrs[i].value.size();
  }
  return oe;
}

void StreamingEvaluator::RecycleOut(OutEvent&& ev) {
  if (ev.has_snapshot) {
    ReleaseSnapshot(std::move(ev.snapshot));
    ev.has_snapshot = false;
  }
  if (out_pool_.size() < kMaxPooled) {
    ev.event.name.clear();
    ev.event.text.clear();
    ev.event.attrs.clear();
    out_pool_.push_back(std::move(ev));
  }
}

Status StreamingEvaluator::HandleOpen(const EventView& event) {
  ++depth_;
  TagId tag = ResolveTag(event);
  // 1. Existing predicate instances observe the open (they belong to
  //    ancestors); resolutions may unblock the pipeline later.
  obligations_.OnOpen(event.name, depth_, tag);
  // 2. Rule and query automata advance; new obligations/candidates appear.
  for (size_t i = 0; i < runs_.size(); ++i) AdvanceNav(&runs_[i], i, tag);
  if (query_run_) AdvanceNav(query_run_.get(), num_slots_ - 1, tag);
  // 3. Immediate decision attempt over live state (also powers skips).
  DecisionResult d = DecideLive();
  last_open_decision_ = d;
  last_open_decided_definitively_ = (d.delivered != Tri::kPending);
  if (d.delivered == Tri::kPending) {
    ++stats_.nodes_initially_pending;
    OutEvent ev = AcquireOut(event, depth_);
    ev.snapshot = BuildSnapshot();
    ev.has_snapshot = true;
    ev.modeled += ev.snapshot.ModeledBytes();
    pipeline_modeled_ += ev.modeled;
    pipeline_.push_back(std::move(ev));
    CSXA_RETURN_IF_ERROR(FlushPipeline());
  } else {
    bool delivered = (d.delivered == Tri::kYes);
    if (delivered) {
      ++stats_.nodes_permitted;
    } else {
      ++stats_.nodes_denied;
    }
    if (pipeline_.empty()) {
      // Nothing buffered ahead of us: bypass the pipeline entirely.
      CSXA_RETURN_IF_ERROR(ComposeOpen(event, delivered));
    } else {
      OutEvent ev = AcquireOut(event, depth_);
      ev.decided = true;
      ev.delivered = delivered;
      pipeline_modeled_ += ev.modeled;
      pipeline_.push_back(std::move(ev));
      CSXA_RETURN_IF_ERROR(FlushPipeline());
    }
  }
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::HandleValue(const EventView& event) {
  if (depth_ == 0) {
    return Status::InvalidArgument("text event outside any element");
  }
  obligations_.OnValue(event.text, depth_);
  if (pipeline_.empty()) {
    CSXA_RETURN_IF_ERROR(ComposeValue(event));
  } else {
    OutEvent ev = AcquireOut(event, depth_);
    pipeline_modeled_ += ev.modeled;
    pipeline_.push_back(std::move(ev));
    CSXA_RETURN_IF_ERROR(FlushPipeline());
  }
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::HandleClose(const EventView& event) {
  if (depth_ == 0) {
    return Status::InvalidArgument("close event without open");
  }
  // Predicate instances whose context closes here resolve to false; value
  // captures at this depth complete.
  obligations_.OnClose(depth_);
  for (NavRun& run : runs_) RetreatNav(&run);
  if (query_run_) RetreatNav(query_run_.get());
  if (pipeline_.empty()) {
    CSXA_RETURN_IF_ERROR(ComposeClose(event));
    --depth_;
    last_open_decided_definitively_ = false;  // stale after close
  } else {
    OutEvent ev = AcquireOut(event, depth_);
    pipeline_modeled_ += ev.modeled;
    pipeline_.push_back(std::move(ev));
    --depth_;
    last_open_decided_definitively_ = false;  // stale after close
    CSXA_RETURN_IF_ERROR(FlushPipeline());
  }
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::FlushPipeline() {
  while (!pipeline_.empty()) {
    OutEvent& ev = pipeline_.front();
    if (ev.event.type == EventType::kOpen && !ev.decided) {
      DecisionResult d = Decide(ev.snapshot);
      if (d.delivered == Tri::kPending) break;  // head still blocked
      ev.decided = true;
      ev.delivered = (d.delivered == Tri::kYes);
      if (ev.delivered) {
        ++stats_.nodes_permitted;
      } else {
        ++stats_.nodes_denied;
      }
    }
    CSXA_RETURN_IF_ERROR(DispatchToComposer(&ev));
    pipeline_modeled_ -= ev.modeled;
    OutEvent done = std::move(pipeline_.front());
    pipeline_.pop_front();
    RecycleOut(std::move(done));
  }
  return Status::OK();
}

Status StreamingEvaluator::DispatchToComposer(OutEvent* ev) {
  // Buffered events are owning copies; the composer consumes views, so
  // bridge through the dispatch scratch (distinct from the OnEvent
  // bridge's scratch, whose view may still be live up the call stack).
  EventView view = ViewOf(ev->event, &dispatch_attr_scratch_);
  switch (view.type) {
    case EventType::kOpen:
      return ComposeOpen(view, ev->delivered);
    case EventType::kValue:
      return ComposeValue(view);
    case EventType::kClose:
      return ComposeClose(view);
    case EventType::kEnd:
      return Status::OK();
  }
  return Status::Internal("unknown out event");
}

Status StreamingEvaluator::EmitOpen(const ComposerEntry& entry, bool bare) {
  emit_attr_scratch_.clear();
  if (!bare) {
    for (const auto& a : entry.attrs) {
      emit_attr_scratch_.push_back(AttrView{a.name, a.value});
    }
  }
  return out_->OnEventView(
      EventView::Open(entry.tag, emit_attr_scratch_.data(),
                      emit_attr_scratch_.size(), entry.tag_id));
}

Status StreamingEvaluator::EmitClose(const ComposerEntry& entry) {
  return out_->OnEventView(EventView::Close(entry.tag, entry.tag_id));
}

Status StreamingEvaluator::ComposeOpen(const EventView& event,
                                       bool delivered) {
  if (composer_size_ == composer_.size()) composer_.emplace_back();
  ComposerEntry& entry = composer_[composer_size_++];
  entry.tag.assign(event.name);
  entry.tag_id = event.tag_id;
  AssignAttrs(&entry.attrs, event.attrs, event.num_attrs);
  entry.delivered = delivered;
  entry.emitted = false;
  composer_modeled_ += 2 + entry.tag.size();
  if (delivered) {
    CSXA_RETURN_IF_ERROR(EmitScaffolding());
    ComposerEntry& self = composer_[composer_size_ - 1];
    CSXA_RETURN_IF_ERROR(EmitOpen(self, /*bare=*/false));
    self.emitted = true;
  }
  return Status::OK();
}

Status StreamingEvaluator::EmitScaffolding() {
  // Emit bare open tags (no attributes) for every unemitted ancestor of the
  // entry at the top of the composer stack.
  for (size_t i = 0; i + 1 < composer_size_; ++i) {
    if (!composer_[i].emitted) {
      CSXA_RETURN_IF_ERROR(EmitOpen(composer_[i], /*bare=*/true));
      composer_[i].emitted = true;
    }
  }
  return Status::OK();
}

Status StreamingEvaluator::ComposeValue(const EventView& event) {
  if (composer_size_ > 0 && composer_[composer_size_ - 1].delivered) {
    // The zero-copy payoff: delivered text flows producer → sink as a
    // view, its bytes never copied into a per-event allocation.
    return out_->OnEventView(event);
  }
  return Status::OK();
}

Status StreamingEvaluator::ComposeClose(const EventView& /*event*/) {
  if (composer_size_ == 0) {
    return Status::Internal("composer close without open");
  }
  ComposerEntry& top = composer_[composer_size_ - 1];
  Status st = Status::OK();
  if (top.emitted) {
    st = EmitClose(top);
  }
  composer_modeled_ -= 2 + top.tag.size();
  --composer_size_;
  return st;
}

Status StreamingEvaluator::Finish() {
  if (finished_) return Status::OK();
  CSXA_RETURN_IF_ERROR(FlushPipeline());
  if (!pipeline_.empty()) {
    return Status::Internal("pending output not resolved at end of stream");
  }
  if (depth_ != 0) {
    return Status::InvalidArgument("unbalanced document: depth " +
                                   std::to_string(depth_) + " at end");
  }
  finished_ = true;
  return out_->OnEventView(EventView::End());
}

bool StreamingEvaluator::CanSkipCurrentSubtree(
    const std::function<bool(std::string_view)>& has_tag,
    bool subtree_nonempty, bool /*has_text*/) {
  // Only a definitively-undelivered node may be skipped.
  if (!last_open_decided_definitively_ ||
      last_open_decision_.delivered != Tri::kNo) {
    return false;
  }
  // Live predicate instances must not be resolvable inside the subtree.
  if (obligations_.BlocksSkip(has_tag, subtree_nonempty, depth_)) {
    return false;
  }
  auto nav_reachable = [&](const NavRun& run) {
    if (run.dormant > 0) return false;  // no live tokens at this depth
    std::vector<int> active;
    for (const Token& t : run.tokens.back()) {
      if (t.state != run.rule->nav.final_state) active.push_back(t.state);
    }
    return CanReachFinal(run.rule->nav, active, has_tag, subtree_nonempty);
  };
  // Case A: authorization is definitively deny and no positive rule can
  // produce a deeper (overriding) match inside the subtree.
  if (last_open_decision_.auth == Tri::kNo) {
    bool positive_reachable = false;
    for (const NavRun& run : runs_) {
      if (run.positive && nav_reachable(run)) {
        positive_reachable = true;
        break;
      }
    }
    if (!positive_reachable) return true;
  }
  // Case B: the query definitively excludes this region and cannot match
  // inside it; nothing inside can be delivered regardless of rules.
  if (query_run_ && last_open_decision_.query == Tri::kNo &&
      !nav_reachable(*query_run_)) {
    return true;
  }
  return false;
}

size_t StreamingEvaluator::ModeledRamBytes() const {
  return run_modeled_units_ + obligations_.ModeledBytes() +
         pipeline_modeled_ + composer_modeled_;
}

void StreamingEvaluator::UpdatePeaks() {
  size_t ram = ModeledRamBytes();
  if (ram > stats_.modeled_ram_peak) stats_.modeled_ram_peak = ram;
  if (pipeline_.size() > stats_.buffered_events_peak) {
    stats_.buffered_events_peak = pipeline_.size();
  }
}

}  // namespace csxa::core
