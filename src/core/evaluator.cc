#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"

namespace csxa::core {

using xml::Event;
using xml::EventType;

size_t StreamingEvaluator::Snapshot::ModeledBytes() const {
  size_t n = 0;
  for (const auto& rule_cands : auth) {
    for (const Candidate& c : rule_cands) n += 3 + c.deps.size();
  }
  for (const Candidate& c : query) n += 3 + c.deps.size();
  return n;
}

Result<std::unique_ptr<StreamingEvaluator>> StreamingEvaluator::Create(
    const std::vector<AccessRule>& rules, const xpath::PathExpr* query,
    xml::EventSink* out) {
  auto ev = std::unique_ptr<StreamingEvaluator>(new StreamingEvaluator());
  ev->out_ = out;
  for (const AccessRule& r : rules) {
    CSXA_ASSIGN_OR_RETURN(
        CompiledRule cr, CompileExpr(r.object, r.sign == Sign::kPermit));
    ev->compiled_rules_.push_back(std::move(cr));
  }
  if (query != nullptr) {
    CSXA_ASSIGN_OR_RETURN(CompiledRule cq, CompileExpr(*query, true));
    ev->compiled_query_ = std::make_unique<CompiledRule>(std::move(cq));
  }
  // Wire the runs after all compilations (stable pointers).
  for (CompiledRule& cr : ev->compiled_rules_) {
    NavRun run;
    run.rule = &cr;
    run.positive = cr.positive;
    run.tokens.push_back({Token{0, {}}});
    run.cands.push_back({});
    ev->runs_.push_back(std::move(run));
  }
  if (ev->compiled_query_) {
    auto qr = std::make_unique<NavRun>();
    qr->rule = ev->compiled_query_.get();
    qr->positive = true;
    qr->tokens.push_back({Token{0, {}}});
    qr->cands.push_back({});
    ev->query_run_ = std::move(qr);
  }
  return ev;
}

void StreamingEvaluator::AdvanceNav(NavRun* run, const std::string& tag) {
  const CompiledPath& nav = run->rule->nav;
  const std::vector<Token>& top = run->tokens.back();
  std::vector<Token> next;
  std::vector<Candidate> new_cands;
  // One obligation per (predicate, node) even if several tokens enter the
  // predicated state at this node.
  std::vector<int> pred_cache(run->rule->predicates.size(), -1);

  for (const Token& t : top) {
    const CompiledPath::State& st = nav.states[static_cast<size_t>(t.state)];
    ++stats_.nfa_transitions;
    if (st.self_loop) {
      next.push_back(t);
    }
    if (t.state + 1 <= nav.final_state && (st.wildcard || st.tag == tag)) {
      Token nt;
      nt.state = t.state + 1;
      nt.deps = t.deps;
      for (int pid : nav.states[static_cast<size_t>(nt.state)].pred_ids) {
        int& cached = pred_cache[static_cast<size_t>(pid)];
        if (cached < 0) {
          cached = obligations_.Create(
              &run->rule->predicates[static_cast<size_t>(pid)], depth_);
          ++stats_.obligations_created;
        }
        nt.deps.push_back(cached);
      }
      if (nt.state == nav.final_state) {
        Candidate c;
        c.depth = depth_;
        c.deps = nt.deps;
        new_cands.push_back(std::move(c));
        ++stats_.candidates_created;
      }
      // Dedupe identical tokens.
      bool dup = false;
      for (const Token& e : next) {
        if (e.state == nt.state && e.deps == nt.deps) {
          dup = true;
          break;
        }
      }
      if (!dup) next.push_back(std::move(nt));
    }
  }
  run->tokens.push_back(std::move(next));
  run->cands.push_back(std::move(new_cands));
}

StreamingEvaluator::Snapshot StreamingEvaluator::BuildSnapshot() const {
  Snapshot snap;
  snap.auth.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    for (const auto& level : runs_[i].cands) {
      for (const Candidate& c : level) snap.auth[i].push_back(c);
    }
  }
  if (query_run_) {
    snap.has_query = true;
    for (const auto& level : query_run_->cands) {
      for (const Candidate& c : level) snap.query.push_back(c);
    }
  }
  return snap;
}

StreamingEvaluator::CandStatus StreamingEvaluator::StatusOf(
    const Candidate& c) const {
  bool pending = false;
  for (int dep : c.deps) {
    switch (obligations_.state(dep)) {
      case ObligationSet::State::kFalse:
        return CandStatus::kDead;
      case ObligationSet::State::kPending:
        pending = true;
        break;
      case ObligationSet::State::kTrue:
        break;
    }
  }
  return pending ? CandStatus::kPending : CandStatus::kHolds;
}

StreamingEvaluator::DecisionResult StreamingEvaluator::Decide(
    const Snapshot& snap) const {
  // Authorization, bracketed by two extreme worlds. Pending candidates of
  // negative rules hold in the deny-world; of positive rules in the
  // permit-world. Per-rule monotonicity makes the bracket exact (see
  // DESIGN.md §4).
  auto auth_world = [&](bool deny_world) -> bool {
    int best_depth = -1;
    bool deny_at_best = false;
    for (size_t i = 0; i < snap.auth.size(); ++i) {
      bool positive = runs_[i].positive;
      int eff = -1;
      for (const Candidate& c : snap.auth[i]) {
        CandStatus s = StatusOf(c);
        bool holds = (s == CandStatus::kHolds) ||
                     (s == CandStatus::kPending &&
                      (deny_world ? !positive : positive));
        if (holds && c.depth > eff) eff = c.depth;
      }
      if (eff < 0) continue;
      if (eff > best_depth) {
        best_depth = eff;
        deny_at_best = !positive;
      } else if (eff == best_depth && !positive) {
        deny_at_best = true;  // Denial-Takes-Precedence at equal depth
      }
    }
    if (best_depth < 0) return false;  // closed policy
    return !deny_at_best;
  };
  DecisionResult r;
  bool permit_in_deny_world = auth_world(true);
  bool permit_in_permit_world = auth_world(false);
  if (permit_in_deny_world == permit_in_permit_world) {
    r.auth = permit_in_deny_world ? Tri::kYes : Tri::kNo;
  } else {
    r.auth = Tri::kPending;
  }

  if (!snap.has_query) {
    r.query = Tri::kYes;
  } else {
    bool in_min = false;  // pendings assumed false
    bool in_max = false;  // pendings assumed true
    for (const Candidate& c : snap.query) {
      CandStatus s = StatusOf(c);
      if (s == CandStatus::kHolds) {
        in_min = true;
        in_max = true;
      } else if (s == CandStatus::kPending) {
        in_max = true;
      }
    }
    r.query = (in_min == in_max) ? (in_min ? Tri::kYes : Tri::kNo)
                                 : Tri::kPending;
  }

  if (r.auth == Tri::kNo || r.query == Tri::kNo) {
    r.delivered = Tri::kNo;
  } else if (r.auth == Tri::kYes && r.query == Tri::kYes) {
    r.delivered = Tri::kYes;
  } else {
    r.delivered = Tri::kPending;
  }
  return r;
}

Status StreamingEvaluator::OnEvent(const Event& event) {
  if (finished_) {
    return Status::InvalidArgument("event after end of stream");
  }
  ++stats_.events;
  switch (event.type) {
    case EventType::kOpen:
      return HandleOpen(event);
    case EventType::kValue:
      return HandleValue(event);
    case EventType::kClose:
      return HandleClose(event);
    case EventType::kEnd:
      return Finish();
  }
  return Status::Internal("unknown event type");
}

Status StreamingEvaluator::HandleOpen(const Event& event) {
  ++depth_;
  // 1. Existing predicate instances observe the open (they belong to
  //    ancestors); resolutions may unblock the pipeline later.
  obligations_.OnOpen(event.name, depth_);
  // 2. Rule and query automata advance; new obligations/candidates appear.
  for (NavRun& run : runs_) AdvanceNav(&run, event.name);
  if (query_run_) AdvanceNav(query_run_.get(), event.name);
  // 3. Snapshot and immediate decision attempt (also powers skip checks).
  OutEvent ev;
  ev.event = event;
  ev.depth = depth_;
  ev.snapshot = BuildSnapshot();
  DecisionResult d = Decide(ev.snapshot);
  last_open_decision_ = d;
  last_open_decided_definitively_ = (d.delivered != Tri::kPending);
  if (d.delivered == Tri::kPending) {
    ++stats_.nodes_initially_pending;
  } else {
    ev.decided = true;
    ev.delivered = (d.delivered == Tri::kYes);
    if (ev.delivered) {
      ++stats_.nodes_permitted;
    } else {
      ++stats_.nodes_denied;
    }
  }
  pipeline_.push_back(std::move(ev));
  CSXA_RETURN_IF_ERROR(FlushPipeline());
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::HandleValue(const Event& event) {
  if (depth_ == 0) {
    return Status::InvalidArgument("text event outside any element");
  }
  obligations_.OnValue(event.text, depth_);
  OutEvent ev;
  ev.event = event;
  ev.depth = depth_;
  pipeline_.push_back(std::move(ev));
  CSXA_RETURN_IF_ERROR(FlushPipeline());
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::HandleClose(const Event& event) {
  if (depth_ == 0) {
    return Status::InvalidArgument("close event without open");
  }
  // Predicate instances whose context closes here resolve to false; value
  // captures at this depth complete.
  obligations_.OnClose(depth_);
  for (NavRun& run : runs_) {
    run.tokens.pop_back();
    run.cands.pop_back();
  }
  if (query_run_) {
    query_run_->tokens.pop_back();
    query_run_->cands.pop_back();
  }
  OutEvent ev;
  ev.event = event;
  ev.depth = depth_;
  pipeline_.push_back(std::move(ev));
  --depth_;
  last_open_decided_definitively_ = false;  // stale after close
  CSXA_RETURN_IF_ERROR(FlushPipeline());
  UpdatePeaks();
  return Status::OK();
}

Status StreamingEvaluator::FlushPipeline() {
  while (!pipeline_.empty()) {
    OutEvent& ev = pipeline_.front();
    if (ev.event.type == EventType::kOpen && !ev.decided) {
      DecisionResult d = Decide(ev.snapshot);
      if (d.delivered == Tri::kPending) break;  // head still blocked
      ev.decided = true;
      ev.delivered = (d.delivered == Tri::kYes);
      if (ev.delivered) {
        ++stats_.nodes_permitted;
      } else {
        ++stats_.nodes_denied;
      }
    }
    CSXA_RETURN_IF_ERROR(DispatchToComposer(&ev));
    pipeline_.pop_front();
  }
  return Status::OK();
}

Status StreamingEvaluator::DispatchToComposer(OutEvent* ev) {
  switch (ev->event.type) {
    case EventType::kOpen:
      return ComposeOpen(ev->event, ev->delivered);
    case EventType::kValue:
      return ComposeValue(ev->event);
    case EventType::kClose:
      return ComposeClose(ev->event);
    case EventType::kEnd:
      return Status::OK();
  }
  return Status::Internal("unknown out event");
}

Status StreamingEvaluator::ComposeOpen(const Event& event, bool delivered) {
  ComposerEntry entry;
  entry.tag = event.name;
  entry.attrs = event.attrs;
  entry.delivered = delivered;
  composer_.push_back(std::move(entry));
  if (delivered) {
    CSXA_RETURN_IF_ERROR(EmitScaffolding());
    ComposerEntry& self = composer_.back();
    CSXA_RETURN_IF_ERROR(out_->OnEvent(Event::Open(self.tag, self.attrs)));
    self.emitted = true;
  }
  return Status::OK();
}

Status StreamingEvaluator::EmitScaffolding() {
  // Emit bare open tags (no attributes) for every unemitted ancestor of the
  // entry at the top of the composer stack.
  for (size_t i = 0; i + 1 < composer_.size(); ++i) {
    if (!composer_[i].emitted) {
      CSXA_RETURN_IF_ERROR(out_->OnEvent(Event::Open(composer_[i].tag)));
      composer_[i].emitted = true;
    }
  }
  return Status::OK();
}

Status StreamingEvaluator::ComposeValue(const Event& event) {
  if (!composer_.empty() && composer_.back().delivered) {
    return out_->OnEvent(event);
  }
  return Status::OK();
}

Status StreamingEvaluator::ComposeClose(const Event& event) {
  if (composer_.empty()) {
    return Status::Internal("composer close without open");
  }
  Status st = Status::OK();
  if (composer_.back().emitted) {
    st = out_->OnEvent(Event::Close(event.name));
  }
  composer_.pop_back();
  return st;
}

Status StreamingEvaluator::Finish() {
  if (finished_) return Status::OK();
  CSXA_RETURN_IF_ERROR(FlushPipeline());
  if (!pipeline_.empty()) {
    return Status::Internal("pending output not resolved at end of stream");
  }
  if (depth_ != 0) {
    return Status::InvalidArgument("unbalanced document: depth " +
                                   std::to_string(depth_) + " at end");
  }
  finished_ = true;
  return out_->OnEvent(Event::End());
}

bool StreamingEvaluator::CanSkipCurrentSubtree(
    const std::function<bool(const std::string&)>& has_tag,
    bool subtree_nonempty, bool /*has_text*/) {
  // Only a definitively-undelivered node may be skipped.
  if (!last_open_decided_definitively_ ||
      last_open_decision_.delivered != Tri::kNo) {
    return false;
  }
  // Live predicate instances must not be resolvable inside the subtree.
  if (obligations_.BlocksSkip(has_tag, subtree_nonempty, depth_)) {
    return false;
  }
  auto nav_reachable = [&](const NavRun& run) {
    std::vector<int> active;
    for (const Token& t : run.tokens.back()) {
      if (t.state != run.rule->nav.final_state) active.push_back(t.state);
    }
    return CanReachFinal(run.rule->nav, active, has_tag, subtree_nonempty);
  };
  // Case A: authorization is definitively deny and no positive rule can
  // produce a deeper (overriding) match inside the subtree.
  if (last_open_decision_.auth == Tri::kNo) {
    bool positive_reachable = false;
    for (const NavRun& run : runs_) {
      if (run.positive && nav_reachable(run)) {
        positive_reachable = true;
        break;
      }
    }
    if (!positive_reachable) return true;
  }
  // Case B: the query definitively excludes this region and cannot match
  // inside it; nothing inside can be delivered regardless of rules.
  if (query_run_ && last_open_decision_.query == Tri::kNo &&
      !nav_reachable(*query_run_)) {
    return true;
  }
  return false;
}

size_t StreamingEvaluator::ModeledRamBytes() const {
  size_t n = 0;
  auto run_bytes = [](const NavRun& run) {
    size_t b = 0;
    for (const auto& level : run.tokens) {
      for (const Token& t : level) b += 2 + t.deps.size();
    }
    for (const auto& level : run.cands) {
      for (const Candidate& c : level) b += 3 + c.deps.size();
    }
    return b;
  };
  for (const NavRun& run : runs_) n += run_bytes(run);
  if (query_run_) n += run_bytes(*query_run_);
  n += obligations_.ModeledBytes();
  for (const OutEvent& ev : pipeline_) {
    n += 2 + ev.event.name.size() + ev.event.text.size();
    for (const auto& a : ev.event.attrs) n += a.name.size() + a.value.size();
    n += ev.snapshot.ModeledBytes();
  }
  for (const ComposerEntry& e : composer_) n += 2 + e.tag.size();
  return n;
}

void StreamingEvaluator::UpdatePeaks() {
  size_t ram = ModeledRamBytes();
  if (ram > stats_.modeled_ram_peak) stats_.modeled_ram_peak = ram;
  if (pipeline_.size() > stats_.buffered_events_peak) {
    stats_.buffered_events_peak = pipeline_.size();
  }
}

}  // namespace csxa::core
