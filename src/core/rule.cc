#include "core/rule.h"

#include <sstream>

namespace csxa::core {

Status RuleSet::Add(Sign sign, const std::string& subject,
                    const std::string& object) {
  if (subject.empty()) return Status::InvalidArgument("empty rule subject");
  CSXA_ASSIGN_OR_RETURN(xpath::PathExpr expr, xpath::ParsePath(object));
  AccessRule r;
  r.sign = sign;
  r.subject = subject;
  r.object = std::move(expr);
  r.object_text = object;
  rules_.push_back(std::move(r));
  return Status::OK();
}

Result<RuleSet> RuleSet::ParseText(const std::string& text) {
  RuleSet set;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim leading whitespace.
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    if (line[b] == '#') continue;
    char sign_char = line[b];
    if (sign_char != '+' && sign_char != '-') {
      return Status::ParseError("rule line " + std::to_string(lineno) +
                                ": expected '+' or '-'");
    }
    size_t subj_begin = line.find_first_not_of(" \t", b + 1);
    if (subj_begin == std::string::npos) {
      return Status::ParseError("rule line " + std::to_string(lineno) +
                                ": missing subject");
    }
    size_t subj_end = line.find_first_of(" \t", subj_begin);
    if (subj_end == std::string::npos) {
      return Status::ParseError("rule line " + std::to_string(lineno) +
                                ": missing object");
    }
    std::string subject = line.substr(subj_begin, subj_end - subj_begin);
    size_t obj_begin = line.find_first_not_of(" \t", subj_end);
    if (obj_begin == std::string::npos) {
      return Status::ParseError("rule line " + std::to_string(lineno) +
                                ": missing object");
    }
    size_t obj_end = line.find_last_not_of(" \t\r");
    std::string object = line.substr(obj_begin, obj_end - obj_begin + 1);
    Status st = set.Add(sign_char == '+' ? Sign::kPermit : Sign::kDeny, subject,
                        object);
    if (!st.ok()) {
      return Status::ParseError("rule line " + std::to_string(lineno) + ": " +
                                st.ToString());
    }
  }
  return set;
}

std::string RuleSet::ToText() const {
  std::string out;
  for (const AccessRule& r : rules_) {
    out += (r.sign == Sign::kPermit) ? "+ " : "- ";
    out += r.subject;
    out += " ";
    out += r.object_text.empty() ? xpath::ToString(r.object) : r.object_text;
    out += "\n";
  }
  return out;
}

void RuleSet::EncodeTo(ByteWriter* out) const {
  out->PutU32(static_cast<uint32_t>(rules_.size()));
  for (const AccessRule& r : rules_) {
    out->PutU8(static_cast<uint8_t>(r.sign));
    out->PutString(r.subject);
    out->PutString(r.object_text.empty() ? xpath::ToString(r.object)
                                         : r.object_text);
  }
}

Result<RuleSet> RuleSet::DecodeFrom(ByteReader* in) {
  uint32_t n;
  if (!in->GetU32(&n)) return Status::ParseError("rule set truncated");
  RuleSet set;
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t sign;
    std::string subject, object;
    if (!in->GetU8(&sign) || !in->GetString(&subject) ||
        !in->GetString(&object)) {
      return Status::ParseError("rule set truncated");
    }
    CSXA_RETURN_IF_ERROR(
        set.Add(sign == 0 ? Sign::kPermit : Sign::kDeny, subject, object));
  }
  return set;
}

std::vector<AccessRule> RuleSet::ForSubject(const std::string& subject) const {
  std::vector<AccessRule> out;
  for (const AccessRule& r : rules_) {
    if (r.subject == subject) out.push_back(r);
  }
  return out;
}

std::vector<std::string> RuleSet::Subjects() const {
  std::vector<std::string> out;
  for (const AccessRule& r : rules_) {
    bool seen = false;
    for (const std::string& s : out) {
      if (s == r.subject) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(r.subject);
  }
  return out;
}

}  // namespace csxa::core
