#ifndef CSXA_CORE_OBLIGATION_H_
#define CSXA_CORE_OBLIGATION_H_

/// \file obligation.h
/// \brief Predicate instances ("pending" machinery of §2.3).
///
/// When a token traverses a predicated step at a concrete document node,
/// the predicate must hold *within that node's subtree* for the match to be
/// valid. An Obligation is one such instance: a mini NFA run over the
/// context node's subtree. It resolves to true the moment its path (and
/// value comparison, if any) is satisfied, and to false when the context
/// node closes unsatisfied. Rules whose navigational final state is
/// reached while obligations are unresolved are the paper's *pending*
/// rules; the evaluator buffers their output until resolution.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/automaton.h"

namespace csxa::core {

/// \brief A live predicate-path NFA run rooted at a context node.
///
/// Depths are absolute document depths (root element = 1); the run only
/// consumes events strictly below its context depth.
class PredRun {
 public:
  /// `path` must outlive the run. `ctx_depth` is the context node's depth.
  PredRun(const CompiledPath* path, int ctx_depth);

  /// Feeds an element open at `depth`. Returns true if the predicate
  /// became satisfied (kExists predicates satisfy on open). `tag_id` is
  /// the tag resolved against the owning evaluator's rule alphabet; when
  /// both it and a state's tag_id are set, matching is an integer compare,
  /// otherwise it falls back to the name.
  bool OnOpen(std::string_view tag, int depth, TagId tag_id = kNoTagId);
  /// Feeds character data at element depth `depth` (the enclosing
  /// element's depth). Captures direct text of value-test matches.
  void OnValue(std::string_view text, int depth);
  /// Feeds an element close at `depth`. Returns true if a value-test
  /// capture completed and satisfied the comparison.
  bool OnClose(int depth);

  /// True once the predicate is satisfied.
  bool satisfied() const { return satisfied_; }
  /// Context node depth.
  int ctx_depth() const { return ctx_depth_; }

  /// States the run could still advance from (for skip reachability).
  std::vector<int> ActiveStates() const;
  /// True if a value capture is open at exactly `depth` — content at that
  /// depth (direct text) may still resolve this run, blocking skips.
  bool HasCaptureAtDepth(int depth) const;
  /// Conservative: true if this run could become satisfied by content of a
  /// subtree whose tag set is described by `has_tag` (skip safety test).
  bool CanResolveWithin(const std::function<bool(std::string_view)>& has_tag,
                        bool subtree_nonempty) const;

  /// Modeled on-card footprint in bytes (stack entries + capture text).
  size_t ModeledBytes() const;
  /// Number of NFA transitions executed so far (cost accounting).
  size_t transitions() const { return transitions_; }

 private:
  const CompiledPath* path_;
  int ctx_depth_;
  bool satisfied_ = false;
  size_t transitions_ = 0;
  // stack_[i] = active states at relative depth i (i = depth - ctx_depth);
  // stack_[0] = {0}, the start state waiting at the context node.
  std::vector<std::vector<int>> stack_;
  // Open value-test captures: absolute depth + accumulated direct text.
  struct Capture {
    int depth;
    std::string text;
  };
  std::vector<Capture> captures_;
};

/// \brief Registry of obligations for one evaluation session.
///
/// Obligation ids are stable for the lifetime of the session (buffered
/// decisions refer to them after resolution).
class ObligationSet {
 public:
  enum class State : uint8_t { kPending, kTrue, kFalse };

  /// Creates a pending obligation; returns its id.
  int Create(const CompiledPath* path, int ctx_depth);

  /// Feeds events to all live obligations. Each returns true if at least
  /// one obligation changed state (a signal to retry the output pipeline).
  bool OnOpen(std::string_view tag, int depth, TagId tag_id = kNoTagId);
  bool OnValue(std::string_view text, int depth);
  /// Close also resolves to false every pending obligation whose context
  /// node is the element closing at `depth`.
  bool OnClose(int depth);

  /// Resolution state of obligation `id`.
  State state(int id) const { return entries_[static_cast<size_t>(id)].state; }
  /// Number of obligations ever created.
  size_t size() const { return entries_.size(); }
  /// Number currently pending.
  size_t live_count() const { return live_.size(); }

  /// Skip support: true if any live obligation could be resolved by
  /// content of the current node's subtree — either its path NFA can reach
  /// its final state over the subtree's tag set, or it has an open value
  /// capture at `subtree_root_depth` (direct text of the node whose
  /// content would be skipped).
  bool BlocksSkip(const std::function<bool(std::string_view)>& has_tag,
                  bool subtree_nonempty, int subtree_root_depth) const;

  /// Total modeled footprint of live obligations.
  size_t ModeledBytes() const;
  /// Total predicate-NFA transitions executed.
  size_t transitions() const;

 private:
  struct Entry {
    State state = State::kPending;
    int ctx_depth = 0;
    std::unique_ptr<PredRun> run;  // reset once resolved
  };
  std::vector<Entry> entries_;
  std::vector<int> live_;
  size_t retired_transitions_ = 0;

  bool Sweep();  // drops resolved runs from live_, returns true if any
};

}  // namespace csxa::core

#endif  // CSXA_CORE_OBLIGATION_H_
