#ifndef CSXA_CORE_AUTOMATON_H_
#define CSXA_CORE_AUTOMATON_H_

/// \file automaton.h
/// \brief Non-deterministic automata compiled from XPath expressions.
///
/// Each access rule (and the query) is represented by an NFA as in Fig. 2
/// of the paper: a navigational path — one state per step, a self-loop for
/// the descendant axis — plus predicate paths compiled as separate
/// automata attached to the state where the predicate applies. The
/// evaluator executes these with a token stack (core/evaluator.h).

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "xpath/ast.h"

namespace csxa::core {

/// \brief A compiled path automaton (navigational or predicate).
///
/// State 0 is the start state; state `i` is reached after matching step
/// `i`. Each state's outgoing edge leads to state+1 on the step's name
/// test; a state whose *outgoing* step uses the descendant axis carries a
/// self-loop matching any element.
struct CompiledPath {
  struct State {
    /// True if the automaton may stay in this state across any element
    /// (descendant-axis self-loop, drawn as '*' in Fig. 2).
    bool self_loop = false;
    /// Name test of the outgoing edge to state index+1 (unused for the
    /// final state).
    bool wildcard = false;
    std::string tag;
    /// Interned form of `tag` in the owning evaluator's rule alphabet
    /// (stamped by StreamingEvaluator::Create; kNoTagId until then).
    /// Matching falls back to the string when either side lacks an id.
    TagId tag_id = kNoTagId;
    /// Predicate automata (indices into CompiledRule::predicates)
    /// instantiated when a token *enters* this state. Empty for predicate
    /// paths themselves — the fragment forbids nested predicates.
    std::vector<int> pred_ids;
  };

  std::vector<State> states;
  /// Index of the accepting state (== states.size() - 1).
  int final_state = 0;
  /// For predicate paths: comparison applied to the matched node's direct
  /// text. kExists means pure structural existence.
  xpath::CmpOp op = xpath::CmpOp::kExists;
  std::string literal;

  /// Number of states.
  size_t size() const { return states.size(); }
};

/// \brief A rule (or query) compiled to its navigational automaton plus
/// predicate automata.
struct CompiledRule {
  CompiledPath nav;
  std::vector<CompiledPath> predicates;
  /// True for permissions (and for queries).
  bool positive = true;
  /// Display string for diagnostics.
  std::string source;

  /// Total number of NFA states across nav and predicate paths.
  size_t TotalStates() const;
};

/// Compiles an absolute path expression. Fails with NotSupported on nested
/// predicates (outside the streaming fragment).
Result<CompiledRule> CompileExpr(const xpath::PathExpr& expr, bool positive);

/// Compiles a relative predicate path.
Result<CompiledPath> CompileRelative(const xpath::RelativePath& path,
                                     xpath::CmpOp op, const std::string& literal);

/// \brief Conservative reachability test used by the skip index (§2.3).
///
/// Returns true if, starting from any state in `active`, the automaton
/// could reach `final_state` by consuming only elements whose tags satisfy
/// `has_tag` (wildcard edges require the subtree to be non-empty). When
/// this returns false for every positive automaton and every live
/// predicate run, the subtree cannot change any delivery decision and may
/// be skipped.
bool CanReachFinal(const CompiledPath& path, const std::vector<int>& active,
                   const std::function<bool(std::string_view)>& has_tag,
                   bool subtree_nonempty);

}  // namespace csxa::core

#endif  // CSXA_CORE_AUTOMATON_H_
