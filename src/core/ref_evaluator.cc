#include "core/ref_evaluator.h"

#include <unordered_map>
#include <unordered_set>

#include "xpath/eval.h"

namespace csxa::core {

using xml::DomDocument;
using xml::DomNode;

namespace {

// Match sets of every rule, precomputed once per document.
struct MatchContext {
  std::vector<std::unordered_set<const DomNode*>> rule_matches;
  std::vector<bool> rule_positive;
  std::unordered_set<const DomNode*> query_matches;
  bool has_query = false;
};

MatchContext BuildContext(const DomNode* root,
                          const std::vector<AccessRule>& rules,
                          const xpath::PathExpr* query) {
  MatchContext ctx;
  for (const AccessRule& r : rules) {
    auto nodes = xpath::SelectNodes(root, r.object);
    ctx.rule_matches.emplace_back(nodes.begin(), nodes.end());
    ctx.rule_positive.push_back(r.sign == Sign::kPermit);
  }
  if (query != nullptr) {
    ctx.has_query = true;
    auto nodes = xpath::SelectNodes(root, *query);
    ctx.query_matches.insert(nodes.begin(), nodes.end());
  }
  return ctx;
}

// Authorization of `node` from precomputed match sets: walk
// ancestor-or-self, find per-rule deepest match, apply
// Most-Specific-Object then Denial-Takes-Precedence, closed default.
NodeAuth AuthorizeWithContext(const MatchContext& ctx, const DomNode* node) {
  NodeAuth out;
  int best_depth = -1;
  bool deny_at_best = false;
  for (size_t i = 0; i < ctx.rule_matches.size(); ++i) {
    int eff = -1;
    for (const DomNode* a = node; a != nullptr; a = a->parent()) {
      if (ctx.rule_matches[i].count(a)) {
        eff = a->depth();  // deepest first: stop at first hit walking up
        break;
      }
    }
    if (eff < 0) continue;
    if (eff > best_depth) {
      best_depth = eff;
      deny_at_best = !ctx.rule_positive[i];
    } else if (eff == best_depth && !ctx.rule_positive[i]) {
      deny_at_best = true;
    }
  }
  out.deciding_depth = best_depth;
  out.permitted = best_depth >= 0 && !deny_at_best;
  return out;
}

bool InQueryScope(const MatchContext& ctx, const DomNode* node) {
  if (!ctx.has_query) return true;
  for (const DomNode* a = node; a != nullptr; a = a->parent()) {
    if (ctx.query_matches.count(a)) return true;
  }
  return false;
}

// Recursively builds the pruned view. Returns nullptr when the subtree
// contributes nothing.
std::unique_ptr<DomNode> Prune(const MatchContext& ctx, const DomNode* node) {
  bool delivered =
      AuthorizeWithContext(ctx, node).permitted && InQueryScope(ctx, node);
  std::vector<std::unique_ptr<DomNode>> kept_children;
  for (const auto& c : node->children()) {
    if (c->is_element()) {
      auto kept = Prune(ctx, c.get());
      if (kept) kept_children.push_back(std::move(kept));
    } else if (c->is_text() && delivered) {
      kept_children.push_back(DomNode::Text(c->text()));
    }
  }
  if (!delivered && kept_children.empty()) return nullptr;
  // Delivered nodes keep their attributes; scaffolding nodes are bare tags.
  auto out = delivered ? DomNode::Element(node->tag(), node->attrs())
                       : DomNode::Element(node->tag());
  for (auto& c : kept_children) out->AddChild(std::move(c));
  return out;
}

}  // namespace

NodeAuth AuthorizeNode(const DomNode* root,
                       const std::vector<AccessRule>& rules,
                       const DomNode* node) {
  MatchContext ctx = BuildContext(root, rules, nullptr);
  return AuthorizeWithContext(ctx, node);
}

Result<DomDocument> BuildAuthorizedView(const DomDocument& doc,
                                        const std::vector<AccessRule>& rules,
                                        const xpath::PathExpr* query) {
  if (doc.root() == nullptr) return DomDocument();
  MatchContext ctx = BuildContext(doc.root(), rules, query);
  auto pruned = Prune(ctx, doc.root());
  return DomDocument(std::move(pruned));
}

std::vector<bool> AuthorizeAll(const DomDocument& doc,
                               const std::vector<AccessRule>& rules) {
  std::vector<bool> out;
  if (doc.root() == nullptr) return out;
  MatchContext ctx = BuildContext(doc.root(), rules, nullptr);
  std::vector<const DomNode*> elements;
  doc.root()->CollectElements(&elements);
  out.reserve(elements.size());
  for (const DomNode* e : elements) {
    out.push_back(AuthorizeWithContext(ctx, e).permitted);
  }
  return out;
}

double AuthorizedFraction(const DomDocument& doc,
                          const std::vector<AccessRule>& rules,
                          const xpath::PathExpr* query) {
  if (doc.root() == nullptr) return 0.0;
  MatchContext ctx = BuildContext(doc.root(), rules, query);
  std::vector<const DomNode*> elements;
  doc.root()->CollectElements(&elements);
  if (elements.empty()) return 0.0;
  size_t delivered = 0;
  for (const DomNode* e : elements) {
    if (AuthorizeWithContext(ctx, e).permitted && InQueryScope(ctx, e)) {
      ++delivered;
    }
  }
  return static_cast<double>(delivered) / static_cast<double>(elements.size());
}

}  // namespace csxa::core
