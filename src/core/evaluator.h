#ifndef CSXA_CORE_EVALUATOR_H_
#define CSXA_CORE_EVALUATOR_H_

/// \file evaluator.h
/// \brief The streaming access-control evaluator — the paper's core
/// contribution (§2.3).
///
/// The evaluator consumes open/value/close events and produces the
/// *delivered view*: every permitted element (with attributes and text)
/// that also lies in the optional query scope, plus the bare tags of their
/// denied ancestors (structure scaffolding preserving well-formedness).
///
/// Machinery, mapped to the paper's vocabulary:
///  - each rule is a non-deterministic automaton (core/automaton.h);
///  - a *token stack* tracks the set of active states per depth,
///    materializing all paths the NFA can follow;
///  - a *predicate set* (core/obligation.h) records predicate instances
///    and their resolution;
///  - the per-rule *match stacks* of candidates generalize the paper's
///    sign stack: the conflict-resolution decision (closed policy,
///    Denial-Takes-Precedence, Most-Specific-Object-Takes-Precedence) is
///    computed from the deepest holding candidates;
///  - *pending* rules (final state reached, predicates unresolved) make
///    node decisions tri-state; undecidable output is buffered in an
///    order-preserving pipeline and flushed when obligations resolve.
///
/// The evaluator never materializes the document; its modeled memory
/// footprint (ModeledRamBytes) is what the smart card would consume.

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/automaton.h"
#include "core/obligation.h"
#include "core/rule.h"
#include "xml/event.h"

namespace csxa::core {

/// Tri-state outcome used for authorization, query scope and delivery.
enum class Tri : uint8_t { kNo = 0, kYes = 1, kPending = 2 };

/// \brief Counters exposed for benchmarks and the SOE cost model.
struct EvaluatorStats {
  size_t events = 0;
  size_t nfa_transitions = 0;
  size_t obligations_created = 0;
  size_t candidates_created = 0;
  size_t nodes_permitted = 0;
  size_t nodes_denied = 0;
  size_t nodes_initially_pending = 0;
  size_t buffered_events_peak = 0;
  size_t modeled_ram_peak = 0;
  size_t subtrees_skipped = 0;
};

/// \brief Streaming evaluator for one (document, subject[, query]) session.
class StreamingEvaluator : public xml::EventSink {
 public:
  /// Creates an evaluator for `rules` (already filtered to one subject).
  /// `query` may be null (whole authorized view). Delivered-view events are
  /// pushed into `out`, which must outlive the evaluator.
  static Result<std::unique_ptr<StreamingEvaluator>> Create(
      const std::vector<AccessRule>& rules, const xpath::PathExpr* query,
      xml::EventSink* out);

  /// Feeds the next document event (kEnd finishes the stream).
  Status OnEvent(const xml::Event& event) override;

  /// Must be called (or an kEnd event fed) after the last event; verifies
  /// that all pending output was resolved and flushed.
  Status Finish();

  /// \name Skip-index support (§2.3)
  /// @{
  /// Decides whether the subtree of the element just opened can be skipped
  /// without changing any output: its root's delivery must be definitively
  /// negative, no positive automaton may reach a match inside, and no live
  /// predicate instance may resolve inside. `has_tag` answers membership
  /// in the subtree's tag set; `subtree_nonempty` tells whether the
  /// subtree contains at least one element; `has_text` whether it contains
  /// character data.
  bool CanSkipCurrentSubtree(
      const std::function<bool(const std::string&)>& has_tag,
      bool subtree_nonempty, bool has_text);
  /// Records that the caller skipped the current subtree (stats only; the
  /// caller must next feed the matching close event).
  void NoteSubtreeSkipped() { ++stats_.subtrees_skipped; }
  /// @}

  /// Current modeled on-card memory footprint in bytes.
  size_t ModeledRamBytes() const;
  /// Statistics accumulated so far.
  const EvaluatorStats& stats() const { return stats_; }
  /// Navigational plus predicate NFA transitions (cost-model input).
  size_t TotalTransitions() const {
    return stats_.nfa_transitions + obligations_.transitions();
  }
  /// Current element depth (root = 1).
  int depth() const { return depth_; }

 private:
  // --- decision machinery -------------------------------------------------

  // A navigational match candidate: the rule matched (or may match) at
  // `depth`; it holds iff all obligations in `deps` resolve true.
  struct Candidate {
    int depth = 0;
    std::vector<int> deps;
  };

  // Snapshot of all candidates relevant to one node's decision: per rule,
  // every candidate on the current root-to-node path.
  struct Snapshot {
    std::vector<std::vector<Candidate>> auth;  // indexed by rule
    std::vector<Candidate> query;
    bool has_query = false;
    size_t ModeledBytes() const;
  };

  struct DecisionResult {
    Tri auth = Tri::kNo;
    Tri query = Tri::kYes;
    Tri delivered = Tri::kNo;
  };

  // One NFA token: active state plus the obligations accumulated along its
  // path through predicated steps.
  struct Token {
    int state = 0;
    std::vector<int> deps;
  };

  // Execution state of one rule's (or the query's) navigational automaton.
  struct NavRun {
    const CompiledRule* rule = nullptr;
    bool positive = true;
    // Token stack: tokens_[d] = active tokens at depth d (0 = virtual root).
    std::vector<std::vector<Token>> tokens;
    // Match stack: cands[d] = candidates created at depth d.
    std::vector<std::vector<Candidate>> cands;
  };

  // A buffered output event awaiting decision or order release.
  struct OutEvent {
    xml::Event event;
    int depth = 0;
    // Only for kOpen events:
    Snapshot snapshot;
    bool decided = false;
    bool delivered = false;
  };

  StreamingEvaluator() = default;

  Status HandleOpen(const xml::Event& event);
  Status HandleValue(const xml::Event& event);
  Status HandleClose(const xml::Event& event);

  // Advances one automaton on an open event; records candidates and
  // instantiates obligations. Returns false on internal error.
  void AdvanceNav(NavRun* run, const std::string& tag);

  // Builds the decision snapshot for the element just opened.
  Snapshot BuildSnapshot() const;
  // Evaluates a snapshot under current obligation resolutions.
  DecisionResult Decide(const Snapshot& snap) const;
  // Candidate status under current resolutions.
  enum class CandStatus : uint8_t { kHolds, kDead, kPending };
  CandStatus StatusOf(const Candidate& c) const;

  // Order-preserving output: append then flush as far as decisions allow.
  Status FlushPipeline();
  Status DispatchToComposer(OutEvent* ev);

  // --- composer: lazy ancestors / scaffolding ------------------------------
  struct ComposerEntry {
    std::string tag;
    std::vector<xml::Attribute> attrs;
    bool delivered = false;
    bool emitted = false;
  };
  Status ComposeOpen(const xml::Event& event, bool delivered);
  Status ComposeValue(const xml::Event& event);
  Status ComposeClose(const xml::Event& event);
  Status EmitScaffolding();

  void UpdatePeaks();

  // --- members -------------------------------------------------------------
  std::vector<CompiledRule> compiled_rules_;
  std::unique_ptr<CompiledRule> compiled_query_;
  std::vector<NavRun> runs_;        // one per rule
  std::unique_ptr<NavRun> query_run_;
  ObligationSet obligations_;
  xml::EventSink* out_ = nullptr;

  int depth_ = 0;
  bool finished_ = false;
  std::deque<OutEvent> pipeline_;
  std::vector<ComposerEntry> composer_;
  // Decision for the innermost open element (used by CanSkipCurrentSubtree).
  DecisionResult last_open_decision_;
  bool last_open_decided_definitively_ = false;

  EvaluatorStats stats_;
};

}  // namespace csxa::core

#endif  // CSXA_CORE_EVALUATOR_H_
