#ifndef CSXA_CORE_EVALUATOR_H_
#define CSXA_CORE_EVALUATOR_H_

/// \file evaluator.h
/// \brief The streaming access-control evaluator — the paper's core
/// contribution (§2.3).
///
/// The evaluator consumes open/value/close events and produces the
/// *delivered view*: every permitted element (with attributes and text)
/// that also lies in the optional query scope, plus the bare tags of their
/// denied ancestors (structure scaffolding preserving well-formedness).
///
/// Machinery, mapped to the paper's vocabulary:
///  - each rule is a non-deterministic automaton (core/automaton.h);
///  - a *token stack* tracks the set of active states per depth,
///    materializing all paths the NFA can follow;
///  - a *predicate set* (core/obligation.h) records predicate instances
///    and their resolution;
///  - the per-rule *match stacks* of candidates generalize the paper's
///    sign stack: the conflict-resolution decision (closed policy,
///    Denial-Takes-Precedence, Most-Specific-Object-Takes-Precedence) is
///    computed from the deepest holding candidates;
///  - *pending* rules (final state reached, predicates unresolved) make
///    node decisions tri-state; undecidable output is buffered in an
///    order-preserving pipeline and flushed when obligations resolve.
///
/// Dispatch is interned: Create() interns every tag named by a rule into
/// the evaluator's *rule alphabet* and precomputes, per rule, bitmask
/// transition tables keyed by (rule, state, TagId). A document event
/// resolves its tag to the alphabet once (O(1) via BindDocumentTags, one
/// hash probe otherwise) and then only rules with a live transition on
/// that tag run their token loop; rules whose token set has gone empty
/// are dormant at O(1) per event until their depth closes.
///
/// The evaluator never materializes the document; its modeled memory
/// footprint (ModeledRamBytes, maintained incrementally) is what the
/// smart card would consume.

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "core/automaton.h"
#include "core/obligation.h"
#include "core/rule.h"
#include "xml/event.h"

namespace csxa::core {

/// Tri-state outcome used for authorization, query scope and delivery.
enum class Tri : uint8_t { kNo = 0, kYes = 1, kPending = 2 };

/// \brief Counters exposed for benchmarks and the SOE cost model.
struct EvaluatorStats {
  size_t events = 0;
  size_t nfa_transitions = 0;
  size_t obligations_created = 0;
  size_t candidates_created = 0;
  size_t nodes_permitted = 0;
  size_t nodes_denied = 0;
  size_t nodes_initially_pending = 0;
  size_t buffered_events_peak = 0;
  size_t modeled_ram_peak = 0;
  size_t subtrees_skipped = 0;
};

/// \brief Streaming evaluator for one (document, subject[, query]) session.
class StreamingEvaluator : public xml::EventSink {
 public:
  /// Creates an evaluator for `rules` (already filtered to one subject).
  /// `query` may be null (whole authorized view). Delivered-view events are
  /// pushed into `out`, which must outlive the evaluator.
  static Result<std::unique_ptr<StreamingEvaluator>> Create(
      const std::vector<AccessRule>& rules, const xpath::PathExpr* query,
      xml::EventSink* out);

  /// Installs an O(1) translation from `doc_tags` ids (the producer's
  /// dictionary — e.g. the document codec's) to the evaluator's rule
  /// alphabet, so events carrying tag ids skip the per-event hash probe.
  /// Call before feeding events; without it, events fall back to a name
  /// lookup. The interner is copied from, not retained.
  void BindDocumentTags(const Interner& doc_tags);

  /// Feeds the next document event (kEnd finishes the stream).
  Status OnEvent(const xml::Event& event) override;

  /// Borrowed fast path: the evaluator keys on TagId and copies bytes only
  /// into its pooled buffered-output levels, so a view is consumed in
  /// place — no per-event materialization anywhere on the permit path.
  Status OnEventView(const xml::EventView& view) override;

  /// Must be called (or an kEnd event fed) after the last event; verifies
  /// that all pending output was resolved and flushed.
  Status Finish();

  /// \name Skip-index support (§2.3)
  /// @{
  /// Decides whether the subtree of the element just opened can be skipped
  /// without changing any output: its root's delivery must be definitively
  /// negative, no positive automaton may reach a match inside, and no live
  /// predicate instance may resolve inside. `has_tag` answers membership
  /// in the subtree's tag set; `subtree_nonempty` tells whether the
  /// subtree contains at least one element; `has_text` whether it contains
  /// character data.
  bool CanSkipCurrentSubtree(
      const std::function<bool(std::string_view)>& has_tag,
      bool subtree_nonempty, bool has_text);
  /// Records that the caller skipped the current subtree (stats only; the
  /// caller must next feed the matching close event).
  void NoteSubtreeSkipped() { ++stats_.subtrees_skipped; }
  /// @}

  /// Current modeled on-card memory footprint in bytes.
  size_t ModeledRamBytes() const;
  /// Statistics accumulated so far.
  const EvaluatorStats& stats() const { return stats_; }
  /// Navigational plus predicate NFA transitions (cost-model input).
  size_t TotalTransitions() const {
    return stats_.nfa_transitions + obligations_.transitions();
  }
  /// Current element depth (root = 1).
  int depth() const { return depth_; }

 private:
  // --- decision machinery -------------------------------------------------

  // A navigational match candidate: the rule matched (or may match) at
  // `depth`; it holds iff all obligations in `deps` resolve true.
  struct Candidate {
    int depth = 0;
    std::vector<int> deps;
  };

  // Flattened candidate inside a buffered Snapshot; deps live in the
  // snapshot's shared pool (arena), so dep-less candidates cost nothing.
  struct SnapCand {
    int depth = 0;
    uint32_t rule = 0;  // slot index (auth candidates only)
    bool positive = true;
    uint32_t deps_begin = 0;
    uint32_t deps_end = 0;
  };

  // Snapshot of all candidates relevant to one node's decision, grouped
  // by rule (auth entries are contiguous per rule, in slot order).
  // Only built for nodes whose decision is still pending; pooled.
  struct Snapshot {
    std::vector<SnapCand> auth;
    std::vector<SnapCand> query;
    std::vector<int> deps;
    bool has_query = false;
    size_t ModeledBytes() const;
    void Clear() {
      auth.clear();
      query.clear();
      deps.clear();
      has_query = false;
    }
  };

  struct DecisionResult {
    Tri auth = Tri::kNo;
    Tri query = Tri::kYes;
    Tri delivered = Tri::kNo;
  };

  // One NFA token: active state plus the obligations accumulated along its
  // path through predicated steps.
  struct Token {
    int state = 0;
    std::vector<int> deps;
  };

  // Execution state of one rule's (or the query's) navigational automaton.
  struct NavRun {
    const CompiledRule* rule = nullptr;
    bool positive = true;
    // Token stack: tokens_[d] = active tokens at depth d (0 = virtual
    // root). Levels above `tokens.size()-1` that would be empty are not
    // materialized; `dormant` counts them instead.
    std::vector<std::vector<Token>> tokens;
    // Match stack: cands[d] = candidates created at depth d.
    std::vector<std::vector<Candidate>> cands;
    // Bitmask of states occupied by tokens[d] (valid for sizes <= 64).
    std::vector<uint64_t> live_masks;
    // Modeled bytes contributed by level d, split so repeated levels
    // (which share tokens but never candidates) account correctly.
    std::vector<uint32_t> level_token_units;
    std::vector<uint32_t> level_cand_units;
    // Run-length compression: level_repeats[d] counts additional depths
    // whose token set is identical to tokens[d] (self-loop steady state,
    // no advances, no candidates). They are popped before tokens[d] is.
    std::vector<uint32_t> level_repeats;
    // Number of virtual empty levels above tokens.back(): while > 0 the
    // rule is untouched by events except for depth bookkeeping.
    int dormant = 0;
    // Total candidates across all levels (0 = skip in decisions).
    size_t cand_count = 0;
    // Candidates with unresolved-dependency lists. When 0, every candidate
    // holds unconditionally and the rule's decision input is just the
    // deepest candidate depth — O(1) via cand_level_depths.back().
    size_t dep_cand_count = 0;
    // Depth of each materialized level that holds >= 1 candidate (stack).
    std::vector<int> cand_level_depths;
  };

  // Static per-rule dispatch data (index keyed by (rule, state, TagId);
  // tag-specific edge masks live in edge_masks_).
  struct RuleStatic {
    uint64_t self_loop_mask = 0;
    uint64_t wildcard_edge_mask = 0;
    // Automaton has > 64 states: masks are unusable, always run the
    // token loop (correct, just slower; unreachable for sane rules).
    bool oversize = false;
  };

  // A buffered output event awaiting decision or order release.
  struct OutEvent {
    xml::Event event;
    int depth = 0;
    // Only for still-undecided kOpen events:
    Snapshot snapshot;
    bool has_snapshot = false;
    bool decided = false;
    bool delivered = false;
    size_t modeled = 0;  // cached ModeledRamBytes contribution
  };

  StreamingEvaluator() = default;

  Status HandleOpen(const xml::EventView& event);
  Status HandleValue(const xml::EventView& event);
  Status HandleClose(const xml::EventView& event);

  // Resolves an event's tag against the rule alphabet (kNoTagId = no
  // literal edge anywhere can match).
  TagId ResolveTag(const xml::EventView& event) const;
  uint64_t EdgeMask(size_t slot, TagId tag) const {
    return tag == kNoTagId ? 0 : edge_masks_[tag * num_slots_ + slot];
  }

  // Advances one automaton on an open event; records candidates and
  // instantiates obligations. `slot` indexes rule_static_/edge_masks_.
  void AdvanceNav(NavRun* run, size_t slot, TagId tag);
  // Pops one level (or one dormant unit) on a close event.
  void RetreatNav(NavRun* run);

  // Decision over the live run state (no materialization).
  DecisionResult DecideLive() const;
  // Builds the buffered snapshot for a still-pending node (pooled).
  Snapshot BuildSnapshot();
  void ReleaseSnapshot(Snapshot&& snap);
  // Evaluates a buffered snapshot under current obligation resolutions.
  DecisionResult Decide(const Snapshot& snap) const;
  // Candidate status under current resolutions.
  enum class CandStatus : uint8_t { kHolds, kDead, kPending };
  CandStatus StatusOf(const Candidate& c) const;
  CandStatus StatusOfSpan(const Snapshot& snap, const SnapCand& c) const;

  // Shared conflict-resolution fold (closed policy, DTP, MSOTP) over the
  // two extreme worlds; see Decide()/DecideLive().
  struct WorldAcc {
    int best_depth = -1;
    bool deny_at_best = false;
    void AddRule(int eff, bool positive) {
      if (eff < 0) return;
      if (eff > best_depth) {
        best_depth = eff;
        deny_at_best = !positive;
      } else if (eff == best_depth && !positive) {
        deny_at_best = true;  // Denial-Takes-Precedence at equal depth
      }
    }
    bool Permit() const { return best_depth >= 0 && !deny_at_best; }
  };
  static DecisionResult Combine(const WorldAcc& deny_world,
                                const WorldAcc& permit_world, bool has_query,
                                bool query_min, bool query_max);

  // Order-preserving output: append then flush as far as decisions allow.
  Status FlushPipeline();
  Status DispatchToComposer(OutEvent* ev);
  OutEvent AcquireOut(const xml::EventView& event, int depth);
  void RecycleOut(OutEvent&& ev);

  // --- composer: lazy ancestors / scaffolding ------------------------------
  // The stack lives in composer_[0 .. composer_size_); retired entries
  // keep their string/vector capacity for reuse (no per-node allocation).
  struct ComposerEntry {
    std::string tag;
    TagId tag_id = kNoTagId;
    std::vector<xml::Attribute> attrs;
    bool delivered = false;
    bool emitted = false;
  };
  Status ComposeOpen(const xml::EventView& event, bool delivered);
  Status ComposeValue(const xml::EventView& event);
  Status ComposeClose(const xml::EventView& event);
  Status EmitScaffolding();
  // Emits an open/close as a view borrowing the composer entry's strings
  // (valid for the duration of the sink call).
  Status EmitOpen(const ComposerEntry& entry, bool bare);
  Status EmitClose(const ComposerEntry& entry);

  void UpdatePeaks();

  // --- members -------------------------------------------------------------
  std::vector<CompiledRule> compiled_rules_;
  std::unique_ptr<CompiledRule> compiled_query_;
  std::vector<NavRun> runs_;        // one per rule
  std::unique_ptr<NavRun> query_run_;
  ObligationSet obligations_;
  xml::EventSink* out_ = nullptr;

  // Dispatch index: rule alphabet, per-slot static masks and a dense
  // (TagId × slot) table of literal-edge masks. Slot i < runs_.size() is
  // rule i; the last slot (when a query exists) is the query.
  Interner rule_tags_;
  std::vector<RuleStatic> rule_static_;
  std::vector<uint64_t> edge_masks_;
  size_t num_slots_ = 0;
  // Producer-id → rule-alphabet translation (BindDocumentTags).
  std::vector<TagId> doc_to_rule_;

  int depth_ = 0;
  bool finished_ = false;
  std::deque<OutEvent> pipeline_;
  std::vector<ComposerEntry> composer_;
  size_t composer_size_ = 0;
  // Attribute-view scratch, one per borrow site so a view built for an
  // incoming event is never clobbered while still live: OnEvent's
  // owning→view bridge, pipeline dispatch, and composer emission.
  std::vector<xml::AttrView> in_attr_scratch_;
  std::vector<xml::AttrView> dispatch_attr_scratch_;
  std::vector<xml::AttrView> emit_attr_scratch_;
  // Decision for the innermost open element (used by CanSkipCurrentSubtree).
  DecisionResult last_open_decision_;
  bool last_open_decided_definitively_ = false;

  // Pools: retired level vectors, snapshots and pipeline slots are reused
  // so the steady-state event loop performs no heap allocation.
  std::vector<std::vector<Token>> token_level_pool_;
  std::vector<std::vector<Candidate>> cand_level_pool_;
  std::vector<Snapshot> snapshot_pool_;
  std::vector<OutEvent> out_pool_;
  std::vector<int> pred_scratch_;  // per-rule predicate-instance cache

  // Incremental ModeledRamBytes components.
  size_t run_modeled_units_ = 0;
  size_t pipeline_modeled_ = 0;
  size_t composer_modeled_ = 0;

  EvaluatorStats stats_;
};

}  // namespace csxa::core

#endif  // CSXA_CORE_EVALUATOR_H_
