#include "core/obligation.h"

#include <algorithm>

namespace csxa::core {

PredRun::PredRun(const CompiledPath* path, int ctx_depth)
    : path_(path), ctx_depth_(ctx_depth) {
  stack_.push_back({0});
}

bool PredRun::OnOpen(std::string_view tag, int depth, TagId tag_id) {
  if (satisfied_) return false;
  // The run only sees the subtree: depth must be ctx_depth_+stack size.
  std::vector<int> next;
  const std::vector<int>& top = stack_.back();
  for (int s : top) {
    const CompiledPath::State& st = path_->states[static_cast<size_t>(s)];
    ++transitions_;
    bool name_match =
        st.wildcard || (st.tag_id != kNoTagId && tag_id != kNoTagId
                            ? st.tag_id == tag_id
                            : st.tag == tag);
    if (st.self_loop) next.push_back(s);
    if (s + 1 <= path_->final_state && name_match) {
      int t = s + 1;
      if (t == path_->final_state) {
        if (path_->op == xpath::CmpOp::kExists) {
          satisfied_ = true;
          return true;
        }
        // Value test: capture this node's direct text until it closes.
        captures_.push_back(Capture{depth, std::string()});
      }
      next.push_back(t);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  stack_.push_back(std::move(next));
  return false;
}

void PredRun::OnValue(std::string_view text, int depth) {
  if (satisfied_) return;
  for (Capture& c : captures_) {
    if (c.depth == depth) c.text += text;
  }
}

bool PredRun::OnClose(int depth) {
  if (satisfied_) return false;
  bool newly = false;
  for (size_t i = 0; i < captures_.size();) {
    if (captures_[i].depth == depth) {
      if (xpath::CompareValue(captures_[i].text, path_->op, path_->literal)) {
        satisfied_ = true;
        newly = true;
      }
      captures_.erase(captures_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  if (stack_.size() > 1) stack_.pop_back();
  return newly;
}

std::vector<int> PredRun::ActiveStates() const {
  if (satisfied_) return {};
  return stack_.back();
}

bool PredRun::HasCaptureAtDepth(int depth) const {
  for (const Capture& c : captures_) {
    if (c.depth == depth) return true;
  }
  return false;
}

bool PredRun::CanResolveWithin(
    const std::function<bool(std::string_view)>& has_tag,
    bool subtree_nonempty) const {
  if (satisfied_) return false;
  return CanReachFinal(*path_, stack_.back(), has_tag, subtree_nonempty);
}

size_t PredRun::ModeledBytes() const {
  size_t n = 0;
  for (const auto& level : stack_) n += level.size();  // 1 byte per state id
  for (const Capture& c : captures_) n += 2 + c.text.size();
  return n;
}

int ObligationSet::Create(const CompiledPath* path, int ctx_depth) {
  int id = static_cast<int>(entries_.size());
  Entry e;
  e.ctx_depth = ctx_depth;
  e.run = std::make_unique<PredRun>(path, ctx_depth);
  entries_.push_back(std::move(e));
  live_.push_back(id);
  return id;
}

bool ObligationSet::Sweep() {
  bool changed = false;
  for (size_t i = 0; i < live_.size();) {
    Entry& e = entries_[static_cast<size_t>(live_[i])];
    if (e.run && e.run->satisfied()) {
      e.state = State::kTrue;
      retired_transitions_ += e.run->transitions();
      e.run.reset();
      changed = true;
    }
    if (e.state != State::kPending) {
      live_.erase(live_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  return changed;
}

bool ObligationSet::OnOpen(std::string_view tag, int depth, TagId tag_id) {
  bool any = false;
  for (int id : live_) {
    Entry& e = entries_[static_cast<size_t>(id)];
    if (e.run->OnOpen(tag, depth, tag_id)) any = true;
  }
  if (any) Sweep();
  return any;
}

bool ObligationSet::OnValue(std::string_view text, int depth) {
  for (int id : live_) {
    entries_[static_cast<size_t>(id)].run->OnValue(text, depth);
  }
  return false;
}

bool ObligationSet::OnClose(int depth) {
  bool any = false;
  for (int id : live_) {
    Entry& e = entries_[static_cast<size_t>(id)];
    if (e.run->OnClose(depth)) any = true;
    // Context node closing unsatisfied resolves the obligation to false.
    if (!e.run->satisfied() && e.ctx_depth == depth) {
      e.state = State::kFalse;
      retired_transitions_ += e.run->transitions();
      e.run.reset();
      any = true;
    }
  }
  if (any) Sweep();
  return any;
}

bool ObligationSet::BlocksSkip(
    const std::function<bool(std::string_view)>& has_tag,
    bool subtree_nonempty, int subtree_root_depth) const {
  for (int id : live_) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    if (!e.run) continue;
    if (e.run->HasCaptureAtDepth(subtree_root_depth)) return true;
    // Reconstruct the path pointer via the run (it stores it); we expose
    // reachability through the run's active states.
    if (e.run->CanResolveWithin(has_tag, subtree_nonempty)) return true;
  }
  return false;
}

size_t ObligationSet::ModeledBytes() const {
  size_t n = 0;
  for (int id : live_) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    n += 4 + (e.run ? e.run->ModeledBytes() : 0);
  }
  return n;
}

size_t ObligationSet::transitions() const {
  size_t n = retired_transitions_;
  for (const Entry& e : entries_) {
    if (e.run) n += e.run->transitions();
  }
  return n;
}

}  // namespace csxa::core
