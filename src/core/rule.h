#ifndef CSXA_CORE_RULE_H_
#define CSXA_CORE_RULE_H_

/// \file rule.h
/// \brief The access-control rule model of §2.2.
///
/// Rules are `<sign, subject, object>` triples; objects are XPath
/// expressions in XP{[],*,//}. A rule propagates from the objects it
/// matches to all their descendants. Conflicts are resolved by
/// Denial-Takes-Precedence and Most-Specific-Object-Takes-Precedence, with
/// a closed default (a node covered by no rule is forbidden).

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace csxa::core {

/// Rule sign: permission or prohibition for the read operation.
enum class Sign : uint8_t {
  kPermit = 0,
  kDeny = 1,
};

/// \brief One access rule.
struct AccessRule {
  Sign sign = Sign::kPermit;
  /// The subject the rule applies to (user or role identifier).
  std::string subject;
  /// The object: an XPath expression over the document.
  xpath::PathExpr object;

  /// The source text of the object (kept for display/serialization).
  std::string object_text;
};

/// \brief A set of rules, typically all rules of one document.
class RuleSet {
 public:
  RuleSet() = default;

  /// Appends a rule given its parts; parses and validates the object.
  Status Add(Sign sign, const std::string& subject, const std::string& object);

  /// Parses the one-rule-per-line text format:
  ///
  ///     # comment
  ///     + alice //meeting
  ///     - bob   //note[visibility="private"]
  ///
  /// '+' is a permission, '-' a prohibition; subject is a single token.
  static Result<RuleSet> ParseText(const std::string& text);

  /// Serializes back to the text format (round-trips through ParseText).
  std::string ToText() const;

  /// Compact binary encoding (used for sealing rule sets for the DSP).
  void EncodeTo(ByteWriter* out) const;
  /// Decodes the binary encoding.
  static Result<RuleSet> DecodeFrom(ByteReader* in);

  /// All rules.
  const std::vector<AccessRule>& rules() const { return rules_; }
  /// Rules whose subject equals `subject`.
  std::vector<AccessRule> ForSubject(const std::string& subject) const;
  /// Distinct subjects in insertion order.
  std::vector<std::string> Subjects() const;

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<AccessRule> rules_;
};

}  // namespace csxa::core

#endif  // CSXA_CORE_RULE_H_
