#include "core/automaton.h"

namespace csxa::core {

size_t CompiledRule::TotalStates() const {
  size_t n = nav.size();
  for (const CompiledPath& p : predicates) n += p.size();
  return n;
}

namespace {

// Builds the state chain for `steps`, appending predicate compilations to
// `preds` when non-null (null for predicate paths, where nested predicates
// are rejected).
Result<CompiledPath> CompileSteps(const std::vector<xpath::Step>& steps,
                                  std::vector<CompiledPath>* preds) {
  if (steps.empty()) return Status::InvalidArgument("empty path");
  CompiledPath path;
  path.states.resize(steps.size() + 1);
  for (size_t i = 0; i < steps.size(); ++i) {
    const xpath::Step& step = steps[i];
    CompiledPath::State& from = path.states[i];
    from.self_loop = (step.axis == xpath::Axis::kDescendant);
    from.wildcard = step.wildcard;
    from.tag = step.tag;
    CompiledPath::State& to = path.states[i + 1];
    for (const xpath::Predicate& p : step.predicates) {
      if (preds == nullptr) {
        return Status::NotSupported(
            "nested predicates are outside the streaming fragment");
      }
      CSXA_ASSIGN_OR_RETURN(CompiledPath pp,
                            CompileRelative(p.path, p.op, p.literal));
      to.pred_ids.push_back(static_cast<int>(preds->size()));
      preds->push_back(std::move(pp));
    }
  }
  path.final_state = static_cast<int>(steps.size());
  return path;
}

}  // namespace

Result<CompiledPath> CompileRelative(const xpath::RelativePath& path,
                                     xpath::CmpOp op,
                                     const std::string& literal) {
  CSXA_ASSIGN_OR_RETURN(CompiledPath cp, CompileSteps(path.steps, nullptr));
  cp.op = op;
  cp.literal = literal;
  return cp;
}

Result<CompiledRule> CompileExpr(const xpath::PathExpr& expr, bool positive) {
  CompiledRule rule;
  rule.positive = positive;
  rule.source = xpath::ToString(expr);
  CSXA_ASSIGN_OR_RETURN(rule.nav, CompileSteps(expr.steps, &rule.predicates));
  return rule;
}

bool CanReachFinal(const CompiledPath& path, const std::vector<int>& active,
                   const std::function<bool(std::string_view)>& has_tag,
                   bool subtree_nonempty) {
  if (!subtree_nonempty) return false;
  // BFS over states; an edge from state s to s+1 is traversable if its
  // name test can be satisfied by some tag in the subtree. Self-loops do
  // not change reachability.
  std::vector<bool> visited(path.states.size(), false);
  std::vector<int> frontier;
  for (int s : active) {
    if (s >= 0 && s < static_cast<int>(path.states.size()) && !visited[s]) {
      visited[s] = true;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    int s = frontier.back();
    frontier.pop_back();
    if (s == path.final_state) return true;
    const CompiledPath::State& st = path.states[s];
    int next = s + 1;
    if (next >= static_cast<int>(path.states.size())) continue;
    bool traversable = st.wildcard || has_tag(st.tag);
    if (traversable && !visited[next]) {
      visited[next] = true;
      frontier.push_back(next);
    }
  }
  return false;
}

}  // namespace csxa::core
