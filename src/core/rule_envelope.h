#ifndef CSXA_CORE_RULE_ENVELOPE_H_
#define CSXA_CORE_RULE_ENVELOPE_H_

/// \file rule_envelope.h
/// \brief Versioned, sealed rule sets — the access-rights update protocol.
///
/// Demonstration objective 2 (§1) stresses that "the tamper resistance of
/// the access control relies not only on the SOE but also on the whole
/// environment (e.g., communication protocol, access rights update
/// protocol)". The rules blob on the DSP is encrypted and MACed, so it
/// cannot be forged — but an untrusted DSP could *replay a stale version*
/// (e.g., re-serve a permissive policy after the owner restricted it).
///
/// Defense: the owner seals a monotonically increasing version number
/// inside the envelope; the card records, in its secure stable storage,
/// the highest version it has seen per document and refuses anything
/// older. A card that never saw the newer policy cannot detect the
/// rollback — the inherent limit of offline revocation, shared with the
/// original system.

#include <cstdint>

#include "common/random.h"
#include "core/rule.h"
#include "crypto/container.h"

namespace csxa::core {

/// A rule set together with its owner-assigned version.
struct VersionedRules {
  uint64_t version = 0;
  RuleSet rules;
};

/// Seals (version || rules) under the document key's record format.
inline Bytes SealRuleSet(const crypto::SymmetricKey& key, const RuleSet& rules,
                         uint64_t version, Rng* rng) {
  ByteWriter plain;
  plain.PutU64(version);
  rules.EncodeTo(&plain);
  return crypto::SealRecord(key, plain.bytes(), rng);
}

/// Opens a sealed rule envelope, verifying its MAC.
inline Result<VersionedRules> OpenRuleSet(const crypto::SymmetricKey& key,
                                          Span sealed) {
  CSXA_ASSIGN_OR_RETURN(Bytes plain, crypto::OpenRecord(key, sealed));
  ByteReader r(plain);
  VersionedRules out;
  if (!r.GetU64(&out.version)) {
    return Status::ParseError("rule envelope missing version");
  }
  CSXA_ASSIGN_OR_RETURN(out.rules, RuleSet::DecodeFrom(&r));
  return out;
}

}  // namespace csxa::core

#endif  // CSXA_CORE_RULE_ENVELOPE_H_
