#ifndef CSXA_CORE_REF_EVALUATOR_H_
#define CSXA_CORE_REF_EVALUATOR_H_

/// \file ref_evaluator.h
/// \brief DOM-based reference implementation of the access-control
/// semantics — the oracle against which the streaming evaluator is tested,
/// and the engine of the trusted-server baseline.
///
/// Implements exactly the semantics of DESIGN.md §4 by brute force:
/// materialize the document, compute every rule's match set, resolve
/// conflicts per node, prune.

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/rule.h"
#include "xml/dom.h"
#include "xpath/ast.h"

namespace csxa::core {

/// \brief Per-node authorization outcome (reference semantics).
struct NodeAuth {
  bool permitted = false;
  /// Depth of the most specific rule match governing the decision
  /// (-1 when the closed policy applied).
  int deciding_depth = -1;
};

/// Computes the authorization of a single element node under `rules`
/// (already filtered to one subject).
NodeAuth AuthorizeNode(const xml::DomNode* root,
                       const std::vector<AccessRule>& rules,
                       const xml::DomNode* node);

/// \brief Builds the delivered view: permitted elements (attributes and
/// direct text included) restricted to the query scope, plus bare tags of
/// ancestors of delivered nodes. Returns an empty document if nothing is
/// delivered.
///
/// `query` may be null (no query restriction). The result serializes, in
/// canonical form, to exactly what the streaming evaluator emits.
Result<xml::DomDocument> BuildAuthorizedView(
    const xml::DomDocument& doc, const std::vector<AccessRule>& rules,
    const xpath::PathExpr* query);

/// Convenience: fraction of element nodes delivered (0 when empty), used
/// by workload calibration in benchmarks.
double AuthorizedFraction(const xml::DomDocument& doc,
                          const std::vector<AccessRule>& rules,
                          const xpath::PathExpr* query);

/// Batch authorization: permitted flag for every element of the document
/// in pre-order (index 0 = root). Powers the subset-encryption baseline.
std::vector<bool> AuthorizeAll(const xml::DomDocument& doc,
                               const std::vector<AccessRule>& rules);

}  // namespace csxa::core

#endif  // CSXA_CORE_REF_EVALUATOR_H_
