#ifndef CSXA_BASELINE_SUBSET_ENCRYPTION_H_
#define CSXA_BASELINE_SUBSET_ENCRYPTION_H_

/// \file subset_encryption.h
/// \brief The *static* client-based access-control alternative ([1, 6]).
///
/// "Whatever the granularity of sharing, the dataset is split in subsets
/// reflecting a current sharing situation, each encrypted with a different
/// key. Once the dataset is encrypted, changes in the access control rules
/// definition may impact the subset boundaries, hence incurring a partial
/// re-encryption of the dataset and a potential redistribution of keys"
/// (§1). This module implements exactly that scheme so the motivating
/// claim can be measured (EXP-DYN): elements are partitioned by their
/// subject-visibility vector, each equivalence class is encrypted under
/// its own key, subjects hold the keys of the classes they may read, and a
/// policy change re-encrypts every class whose membership changed and
/// redistributes keys.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/rule.h"
#include "crypto/container.h"
#include "xml/dom.h"

namespace csxa::baseline {

/// Build-time statistics.
struct SubsetBuildStats {
  size_t element_count = 0;
  size_t class_count = 0;
  uint64_t encrypted_bytes = 0;
  size_t keys_total = 0;
  double avg_keys_per_subject = 0;
};

/// Cost of one subject's full read under the static scheme.
struct SubsetQueryCost {
  uint64_t bytes_transferred = 0;  // every readable class, in full
  uint64_t bytes_decrypted = 0;
  size_t classes_read = 0;
  size_t elements_delivered = 0;
  /// Server round trips: each class blob is its own fetch (the scheme has
  /// no batch protocol — the comparison point for dsp::Service batching).
  uint64_t round_trips = 0;
};

/// Cost of a policy change under the static scheme.
struct PolicyChangeStats {
  size_t elements_moved = 0;       // elements whose visibility changed
  size_t classes_reencrypted = 0;  // partition cells rebuilt
  uint64_t bytes_reencrypted = 0;
  size_t keys_redistributed = 0;   // key grants added or revoked
  size_t class_count_after = 0;
};

/// \brief The static subset-encryption store.
///
/// Supports at most 64 distinct subjects (visibility vectors are packed in
/// a 64-bit mask) — far beyond the communities in the paper's scenarios.
class SubsetEncryptionStore {
 public:
  /// Builds the partition for `doc` under `rules`. The document must
  /// outlive the store.
  static Result<SubsetEncryptionStore> Build(const xml::DomDocument* doc,
                                             const core::RuleSet& rules,
                                             Rng* rng);

  const SubsetBuildStats& build_stats() const { return build_stats_; }

  /// Cost for `subject` to obtain its authorized data: the client must
  /// download and decrypt every class it holds a key for (no server-side
  /// filtering — the server is untrusted and sees only ciphertext).
  SubsetQueryCost QueryCost(const std::string& subject) const;

  /// Applies a rule change: recomputes the partition, re-encrypts every
  /// cell containing an element whose visibility changed, and counts key
  /// redistribution. This is the cost C-SXA avoids (its equivalent is
  /// re-sealing a few hundred bytes of rules).
  Result<PolicyChangeStats> ApplyPolicyChange(const core::RuleSet& new_rules,
                                              Rng* rng);

  /// Subjects in the current policy.
  const std::vector<std::string>& subjects() const { return subjects_; }

 private:
  SubsetEncryptionStore() = default;

  // Computes per-element visibility masks for `rules` over subjects_.
  Result<std::vector<uint64_t>> ComputeMasks(const core::RuleSet& rules) const;
  // (Re)encrypts all classes from masks; returns total encrypted bytes.
  uint64_t RebuildClasses(Rng* rng);

  const xml::DomDocument* doc_ = nullptr;
  std::vector<std::string> subjects_;
  std::vector<uint64_t> masks_;       // per element (pre-order)
  std::vector<size_t> element_bytes_; // serialized size per element
  struct ClassInfo {
    uint64_t mask = 0;
    uint64_t plain_bytes = 0;
    uint64_t sealed_bytes = 0;
    size_t members = 0;
    crypto::SymmetricKey key;
  };
  std::map<uint64_t, ClassInfo> classes_;
  SubsetBuildStats build_stats_;
};

}  // namespace csxa::baseline

#endif  // CSXA_BASELINE_SUBSET_ENCRYPTION_H_
