#include "baseline/subset_encryption.h"

#include <bit>
#include <set>

#include "core/ref_evaluator.h"
#include "xml/escape.h"

namespace csxa::baseline {

namespace {

// Serialized size of one element in isolation: its own markup plus direct
// text (what moves between classes when visibility changes).
size_t ElementOwnBytes(const xml::DomNode* n) {
  size_t bytes = 2 * n->tag().size() + 5;  // <tag></tag>
  for (const auto& a : n->attrs()) bytes += a.name.size() + a.value.size() + 4;
  bytes += n->DirectText().size();
  return bytes;
}

void CollectElements(const xml::DomNode* n,
                     std::vector<const xml::DomNode*>* out) {
  n->CollectElements(out);
}

}  // namespace

Result<std::vector<uint64_t>> SubsetEncryptionStore::ComputeMasks(
    const core::RuleSet& rules) const {
  std::vector<const xml::DomNode*> elements;
  CollectElements(doc_->root(), &elements);
  std::vector<uint64_t> masks(elements.size(), 0);
  for (size_t s = 0; s < subjects_.size(); ++s) {
    std::vector<bool> permitted =
        core::AuthorizeAll(*doc_, rules.ForSubject(subjects_[s]));
    for (size_t i = 0; i < elements.size(); ++i) {
      if (permitted[i]) masks[i] |= (uint64_t{1} << s);
    }
  }
  return masks;
}

uint64_t SubsetEncryptionStore::RebuildClasses(Rng* rng) {
  classes_.clear();
  for (size_t i = 0; i < masks_.size(); ++i) {
    if (masks_[i] == 0) continue;  // visible to nobody: not published
    ClassInfo& cls = classes_[masks_[i]];
    cls.mask = masks_[i];
    cls.plain_bytes += element_bytes_[i];
    cls.members += 1;
  }
  uint64_t total = 0;
  for (auto& [mask, cls] : classes_) {
    cls.key = crypto::SymmetricKey::Generate(rng);
    // CBC + MAC overhead of the sealed class blob.
    cls.sealed_bytes = 16 + 32 + ((cls.plain_bytes / 16) + 1) * 16;
    total += cls.sealed_bytes;
  }
  return total;
}

Result<SubsetEncryptionStore> SubsetEncryptionStore::Build(
    const xml::DomDocument* doc, const core::RuleSet& rules, Rng* rng) {
  if (doc == nullptr || doc->root() == nullptr) {
    return Status::InvalidArgument("subset store needs a document");
  }
  SubsetEncryptionStore store;
  store.doc_ = doc;
  store.subjects_ = rules.Subjects();
  if (store.subjects_.size() > 64) {
    return Status::NotSupported("subset baseline supports at most 64 subjects");
  }
  std::vector<const xml::DomNode*> elements;
  CollectElements(doc->root(), &elements);
  store.element_bytes_.reserve(elements.size());
  for (const xml::DomNode* e : elements) {
    store.element_bytes_.push_back(ElementOwnBytes(e));
  }
  CSXA_ASSIGN_OR_RETURN(store.masks_, store.ComputeMasks(rules));
  uint64_t encrypted = store.RebuildClasses(rng);

  SubsetBuildStats& st = store.build_stats_;
  st.element_count = elements.size();
  st.class_count = store.classes_.size();
  st.encrypted_bytes = encrypted;
  st.keys_total = store.classes_.size();
  size_t key_grants = 0;
  for (const auto& [mask, cls] : store.classes_) {
    key_grants += static_cast<size_t>(std::popcount(mask));
  }
  st.avg_keys_per_subject =
      store.subjects_.empty()
          ? 0
          : static_cast<double>(key_grants) /
                static_cast<double>(store.subjects_.size());
  return store;
}

SubsetQueryCost SubsetEncryptionStore::QueryCost(
    const std::string& subject) const {
  SubsetQueryCost cost;
  size_t bit = subjects_.size();
  for (size_t s = 0; s < subjects_.size(); ++s) {
    if (subjects_[s] == subject) {
      bit = s;
      break;
    }
  }
  if (bit == subjects_.size()) return cost;  // unknown subject: nothing
  for (const auto& [mask, cls] : classes_) {
    if (mask & (uint64_t{1} << bit)) {
      cost.bytes_transferred += cls.sealed_bytes;
      cost.bytes_decrypted += cls.sealed_bytes;
      cost.classes_read += 1;
      cost.elements_delivered += cls.members;
      cost.round_trips += 1;
    }
  }
  return cost;
}

Result<PolicyChangeStats> SubsetEncryptionStore::ApplyPolicyChange(
    const core::RuleSet& new_rules, Rng* rng) {
  PolicyChangeStats stats;

  // Key-holdings before the change.
  std::vector<std::string> old_subjects = subjects_;
  std::map<std::string, std::set<uint64_t>> held_before;
  for (size_t s = 0; s < old_subjects.size(); ++s) {
    for (const auto& [mask, cls] : classes_) {
      if (mask & (uint64_t{1} << s)) held_before[old_subjects[s]].insert(mask);
    }
  }

  std::vector<std::string> new_subjects = new_rules.Subjects();
  if (new_subjects.size() > 64) {
    return Status::NotSupported("subset baseline supports at most 64 subjects");
  }
  subjects_ = new_subjects;
  std::vector<uint64_t> old_masks = masks_;
  CSXA_ASSIGN_OR_RETURN(masks_, ComputeMasks(new_rules));

  // Elements whose visibility vector changed move between classes. Note:
  // masks are relative to the subject list, so compare via subject-name
  // visibility, not raw bits.
  auto visible_set = [](uint64_t mask, const std::vector<std::string>& subs) {
    std::set<std::string> out;
    for (size_t s = 0; s < subs.size(); ++s) {
      if (mask & (uint64_t{1} << s)) out.insert(subs[s]);
    }
    return out;
  };
  std::set<uint64_t> dirty_new_masks;
  for (size_t i = 0; i < masks_.size(); ++i) {
    if (visible_set(old_masks[i], old_subjects) !=
        visible_set(masks_[i], subjects_)) {
      ++stats.elements_moved;
      if (masks_[i] != 0) dirty_new_masks.insert(masks_[i]);
    }
  }

  RebuildClasses(rng);

  // Every class that received at least one moved element must be fully
  // re-encrypted (its blob changed); the classes the elements left as well
  // — approximated by the same dirty set on the new partition plus the
  // vanished classes.
  for (uint64_t mask : dirty_new_masks) {
    auto it = classes_.find(mask);
    if (it != classes_.end()) {
      ++stats.classes_reencrypted;
      stats.bytes_reencrypted += it->second.sealed_bytes;
    }
  }

  // Key redistribution: grants added or removed per subject.
  std::map<std::string, std::set<uint64_t>> held_after;
  for (size_t s = 0; s < subjects_.size(); ++s) {
    for (const auto& [mask, cls] : classes_) {
      if (mask & (uint64_t{1} << s)) held_after[subjects_[s]].insert(mask);
    }
  }
  std::set<std::string> all_subjects(old_subjects.begin(), old_subjects.end());
  all_subjects.insert(subjects_.begin(), subjects_.end());
  for (const std::string& subject : all_subjects) {
    const auto& before = held_before[subject];
    const auto& after = held_after[subject];
    for (uint64_t m : after) {
      if (!before.count(m)) ++stats.keys_redistributed;
    }
    for (uint64_t m : before) {
      if (!after.count(m)) ++stats.keys_redistributed;
    }
  }
  stats.class_count_after = classes_.size();
  return stats;
}

}  // namespace csxa::baseline
