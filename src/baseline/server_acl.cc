#include "baseline/server_acl.h"

#include "xpath/parser.h"

namespace csxa::baseline {

Status TrustedServerBaseline::AddDocument(const std::string& doc_id,
                                          xml::DomDocument doc,
                                          const std::string& rules_text) {
  CSXA_ASSIGN_OR_RETURN(core::RuleSet rules,
                        core::RuleSet::ParseText(rules_text));
  Entry entry{std::move(doc), std::move(rules)};
  docs_.insert_or_assign(doc_id, std::move(entry));
  return Status::OK();
}

Result<TrustedServerBaseline::ServerQueryResult> TrustedServerBaseline::Query(
    const std::string& doc_id, const std::string& subject,
    const std::string& query_text, const NetworkProfile& net) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);

  xpath::PathExpr query;
  const xpath::PathExpr* query_ptr = nullptr;
  if (!query_text.empty()) {
    CSXA_ASSIGN_OR_RETURN(query, xpath::ParsePath(query_text));
    query_ptr = &query;
  }
  CSXA_ASSIGN_OR_RETURN(
      xml::DomDocument view,
      core::BuildAuthorizedView(it->second.doc,
                                it->second.rules.ForSubject(subject),
                                query_ptr));
  ServerQueryResult out;
  out.xml = view.Serialize();
  out.result_bytes = out.xml.size();
  double server_cpu = static_cast<double>(it->second.doc.CountElements()) /
                      net.server_elements_per_sec;
  out.modeled_seconds = net.rtt_sec + server_cpu +
                        static_cast<double>(out.result_bytes) / net.bytes_per_sec;
  return out;
}

}  // namespace csxa::baseline
