#ifndef CSXA_BASELINE_SERVER_ACL_H_
#define CSXA_BASELINE_SERVER_ACL_H_

/// \file server_acl.h
/// \brief The trusted-server baseline: access control evaluated at the
/// server, plaintext data on the server.
///
/// This is the model whose "erosion of trust" motivates the paper (§1).
/// It is the latency lower bound (no card in the loop, fast link) but
/// requires trusting the DSP with plaintext and with policy enforcement —
/// the property C-SXA exists to remove. Benches report it as a reference
/// point, not as a competitor on equal security footing.

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/ref_evaluator.h"
#include "core/rule.h"
#include "xml/dom.h"

namespace csxa::baseline {

/// Terminal<->server network model (2005-era broadband).
struct NetworkProfile {
  double bytes_per_sec = 64.0 * 1024;  // ~512 kbit/s downstream
  double rtt_sec = 0.04;
  /// Server-side evaluation throughput, element visits per second.
  double server_elements_per_sec = 2e6;
};

/// \brief Plaintext server with server-side ACL pruning.
class TrustedServerBaseline {
 public:
  /// Stores a document (takes ownership) with its rules.
  Status AddDocument(const std::string& doc_id, xml::DomDocument doc,
                     const std::string& rules_text);

  struct ServerQueryResult {
    std::string xml;
    size_t result_bytes = 0;
    double modeled_seconds = 0;  // rtt + server CPU + transfer of result
  };

  /// Evaluates (subject, query) on the server and ships the pruned view.
  Result<ServerQueryResult> Query(const std::string& doc_id,
                                  const std::string& subject,
                                  const std::string& query_text,
                                  const NetworkProfile& net = {}) const;

 private:
  struct Entry {
    xml::DomDocument doc;
    core::RuleSet rules;
  };
  std::map<std::string, Entry> docs_;
};

}  // namespace csxa::baseline

#endif  // CSXA_BASELINE_SERVER_ACL_H_
