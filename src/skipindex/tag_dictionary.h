#ifndef CSXA_SKIPINDEX_TAG_DICTIONARY_H_
#define CSXA_SKIPINDEX_TAG_DICTIONARY_H_

/// \file tag_dictionary.h
/// \brief Compatibility forward: the XGRIND-style dictionary was promoted
/// to the shared `common/interner.h` subsystem (it now also backs the
/// interned-tag event pipeline). The skip index keeps its historical
/// names.

#include "common/interner.h"

namespace csxa::skipindex {

/// Sentinel for "name not in dictionary".
inline constexpr uint32_t kNoId = ::csxa::kNoTagId;

/// \brief An ordered, deduplicated name table with O(1) lookups both ways.
using TagDictionary = ::csxa::Interner;

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_TAG_DICTIONARY_H_
