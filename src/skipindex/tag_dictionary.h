#ifndef CSXA_SKIPINDEX_TAG_DICTIONARY_H_
#define CSXA_SKIPINDEX_TAG_DICTIONARY_H_

/// \file tag_dictionary.h
/// \brief XGRIND-style dictionary of tag and attribute names (§2.3, [9]).
///
/// The encoded document stores tag ids instead of names; the skip index's
/// per-subtree tag sets are bit arrays over this dictionary.

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace csxa::skipindex {

/// Sentinel for "name not in dictionary".
inline constexpr uint32_t kNoId = 0xFFFFFFFFu;

/// \brief An ordered, deduplicated name table with O(1) lookups both ways.
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Adds a name if absent; returns its id.
  uint32_t Intern(const std::string& name);
  /// Id of `name`, or kNoId.
  uint32_t Lookup(const std::string& name) const;
  /// Name of `id` (must be < size()).
  const std::string& Name(uint32_t id) const { return names_[id]; }
  /// Number of entries.
  size_t size() const { return names_.size(); }

  /// Serialized form: varint count, then per name varint length + bytes.
  void EncodeTo(ByteWriter* out) const;
  static Result<TagDictionary> DecodeFrom(ByteReader* in);

  /// Modeled on-card footprint (the SOE keeps the dictionary in RAM).
  size_t ModeledBytes() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_TAG_DICTIONARY_H_
