#ifndef CSXA_SKIPINDEX_BYTE_SOURCE_H_
#define CSXA_SKIPINDEX_BYTE_SOURCE_H_

/// \file byte_source.h
/// \brief Sequential byte input with cheap forward skips.
///
/// The document decoder pulls plaintext bytes through this interface. The
/// SOE's implementation (soe/chunk_source.h) fetches, verifies and decrypts
/// container chunks on demand — and a Skip() that jumps whole chunks avoids
/// both the transfer and the decryption, which is exactly the benefit the
/// skip index exists to harvest (§2.3).

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace csxa::skipindex {

/// \brief A half-open byte interval [begin, end) of the underlying stream.
struct ByteRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// \brief A run of consecutive fixed-size chunks: [first, first + count).
///
/// The chunk-level counterpart of ByteRange; the container layer splits
/// the payload into fixed-size chunks and the fetch planner speaks in
/// these runs (see codec.h ChunkMap and soe::FetchPlan).
struct ChunkRun {
  uint32_t first = 0;
  uint32_t count = 0;
};

/// \brief Abstract sequential source.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads exactly `n` bytes into `buf`; IoError if the stream ends first.
  virtual Status ReadExact(uint8_t* buf, size_t n) = 0;
  /// Zero-copy read: when the next `n` bytes are contiguous in a buffer
  /// the source already owns, returns a pointer to them and advances the
  /// cursor; otherwise returns nullptr and the cursor is unchanged (the
  /// caller falls back to ReadExact, which also surfaces any I/O error).
  /// The pointer is invalidated by the next ReadExact/Skip/View call that
  /// refills the source's buffer — the document decoder therefore only
  /// hands such views out for the duration of one event.
  virtual const uint8_t* View(size_t n) {
    (void)n;
    return nullptr;
  }
  /// Advances the cursor `n` bytes without necessarily materializing them.
  virtual Status Skip(uint64_t n) = 0;
  /// Absolute cursor position.
  virtual uint64_t position() const = 0;
  /// True when the cursor is at the end of the stream.
  virtual bool AtEnd() const = 0;
};

/// \brief In-memory source (tests, terminal-side decoding).
class MemorySource : public ByteSource {
 public:
  explicit MemorySource(Span data) : data_(data) {}

  Status ReadExact(uint8_t* buf, size_t n) override {
    if (data_.size() - pos_ < n) {
      return Status::IoError("memory source exhausted");
    }
    std::memcpy(buf, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  const uint8_t* View(size_t n) override {
    // The whole stream is one stable buffer: every read is zero-copy.
    if (data_.size() - pos_ < n) return nullptr;
    const uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  Status Skip(uint64_t n) override {
    if (data_.size() - pos_ < n) {
      return Status::IoError("skip past end of memory source");
    }
    pos_ += n;
    return Status::OK();
  }
  uint64_t position() const override { return pos_; }
  bool AtEnd() const override { return pos_ == data_.size(); }

 private:
  Span data_;
  size_t pos_ = 0;
};

/// \brief Decorator recording which byte ranges are actually *read* (as
/// opposed to skipped) from the inner source.
///
/// The fetch planner's probe: drive the ordinary filtered scan through
/// one of these and the recorded ranges are exactly the bytes — and via
/// the chunk map, exactly the chunks — that scan touches. Skips advance
/// the cursor without recording, which is the whole point: skipped
/// ranges never need fetching. Reads are monotone (sources are forward
/// only), so the recorded ranges come out sorted, disjoint and merged.
class RangeRecordingSource : public ByteSource {
 public:
  explicit RangeRecordingSource(ByteSource* inner) : inner_(inner) {}

  Status ReadExact(uint8_t* buf, size_t n) override {
    uint64_t at = inner_->position();
    CSXA_RETURN_IF_ERROR(inner_->ReadExact(buf, n));
    Record(at, n);
    return Status::OK();
  }
  const uint8_t* View(size_t n) override {
    uint64_t at = inner_->position();
    const uint8_t* p = inner_->View(n);
    if (p != nullptr) Record(at, n);
    return p;
  }
  Status Skip(uint64_t n) override { return inner_->Skip(n); }
  uint64_t position() const override { return inner_->position(); }
  bool AtEnd() const override { return inner_->AtEnd(); }

  /// Byte ranges read so far: ascending, disjoint, coalesced.
  const std::vector<ByteRange>& ranges() const { return ranges_; }

 private:
  void Record(uint64_t at, uint64_t n) {
    if (n == 0) return;
    if (!ranges_.empty() && at <= ranges_.back().end) {
      if (at + n > ranges_.back().end) ranges_.back().end = at + n;
    } else {
      ranges_.push_back(ByteRange{at, at + n});
    }
  }

  ByteSource* inner_;
  std::vector<ByteRange> ranges_;
};

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_BYTE_SOURCE_H_
