#include "skipindex/codec.h"

#include <algorithm>
#include <unordered_map>

#include "common/varint.h"

namespace csxa::skipindex {

namespace {

constexpr uint8_t kMagic = 0xD0;
constexpr uint8_t kFlagIndex = 0x01;
constexpr uint8_t kFlagRecursive = 0x02;

constexpr uint8_t kTokOpen = 0x01;
constexpr uint8_t kTokValue = 0x02;
constexpr uint8_t kTokClose = 0x03;

constexpr uint8_t kMetaHasElements = 0x01;
constexpr uint8_t kMetaHasText = 0x02;

using xml::DomNode;

struct Encoder {
  TagDictionary tags;
  TagDictionary attrs;
  EncodeOptions opt;
  EncodeStats stats;
  // S(node): sorted tag ids of strict descendants; computed bottom-up.
  std::unordered_map<const DomNode*, std::vector<uint32_t>> subtree_tags;

  void InternNames(const DomNode* n) {
    if (n->is_text()) return;
    tags.Intern(n->tag());
    for (const auto& a : n->attrs()) attrs.Intern(a.name);
    for (const auto& c : n->children()) InternNames(c.get());
  }

  // Computes S(n) and whether the subtree has text, bottom-up.
  std::pair<std::vector<uint32_t>, bool> ComputeSets(const DomNode* n) {
    std::vector<uint32_t> set;
    bool has_text = false;
    for (const auto& c : n->children()) {
      if (c->is_text()) {
        has_text = true;
        continue;
      }
      auto [child_set, child_text] = ComputeSets(c.get());
      has_text = has_text || child_text;
      child_set.push_back(tags.Lookup(c->tag()));
      for (uint32_t id : child_set) set.push_back(id);
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    subtree_tags.emplace(n, set);
    subtree_has_text.emplace(n, has_text);
    return {std::move(set), has_text};
  }
  std::unordered_map<const DomNode*, bool> subtree_has_text;

  // Encodes the bitmap of `set` over `base` (recursive mode) or over the
  // full dictionary. Returns encoded bytes and accounts them.
  Bytes EncodeBitmap(const std::vector<uint32_t>& set,
                     const std::vector<uint32_t>& base) {
    ByteWriter w;
    if (opt.recursive_bitmaps) {
      size_t width = base.size();
      size_t nbytes = (width + 7) / 8;
      std::vector<uint8_t> bits(nbytes, 0);
      size_t si = 0;
      for (size_t i = 0; i < base.size(); ++i) {
        while (si < set.size() && set[si] < base[i]) ++si;
        if (si < set.size() && set[si] == base[i]) {
          bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
        }
      }
      for (uint8_t b : bits) w.PutU8(b);
    } else {
      size_t width = tags.size();
      size_t nbytes = (width + 7) / 8;
      std::vector<uint8_t> bits(nbytes, 0);
      for (uint32_t id : set) {
        bits[id / 8] |= static_cast<uint8_t>(1u << (id % 8));
      }
      for (uint8_t b : bits) w.PutU8(b);
    }
    return w.Take();
  }

  // Encodes one element (OPEN .. content .. CLOSE); `base` is the parent's
  // subtree tag set (full dictionary at the root).
  Bytes EncodeElement(const DomNode* n, const std::vector<uint32_t>& base) {
    ++stats.element_count;
    const std::vector<uint32_t>& own_set = subtree_tags.at(n);
    // Content first (children in document order).
    ByteWriter content;
    for (const auto& c : n->children()) {
      if (c->is_text()) {
        ByteWriter v;
        v.PutU8(kTokValue);
        PutVarint(&v, c->text().size());
        v.PutBytes(Span(c->text()));
        stats.text_bytes += v.size();
        content.PutBytes(v.bytes());
      } else {
        Bytes child = EncodeElement(c.get(), own_set);
        content.PutBytes(child);
      }
    }
    // OPEN token.
    ByteWriter open;
    open.PutU8(kTokOpen);
    PutVarint(&open, tags.Lookup(n->tag()));
    PutVarint(&open, n->attrs().size());
    for (const auto& a : n->attrs()) {
      PutVarint(&open, attrs.Lookup(a.name));
      PutVarint(&open, a.value.size());
      open.PutBytes(Span(a.value));
    }
    stats.structure_bytes += open.size() + 1;  // +1 for CLOSE
    if (opt.with_index) {
      size_t before = open.size();
      PutVarint(&open, content.size());
      uint8_t mflags = 0;
      if (!own_set.empty()) mflags |= kMetaHasElements;
      if (subtree_has_text.at(n)) mflags |= kMetaHasText;
      open.PutU8(mflags);
      stats.index_size_bytes += open.size() - before;
      if (!own_set.empty()) {
        Bytes bitmap = EncodeBitmap(own_set, base);
        stats.index_bitmap_bytes += bitmap.size();
        open.PutBytes(bitmap);
      }
    }
    ByteWriter out;
    out.PutBytes(open.bytes());
    out.PutBytes(content.bytes());
    out.PutU8(kTokClose);
    return out.Take();
  }
};

}  // namespace

Result<Bytes> EncodeDocument(const xml::DomDocument& doc,
                             const EncodeOptions& options, EncodeStats* stats) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("cannot encode an empty document");
  }
  Encoder enc;
  enc.opt = options;
  enc.InternNames(doc.root());
  enc.ComputeSets(doc.root());

  ByteWriter out;
  out.PutU8(kMagic);
  uint8_t flags = 0;
  if (options.with_index) flags |= kFlagIndex;
  if (options.recursive_bitmaps) flags |= kFlagRecursive;
  out.PutU8(flags);
  size_t before_dict = out.size();
  enc.tags.EncodeTo(&out);
  enc.attrs.EncodeTo(&out);
  enc.stats.dict_bytes = out.size() - before_dict;

  std::vector<uint32_t> root_base(enc.tags.size());
  for (uint32_t i = 0; i < enc.tags.size(); ++i) root_base[i] = i;
  Bytes body = enc.EncodeElement(doc.root(), root_base);
  out.PutBytes(body);

  enc.stats.total_bytes = out.size();
  if (stats != nullptr) *stats = enc.stats;
  return out.Take();
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

Status DocumentDecoder::ReadByte(uint8_t* b) {
  return source_->ReadExact(b, 1);
}

Status DocumentDecoder::ReadVarint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t byte;
    CSXA_RETURN_IF_ERROR(ReadByte(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::ParseError("overlong varint in document stream");
}

Result<std::string> DocumentDecoder::ReadString() {
  uint64_t len;
  CSXA_RETURN_IF_ERROR(ReadVarint(&len));
  if (len > (1u << 26)) return Status::ParseError("oversized string");
  std::string s(len, '\0');
  CSXA_RETURN_IF_ERROR(
      source_->ReadExact(reinterpret_cast<uint8_t*>(s.data()), len));
  return s;
}

Result<std::string_view> DocumentDecoder::ReadStringView(bool borrow,
                                                         std::string* scratch) {
  uint64_t len;
  CSXA_RETURN_IF_ERROR(ReadVarint(&len));
  if (len > (1u << 26)) return Status::ParseError("oversized string");
  if (len == 0) return std::string_view();
  if (borrow) {
    const uint8_t* p = source_->View(static_cast<size_t>(len));
    if (p != nullptr) {
      return std::string_view(reinterpret_cast<const char*>(p),
                              static_cast<size_t>(len));
    }
  }
  scratch->resize(static_cast<size_t>(len));
  CSXA_RETURN_IF_ERROR(source_->ReadExact(
      reinterpret_cast<uint8_t*>(scratch->data()), static_cast<size_t>(len)));
  return std::string_view(*scratch);
}

Result<std::unique_ptr<DocumentDecoder>> DocumentDecoder::Open(
    ByteSource* source) {
  auto dec = std::unique_ptr<DocumentDecoder>(new DocumentDecoder());
  dec->source_ = source;
  uint8_t magic, flags;
  CSXA_RETURN_IF_ERROR(dec->ReadByte(&magic));
  if (magic != kMagic) return Status::ParseError("bad document magic");
  CSXA_RETURN_IF_ERROR(dec->ReadByte(&flags));
  dec->with_index_ = (flags & kFlagIndex) != 0;
  dec->recursive_ = (flags & kFlagRecursive) != 0;

  // Dictionaries: decode via a bounded in-memory read. Sizes first require
  // streaming varints, so decode entry by entry.
  auto decode_dict = [&](TagDictionary* dict) -> Status {
    uint64_t count;
    CSXA_RETURN_IF_ERROR(dec->ReadVarint(&count));
    if (count > (1u << 20)) return Status::ParseError("dictionary too large");
    for (uint64_t i = 0; i < count; ++i) {
      CSXA_ASSIGN_OR_RETURN(std::string name, dec->ReadString());
      dict->Intern(name);
    }
    return Status::OK();
  };
  CSXA_RETURN_IF_ERROR(decode_dict(&dec->tag_dict_));
  CSXA_RETURN_IF_ERROR(decode_dict(&dec->attr_dict_));
  return dec;
}

Result<xml::EventView> DocumentDecoder::NextView() {
  if (done_) return xml::EventView::End();
  if (depth_ == 0 && root_closed_) {
    if (!source_->AtEnd()) {
      return Status::ParseError("trailing bytes after document root");
    }
    done_ = true;
    return xml::EventView::End();
  }
  uint8_t tok;
  CSXA_RETURN_IF_ERROR(ReadByte(&tok));
  switch (tok) {
    case kTokOpen: {
      uint64_t tag_id, nattrs;
      CSXA_RETURN_IF_ERROR(ReadVarint(&tag_id));
      if (tag_id >= tag_dict_.size()) {
        return Status::ParseError("tag id out of range");
      }
      CSXA_RETURN_IF_ERROR(ReadVarint(&nattrs));
      if (nattrs > 1024) return Status::ParseError("too many attributes");
      // Attribute values go through scratch, not a source borrow: the
      // index metadata reads below would invalidate a chunk-buffer view
      // mid-event. Names borrow from the dictionary (stable).
      attr_views_.clear();
      if (attr_vals_.size() < nattrs) attr_vals_.resize(nattrs);
      for (uint64_t i = 0; i < nattrs; ++i) {
        uint64_t name_id;
        CSXA_RETURN_IF_ERROR(ReadVarint(&name_id));
        if (name_id >= attr_dict_.size()) {
          return Status::ParseError("attribute id out of range");
        }
        CSXA_ASSIGN_OR_RETURN(
            std::string_view value,
            ReadStringView(/*borrow=*/false, &attr_vals_[i]));
        attr_views_.push_back(xml::AttrView{
            attr_dict_.Name(static_cast<uint32_t>(name_id)), value});
      }
      last_content_size_ = 0;
      last_has_elements_ = false;
      last_has_text_ = false;
      std::vector<uint32_t> own_set;
      if (with_index_) {
        CSXA_RETURN_IF_ERROR(ReadVarint(&last_content_size_));
        uint8_t mflags;
        CSXA_RETURN_IF_ERROR(ReadByte(&mflags));
        last_has_elements_ = (mflags & kMetaHasElements) != 0;
        last_has_text_ = (mflags & kMetaHasText) != 0;
        if (last_has_elements_) {
          size_t width;
          if (recursive_) {
            width = tagset_stack_.empty() ? tag_dict_.size()
                                          : tagset_stack_.back().size();
          } else {
            width = tag_dict_.size();
          }
          size_t nbytes = (width + 7) / 8;
          std::vector<uint8_t> bits(nbytes);
          if (nbytes > 0) {
            CSXA_RETURN_IF_ERROR(source_->ReadExact(bits.data(), nbytes));
          }
          for (size_t i = 0; i < width; ++i) {
            if ((bits[i / 8] >> (i % 8)) & 1) {
              uint32_t id;
              if (recursive_) {
                id = tagset_stack_.empty() ? static_cast<uint32_t>(i)
                                           : tagset_stack_.back()[i];
              } else {
                id = static_cast<uint32_t>(i);
              }
              own_set.push_back(id);
            }
          }
        }
      }
      tagset_stack_.push_back(std::move(own_set));
      open_tag_ids_.push_back(static_cast<uint32_t>(tag_id));
      ++depth_;
      just_opened_ = true;
      return xml::EventView::Open(
          tag_dict_.Name(static_cast<uint32_t>(tag_id)), attr_views_.data(),
          attr_views_.size(), static_cast<TagId>(tag_id));
    }
    case kTokValue: {
      just_opened_ = false;
      if (depth_ == 0) return Status::ParseError("value outside root");
      // The text bytes are the event's last read: borrow them straight
      // from the source's buffer when contiguous (zero-copy for the
      // dominant byte share of a document).
      CSXA_ASSIGN_OR_RETURN(std::string_view text,
                            ReadStringView(/*borrow=*/true, &text_scratch_));
      return xml::EventView::Value(text);
    }
    case kTokClose: {
      just_opened_ = false;
      if (depth_ == 0) return Status::ParseError("close without open");
      uint32_t tag_id = open_tag_ids_.back();
      open_tag_ids_.pop_back();
      tagset_stack_.pop_back();
      --depth_;
      if (depth_ == 0) root_closed_ = true;
      return xml::EventView::Close(tag_dict_.Name(tag_id), tag_id);
    }
    default:
      return Status::ParseError("unknown token in document stream");
  }
}

Result<xml::Event> DocumentDecoder::Next() {
  CSXA_ASSIGN_OR_RETURN(xml::EventView v, NextView());
  return v.Materialize();
}

bool DocumentDecoder::SubtreeHasTag(std::string_view tag) const {
  if (!with_index_ || tagset_stack_.empty()) return false;
  uint32_t id = tag_dict_.Lookup(tag);
  if (id == kNoId) return false;
  const std::vector<uint32_t>& set = tagset_stack_.back();
  return std::binary_search(set.begin(), set.end(), id);
}

Status DocumentDecoder::SkipContent() {
  if (!with_index_) {
    return Status::InvalidArgument("skip requires the index");
  }
  if (!just_opened_) {
    return Status::InvalidArgument("skip is only legal right after an open");
  }
  just_opened_ = false;
  return source_->Skip(last_content_size_);
}

size_t DocumentDecoder::ModeledBytes() const {
  size_t n = tag_dict_.ModeledBytes() + attr_dict_.ModeledBytes();
  for (const auto& set : tagset_stack_) n += set.size() * 2;
  n += open_tag_ids_.size() * 2;
  return n;
}

std::vector<ChunkRun> ChunkMap::Runs(
    const std::vector<ByteRange>& ranges) const {
  // Each byte range touches the inclusive chunk interval
  // [ChunkOf(begin), ChunkOf(end - 1)], clamped to the geometry.
  std::vector<std::pair<uint32_t, uint32_t>> intervals;
  intervals.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    if (r.end <= r.begin || chunk_count_ == 0) continue;
    uint32_t first = ChunkOf(r.begin);
    if (first >= chunk_count_) continue;
    uint32_t last = std::min(ChunkOf(r.end - 1), chunk_count_ - 1);
    intervals.emplace_back(first, last);
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<ChunkRun> runs;
  for (const auto& [first, last] : intervals) {
    // Merge overlapping *and* adjacent intervals: chunks first-1 and first
    // both needed means one contiguous span serves both.
    if (!runs.empty() &&
        first <= runs.back().first + runs.back().count) {
      uint32_t back_last = runs.back().first + runs.back().count - 1;
      if (last > back_last) {
        runs.back().count = last - runs.back().first + 1;
      }
    } else {
      runs.push_back(ChunkRun{first, last - first + 1});
    }
  }
  return runs;
}

}  // namespace csxa::skipindex
