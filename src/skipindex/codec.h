#ifndef CSXA_SKIPINDEX_CODEC_H_
#define CSXA_SKIPINDEX_CODEC_H_

/// \file codec.h
/// \brief The indexed binary document format (§2.3 "skip index").
///
/// Layout (all of it is encrypted inside the secure container):
///
///   header   := magic(0xD0) flags tag_dict attr_dict token*
///   token    := OPEN | VALUE | CLOSE
///   OPEN     := 0x01 tag_id:varint nattrs:varint attr* meta?
///   attr     := name_id:varint len:varint bytes
///   meta     := content_size:varint mflags:u8 bitmap?      (flags bit0)
///   VALUE    := 0x02 len:varint bytes
///   CLOSE    := 0x03
///
/// `content_size` is the byte length of all tokens strictly between this
/// OPEN token and its matching CLOSE — skipping that many bytes lands the
/// cursor exactly on the CLOSE token. `bitmap` encodes the set of tags of
/// strict descendants. With recursive compression (flags bit1, the paper's
/// scheme) the bitmap has one bit per tag *present in the parent's
/// subtree* (root: per dictionary entry); without it, every bitmap spans
/// the whole dictionary — the ablation baseline for EXP-IDXSZ. `mflags`
/// bit0 says the subtree contains elements (no bitmap stored otherwise),
/// bit1 that it contains text.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "skipindex/byte_source.h"
#include "skipindex/tag_dictionary.h"
#include "xml/dom.h"
#include "xml/event.h"

namespace csxa::skipindex {

/// Encoder options.
struct EncodeOptions {
  /// Embed the skip index (content sizes + tag bitmaps).
  bool with_index = true;
  /// Use the paper's recursive bitmap compression (vs full-width bitmaps).
  bool recursive_bitmaps = true;
};

/// Byte-level breakdown of an encoded document (drives EXP-IDXSZ).
struct EncodeStats {
  size_t total_bytes = 0;
  size_t dict_bytes = 0;
  size_t structure_bytes = 0;  // OPEN/CLOSE tokens, tag ids, attributes
  size_t text_bytes = 0;       // VALUE tokens
  size_t index_size_bytes = 0; // content_size varints + mflags
  size_t index_bitmap_bytes = 0;
  size_t element_count = 0;

  /// Index overhead as a fraction of the document without index.
  double IndexOverhead() const {
    size_t base = total_bytes - index_size_bytes - index_bitmap_bytes;
    if (base == 0) return 0.0;
    return static_cast<double>(index_size_bytes + index_bitmap_bytes) /
           static_cast<double>(base);
  }
};

/// Encodes a DOM document into the binary format.
Result<Bytes> EncodeDocument(const xml::DomDocument& doc,
                             const EncodeOptions& options,
                             EncodeStats* stats = nullptr);

/// \brief Maps encoded-payload byte offsets onto container chunk indices.
///
/// The secure container splits the encoded document into fixed-size
/// chunks (the last possibly short) and AES-CTR preserves byte positions,
/// so plaintext offset `o` lives in chunk `o / chunk_size` — this class
/// is that arithmetic plus the coalescing that turns the byte ranges a
/// scan touches into the minimal sorted list of contiguous chunk runs
/// (the shape a multi-span kGetChunks request wants).
class ChunkMap {
 public:
  /// `chunk_size` must be non-zero; `chunk_count` clamps every result to
  /// the container geometry (ranges beyond it are truncated, not errors —
  /// the planner must never fabricate unfetchable chunks).
  ChunkMap(uint32_t chunk_size, uint32_t chunk_count)
      : chunk_size_(chunk_size == 0 ? 1 : chunk_size),
        chunk_count_(chunk_count) {}

  /// Chunk index containing byte offset `offset`.
  uint32_t ChunkOf(uint64_t offset) const {
    return static_cast<uint32_t>(offset / chunk_size_);
  }

  /// Coalesces byte ranges (any order, possibly overlapping) into sorted,
  /// disjoint chunk runs; adjacent runs merge (both chunks are needed, so
  /// a single span covers them for free).
  std::vector<ChunkRun> Runs(const std::vector<ByteRange>& ranges) const;

 private:
  uint32_t chunk_size_;
  uint32_t chunk_count_;
};

/// \brief Streaming decoder over a ByteSource.
///
/// Pull API mirroring the event model; after an OPEN the caller may call
/// SkipContent() to jump to the matching CLOSE without touching the
/// subtree's bytes (the skip decision itself is the evaluator's).
class DocumentDecoder {
 public:
  /// Reads and validates the header and dictionaries.
  static Result<std::unique_ptr<DocumentDecoder>> Open(ByteSource* source);

  /// Pulls the next event as a borrowed view — the SOE's zero-copy fast
  /// path. Tag and attribute names borrow from the decoder's dictionaries
  /// (stable for its lifetime); text borrows straight from the source's
  /// chunk buffer when the bytes are contiguous (`ByteSource::View`),
  /// falling back to a reused scratch buffer otherwise; attribute values
  /// land in reused scratch. Everything except the dictionary names is
  /// invalidated by the next Next()/NextView() call.
  Result<xml::EventView> NextView();

  /// Owning convenience: NextView() materialized. Returns kEnd exactly
  /// once at end of stream.
  Result<xml::Event> Next();

  /// True if the format embeds the skip index.
  bool has_index() const { return with_index_; }

  /// \name Metadata of the most recent OPEN event
  /// @{
  /// Content byte size (0 when no index).
  uint64_t last_content_size() const { return last_content_size_; }
  /// Whether the subtree contains elements / text.
  bool last_has_elements() const { return last_has_elements_; }
  bool last_has_text() const { return last_has_text_; }
  /// Membership test over the subtree's tag set (false without index).
  bool SubtreeHasTag(std::string_view tag) const;
  /// @}

  /// Skips the content of the element just opened; the next event will be
  /// its CLOSE. Only legal immediately after an OPEN, with the index on.
  Status SkipContent();

  /// Tag dictionary (exposed for the SOE's RAM accounting).
  const TagDictionary& tags() const { return tag_dict_; }
  const TagDictionary& attrs() const { return attr_dict_; }

  /// Modeled decoder RAM: dictionaries plus the ancestor tag-set stack.
  size_t ModeledBytes() const;

 private:
  DocumentDecoder() = default;

  Status ReadVarint(uint64_t* v);
  Status ReadByte(uint8_t* b);
  Result<std::string> ReadString();
  // Borrowed read of a length-prefixed string. With `borrow` the bytes
  // may alias the source's internal buffer (only safe for the last read
  // of an event); otherwise they are copied into `scratch`.
  Result<std::string_view> ReadStringView(bool borrow, std::string* scratch);

  ByteSource* source_ = nullptr;
  TagDictionary tag_dict_;
  TagDictionary attr_dict_;
  bool with_index_ = false;
  bool recursive_ = false;
  bool done_ = false;
  bool root_closed_ = false;
  int depth_ = 0;
  bool just_opened_ = false;
  std::vector<uint32_t> open_tag_ids_;

  uint64_t last_content_size_ = 0;
  bool last_has_elements_ = false;
  bool last_has_text_ = false;

  // Stack of subtree tag sets (sorted tag-id lists); back() is the set of
  // the innermost open element. Root base is the full dictionary.
  std::vector<std::vector<uint32_t>> tagset_stack_;

  // Per-event borrowed storage (NextView), reused across events so the
  // steady-state decode loop performs no allocation. attr_vals_ never
  // shrinks: views into its strings stay valid while attr_views_ is
  // (re)built within one event.
  std::vector<xml::AttrView> attr_views_;
  std::vector<std::string> attr_vals_;
  std::string text_scratch_;
};

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_CODEC_H_
