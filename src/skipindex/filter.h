#ifndef CSXA_SKIPINDEX_FILTER_H_
#define CSXA_SKIPINDEX_FILTER_H_

/// \file filter.h
/// \brief Driver connecting the document decoder to the streaming
/// evaluator, taking skip decisions along the way.
///
/// This is the plaintext core of what the card engine does (soe/ adds
/// decryption, integrity and transport): pull an event, let the evaluator
/// decide, and whenever a just-opened subtree is provably irrelevant, jump
/// over its bytes instead of decoding them.

#include <functional>

#include "core/evaluator.h"
#include "skipindex/codec.h"

namespace csxa::skipindex {

/// Filtering options.
struct FilterOptions {
  /// Take skips (requires an indexed document). Off = full scan baseline.
  bool enable_skip = true;
  /// Invoked after each event is processed (the SOE hooks RAM metering and
  /// cost accounting here). A non-OK status aborts the run.
  std::function<Status()> on_event;
};

/// Outcome counters.
struct FilterStats {
  /// Bytes consumed from the source, including skipped ranges.
  uint64_t bytes_total = 0;
  /// Bytes jumped over thanks to the index.
  uint64_t bytes_skipped = 0;
  /// Number of subtree skips taken.
  size_t skips = 0;
};

/// Runs the full document through `evaluator` (which owns the output
/// sink), skipping subtrees when allowed. Feeds the final kEnd.
Status RunFiltered(DocumentDecoder* decoder,
                   core::StreamingEvaluator* evaluator,
                   const FilterOptions& options, FilterStats* stats);

/// \brief Fetch-planning probe: which bytes will a scan actually read?
///
/// Replays exactly the filtered scan RunFiltered performs — same decoder,
/// same evaluator skip decisions — over the plaintext `encoded` document,
/// but discards the output and records only the byte ranges the scan
/// reads (skipped subtrees advance the cursor without being recorded).
/// Run by whoever holds the plaintext: the owner at publish/update time,
/// or a test oracle. The card-side scan over the sealed container touches
/// the same byte positions (CTR encryption is position preserving), so
/// these ranges — pushed through codec's ChunkMap — are the exact chunk
/// runs that scan will fetch. `rules` is the subject's rule slice;
/// `query` may be null (whole authorized view).
Result<std::vector<ByteRange>> CollectTouchedRanges(
    Span encoded, const std::vector<core::AccessRule>& rules,
    const xpath::PathExpr* query, bool enable_skip);

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_FILTER_H_
