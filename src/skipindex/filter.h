#ifndef CSXA_SKIPINDEX_FILTER_H_
#define CSXA_SKIPINDEX_FILTER_H_

/// \file filter.h
/// \brief Driver connecting the document decoder to the streaming
/// evaluator, taking skip decisions along the way.
///
/// This is the plaintext core of what the card engine does (soe/ adds
/// decryption, integrity and transport): pull an event, let the evaluator
/// decide, and whenever a just-opened subtree is provably irrelevant, jump
/// over its bytes instead of decoding them.

#include <functional>

#include "core/evaluator.h"
#include "skipindex/codec.h"

namespace csxa::skipindex {

/// Filtering options.
struct FilterOptions {
  /// Take skips (requires an indexed document). Off = full scan baseline.
  bool enable_skip = true;
  /// Invoked after each event is processed (the SOE hooks RAM metering and
  /// cost accounting here). A non-OK status aborts the run.
  std::function<Status()> on_event;
};

/// Outcome counters.
struct FilterStats {
  /// Bytes consumed from the source, including skipped ranges.
  uint64_t bytes_total = 0;
  /// Bytes jumped over thanks to the index.
  uint64_t bytes_skipped = 0;
  /// Number of subtree skips taken.
  size_t skips = 0;
};

/// Runs the full document through `evaluator` (which owns the output
/// sink), skipping subtrees when allowed. Feeds the final kEnd.
Status RunFiltered(DocumentDecoder* decoder,
                   core::StreamingEvaluator* evaluator,
                   const FilterOptions& options, FilterStats* stats);

}  // namespace csxa::skipindex

#endif  // CSXA_SKIPINDEX_FILTER_H_
