#include "skipindex/tag_dictionary.h"

#include "common/varint.h"

namespace csxa::skipindex {

uint32_t TagDictionary::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

uint32_t TagDictionary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoId : it->second;
}

void TagDictionary::EncodeTo(ByteWriter* out) const {
  PutVarint(out, names_.size());
  for (const std::string& n : names_) {
    PutVarint(out, n.size());
    out->PutBytes(Span(n));
  }
}

Result<TagDictionary> TagDictionary::DecodeFrom(ByteReader* in) {
  uint64_t count;
  if (!GetVarint(in, &count) || count > 1u << 20) {
    return Status::ParseError("tag dictionary truncated or oversized");
  }
  TagDictionary dict;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len;
    Span bytes;
    if (!GetVarint(in, &len) || !in->GetBytes(len, &bytes)) {
      return Status::ParseError("tag dictionary name truncated");
    }
    dict.Intern(bytes.ToString());
  }
  return dict;
}

size_t TagDictionary::ModeledBytes() const {
  size_t n = 0;
  for (const std::string& s : names_) n += 2 + s.size();
  return n;
}

}  // namespace csxa::skipindex
