#include "skipindex/filter.h"

#include "skipindex/byte_source.h"

namespace csxa::skipindex {

Status RunFiltered(DocumentDecoder* decoder,
                   core::StreamingEvaluator* evaluator,
                   const FilterOptions& options, FilterStats* stats) {
  // Events from the decoder carry its dictionary's tag ids; bind them so
  // the evaluator dispatches on integers without per-event name lookups.
  evaluator->BindDocumentTags(decoder->tags());
  for (;;) {
    // Borrowed fast path: the decoder's views flow into the evaluator
    // without materializing an owning event; they die when OnEventView
    // returns (the skip probe below only reads decoder metadata).
    CSXA_ASSIGN_OR_RETURN(xml::EventView event, decoder->NextView());
    CSXA_RETURN_IF_ERROR(evaluator->OnEventView(event));
    if (options.on_event) {
      CSXA_RETURN_IF_ERROR(options.on_event());
    }
    if (event.type == xml::EventType::kEnd) break;
    if (event.type == xml::EventType::kOpen && options.enable_skip &&
        decoder->has_index() && decoder->last_content_size() > 0) {
      bool nonempty = decoder->last_has_elements();
      auto has_tag = [decoder](std::string_view tag) {
        return decoder->SubtreeHasTag(tag);
      };
      if (evaluator->CanSkipCurrentSubtree(has_tag, nonempty,
                                           decoder->last_has_text())) {
        uint64_t n = decoder->last_content_size();
        CSXA_RETURN_IF_ERROR(decoder->SkipContent());
        evaluator->NoteSubtreeSkipped();
        if (stats != nullptr) {
          stats->bytes_skipped += n;
          ++stats->skips;
        }
      }
    }
  }
  if (stats != nullptr) {
    // Position is the whole stream: reads plus skips.
    stats->bytes_total = 0;  // filled by callers that know the source size
  }
  return Status::OK();
}

namespace {
// The planning probe evaluates reachability only; delivered-view events
// go nowhere.
class NullSink : public xml::EventSink {
 public:
  Status OnEvent(const xml::Event&) override { return Status::OK(); }
  Status OnEventView(const xml::EventView&) override { return Status::OK(); }
};
}  // namespace

Result<std::vector<ByteRange>> CollectTouchedRanges(
    Span encoded, const std::vector<core::AccessRule>& rules,
    const xpath::PathExpr* query, bool enable_skip) {
  MemorySource memory(encoded);
  RangeRecordingSource recorder(&memory);
  CSXA_ASSIGN_OR_RETURN(auto decoder, DocumentDecoder::Open(&recorder));
  NullSink sink;
  CSXA_ASSIGN_OR_RETURN(auto evaluator,
                        core::StreamingEvaluator::Create(rules, query, &sink));
  FilterOptions options;
  options.enable_skip = enable_skip;
  CSXA_RETURN_IF_ERROR(
      RunFiltered(decoder.get(), evaluator.get(), options, nullptr));
  return recorder.ranges();
}

}  // namespace csxa::skipindex
