#ifndef CSXA_CRYPTO_BLOCKSEAL_H_
#define CSXA_CRYPTO_BLOCKSEAL_H_

/// \file blockseal.h
/// \brief Fixed-size authenticated-encrypted storage blocks with
/// location-binding AAD.
///
/// The durable DSP backend (dsp/durable.h) persists document state on a
/// disk it must assume is as hostile as the DSP itself: the threat model
/// of the paper — tampering, truncation, reordering, substitution — applies
/// byte-for-byte to a stolen or malicious storage volume. Every block
/// written through this layer is therefore sealed independently:
///
///   1. a fresh 16-byte nonce (prologue),
///   2. AES-CTR ciphertext of `u32 payload_len || payload || zero pad`,
///   3. an HMAC-SHA256 tag over the nonce and ciphertext that also binds
///      the *additional authenticated data* `(store_id, block_index)` —
///      not stored in the block, supplied by the reader from context.
///
/// Nonce discipline: CTR mode turns any (key, nonce, block_index) reuse
/// with different plaintext into a two-time pad, and under this threat
/// model the attacker can image the volume at any moment — including
/// bytes a later truncate "removed". Uniqueness is therefore structural,
/// not statistical-per-draw: a NonceSequence emits `epoch || counter`
/// where the 64-bit epoch is drawn fresh from the environment's entropy
/// source at every store open (see Env::RandomBytes in dsp/blockfile.h)
/// and the counter is monotonic within the open. A crash that rewinds
/// block indices (recovery GCs uncommitted tail blocks) can never repeat
/// a nonce, because the retry runs under a new epoch.
///
/// Because the AAD names where the block is supposed to live, a block
/// copied to a different index, a block swapped with its neighbour, or a
/// block transplanted from another store fails authentication even though
/// its bytes are untouched — the disk cannot relocate data, only lose it
/// (which truncation detection catches). Sealed blocks are
/// indistinguishable from random bytes; the key never touches the disk.
///
/// Encrypt-then-MAC with the repo's AES-CTR + HMAC-SHA256 primitives is
/// the same authenticated-encryption contract as the AES-GCM container in
/// the sfs exemplar, built from what the tree already audits.

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace csxa::crypto {

/// Nonce size of a sealed block.
inline constexpr size_t kBlockNonceSize = 16;

/// \brief Structurally unique nonce stream for one store open.
///
/// Emits `LE64(epoch) || LE64(counter++)`. The caller supplies an epoch
/// that is fresh per open (dsp::DurableServer draws it from the Env's
/// entropy source), so nonces never repeat across crash-recovery cycles
/// even when block indices rewind; the counter makes them unique within
/// the open. Not thread-safe — callers serialize (DurableServer holds its
/// writer mutex across every seal).
class NonceSequence {
 public:
  NonceSequence() = default;
  explicit NonceSequence(uint64_t epoch) : epoch_(epoch) {}

  /// The next never-before-emitted nonce of this sequence.
  std::array<uint8_t, kBlockNonceSize> Next() {
    std::array<uint8_t, kBlockNonceSize> nonce;
    for (size_t i = 0; i < 8; ++i) {
      nonce[i] = static_cast<uint8_t>(epoch_ >> (8 * i));
      nonce[8 + i] = static_cast<uint8_t>(counter_ >> (8 * i));
    }
    ++counter_;
    return nonce;
  }

 private:
  uint64_t epoch_ = 0;
  uint64_t counter_ = 0;
};

/// Sealed data-block size on disk. 4 KB aligns blocks with common page
/// and sector sizes, so a torn write damages at most one block.
inline constexpr size_t kSealedBlockSize = 4096;
/// Per-block overhead: nonce (16) + auth tag (32) + payload length (4).
inline constexpr size_t kSealedBlockOverhead = 16 + kSha256Size + 4;
/// Usable payload bytes in a sealed block of `block_size` total bytes.
constexpr size_t BlockPayloadCapacity(size_t block_size) {
  return block_size - kSealedBlockOverhead;
}
/// Usable payload bytes per default-size sealed block.
inline constexpr size_t kBlockPayloadCapacity =
    BlockPayloadCapacity(kSealedBlockSize);

/// Seals `payload` (at most BlockPayloadCapacity(block_size) bytes) into
/// one `block_size` block bound to `(store_id, block_index)`. The nonce
/// comes from `nonces` (see NonceSequence: unique across every seal the
/// store ever performs, including crash-recovery retries that rewind
/// block indices). The manifest log uses a smaller block size for its
/// fixed-frame records; data blocks use the 4 KB default.
Bytes SealBlock(const SymmetricKey& key, const std::string& store_id,
                uint64_t block_index, Span payload, NonceSequence* nonces,
                size_t block_size = kSealedBlockSize);

/// Opens one sealed block, verifying the auth tag under the same
/// `(store_id, block_index)` AAD before any byte is decrypted. Returns
/// the exact original payload, or kIntegrityError on a block that is the
/// wrong size, fails authentication (bit flip, relocation, substitution,
/// cross-store transplant, wrong key), or carries an impossible length.
Result<Bytes> OpenBlock(const SymmetricKey& key, const std::string& store_id,
                        uint64_t block_index, Span block,
                        size_t block_size = kSealedBlockSize);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_BLOCKSEAL_H_
