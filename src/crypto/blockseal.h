#ifndef CSXA_CRYPTO_BLOCKSEAL_H_
#define CSXA_CRYPTO_BLOCKSEAL_H_

/// \file blockseal.h
/// \brief Fixed-size authenticated-encrypted storage blocks with
/// location-binding AAD.
///
/// The durable DSP backend (dsp/durable.h) persists document state on a
/// disk it must assume is as hostile as the DSP itself: the threat model
/// of the paper — tampering, truncation, reordering, substitution — applies
/// byte-for-byte to a stolen or malicious storage volume. Every block
/// written through this layer is therefore sealed independently:
///
///   1. a fresh random 16-byte nonce (prologue),
///   2. AES-CTR ciphertext of `u32 payload_len || payload || zero pad`,
///   3. an HMAC-SHA256 tag over the nonce and ciphertext that also binds
///      the *additional authenticated data* `(store_id, block_index)` —
///      not stored in the block, supplied by the reader from context.
///
/// Because the AAD names where the block is supposed to live, a block
/// copied to a different index, a block swapped with its neighbour, or a
/// block transplanted from another store fails authentication even though
/// its bytes are untouched — the disk cannot relocate data, only lose it
/// (which truncation detection catches). Sealed blocks are
/// indistinguishable from random bytes; the key never touches the disk.
///
/// Encrypt-then-MAC with the repo's AES-CTR + HMAC-SHA256 primitives is
/// the same authenticated-encryption contract as the AES-GCM container in
/// the sfs exemplar, built from what the tree already audits.

#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace csxa::crypto {

/// Sealed data-block size on disk. 4 KB aligns blocks with common page
/// and sector sizes, so a torn write damages at most one block.
inline constexpr size_t kSealedBlockSize = 4096;
/// Per-block overhead: nonce (16) + auth tag (32) + payload length (4).
inline constexpr size_t kSealedBlockOverhead = 16 + kSha256Size + 4;
/// Usable payload bytes in a sealed block of `block_size` total bytes.
constexpr size_t BlockPayloadCapacity(size_t block_size) {
  return block_size - kSealedBlockOverhead;
}
/// Usable payload bytes per default-size sealed block.
inline constexpr size_t kBlockPayloadCapacity =
    BlockPayloadCapacity(kSealedBlockSize);

/// Seals `payload` (at most BlockPayloadCapacity(block_size) bytes) into
/// one `block_size` block bound to `(store_id, block_index)`. The nonce
/// comes from `nonce_rng` (the repo's deterministic RNG: reproducible in
/// tests, unique per block in any single store's lifetime). The manifest
/// log uses a smaller block size for its fixed-frame records; data blocks
/// use the 4 KB default.
Bytes SealBlock(const SymmetricKey& key, const std::string& store_id,
                uint64_t block_index, Span payload, Rng* nonce_rng,
                size_t block_size = kSealedBlockSize);

/// Opens one sealed block, verifying the auth tag under the same
/// `(store_id, block_index)` AAD before any byte is decrypted. Returns
/// the exact original payload, or kIntegrityError on a block that is the
/// wrong size, fails authentication (bit flip, relocation, substitution,
/// cross-store transplant, wrong key), or carries an impossible length.
Result<Bytes> OpenBlock(const SymmetricKey& key, const std::string& store_id,
                        uint64_t block_index, Span block,
                        size_t block_size = kSealedBlockSize);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_BLOCKSEAL_H_
