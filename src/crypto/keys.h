#ifndef CSXA_CRYPTO_KEYS_H_
#define CSXA_CRYPTO_KEYS_H_

/// \file keys.h
/// \brief Symmetric key material and derivation.
///
/// Each shared document has a document key; the SOE stores user keys in its
/// secure stable storage (§2.1 assumption 2). Sub-keys (encryption vs MAC)
/// are derived by HMAC so a single exchanged secret suffices.

#include <array>
#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace csxa::crypto {

/// \brief A 16-byte symmetric secret with labeled sub-key derivation.
class SymmetricKey {
 public:
  SymmetricKey() { bytes_.fill(0); }
  /// Wraps existing raw key bytes (must be 16 bytes; excess ignored,
  /// shortfall zero-padded).
  explicit SymmetricKey(Span raw) {
    bytes_.fill(0);
    size_t n = raw.size() < bytes_.size() ? raw.size() : bytes_.size();
    std::memcpy(bytes_.data(), raw.data(), n);
  }

  /// Generates a fresh key from the given deterministic RNG.
  static SymmetricKey Generate(Rng* rng);

  /// Raw key bytes.
  Span bytes() const { return Span(bytes_.data(), bytes_.size()); }

  /// Derives a labeled sub-key: HMAC(key, label) truncated to 16 bytes.
  SymmetricKey Derive(const std::string& label) const;

  /// Derives the AES cipher for the "enc" sub-key.
  Aes128 EncryptionCipher() const;
  /// The "mac" sub-key used for HMAC authentication.
  SymmetricKey MacKey() const { return Derive("mac"); }

  bool operator==(const SymmetricKey& o) const { return bytes_ == o.bytes_; }

 private:
  std::array<uint8_t, kAesKeySize> bytes_;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_KEYS_H_
