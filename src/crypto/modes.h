#ifndef CSXA_CRYPTO_MODES_H_
#define CSXA_CRYPTO_MODES_H_

/// \file modes.h
/// \brief AES-128 block cipher modes: CTR (streamable) and CBC (PKCS#7).
///
/// Document payloads use CTR so the SOE can decrypt any chunk independently
/// (a requirement for skipping); small records (rules, key envelopes) use
/// CBC with padding.

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace csxa::crypto {

/// 16-byte initialization vector / initial counter block.
using Iv = std::array<uint8_t, kAesBlockSize>;

/// Derives a deterministic counter block for (document nonce, chunk index).
/// The per-chunk IV makes chunk ciphertexts position-bound.
Iv DeriveCtrIv(Span nonce, uint64_t chunk_index);

/// \brief AES-CTR keystream transform (encrypt == decrypt).
///
/// Processes `in` with the keystream starting at counter block `iv`,
/// writing to `out` (may alias). Arbitrary lengths supported.
void CtrTransform(const Aes128& aes, const Iv& iv, Span in, Bytes* out);

/// CBC-encrypts `plain` with PKCS#7 padding.
Bytes CbcEncrypt(const Aes128& aes, const Iv& iv, Span plain);

/// CBC-decrypts and strips PKCS#7 padding; fails on bad padding or on a
/// ciphertext that is not a positive multiple of the block size.
Result<Bytes> CbcDecrypt(const Aes128& aes, const Iv& iv, Span cipher);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_MODES_H_
