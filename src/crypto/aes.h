#ifndef CSXA_CRYPTO_AES_H_
#define CSXA_CRYPTO_AES_H_

/// \file aes.h
/// \brief AES-128 block cipher (FIPS-197), implemented from scratch.
///
/// The SOE in the paper relies on a card-resident block cipher to decrypt
/// documents and rules. This is a straightforward table-free byte-oriented
/// implementation: clarity and auditability over speed (the smart card CPU
/// is the modeled bottleneck anyway, see soe/cost_model.h).

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace csxa::crypto {

/// AES block size in bytes.
inline constexpr size_t kAesBlockSize = 16;
/// AES-128 key size in bytes.
inline constexpr size_t kAesKeySize = 16;

/// \brief AES-128 with precomputed key schedule.
///
/// Thread-compatible: const methods may be called concurrently.
class Aes128 {
 public:
  /// Expands a 16-byte key. Returns InvalidArgument on wrong key size.
  static Result<Aes128> New(Span key);

  /// Encrypts one 16-byte block in place (`out` may alias `in`).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  /// Decrypts one 16-byte block in place (`out` may alias `in`).
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  Aes128() = default;
  // 11 round keys of 16 bytes each.
  std::array<uint8_t, 176> round_keys_{};
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_AES_H_
