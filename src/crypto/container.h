#ifndef CSXA_CRYPTO_CONTAINER_H_
#define CSXA_CRYPTO_CONTAINER_H_

/// \file container.h
/// \brief The encrypted, chunked, integrity-protected document container.
///
/// This is the on-DSP format for shared documents (§2.1): the payload is
/// split into fixed-size chunks, each independently encrypted with AES-CTR
/// under a per-chunk derived IV, and a Merkle tree is built over
/// (index || ciphertext) leaves. The tree root is authenticated with
/// HMAC-SHA256 under the document's MAC sub-key, so an untrusted DSP can
/// neither substitute, reorder, truncate nor modify chunks undetected,
/// while the SOE can still fetch and verify any subset of chunks — the
/// property the skip index depends on.
///
/// Small records (access rules, key envelopes) use the simpler
/// encrypt-then-MAC record format at the bottom of this header.

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/modes.h"

namespace csxa::crypto {

/// Default container chunk size in bytes. Small enough that the modeled
/// 1 KB card RAM can hold a chunk plus working state; see EXP-APDU for the
/// chunk-size sweep.
inline constexpr size_t kDefaultChunkSize = 512;

/// \brief Per-chunk integrity scheme.
///
/// The card holds the document's MAC key, so a keyed per-chunk MAC bound
/// to (nonce, index, geometry) already defeats substitution, reordering,
/// tampering and cross-document splicing at a constant 32 B per chunk —
/// this is the default and matches the paper's cost envelope. The Merkle
/// mode additionally allows *keyless* verification against the
/// authenticated root (useful when proofs must be checkable by parties
/// without the MAC key) at O(log n) proof bytes per fetched chunk; see the
/// EXP-APDU integrity comparison.
enum class IntegrityMode : uint8_t {
  kChunkMac = 0,
  kMerkle = 1,
};

/// \brief Parsed container header (public, non-secret metadata).
struct ContainerHeader {
  uint8_t version = 2;
  IntegrityMode integrity = IntegrityMode::kChunkMac;
  std::array<uint8_t, 16> nonce{};
  uint32_t chunk_size = kDefaultChunkSize;
  uint64_t payload_size = 0;
  uint32_t chunk_count = 0;
  /// Merkle root (kMerkle) or all-zero (kChunkMac).
  Digest merkle_root{};
  Digest root_mac{};

  /// Serialized header size in bytes (fixed).
  static constexpr size_t kWireSize = 4 + 1 + 1 + 16 + 4 + 8 + 4 + 32 + 32;

  void EncodeTo(ByteWriter* out) const;
  static Result<ContainerHeader> DecodeFrom(ByteReader* in);
};

/// \brief Per-chunk authentication material shipped with a fetched chunk.
struct ChunkAuth {
  /// Merkle authentication path (kMerkle mode).
  std::vector<MerkleTree::ProofNode> proof;
  /// Keyed chunk MAC (kChunkMac mode).
  Digest mac{};

  /// Wire size of the authentication material.
  size_t WireBytes(IntegrityMode mode) const {
    return mode == IntegrityMode::kMerkle ? 2 + proof.size() * 33
                                          : kSha256Size;
  }
};

/// \brief Builder/parser for the sealed container format.
class SecureContainer {
 public:
  /// Seals `payload` under `key` into the serialized container format.
  /// `nonce_rng` supplies the fresh document nonce.
  static Bytes Seal(const SymmetricKey& key, Span payload, size_t chunk_size,
                    Rng* nonce_rng,
                    IntegrityMode mode = IntegrityMode::kChunkMac);

  /// Parses a serialized container (zero-copy view over `data`).
  static Result<SecureContainer> Parse(Span data);

  const ContainerHeader& header() const { return header_; }
  /// Total serialized size.
  size_t wire_size() const { return data_.size(); }

  /// Ciphertext of chunk `i` (view).
  Result<Span> ChunkCiphertext(uint32_t i) const;
  /// Authentication material for chunk `i` (what the untrusted DSP ships
  /// alongside the ciphertext): Merkle path or stored chunk MAC.
  Result<ChunkAuth> GetChunkAuth(uint32_t i) const;

  /// Plaintext size of chunk `i` (== chunk_size except possibly the last).
  Result<size_t> ChunkPlainSize(uint32_t i) const;

  /// SOE-side: verifies the root MAC under `key`. Must be checked once per
  /// document before trusting any chunk authentication.
  static Status VerifyRoot(const SymmetricKey& key, const ContainerHeader& header);

  /// SOE-side: verifies `ciphertext` as chunk `index` per the header's
  /// integrity mode (the header must already be root-verified), then
  /// decrypts it.
  static Result<Bytes> VerifyAndDecryptChunk(const SymmetricKey& key,
                                             const ContainerHeader& header,
                                             uint32_t index, Span ciphertext,
                                             const ChunkAuth& auth);

  /// Convenience: seals then fully opens; used by tests and baselines.
  static Result<Bytes> OpenAll(const SymmetricKey& key, Span container);

  /// Computes the MAC binding the root to the container geometry.
  static Digest ComputeRootMac(const SymmetricKey& key, const ContainerHeader& h);

  /// Leaf payload for the Merkle tree: chunk index || ciphertext.
  static Bytes LeafPayload(uint32_t index, Span ciphertext);

  /// Keyed per-chunk MAC: HMAC(mac_key, "chunk" || nonce || index ||
  /// chunk_size || ciphertext).
  static Digest ComputeChunkMac(const SymmetricKey& key,
                                const ContainerHeader& h, uint32_t index,
                                Span ciphertext);

 private:
  ContainerHeader header_;
  Span data_;              // whole serialized container
  size_t auth_off_ = 0;    // offset of leaf-digest / chunk-MAC table
  size_t chunks_off_ = 0;  // offset of first chunk ciphertext
};

/// Seals a small record: CBC(encrypt) then HMAC over (iv || ciphertext).
/// Format: iv(16) || mac(32) || ciphertext.
Bytes SealRecord(const SymmetricKey& key, Span payload, Rng* rng);

/// Opens a sealed record, verifying the MAC before decrypting.
Result<Bytes> OpenRecord(const SymmetricKey& key, Span sealed);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_CONTAINER_H_
