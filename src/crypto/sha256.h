#ifndef CSXA_CRYPTO_SHA256_H_
#define CSXA_CRYPTO_SHA256_H_

/// \file sha256.h
/// \brief SHA-256 (FIPS 180-4), incremental and one-shot.
///
/// Used for integrity digests, Merkle tree nodes and key derivation.

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace csxa::crypto {

/// SHA-256 digest size in bytes.
inline constexpr size_t kSha256Size = 32;

/// A 32-byte SHA-256 digest.
using Digest = std::array<uint8_t, kSha256Size>;

/// \brief Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Resets to the initial state.
  void Reset();
  /// Absorbs more input.
  void Update(Span data);
  /// Finalizes and returns the digest. The hasher must be Reset() to reuse.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(Span data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t h_[8];
  uint8_t buf_[64];
  size_t buf_len_;
  uint64_t total_len_;
};

/// HMAC-SHA256 (RFC 2104) over `data` with `key` of any length.
Digest HmacSha256(Span key, Span data);

/// Constant-time byte equality for MAC/tag verification: examines every
/// byte regardless of where the first mismatch is, so verification latency
/// cannot leak how long a forged tag's matching prefix was. Length
/// mismatch returns false immediately (lengths are public).
bool ConstantTimeEqual(Span a, Span b);

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_SHA256_H_
