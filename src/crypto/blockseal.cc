#include "crypto/blockseal.h"

#include <cstring>

#include "common/logging.h"
#include "crypto/modes.h"

namespace csxa::crypto {

namespace {

constexpr size_t kNonceSize = kBlockNonceSize;

// The MAC input reproduces everything the reader must trust: a domain
// label, the AAD (store identity and block index — where this block is
// allowed to live), the nonce and the ciphertext. The ciphertext length
// (and with it the block size) is bound implicitly by the HMAC input.
Digest BlockMac(const SymmetricKey& mac_key, const std::string& store_id,
                uint64_t block_index, Span nonce, Span ciphertext) {
  ByteWriter w;
  w.PutString("csxa-block-v1");
  w.PutString(store_id);
  w.PutU64(block_index);
  w.PutBytes(nonce);
  w.PutBytes(ciphertext);
  return HmacSha256(mac_key.bytes(), w.bytes());
}

}  // namespace

Bytes SealBlock(const SymmetricKey& key, const std::string& store_id,
                uint64_t block_index, Span payload, NonceSequence* nonces,
                size_t block_size) {
  CSXA_CHECK(block_size > kSealedBlockOverhead);
  CSXA_CHECK(payload.size() <= BlockPayloadCapacity(block_size));
  const std::array<uint8_t, kNonceSize> nonce_arr = nonces->Next();
  const uint8_t* nonce = nonce_arr.data();
  // Plaintext: u32 payload length, the payload, zero padding to the fixed
  // block interior. The length travels inside the sealed envelope so a
  // padded block round-trips exactly.
  const size_t plain_size = block_size - kNonceSize - kSha256Size;
  Bytes plain(plain_size, 0);
  plain[0] = static_cast<uint8_t>(payload.size());
  plain[1] = static_cast<uint8_t>(payload.size() >> 8);
  plain[2] = static_cast<uint8_t>(payload.size() >> 16);
  plain[3] = static_cast<uint8_t>(payload.size() >> 24);
  if (!payload.empty()) {
    std::memcpy(plain.data() + 4, payload.data(), payload.size());
  }
  Aes128 aes = key.Derive("block-enc").EncryptionCipher();
  Iv iv = DeriveCtrIv(Span(nonce, kNonceSize), block_index);
  Bytes cipher;
  CtrTransform(aes, iv, plain, &cipher);
  Digest mac = BlockMac(key.MacKey(), store_id, block_index,
                        Span(nonce, kNonceSize), cipher);

  Bytes block;
  block.reserve(block_size);
  block.insert(block.end(), nonce, nonce + kNonceSize);
  block.insert(block.end(), mac.begin(), mac.end());
  block.insert(block.end(), cipher.begin(), cipher.end());
  CSXA_CHECK(block.size() == block_size);
  return block;
}

Result<Bytes> OpenBlock(const SymmetricKey& key, const std::string& store_id,
                        uint64_t block_index, Span block, size_t block_size) {
  if (block.size() != block_size) {
    return Status::IntegrityError(
        "sealed block " + std::to_string(block_index) + ": wrong size " +
        std::to_string(block.size()));
  }
  Span nonce = block.subspan(0, kNonceSize);
  Span tag = block.subspan(kNonceSize, kSha256Size);
  Span cipher = block.subspan(kNonceSize + kSha256Size);
  Digest mac = BlockMac(key.MacKey(), store_id, block_index, nonce, cipher);
  if (!ConstantTimeEqual(Span(mac.data(), mac.size()), tag)) {
    return Status::IntegrityError(
        "sealed block " + std::to_string(block_index) +
        ": auth tag mismatch (tampered, relocated or foreign block)");
  }
  Aes128 aes = key.Derive("block-enc").EncryptionCipher();
  Iv iv = DeriveCtrIv(nonce, block_index);
  Bytes plain;
  CtrTransform(aes, iv, cipher, &plain);
  uint32_t len = static_cast<uint32_t>(plain[0]) |
                 static_cast<uint32_t>(plain[1]) << 8 |
                 static_cast<uint32_t>(plain[2]) << 16 |
                 static_cast<uint32_t>(plain[3]) << 24;
  if (len > BlockPayloadCapacity(block_size)) {
    return Status::IntegrityError("sealed block " +
                                  std::to_string(block_index) +
                                  ": impossible payload length");
  }
  return Bytes(plain.begin() + 4, plain.begin() + 4 + len);
}

}  // namespace csxa::crypto
