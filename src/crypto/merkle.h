#ifndef CSXA_CRYPTO_MERKLE_H_
#define CSXA_CRYPTO_MERKLE_H_

/// \file merkle.h
/// \brief Merkle hash tree for random-access integrity verification.
///
/// The paper requires that "substituting or modifying encrypted blocks" is
/// detected by the SOE (§2.1), *and* that the SOE can skip forbidden
/// subtrees without reading them (§2.3). A linear MAC chain would force a
/// full read; a Merkle tree lets the SOE verify any chunk it does read with
/// a logarithmic authentication path while holding only the 32-byte root
/// in secure memory.

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace csxa::crypto {

/// \brief Merkle tree built over a sequence of leaf digests.
///
/// Leaves are hashed with a 0x00 domain-separation prefix and interior
/// nodes with 0x01, preventing second-preimage splicing attacks. Odd nodes
/// are promoted unchanged (Bitcoin-style duplication is deliberately
/// avoided to keep proofs canonical).
class MerkleTree {
 public:
  /// Builds the tree over `leaf_data[i]` payloads (each hashed internally).
  static MerkleTree Build(const std::vector<Bytes>& leaf_data);
  /// Builds the tree over precomputed leaf digests.
  static MerkleTree BuildFromDigests(std::vector<Digest> leaves);

  /// The root digest; all-zero for an empty tree.
  const Digest& root() const { return root_; }
  /// Number of leaves.
  size_t leaf_count() const { return leaf_count_; }

  /// Authentication path for leaf `index`: sibling digests bottom-up,
  /// each tagged with whether the sibling is on the left.
  struct ProofNode {
    Digest sibling;
    bool sibling_is_left;
  };
  /// Extracts the proof for a leaf. Returns InvalidArgument on bad index.
  Result<std::vector<ProofNode>> Prove(size_t index) const;

  /// Verifies that `leaf_payload` at `index` is consistent with `root`.
  static bool Verify(const Digest& root, size_t index, size_t leaf_count,
                     Span leaf_payload, const std::vector<ProofNode>& proof);

  /// Domain-separated leaf digest: SHA-256(0x00 || payload).
  static Digest HashLeaf(Span payload);
  /// Domain-separated interior digest: SHA-256(0x01 || left || right).
  static Digest HashInterior(const Digest& left, const Digest& right);

  /// Serializes a proof (u16 count, then 33 bytes per node).
  static void EncodeProof(const std::vector<ProofNode>& proof, ByteWriter* out);
  /// Parses a proof serialized by EncodeProof.
  static Result<std::vector<ProofNode>> DecodeProof(ByteReader* in);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  size_t leaf_count_ = 0;
};

}  // namespace csxa::crypto

#endif  // CSXA_CRYPTO_MERKLE_H_
