#include "crypto/keys.h"

#include "common/logging.h"

namespace csxa::crypto {

SymmetricKey SymmetricKey::Generate(Rng* rng) {
  std::array<uint8_t, kAesKeySize> raw;
  for (size_t i = 0; i < raw.size(); i += 8) {
    uint64_t v = rng->Next();
    for (size_t b = 0; b < 8 && i + b < raw.size(); ++b) {
      raw[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return SymmetricKey(Span(raw.data(), raw.size()));
}

SymmetricKey SymmetricKey::Derive(const std::string& label) const {
  Digest d = HmacSha256(bytes(), Span(label));
  return SymmetricKey(Span(d.data(), kAesKeySize));
}

Aes128 SymmetricKey::EncryptionCipher() const {
  auto res = Aes128::New(Derive("enc").bytes());
  CSXA_CHECK(res.ok());
  return std::move(res).value();
}

}  // namespace csxa::crypto
