#include "crypto/modes.h"

#include "crypto/sha256.h"

namespace csxa::crypto {

Iv DeriveCtrIv(Span nonce, uint64_t chunk_index) {
  // IV = first 16 bytes of SHA-256(nonce || chunk_index_le). Hash-derived so
  // distinct chunks never share a counter stream even across re-keys.
  ByteWriter w;
  w.PutBytes(nonce);
  w.PutU64(chunk_index);
  Digest d = Sha256::Hash(w.bytes());
  Iv iv;
  std::memcpy(iv.data(), d.data(), iv.size());
  // Zero the low 4 bytes to leave room for the in-chunk block counter.
  iv[12] = iv[13] = iv[14] = iv[15] = 0;
  return iv;
}

void CtrTransform(const Aes128& aes, const Iv& iv, Span in, Bytes* out) {
  out->resize(in.size());
  uint8_t counter[16];
  std::memcpy(counter, iv.data(), 16);
  uint8_t keystream[16];
  size_t off = 0;
  uint32_t block = 0;
  while (off < in.size()) {
    counter[12] = static_cast<uint8_t>(block >> 24);
    counter[13] = static_cast<uint8_t>(block >> 16);
    counter[14] = static_cast<uint8_t>(block >> 8);
    counter[15] = static_cast<uint8_t>(block);
    aes.EncryptBlock(counter, keystream);
    size_t n = in.size() - off;
    if (n > 16) n = 16;
    for (size_t i = 0; i < n; ++i) {
      (*out)[off + i] = in[off + i] ^ keystream[i];
    }
    off += n;
    ++block;
  }
}

Bytes CbcEncrypt(const Aes128& aes, const Iv& iv, Span plain) {
  size_t pad = kAesBlockSize - plain.size() % kAesBlockSize;
  Bytes padded = plain.ToBytes();
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));
  Bytes out(padded.size());
  uint8_t prev[16];
  std::memcpy(prev, iv.data(), 16);
  for (size_t off = 0; off < padded.size(); off += 16) {
    uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = padded[off + i] ^ prev[i];
    aes.EncryptBlock(block, out.data() + off);
    std::memcpy(prev, out.data() + off, 16);
  }
  return out;
}

Result<Bytes> CbcDecrypt(const Aes128& aes, const Iv& iv, Span cipher) {
  if (cipher.size() == 0 || cipher.size() % kAesBlockSize != 0) {
    return Status::IntegrityError("CBC ciphertext length invalid");
  }
  Bytes out(cipher.size());
  uint8_t prev[16];
  std::memcpy(prev, iv.data(), 16);
  for (size_t off = 0; off < cipher.size(); off += 16) {
    uint8_t block[16];
    aes.DecryptBlock(cipher.data() + off, block);
    for (int i = 0; i < 16; ++i) out[off + i] = block[i] ^ prev[i];
    std::memcpy(prev, cipher.data() + off, 16);
  }
  uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    return Status::IntegrityError("CBC padding invalid");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return Status::IntegrityError("CBC padding invalid");
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace csxa::crypto
