#include "crypto/merkle.h"

namespace csxa::crypto {

Digest MerkleTree::HashLeaf(Span payload) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(Span(&tag, 1));
  h.Update(payload);
  return h.Finish();
}

Digest MerkleTree::HashInterior(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(Span(&tag, 1));
  h.Update(Span(left.data(), left.size()));
  h.Update(Span(right.data(), right.size()));
  return h.Finish();
}

MerkleTree MerkleTree::Build(const std::vector<Bytes>& leaf_data) {
  std::vector<Digest> leaves;
  leaves.reserve(leaf_data.size());
  for (const Bytes& b : leaf_data) leaves.push_back(HashLeaf(b));
  return BuildFromDigests(std::move(leaves));
}

MerkleTree MerkleTree::BuildFromDigests(std::vector<Digest> leaves) {
  MerkleTree t;
  t.leaf_count_ = leaves.size();
  if (leaves.empty()) {
    t.root_.fill(0);
    return t;
  }
  t.levels_.push_back(std::move(leaves));
  while (t.levels_.back().size() > 1) {
    const auto& prev = t.levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(HashInterior(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) {
      next.push_back(prev.back());  // promote odd node
    }
    t.levels_.push_back(std::move(next));
  }
  t.root_ = t.levels_.back()[0];
  return t;
}

Result<std::vector<MerkleTree::ProofNode>> MerkleTree::Prove(size_t index) const {
  if (index >= leaf_count_) {
    return Status::InvalidArgument("Merkle proof index out of range");
  }
  std::vector<ProofNode> proof;
  size_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < nodes.size()) {
      proof.push_back(ProofNode{nodes[sibling], sibling < i});
    }
    // Odd promoted nodes contribute no sibling at this level.
    i /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Digest& root, size_t index, size_t leaf_count,
                        Span leaf_payload, const std::vector<ProofNode>& proof) {
  if (index >= leaf_count) return false;
  Digest acc = HashLeaf(leaf_payload);
  // Recompute upward, consuming proof nodes exactly where the tree shape
  // demands a sibling; `width` tracks the node count of the current level.
  size_t i = index;
  size_t width = leaf_count;
  size_t p = 0;
  while (width > 1) {
    size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < width) {
      if (p >= proof.size()) return false;
      const ProofNode& node = proof[p++];
      acc = node.sibling_is_left ? HashInterior(node.sibling, acc)
                                 : HashInterior(acc, node.sibling);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  if (p != proof.size()) return false;
  return acc == root;
}

void MerkleTree::EncodeProof(const std::vector<ProofNode>& proof, ByteWriter* out) {
  out->PutU16(static_cast<uint16_t>(proof.size()));
  for (const ProofNode& n : proof) {
    out->PutU8(n.sibling_is_left ? 1 : 0);
    out->PutBytes(Span(n.sibling.data(), n.sibling.size()));
  }
}

Result<std::vector<MerkleTree::ProofNode>> MerkleTree::DecodeProof(ByteReader* in) {
  uint16_t count;
  if (!in->GetU16(&count)) return Status::ParseError("Merkle proof truncated");
  std::vector<ProofNode> proof;
  proof.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint8_t left;
    Span digest;
    if (!in->GetU8(&left) || !in->GetBytes(kSha256Size, &digest)) {
      return Status::ParseError("Merkle proof truncated");
    }
    ProofNode n;
    n.sibling_is_left = left != 0;
    std::memcpy(n.sibling.data(), digest.data(), kSha256Size);
    proof.push_back(n);
  }
  return proof;
}

}  // namespace csxa::crypto
