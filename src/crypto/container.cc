#include "crypto/container.h"

namespace csxa::crypto {

namespace {
constexpr uint8_t kMagic[4] = {'C', 'S', 'X', 'A'};
}  // namespace

void ContainerHeader::EncodeTo(ByteWriter* out) const {
  out->PutBytes(Span(kMagic, 4));
  out->PutU8(version);
  out->PutU8(static_cast<uint8_t>(integrity));
  out->PutBytes(Span(nonce.data(), nonce.size()));
  out->PutU32(chunk_size);
  out->PutU64(payload_size);
  out->PutU32(chunk_count);
  out->PutBytes(Span(merkle_root.data(), merkle_root.size()));
  out->PutBytes(Span(root_mac.data(), root_mac.size()));
}

Result<ContainerHeader> ContainerHeader::DecodeFrom(ByteReader* in) {
  Span magic;
  if (!in->GetBytes(4, &magic) || !(magic == Span(kMagic, 4))) {
    return Status::ParseError("container magic mismatch");
  }
  ContainerHeader h;
  uint8_t integrity_raw;
  Span nonce, root, mac;
  if (!in->GetU8(&h.version) || !in->GetU8(&integrity_raw) ||
      !in->GetBytes(16, &nonce) || !in->GetU32(&h.chunk_size) ||
      !in->GetU64(&h.payload_size) || !in->GetU32(&h.chunk_count) ||
      !in->GetBytes(32, &root) || !in->GetBytes(32, &mac)) {
    return Status::ParseError("container header truncated");
  }
  if (h.version != 2) return Status::NotSupported("container version");
  if (integrity_raw > 1) return Status::ParseError("unknown integrity mode");
  h.integrity = static_cast<IntegrityMode>(integrity_raw);
  if (h.chunk_size == 0) return Status::ParseError("container chunk size zero");
  std::memcpy(h.nonce.data(), nonce.data(), 16);
  std::memcpy(h.merkle_root.data(), root.data(), 32);
  std::memcpy(h.root_mac.data(), mac.data(), 32);
  return h;
}

Bytes SecureContainer::LeafPayload(uint32_t index, Span ciphertext) {
  ByteWriter w;
  w.PutU32(index);
  w.PutBytes(ciphertext);
  return w.Take();
}

Digest SecureContainer::ComputeRootMac(const SymmetricKey& key,
                                       const ContainerHeader& h) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(h.integrity));
  w.PutBytes(Span(h.merkle_root.data(), h.merkle_root.size()));
  w.PutBytes(Span(h.nonce.data(), h.nonce.size()));
  w.PutU64(h.payload_size);
  w.PutU32(h.chunk_size);
  w.PutU32(h.chunk_count);
  return HmacSha256(key.MacKey().bytes(), w.bytes());
}

Digest SecureContainer::ComputeChunkMac(const SymmetricKey& key,
                                        const ContainerHeader& h,
                                        uint32_t index, Span ciphertext) {
  ByteWriter w;
  w.PutString("chunk");
  w.PutBytes(Span(h.nonce.data(), h.nonce.size()));
  w.PutU32(index);
  w.PutU32(h.chunk_size);
  w.PutBytes(ciphertext);
  return HmacSha256(key.MacKey().bytes(), w.bytes());
}

Bytes SecureContainer::Seal(const SymmetricKey& key, Span payload,
                            size_t chunk_size, Rng* nonce_rng,
                            IntegrityMode mode) {
  if (chunk_size == 0) chunk_size = kDefaultChunkSize;
  ContainerHeader h;
  h.integrity = mode;
  for (size_t i = 0; i < h.nonce.size(); i += 8) {
    uint64_t v = nonce_rng->Next();
    for (size_t b = 0; b < 8 && i + b < h.nonce.size(); ++b) {
      h.nonce[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  h.chunk_size = static_cast<uint32_t>(chunk_size);
  h.payload_size = payload.size();
  h.chunk_count =
      static_cast<uint32_t>((payload.size() + chunk_size - 1) / chunk_size);
  if (payload.size() == 0) h.chunk_count = 0;

  Aes128 aes = key.EncryptionCipher();
  Span nonce(h.nonce.data(), h.nonce.size());

  std::vector<Bytes> ciphertexts;
  ciphertexts.reserve(h.chunk_count);
  for (uint32_t i = 0; i < h.chunk_count; ++i) {
    size_t off = static_cast<size_t>(i) * chunk_size;
    Span plain = payload.subspan(off, chunk_size);
    Bytes cipher;
    CtrTransform(aes, DeriveCtrIv(nonce, i), plain, &cipher);
    ciphertexts.push_back(std::move(cipher));
  }

  // Authentication table: Merkle leaf digests or keyed chunk MACs.
  std::vector<Digest> auth_table;
  auth_table.reserve(h.chunk_count);
  if (mode == IntegrityMode::kMerkle) {
    for (uint32_t i = 0; i < h.chunk_count; ++i) {
      auth_table.push_back(
          MerkleTree::HashLeaf(LeafPayload(i, ciphertexts[i])));
    }
    MerkleTree tree = MerkleTree::BuildFromDigests(auth_table);
    h.merkle_root = tree.root();
  } else {
    h.merkle_root.fill(0);
    for (uint32_t i = 0; i < h.chunk_count; ++i) {
      auth_table.push_back(ComputeChunkMac(key, h, i, ciphertexts[i]));
    }
  }
  h.root_mac = ComputeRootMac(key, h);

  ByteWriter w;
  h.EncodeTo(&w);
  for (const Digest& d : auth_table) w.PutBytes(Span(d.data(), d.size()));
  for (const Bytes& c : ciphertexts) w.PutBytes(c);
  return w.Take();
}

Result<SecureContainer> SecureContainer::Parse(Span data) {
  ByteReader r(data);
  CSXA_ASSIGN_OR_RETURN(ContainerHeader h, ContainerHeader::DecodeFrom(&r));
  SecureContainer c;
  c.header_ = h;
  c.data_ = data;
  c.auth_off_ = r.position();
  size_t auth_bytes = static_cast<size_t>(h.chunk_count) * kSha256Size;
  if (r.remaining() < auth_bytes) {
    return Status::ParseError("container auth table truncated");
  }
  c.chunks_off_ = c.auth_off_ + auth_bytes;
  if (data.size() - c.chunks_off_ != h.payload_size) {
    return Status::ParseError("container payload size mismatch");
  }
  return c;
}

Result<size_t> SecureContainer::ChunkPlainSize(uint32_t i) const {
  if (i >= header_.chunk_count) {
    return Status::InvalidArgument("chunk index out of range");
  }
  size_t off = static_cast<size_t>(i) * header_.chunk_size;
  size_t n = header_.payload_size - off;
  if (n > header_.chunk_size) n = header_.chunk_size;
  return n;
}

Result<Span> SecureContainer::ChunkCiphertext(uint32_t i) const {
  CSXA_ASSIGN_OR_RETURN(size_t n, ChunkPlainSize(i));
  size_t off = chunks_off_ + static_cast<size_t>(i) * header_.chunk_size;
  return data_.subspan(off, n);
}

Result<ChunkAuth> SecureContainer::GetChunkAuth(uint32_t i) const {
  if (i >= header_.chunk_count) {
    return Status::InvalidArgument("chunk index out of range");
  }
  ChunkAuth auth;
  if (header_.integrity == IntegrityMode::kMerkle) {
    std::vector<Digest> leaves;
    leaves.reserve(header_.chunk_count);
    for (uint32_t k = 0; k < header_.chunk_count; ++k) {
      Digest d;
      std::memcpy(d.data(), data_.data() + auth_off_ + k * kSha256Size,
                  kSha256Size);
      leaves.push_back(d);
    }
    MerkleTree tree = MerkleTree::BuildFromDigests(std::move(leaves));
    CSXA_ASSIGN_OR_RETURN(auth.proof, tree.Prove(i));
  } else {
    std::memcpy(auth.mac.data(), data_.data() + auth_off_ + i * kSha256Size,
                kSha256Size);
  }
  return auth;
}

Status SecureContainer::VerifyRoot(const SymmetricKey& key,
                                   const ContainerHeader& header) {
  Digest expected = ComputeRootMac(key, header);
  if (!ConstantTimeEqual(Span(expected.data(), expected.size()),
                         Span(header.root_mac.data(),
                              header.root_mac.size()))) {
    return Status::IntegrityError("container root MAC mismatch");
  }
  return Status::OK();
}

Result<Bytes> SecureContainer::VerifyAndDecryptChunk(
    const SymmetricKey& key, const ContainerHeader& header, uint32_t index,
    Span ciphertext, const ChunkAuth& auth) {
  if (index >= header.chunk_count) {
    return Status::InvalidArgument("chunk index out of range");
  }
  if (header.integrity == IntegrityMode::kMerkle) {
    Bytes leaf = LeafPayload(index, ciphertext);
    if (!MerkleTree::Verify(header.merkle_root, index, header.chunk_count,
                            leaf, auth.proof)) {
      return Status::IntegrityError("chunk failed Merkle verification");
    }
  } else {
    Digest expected = ComputeChunkMac(key, header, index, ciphertext);
    if (!ConstantTimeEqual(Span(expected.data(), expected.size()),
                           Span(auth.mac.data(), auth.mac.size()))) {
      return Status::IntegrityError("chunk MAC mismatch");
    }
  }
  Aes128 aes = key.EncryptionCipher();
  Bytes plain;
  CtrTransform(aes,
               DeriveCtrIv(Span(header.nonce.data(), header.nonce.size()), index),
               ciphertext, &plain);
  return plain;
}

Result<Bytes> SecureContainer::OpenAll(const SymmetricKey& key, Span container) {
  CSXA_ASSIGN_OR_RETURN(SecureContainer c, Parse(container));
  CSXA_RETURN_IF_ERROR(VerifyRoot(key, c.header()));
  Bytes out;
  out.reserve(c.header().payload_size);
  for (uint32_t i = 0; i < c.header().chunk_count; ++i) {
    CSXA_ASSIGN_OR_RETURN(Span cipher, c.ChunkCiphertext(i));
    CSXA_ASSIGN_OR_RETURN(ChunkAuth auth, c.GetChunkAuth(i));
    CSXA_ASSIGN_OR_RETURN(
        Bytes plain, VerifyAndDecryptChunk(key, c.header(), i, cipher, auth));
    out.insert(out.end(), plain.begin(), plain.end());
  }
  return out;
}

Bytes SealRecord(const SymmetricKey& key, Span payload, Rng* rng) {
  Iv iv;
  for (size_t i = 0; i < iv.size(); i += 8) {
    uint64_t v = rng->Next();
    for (size_t b = 0; b < 8 && i + b < iv.size(); ++b) {
      iv[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  Aes128 aes = key.EncryptionCipher();
  Bytes cipher = CbcEncrypt(aes, iv, payload);
  ByteWriter macd;
  macd.PutBytes(Span(iv.data(), iv.size()));
  macd.PutBytes(cipher);
  Digest mac = HmacSha256(key.MacKey().bytes(), macd.bytes());
  ByteWriter w;
  w.PutBytes(Span(iv.data(), iv.size()));
  w.PutBytes(Span(mac.data(), mac.size()));
  w.PutBytes(cipher);
  return w.Take();
}

Result<Bytes> OpenRecord(const SymmetricKey& key, Span sealed) {
  if (sealed.size() < 16 + 32 + kAesBlockSize) {
    return Status::IntegrityError("sealed record too short");
  }
  Span iv_span = sealed.subspan(0, 16);
  Span mac_span = sealed.subspan(16, 32);
  Span cipher = sealed.subspan(48);
  ByteWriter macd;
  macd.PutBytes(iv_span);
  macd.PutBytes(cipher);
  Digest mac = HmacSha256(key.MacKey().bytes(), macd.bytes());
  if (!ConstantTimeEqual(Span(mac.data(), mac.size()), mac_span)) {
    return Status::IntegrityError("record MAC mismatch");
  }
  Iv iv;
  std::memcpy(iv.data(), iv_span.data(), 16);
  Aes128 aes = key.EncryptionCipher();
  return CbcDecrypt(aes, iv, cipher);
}

}  // namespace csxa::crypto
