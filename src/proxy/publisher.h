#ifndef CSXA_PROXY_PUBLISHER_H_
#define CSXA_PROXY_PUBLISHER_H_

/// \file publisher.h
/// \brief Document-owner tooling: encode, index, seal and publish.
///
/// Runs on the owner's (trusted) terminal: it is the only place plaintext
/// and keys coexist outside a card. Publishing a document generates a
/// fresh document key, encodes the XML with the skip index, seals it into
/// the chunked container, seals the rule set, pushes both to the DSP and
/// deposits the key with the PKI registry for each grantee.

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/rule.h"
#include "crypto/container.h"
#include "dsp/service.h"
#include "pki/registry.h"
#include "skipindex/codec.h"
#include "xml/dom.h"

namespace csxa::proxy {

/// Publication options.
struct PublishOptions {
  size_t chunk_size = crypto::kDefaultChunkSize;
  bool with_index = true;
  bool recursive_bitmaps = true;
};

/// What publishing produced (sizes feed several benchmarks).
struct PublishReceipt {
  crypto::SymmetricKey key;
  size_t plaintext_bytes = 0;   // encoded document before sealing
  size_t container_bytes = 0;   // sealed container as stored
  size_t sealed_rules_bytes = 0;
  skipindex::EncodeStats encode_stats;
};

/// \brief Owner-side publishing facade.
///
/// Talks to any dsp::Service backend (in-memory, sharded, cached): one
/// kPublish or kUpdateRules round trip per operation.
class Publisher {
 public:
  Publisher(dsp::Service* dsp, pki::KeyRegistry* registry, uint64_t seed)
      : dsp_(dsp), registry_(registry), rng_(seed) {}

  /// Publishes `doc` as `doc_id` with `rules_text` (RuleSet text format),
  /// granting the key to every subject appearing in the rules.
  Result<PublishReceipt> Publish(const std::string& doc_id,
                                 const xml::DomDocument& doc,
                                 const std::string& rules_text,
                                 const PublishOptions& options = {});

  /// Replaces the rules of a published document — the paper's headline
  /// "dynamic" operation: no document re-encryption, no key redistribution
  /// for existing grantees; new subjects receive the key.
  /// Returns the sealed blob size (the entire update cost).
  Result<size_t> UpdateRules(const std::string& doc_id,
                             const crypto::SymmetricKey& key,
                             const std::string& rules_text);

 private:
  Result<Bytes> SealRules(const crypto::SymmetricKey& key,
                          const core::RuleSet& rules,
                          const std::string& doc_id);

  dsp::Service* dsp_;
  pki::KeyRegistry* registry_;
  Rng rng_;
  /// Owner-side monotone rule-set versions (anti-rollback anchor).
  std::map<std::string, uint64_t> rules_versions_;
};

}  // namespace csxa::proxy

#endif  // CSXA_PROXY_PUBLISHER_H_
