#include "proxy/publisher.h"

#include "core/rule.h"
#include "core/rule_envelope.h"

namespace csxa::proxy {

Result<Bytes> Publisher::SealRules(const crypto::SymmetricKey& key,
                                   const core::RuleSet& rules,
                                   const std::string& doc_id) {
  // Monotone per-document version: the card's anti-rollback anchor.
  uint64_t version = ++rules_versions_[doc_id];
  return core::SealRuleSet(key, rules, version, &rng_);
}

Result<PublishReceipt> Publisher::Publish(const std::string& doc_id,
                                          const xml::DomDocument& doc,
                                          const std::string& rules_text,
                                          const PublishOptions& options) {
  CSXA_ASSIGN_OR_RETURN(core::RuleSet rules,
                        core::RuleSet::ParseText(rules_text));
  PublishReceipt receipt;
  receipt.key = crypto::SymmetricKey::Generate(&rng_);

  skipindex::EncodeOptions eopt;
  eopt.with_index = options.with_index;
  eopt.recursive_bitmaps = options.recursive_bitmaps;
  CSXA_ASSIGN_OR_RETURN(Bytes encoded,
                        skipindex::EncodeDocument(doc, eopt,
                                                  &receipt.encode_stats));
  receipt.plaintext_bytes = encoded.size();

  Bytes container = crypto::SecureContainer::Seal(receipt.key, encoded,
                                                  options.chunk_size, &rng_);
  receipt.container_bytes = container.size();

  CSXA_ASSIGN_OR_RETURN(Bytes sealed_rules,
                        SealRules(receipt.key, rules, doc_id));
  receipt.sealed_rules_bytes = sealed_rules.size();

  CSXA_RETURN_IF_ERROR(
      dsp_->Publish(doc_id, std::move(container), std::move(sealed_rules)));
  // Key distribution through the (simulated) PKI for every subject.
  for (const std::string& subject : rules.Subjects()) {
    registry_->RegisterUser(subject);
    CSXA_RETURN_IF_ERROR(registry_->Grant(doc_id, subject, receipt.key));
  }
  return receipt;
}

Result<size_t> Publisher::UpdateRules(const std::string& doc_id,
                                      const crypto::SymmetricKey& key,
                                      const std::string& rules_text) {
  CSXA_ASSIGN_OR_RETURN(core::RuleSet rules,
                        core::RuleSet::ParseText(rules_text));
  CSXA_ASSIGN_OR_RETURN(Bytes sealed, SealRules(key, rules, doc_id));
  size_t size = sealed.size();
  CSXA_RETURN_IF_ERROR(dsp_->UpdateRules(doc_id, std::move(sealed)));
  for (const std::string& subject : rules.Subjects()) {
    registry_->RegisterUser(subject);
    if (!registry_->Fetch(doc_id, subject).ok()) {
      CSXA_RETURN_IF_ERROR(registry_->Grant(doc_id, subject, key));
    }
  }
  return size;
}

}  // namespace csxa::proxy
