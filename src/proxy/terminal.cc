#include "proxy/terminal.h"

namespace csxa::proxy {

using soe::ApduCommand;
using soe::ApduResponse;
using soe::Ins;

Terminal::Terminal(std::string user, soe::CardProfile profile,
                   dsp::DspServer* dsp, pki::KeyRegistry* registry)
    : user_(std::move(user)), dsp_(dsp), registry_(registry), applet_(profile) {}

Status Terminal::Provision(const std::string& doc_id) {
  CSXA_ASSIGN_OR_RETURN(crypto::SymmetricKey key,
                        registry_->Fetch(doc_id, user_));
  applet_.InstallKey(doc_id, key);
  return Status::OK();
}

namespace {
// Maps an applet status word to a Status for the application layer.
Status FromSw(uint16_t sw, const std::string& what) {
  switch (sw) {
    case soe::kSwSecurityStatus:
      return Status::IntegrityError(what + ": card security status");
    case soe::kSwNotFound:
      return Status::NotFound(what + ": card reports not found");
    case soe::kSwConditionsNotSatisfied:
      return Status::InvalidArgument(what + ": conditions not satisfied");
    case soe::kSwWrongData:
      return Status::InvalidArgument(what + ": wrong data");
    default:
      return Status::Internal(what + ": card error " + std::to_string(sw));
  }
}
}  // namespace

Result<QueryResult> Terminal::Query(const std::string& doc_id,
                                    const QueryOptions& options) {
  // Fetch public metadata and the sealed rules from the DSP.
  uint64_t dsp_before = dsp_->bytes_served();
  CSXA_ASSIGN_OR_RETURN(Bytes header, dsp_->GetHeader(doc_id));
  CSXA_ASSIGN_OR_RETURN(Bytes sealed_rules, dsp_->GetSealedRules(doc_id));

  // The chunk provider the card pulls from during the session.
  dsp::DspChunkProvider provider(dsp_, doc_id);
  applet_.SetChunkProvider(&provider);

  // Drive the card over APDUs. The transport charges a dedicated cost
  // model for terminal-side accounting; the card's own session cost is
  // reported in its stats.
  soe::CostModel link_cost(applet_.engine().profile());
  soe::ApduTransport transport(&link_cost);

  ApduCommand select;
  select.ins = Ins::kSelectDocument;
  {
    ByteWriter w;
    w.PutString(doc_id);
    w.PutLengthPrefixed(header);
    select.data = w.Take();
  }
  ApduResponse resp = transport.Exchange(&applet_, select);
  if (!resp.ok()) return FromSw(resp.sw, "select");

  ApduCommand put_rules;
  put_rules.ins = Ins::kPutRules;
  put_rules.data = sealed_rules;
  resp = transport.Exchange(&applet_, put_rules);
  if (!resp.ok()) return FromSw(resp.sw, "put-rules");

  ApduCommand run;
  run.ins = Ins::kRunQuery;
  {
    ByteWriter w;
    w.PutString(user_);
    w.PutString(options.query);
    uint8_t flags = 0;
    if (options.use_skip) flags |= 1;
    if (options.strict_ram) flags |= 2;
    w.PutU8(flags);
    run.data = w.Take();
  }
  resp = transport.Exchange(&applet_, run);
  if (!resp.ok()) return FromSw(resp.sw, "run-query");

  // Page the delivered view out of the card.
  QueryResult result;
  for (;;) {
    ApduCommand fetch;
    fetch.ins = Ins::kFetchOutput;
    ApduResponse slice = transport.Exchange(&applet_, fetch);
    if (!slice.ok()) return FromSw(slice.sw, "fetch-output");
    result.xml.append(reinterpret_cast<const char*>(slice.data.data()),
                      slice.data.size());
    if (slice.sw == soe::kSwOk) break;
  }

  ApduCommand end;
  end.ins = Ins::kEndSession;
  result.card = applet_.last_stats();
  transport.Exchange(&applet_, end);

  result.dsp_bytes_fetched = dsp_->bytes_served() - dsp_before;
  result.apdu_round_trips = transport.exchanges();
  return result;
}

}  // namespace csxa::proxy
