#include "proxy/terminal.h"

#include "soe/prefetch.h"

namespace csxa::proxy {

using soe::ApduCommand;
using soe::ApduResponse;
using soe::Ins;

Terminal::Terminal(std::string user, soe::CardProfile profile,
                   dsp::Service* dsp, pki::KeyRegistry* registry)
    : user_(std::move(user)), dsp_(dsp), registry_(registry), applet_(profile) {}

Status Terminal::Provision(const std::string& doc_id) {
  CSXA_ASSIGN_OR_RETURN(crypto::SymmetricKey key,
                        registry_->Fetch(doc_id, user_));
  applet_.InstallKey(doc_id, key);
  return Status::OK();
}

namespace {
// Maps an applet status word to a Status for the application layer.
Status FromSw(uint16_t sw, const std::string& what) {
  switch (sw) {
    case soe::kSwSecurityStatus:
      return Status::IntegrityError(what + ": card security status");
    case soe::kSwNotFound:
      return Status::NotFound(what + ": card reports not found");
    case soe::kSwConditionsNotSatisfied:
      return Status::InvalidArgument(what + ": conditions not satisfied");
    case soe::kSwWrongData:
      return Status::InvalidArgument(what + ": wrong data");
    default:
      return Status::Internal(what + ": card error " + std::to_string(sw));
  }
}
}  // namespace

Result<QueryResult> Terminal::Query(const std::string& doc_id,
                                    const QueryOptions& options) {
  // One OpenDocument round trip fetches header + sealed rules + rules
  // version together (three separate calls before the batch protocol).
  dsp::ServiceStats dsp_before = dsp_->stats();
  CSXA_ASSIGN_OR_RETURN(dsp::Response open, dsp_->OpenDocument(doc_id));

  // The chunk supply the card pulls from during the session: a per-chunk
  // Service provider, wrapped in a prefetch window so sequential runs
  // amortize the terminal<->DSP latency.
  ByteReader header_reader(open.header);
  CSXA_ASSIGN_OR_RETURN(crypto::ContainerHeader parsed_header,
                        crypto::ContainerHeader::DecodeFrom(&header_reader));
  dsp::ServiceChunkProvider chunk_provider(dsp_, doc_id);
  soe::PrefetchOptions popt;
  popt.max_window = options.max_prefetch;
  soe::PrefetchingProvider provider(&chunk_provider, parsed_header.chunk_count,
                                    popt);
  applet_.SetChunkProvider(&provider);

  // Drive the card over APDUs. The transport charges a dedicated cost
  // model for terminal-side accounting; the card's own session cost is
  // reported in its stats.
  soe::CostModel link_cost(applet_.engine().profile());
  soe::ApduTransport transport(&link_cost);

  ApduCommand select;
  select.ins = Ins::kSelectDocument;
  {
    ByteWriter w;
    w.PutString(doc_id);
    w.PutLengthPrefixed(open.header);
    select.data = w.Take();
  }
  ApduResponse resp = transport.Exchange(&applet_, select);
  if (!resp.ok()) return FromSw(resp.sw, "select");

  ApduCommand put_rules;
  put_rules.ins = Ins::kPutRules;
  put_rules.data = open.sealed_rules;
  resp = transport.Exchange(&applet_, put_rules);
  if (!resp.ok()) return FromSw(resp.sw, "put-rules");

  ApduCommand run;
  run.ins = Ins::kRunQuery;
  {
    ByteWriter w;
    w.PutString(user_);
    w.PutString(options.query);
    uint8_t flags = 0;
    if (options.use_skip) flags |= 1;
    if (options.strict_ram) flags |= 2;
    w.PutU8(flags);
    run.data = w.Take();
  }
  resp = transport.Exchange(&applet_, run);
  if (!resp.ok()) return FromSw(resp.sw, "run-query");

  // Page the delivered view out of the card.
  QueryResult result;
  for (;;) {
    ApduCommand fetch;
    fetch.ins = Ins::kFetchOutput;
    ApduResponse slice = transport.Exchange(&applet_, fetch);
    if (!slice.ok()) return FromSw(slice.sw, "fetch-output");
    result.xml.append(reinterpret_cast<const char*>(slice.data.data()),
                      slice.data.size());
    if (slice.sw == soe::kSwOk) break;
  }

  ApduCommand end;
  end.ins = Ins::kEndSession;
  result.card = applet_.last_stats();
  transport.Exchange(&applet_, end);

  dsp::ServiceStats dsp_after = dsp_->stats();
  result.dsp_bytes_fetched = dsp_after.bytes_served - dsp_before.bytes_served;
  result.dsp_round_trips = dsp_after.requests - dsp_before.requests;
  result.apdu_round_trips = transport.exchanges();
  return result;
}

}  // namespace csxa::proxy
