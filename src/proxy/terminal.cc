#include "proxy/terminal.h"

#include <optional>
#include <utility>

#include "soe/prefetch.h"

namespace csxa::proxy {

using soe::ApduCommand;
using soe::ApduResponse;
using soe::Ins;

Terminal::Terminal(std::string user, soe::CardProfile profile,
                   dsp::Service* dsp, pki::KeyRegistry* registry)
    : user_(std::move(user)), dsp_(dsp), registry_(registry), applet_(profile) {}

Status Terminal::Provision(const std::string& doc_id) {
  CSXA_ASSIGN_OR_RETURN(crypto::SymmetricKey key,
                        registry_->Fetch(doc_id, user_));
  applet_.InstallKey(doc_id, key);
  return Status::OK();
}

namespace {
// Maps an applet status word to a Status for the application layer.
Status FromSw(uint16_t sw, const std::string& what) {
  switch (sw) {
    case soe::kSwSecurityStatus:
      return Status::IntegrityError(what + ": card security status");
    case soe::kSwNotFound:
      return Status::NotFound(what + ": card reports not found");
    case soe::kSwConditionsNotSatisfied:
      return Status::InvalidArgument(what + ": conditions not satisfied");
    case soe::kSwWrongData:
      return Status::InvalidArgument(what + ": wrong data");
    default:
      return Status::Internal(what + ": card error " + std::to_string(sw));
  }
}
}  // namespace

Result<QueryResult> Terminal::Query(const std::string& doc_id,
                                    const QueryOptions& options) {
  // One OpenDocument round trip fetches header + sealed rules + rules
  // version together (three separate calls before the batch protocol).
  dsp::ServiceStats dsp_before = dsp_->stats();
  CSXA_ASSIGN_OR_RETURN(dsp::Response open, dsp_->OpenDocument(doc_id));

  // The chunk supply the card pulls from during the session: a per-chunk
  // Service provider, topped by the selected scheduling layer — adaptive
  // prefetch window, plan-driven multi-span fetches, or nothing.
  ByteReader header_reader(open.header);
  CSXA_ASSIGN_OR_RETURN(crypto::ContainerHeader parsed_header,
                        crypto::ContainerHeader::DecodeFrom(&header_reader));
  dsp::ServiceChunkProvider chunk_provider(dsp_, doc_id);
  soe::ChunkProvider* provider = &chunk_provider;

  const PlanKey plan_key{doc_id, open.rules_version, options.query,
                         options.use_skip};
  const soe::FetchPlan* plan = nullptr;
  bool learn_plan = false;
  if (options.fetch_policy == FetchPolicy::kPlanned) {
    if (options.plan != nullptr) {
      plan = options.plan;
    } else {
      auto it = plan_cache_.find(plan_key);
      if (it != plan_cache_.end()) {
        plan = &it->second;
      } else {
        // Drop plans learned under older rules versions of this document
        // — they can never match again.
        auto lo = plan_cache_.lower_bound(PlanKey{doc_id, 0, "", false});
        while (lo != plan_cache_.end() && std::get<0>(lo->first) == doc_id) {
          if (std::get<1>(lo->first) != open.rules_version) {
            lo = plan_cache_.erase(lo);
          } else {
            ++lo;
          }
        }
        learn_plan = true;
      }
    }
  }

  std::optional<soe::PrefetchingProvider> windowed;
  std::optional<soe::PlannedProvider> planned;
  std::optional<soe::RecordingProvider> recorder;
  if (plan != nullptr) {
    soe::PlannedOptions plopt;
    plopt.max_chunks_per_trip = options.plan_chunks_per_trip;
    planned.emplace(&chunk_provider, parsed_header.chunk_count, *plan, plopt);
    provider = &*planned;
  } else if (options.fetch_policy != FetchPolicy::kPerChunk) {
    // kWindowed, and the learn-on-first-run leg of kPlanned.
    soe::PrefetchOptions popt;
    popt.max_window = options.max_prefetch;
    windowed.emplace(&chunk_provider, parsed_header.chunk_count, popt);
    provider = &*windowed;
  }
  if (learn_plan) {
    recorder.emplace(provider);
    provider = &*recorder;
  }
  applet_.SetChunkProvider(provider);

  // Drive the card over APDUs. The transport charges a dedicated cost
  // model for terminal-side accounting; the card's own session cost is
  // reported in its stats.
  soe::CostModel link_cost(applet_.engine().profile());
  soe::ApduTransport transport(&link_cost);

  ApduCommand select;
  select.ins = Ins::kSelectDocument;
  {
    ByteWriter w;
    w.PutString(doc_id);
    w.PutLengthPrefixed(open.header);
    select.data = w.Take();
  }
  ApduResponse resp = transport.Exchange(&applet_, select);
  if (!resp.ok()) return FromSw(resp.sw, "select");

  ApduCommand put_rules;
  put_rules.ins = Ins::kPutRules;
  put_rules.data = open.sealed_rules;
  resp = transport.Exchange(&applet_, put_rules);
  if (!resp.ok()) return FromSw(resp.sw, "put-rules");

  ApduCommand run;
  run.ins = Ins::kRunQuery;
  {
    ByteWriter w;
    w.PutString(user_);
    w.PutString(options.query);
    uint8_t flags = 0;
    if (options.use_skip) flags |= 1;
    if (options.strict_ram) flags |= 2;
    w.PutU8(flags);
    run.data = w.Take();
  }
  resp = transport.Exchange(&applet_, run);
  if (!resp.ok()) return FromSw(resp.sw, "run-query");

  // Page the delivered view out of the card.
  QueryResult result;
  for (;;) {
    ApduCommand fetch;
    fetch.ins = Ins::kFetchOutput;
    ApduResponse slice = transport.Exchange(&applet_, fetch);
    if (!slice.ok()) return FromSw(slice.sw, "fetch-output");
    result.xml.append(reinterpret_cast<const char*>(slice.data.data()),
                      slice.data.size());
    if (slice.sw == soe::kSwOk) break;
  }

  ApduCommand end;
  end.ins = Ins::kEndSession;
  result.card = applet_.last_stats();
  transport.Exchange(&applet_, end);

  dsp::ServiceStats dsp_after = dsp_->stats();
  result.dsp_bytes_fetched = dsp_after.bytes_served - dsp_before.bytes_served;
  result.dsp_round_trips = dsp_after.requests - dsp_before.requests;
  result.apdu_round_trips = transport.exchanges();

  result.fetch_policy = options.fetch_policy;
  if (planned.has_value()) {
    result.plan_ranges = planned->plan().runs.size();
    result.plan_trips = planned->planned_trips();
    result.plan_miss_trips = planned->plan_misses();
  }
  if (recorder.has_value()) {
    // The session completed: the recorded access pattern IS the skip
    // filter's decision sequence for this (doc, rules version, query,
    // skip mode) — compile and cache it for the next identical query.
    soe::FetchPlan learned =
        soe::FetchPlan::FromChunkSequence(recorder->requested());
    result.plan_ranges = learned.runs.size();
    plan_cache_.insert_or_assign(plan_key, std::move(learned));
    result.plan_learned = true;
  }
  return result;
}

}  // namespace csxa::proxy
