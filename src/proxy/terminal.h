#ifndef CSXA_PROXY_TERMINAL_H_
#define CSXA_PROXY_TERMINAL_H_

/// \file terminal.h
/// \brief The user-side terminal proxy (Fig. 3).
///
/// "A proxy allowing the applications to communicate easily with the
/// different elements of the architecture through an XML API independent
/// of the underlying protocols (JDBC, APDU)" (§3). The proxy hosts the
/// user's card (applet), provisions its keys from the PKI registry,
/// drives sessions over the APDU transport, feeds container chunks
/// fetched from the DSP through the batch-first dsp::Service protocol
/// (one OpenDocument trip, windowed prefetching chunk fetches), and
/// reassembles the delivered view for the application.

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "dsp/service.h"
#include "pki/registry.h"
#include "soe/applet.h"
#include "soe/apdu.h"
#include "soe/prefetch.h"

namespace csxa::proxy {

/// \brief How the terminal schedules chunk fetches from the DSP.
enum class FetchPolicy : uint8_t {
  /// Every card chunk request is its own kGetChunks round trip (the
  /// pre-batching baseline).
  kPerChunk,
  /// Adaptive prefetch window (soe::PrefetchingProvider): sequential runs
  /// amortize trips, skip jumps collapse the window. The default.
  kWindowed,
  /// Skip-index-planned multi-span fetches (soe::PlannedProvider). With
  /// an advisory plan — supplied by the caller or learned from a prior
  /// identical query — the whole needed chunk set arrives in one (or few)
  /// multi-span kGetChunks trips; chunks the plan missed fall through to
  /// ordinary per-chunk trips. Without any plan the query runs windowed
  /// and the terminal records the access pattern as the plan for the
  /// next identical query (same doc, rules version, query, skip mode).
  kPlanned,
};

/// Per-query options exposed to applications.
struct QueryOptions {
  /// XPath query; empty delivers the whole authorized view.
  std::string query;
  /// Exploit the skip index.
  bool use_skip = true;
  /// Enforce the modeled card RAM budget strictly.
  bool strict_ram = false;
  /// Chunk fetch scheduling policy (see FetchPolicy).
  FetchPolicy fetch_policy = FetchPolicy::kWindowed;
  /// kWindowed: upper bound of the adaptive DSP prefetch window, in
  /// chunks; 1 makes every chunk its own round trip.
  uint32_t max_prefetch = 8;
  /// kPlanned: advisory fetch plan to use (e.g. owner-computed via
  /// soe::ComputeFetchPlan). Null consults the terminal's learned-plan
  /// cache. The plan is never authoritative: a wrong plan costs round
  /// trips, not correctness.
  const soe::FetchPlan* plan = nullptr;
  /// kPlanned: cap on chunks per multi-span trip (0 = whole plan in one
  /// request); bounds the terminal-side buffer.
  uint32_t plan_chunks_per_trip = 0;
};

/// What the application receives.
struct QueryResult {
  /// The authorized (sub)document, canonical XML.
  std::string xml;
  /// Card-side session statistics (cost model, skips, RAM, round trips).
  soe::SessionStats card;
  /// Terminal-side accounting.
  uint64_t dsp_bytes_fetched = 0;
  uint64_t dsp_round_trips = 0;
  uint64_t apdu_round_trips = 0;
  /// \name Fetch-plan accounting (kPlanned sessions)
  /// @{
  /// Policy the session actually ran with.
  FetchPolicy fetch_policy = FetchPolicy::kWindowed;
  /// Contiguous ranges in the plan used (0 when no plan was available).
  uint64_t plan_ranges = 0;
  /// Multi-span planned fetches issued.
  uint64_t plan_trips = 0;
  /// Card requests the plan missed (served by fallback trips).
  uint64_t plan_miss_trips = 0;
  /// This session ran windowed and recorded a plan for the next
  /// identical query.
  bool plan_learned = false;
  /// @}
};

/// \brief One user's terminal with its plugged-in card.
///
/// `dsp` is any Service backend: the in-memory DspServer, a ShardedService
/// fleet, or a CachingClient stacked on either — the terminal only speaks
/// the protocol.
class Terminal {
 public:
  /// `user` is the card holder; the card profile models the hardware.
  Terminal(std::string user, soe::CardProfile profile, dsp::Service* dsp,
           pki::KeyRegistry* registry);

  /// Fetches the user's key grant for `doc_id` from the registry and
  /// installs it in the card (secure channel assumed).
  Status Provision(const std::string& doc_id);

  /// Runs a query as this terminal's user. The XML API of the demo:
  /// applications call this and get XML back, all protocol details hidden.
  Result<QueryResult> Query(const std::string& doc_id,
                            const QueryOptions& options);

  /// The card holder.
  const std::string& user() const { return user_; }
  /// Direct applet access (integration tests).
  soe::CsxaApplet& applet() { return applet_; }
  /// Learned fetch plans currently cached (tests/diagnostics).
  size_t cached_plans() const { return plan_cache_.size(); }

 private:
  /// Learned plans are valid for exactly one (document, rules version,
  /// query, skip mode): a policy update or republish bumps the version
  /// and the next planned query re-learns. Stale entries are dropped
  /// lazily on lookup.
  using PlanKey = std::tuple<std::string, uint64_t, std::string, bool>;

  std::string user_;
  dsp::Service* dsp_;
  pki::KeyRegistry* registry_;
  soe::CsxaApplet applet_;
  std::map<PlanKey, soe::FetchPlan> plan_cache_;
};

}  // namespace csxa::proxy

#endif  // CSXA_PROXY_TERMINAL_H_
