#ifndef CSXA_PROXY_TERMINAL_H_
#define CSXA_PROXY_TERMINAL_H_

/// \file terminal.h
/// \brief The user-side terminal proxy (Fig. 3).
///
/// "A proxy allowing the applications to communicate easily with the
/// different elements of the architecture through an XML API independent
/// of the underlying protocols (JDBC, APDU)" (§3). The proxy hosts the
/// user's card (applet), provisions its keys from the PKI registry,
/// drives sessions over the APDU transport, feeds container chunks
/// fetched from the DSP through the batch-first dsp::Service protocol
/// (one OpenDocument trip, windowed prefetching chunk fetches), and
/// reassembles the delivered view for the application.

#include <memory>
#include <string>

#include "dsp/service.h"
#include "pki/registry.h"
#include "soe/applet.h"
#include "soe/apdu.h"

namespace csxa::proxy {

/// Per-query options exposed to applications.
struct QueryOptions {
  /// XPath query; empty delivers the whole authorized view.
  std::string query;
  /// Exploit the skip index.
  bool use_skip = true;
  /// Enforce the modeled card RAM budget strictly.
  bool strict_ram = false;
  /// Upper bound of the adaptive DSP prefetch window, in chunks; 1 makes
  /// every chunk its own round trip (the pre-batching behaviour).
  uint32_t max_prefetch = 8;
};

/// What the application receives.
struct QueryResult {
  /// The authorized (sub)document, canonical XML.
  std::string xml;
  /// Card-side session statistics (cost model, skips, RAM, round trips).
  soe::SessionStats card;
  /// Terminal-side accounting.
  uint64_t dsp_bytes_fetched = 0;
  uint64_t dsp_round_trips = 0;
  uint64_t apdu_round_trips = 0;
};

/// \brief One user's terminal with its plugged-in card.
///
/// `dsp` is any Service backend: the in-memory DspServer, a ShardedService
/// fleet, or a CachingClient stacked on either — the terminal only speaks
/// the protocol.
class Terminal {
 public:
  /// `user` is the card holder; the card profile models the hardware.
  Terminal(std::string user, soe::CardProfile profile, dsp::Service* dsp,
           pki::KeyRegistry* registry);

  /// Fetches the user's key grant for `doc_id` from the registry and
  /// installs it in the card (secure channel assumed).
  Status Provision(const std::string& doc_id);

  /// Runs a query as this terminal's user. The XML API of the demo:
  /// applications call this and get XML back, all protocol details hidden.
  Result<QueryResult> Query(const std::string& doc_id,
                            const QueryOptions& options);

  /// The card holder.
  const std::string& user() const { return user_; }
  /// Direct applet access (integration tests).
  soe::CsxaApplet& applet() { return applet_; }

 private:
  std::string user_;
  dsp::Service* dsp_;
  pki::KeyRegistry* registry_;
  soe::CsxaApplet applet_;
};

}  // namespace csxa::proxy

#endif  // CSXA_PROXY_TERMINAL_H_
