#include "soe/card_engine.h"

#include "skipindex/codec.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa::soe {

Result<SessionOutput> CardEngine::RunSession(const std::string& doc_id,
                                             Span header_bytes,
                                             Span sealed_rules,
                                             ChunkProvider* provider,
                                             const SessionOptions& options) {
  auto key_it = keys_.find(doc_id);
  if (key_it == keys_.end()) {
    return Status::NotFound("no key installed for document " + doc_id);
  }
  const crypto::SymmetricKey& key = key_it->second;

  CostModel cost(profile_);
  RamMeter ram(profile_.ram_budget, options.strict_ram);

  // Header and sealed rules travel over the link.
  cost.AddTransfer(header_bytes.size());
  cost.AddTransfer(sealed_rules.size());

  ByteReader header_reader(header_bytes);
  CSXA_ASSIGN_OR_RETURN(crypto::ContainerHeader header,
                        crypto::ContainerHeader::DecodeFrom(&header_reader));
  // Root MAC check before trusting anything.
  cost.AddHash(crypto::ContainerHeader::kWireSize);
  CSXA_RETURN_IF_ERROR(crypto::SecureContainer::VerifyRoot(key, header));

  // Open the rules: MAC verification + CBC decryption inside the card,
  // then the anti-rollback check against secure stable storage.
  cost.AddHash(sealed_rules.size());
  cost.AddDecrypt(sealed_rules.size());
  CSXA_ASSIGN_OR_RETURN(core::VersionedRules envelope,
                        core::OpenRuleSet(key, sealed_rules));
  auto version_it = rules_versions_.find(doc_id);
  if (version_it != rules_versions_.end() &&
      envelope.version < version_it->second) {
    return Status::IntegrityError(
        "stale rule set: version " + std::to_string(envelope.version) +
        " < last seen " + std::to_string(version_it->second));
  }
  rules_versions_[doc_id] = envelope.version;
  core::RuleSet& rules = envelope.rules;

  xpath::PathExpr query;
  const xpath::PathExpr* query_ptr = nullptr;
  if (!options.query_text.empty()) {
    CSXA_ASSIGN_OR_RETURN(query, xpath::ParsePath(options.query_text));
    query_ptr = &query;
  }

  if (options.push_mode) {
    // The broadcast reaches the card in full; charge it once upfront.
    cost.AddTransfer(provider->TotalWireBytes());
  }
  uint64_t round_trips_before = provider->round_trips();
  ChunkSource source(key, header, provider, &cost,
                     /*charge_transfer=*/!options.push_mode);
  CSXA_ASSIGN_OR_RETURN(auto decoder, skipindex::DocumentDecoder::Open(&source));

  xml::CanonicalWriter writer;
  CSXA_ASSIGN_OR_RETURN(
      auto evaluator,
      core::StreamingEvaluator::Create(rules.ForSubject(options.subject),
                                       query_ptr, &writer));

  skipindex::FilterOptions fopts;
  fopts.enable_skip = options.use_skip;
  core::StreamingEvaluator* ev = evaluator.get();
  skipindex::DocumentDecoder* dec = decoder.get();
  ChunkSource* src = &source;
  // Fixed applet overhead: key material, session bookkeeping, I/O staging.
  constexpr size_t kFixedOverhead = 96;
  fopts.on_event = [ev, dec, src, &ram]() {
    return ram.Update(kFixedOverhead + ev->ModeledRamBytes() +
                      dec->ModeledBytes() + src->ModeledBytes());
  };
  skipindex::FilterStats fstats;
  CSXA_RETURN_IF_ERROR(
      skipindex::RunFiltered(dec, ev, fopts, &fstats));

  // The delivered view streams back to the terminal.
  cost.AddTransfer(writer.str().size());
  cost.AddEvaluator(ev->stats().events, ev->TotalTransitions());
  // Every provider batch the session triggered was one terminal<->DSP
  // request. Push mode charges none: the broadcast already arrived.
  if (!options.push_mode) {
    cost.AddRoundTrip(provider->round_trips() - round_trips_before);
  }

  SessionOutput out;
  out.view_xml = writer.str();
  SessionStats& st = out.stats;
  st.transfer_seconds = cost.TransferSeconds();
  st.crypto_seconds = cost.CryptoSeconds();
  st.evaluator_seconds = cost.EvaluatorSeconds();
  st.round_trip_seconds = cost.RoundTripSeconds();
  st.total_seconds = cost.TotalSeconds();
  st.bytes_transferred = cost.bytes_transferred();
  st.bytes_decrypted = cost.bytes_decrypted();
  st.apdu_exchanges = cost.apdu_exchanges();
  st.dsp_round_trips = cost.round_trips();
  st.chunks_fetched = source.chunks_fetched();
  st.chunks_avoided = source.chunks_avoided();
  st.bytes_skipped = fstats.bytes_skipped;
  st.skips = fstats.skips;
  st.evaluator = ev->stats();
  st.ram_peak = ram.peak();
  st.ram_budget = ram.budget();
  st.output_bytes = out.view_xml.size();
  return out;
}

}  // namespace csxa::soe
