#include "soe/chunk_source.h"

namespace csxa::soe {

Result<std::vector<ChunkData>> ContainerChunkProvider::FetchChunks(
    uint32_t first, uint32_t count) {
  std::vector<ChunkData> chunks;
  chunks.reserve(count);
  for (uint32_t i = first; i < first + count; ++i) {
    ChunkData chunk;
    CSXA_ASSIGN_OR_RETURN(Span cipher, container_->ChunkCiphertext(i));
    chunk.ciphertext = cipher.ToBytes();
    CSXA_ASSIGN_OR_RETURN(chunk.auth, container_->GetChunkAuth(i));
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

uint64_t ContainerChunkProvider::TotalWireBytes() const {
  uint64_t total = crypto::ContainerHeader::kWireSize;
  for (uint32_t i = 0; i < container_->header().chunk_count; ++i) {
    auto cipher = container_->ChunkCiphertext(i);
    auto auth = container_->GetChunkAuth(i);
    if (cipher.ok() && auth.ok()) {
      total += cipher.value().size() +
               auth.value().WireBytes(container_->header().integrity);
    }
  }
  return total;
}

ChunkSource::ChunkSource(const crypto::SymmetricKey& key,
                         const crypto::ContainerHeader& header,
                         ChunkProvider* provider, CostModel* cost,
                         bool charge_transfer)
    : key_(key),
      header_(header),
      provider_(provider),
      cost_(cost),
      charge_transfer_(charge_transfer) {}

Status ChunkSource::EnsureChunk(uint32_t index) {
  if (buf_valid_ && buf_index_ == index) return Status::OK();
  CSXA_ASSIGN_OR_RETURN(ChunkData chunk, provider_->GetChunk(index));
  if (cost_ != nullptr) {
    if (charge_transfer_) {
      cost_->AddTransfer(chunk.WireBytes(header_.integrity));
    }
    // MAC mode hashes the ciphertext once; Merkle mode additionally pays
    // one 64-byte compression per proof node.
    cost_->AddHash(chunk.ciphertext.size() + 4 + chunk.auth.proof.size() * 64);
    cost_->AddDecrypt(chunk.ciphertext.size());
  }
  CSXA_ASSIGN_OR_RETURN(
      Bytes plain, crypto::SecureContainer::VerifyAndDecryptChunk(
                       key_, header_, index, chunk.ciphertext, chunk.auth));
  buf_ = std::move(plain);
  buf_index_ = index;
  buf_valid_ = true;
  ++chunks_fetched_;
  return Status::OK();
}

Status ChunkSource::ReadExact(uint8_t* buf, size_t n) {
  while (n > 0) {
    if (pos_ >= header_.payload_size) {
      return Status::IoError("read past end of container payload");
    }
    uint32_t chunk = static_cast<uint32_t>(pos_ / header_.chunk_size);
    CSXA_RETURN_IF_ERROR(EnsureChunk(chunk));
    size_t off = static_cast<size_t>(pos_ % header_.chunk_size);
    size_t avail = buf_.size() - off;
    size_t take = avail < n ? avail : n;
    std::memcpy(buf, buf_.data() + off, take);
    buf += take;
    n -= take;
    pos_ += take;
  }
  return Status::OK();
}

const uint8_t* ChunkSource::View(size_t n) {
  if (n == 0 || header_.payload_size - pos_ < n) return nullptr;
  uint32_t first = static_cast<uint32_t>(pos_ / header_.chunk_size);
  uint32_t last = static_cast<uint32_t>((pos_ + n - 1) / header_.chunk_size);
  if (first != last) return nullptr;  // crosses chunks: caller copies
  if (!EnsureChunk(first).ok()) {
    return nullptr;  // fall back to ReadExact, which surfaces the error
  }
  size_t off = static_cast<size_t>(pos_ % header_.chunk_size);
  pos_ += n;
  return buf_.data() + off;
}

Status ChunkSource::Skip(uint64_t n) {
  if (header_.payload_size - pos_ < n) {
    return Status::IoError("skip past end of container payload");
  }
  pos_ += n;
  return Status::OK();
}

uint64_t ChunkSource::chunks_avoided() const {
  return header_.chunk_count > chunks_fetched_
             ? header_.chunk_count - chunks_fetched_
             : 0;
}

}  // namespace csxa::soe
