#include "soe/prefetch.h"

#include <algorithm>
#include <limits>

#include "skipindex/codec.h"
#include "skipindex/filter.h"

namespace csxa::soe {

Result<std::vector<ChunkData>> PrefetchingProvider::FetchChunks(
    uint32_t first, uint32_t count) {
  if (count == 0) return std::vector<ChunkData>{};

  // Entirely inside the buffered window: no backend round trip.
  if (!buf_.empty() && first >= buf_first_ &&
      first + count <= buf_first_ + buf_.size()) {
    ++window_hits_;
    std::vector<ChunkData> out(buf_.begin() + (first - buf_first_),
                               buf_.begin() + (first - buf_first_) + count);
    return out;
  }

  // Window policy: sequential consumption widens, a jump (skip) collapses.
  if (first == next_expected_) {
    window_ = std::min(window_ * 2, options_.max_window);
  } else {
    window_ = 1;
  }

  uint32_t n = std::max(count, window_);
  if (first < chunk_count_) {
    n = std::min<uint64_t>(n, static_cast<uint64_t>(chunk_count_) - first);
  }
  n = std::max(n, count);  // out-of-range requests pass through untouched

  CSXA_ASSIGN_OR_RETURN(std::vector<ChunkData> fetched,
                        inner_->GetChunks(first, n));
  ++fetches_;
  chunks_fetched_ += fetched.size();
  if (fetched.size() < count) {
    return Status::Internal("backend returned short chunk batch");
  }
  buf_ = std::move(fetched);
  buf_first_ = first;
  next_expected_ = first + n;

  std::vector<ChunkData> out(buf_.begin(), buf_.begin() + count);
  return out;
}

// --- FetchPlan -------------------------------------------------------------

bool FetchPlan::Covers(uint32_t chunk) const {
  // First run starting after `chunk`; the candidate is its predecessor.
  auto it = std::upper_bound(
      runs.begin(), runs.end(), chunk,
      [](uint32_t c, const skipindex::ChunkRun& r) { return c < r.first; });
  if (it == runs.begin()) return false;
  --it;
  return chunk - it->first < it->count;
}

void FetchPlan::Normalize() {
  std::sort(runs.begin(), runs.end(),
            [](const skipindex::ChunkRun& a, const skipindex::ChunkRun& b) {
              return a.first < b.first || (a.first == b.first && a.count < b.count);
            });
  std::vector<skipindex::ChunkRun> merged;
  for (const skipindex::ChunkRun& r : runs) {
    if (r.count == 0) continue;
    if (!merged.empty() && r.first <= merged.back().first + merged.back().count) {
      uint32_t end = std::max(merged.back().first + merged.back().count,
                              r.first + r.count);
      merged.back().count = end - merged.back().first;
    } else {
      merged.push_back(r);
    }
  }
  runs = std::move(merged);
}

FetchPlan FetchPlan::FromChunkSequence(const std::vector<uint32_t>& sequence) {
  FetchPlan plan;
  plan.runs.reserve(sequence.size());
  for (uint32_t c : sequence) plan.runs.push_back(skipindex::ChunkRun{c, 1});
  plan.Normalize();
  return plan;
}

FetchPlan FetchPlan::FromRanges(const std::vector<skipindex::ByteRange>& ranges,
                                uint32_t chunk_size, uint32_t chunk_count) {
  FetchPlan plan;
  plan.runs = skipindex::ChunkMap(chunk_size, chunk_count).Runs(ranges);
  return plan;
}

Result<FetchPlan> ComputeFetchPlan(Span encoded_payload, uint32_t chunk_size,
                                   const std::vector<core::AccessRule>& rules,
                                   const xpath::PathExpr* query,
                                   bool use_skip) {
  if (chunk_size == 0) {
    return Status::InvalidArgument("fetch plan needs a non-zero chunk size");
  }
  CSXA_ASSIGN_OR_RETURN(
      std::vector<skipindex::ByteRange> ranges,
      skipindex::CollectTouchedRanges(encoded_payload, rules, query, use_skip));
  uint64_t payload = encoded_payload.size();
  uint32_t chunk_count =
      static_cast<uint32_t>((payload + chunk_size - 1) / chunk_size);
  return FetchPlan::FromRanges(ranges, chunk_size, chunk_count);
}

// --- PlannedProvider -------------------------------------------------------

PlannedProvider::PlannedProvider(ChunkProvider* inner, uint32_t chunk_count,
                                 FetchPlan plan, PlannedOptions options)
    : inner_(inner), plan_(std::move(plan)), options_(options) {
  plan_.Normalize();
  // Clamp to the container geometry: a plan must never make the backend
  // serve chunks that do not exist.
  std::vector<skipindex::ChunkRun> clamped;
  for (const skipindex::ChunkRun& r : plan_.runs) {
    if (r.first >= chunk_count) continue;
    uint32_t count = std::min<uint64_t>(r.count, chunk_count - r.first);
    if (count > 0) clamped.push_back(skipindex::ChunkRun{r.first, count});
  }
  plan_.runs = std::move(clamped);

  // Partition the runs into trip groups of <= max_chunks_per_trip chunks
  // (one group — one trip — when unlimited). A single run larger than the
  // cap still travels whole: splitting it would not reduce peak buffer
  // use below the card's own consumption order anyway.
  uint64_t cap = options_.max_chunks_per_trip == 0
                     ? std::numeric_limits<uint64_t>::max()
                     : options_.max_chunks_per_trip;
  uint64_t in_group = 0;
  for (const skipindex::ChunkRun& r : plan_.runs) {
    if (groups_.empty() || (in_group > 0 && in_group + r.count > cap)) {
      groups_.emplace_back();
      in_group = 0;
    }
    groups_.back().push_back(r);
    group_of_run_.push_back(groups_.size() - 1);
    in_group += r.count;
  }
  group_fetched_.assign(groups_.size(), false);
}

size_t PlannedProvider::RunOf(uint32_t chunk) const {
  auto it = std::upper_bound(
      plan_.runs.begin(), plan_.runs.end(), chunk,
      [](uint32_t c, const skipindex::ChunkRun& r) { return c < r.first; });
  if (it == plan_.runs.begin()) return static_cast<size_t>(-1);
  --it;
  if (chunk - it->first >= it->count) return static_cast<size_t>(-1);
  return static_cast<size_t>(it - plan_.runs.begin());
}

void PlannedProvider::EnsureGroup(size_t g) {
  if (group_fetched_[g]) return;
  group_fetched_[g] = true;
  uint64_t expect = 0;
  for (const skipindex::ChunkRun& r : groups_[g]) expect += r.count;
  Result<std::vector<ChunkData>> fetched = inner_->GetSpans(groups_[g]);
  if (!fetched.ok() || fetched.value().size() != expect) {
    // Advisory contract: a failed or short planned batch leaves the
    // buffer unpopulated and the request falls through to the inner
    // provider, which surfaces any real backend error on its own trip.
    ++planned_trips_;
    return;
  }
  ++planned_trips_;
  chunks_fetched_ += fetched.value().size();
  size_t at = 0;
  for (const skipindex::ChunkRun& r : groups_[g]) {
    for (uint32_t i = 0; i < r.count; ++i) {
      buf_[r.first + i] = std::move(fetched.value()[at++]);
    }
  }
}

Result<std::vector<ChunkData>> PlannedProvider::FetchChunks(uint32_t first,
                                                            uint32_t count) {
  if (count == 0) return std::vector<ChunkData>{};

  // Pull in every planned-but-unfetched group the request touches, then
  // serve from the buffer if the whole request is covered.
  bool covered = true;
  for (uint32_t c = first; c < first + count; ++c) {
    if (buf_.count(c) > 0) continue;
    size_t run = RunOf(c);
    if (run == static_cast<size_t>(-1)) {
      covered = false;
      continue;
    }
    EnsureGroup(group_of_run_[run]);
    if (buf_.count(c) == 0) covered = false;
  }
  if (!covered) {
    // Conservative fallback: the plan missed (or the planned batch
    // failed) — the inner provider serves the request exactly as an
    // unplanned run would, on its own round trip.
    ++plan_misses_;
    return inner_->GetChunks(first, count);
  }
  ++plan_hits_;
  std::vector<ChunkData> out;
  out.reserve(count);
  for (uint32_t c = first; c < first + count; ++c) {
    auto it = buf_.find(c);
    out.push_back(std::move(it->second));
    buf_.erase(it);
  }
  return out;
}

}  // namespace csxa::soe
