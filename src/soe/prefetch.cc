#include "soe/prefetch.h"

#include <algorithm>

namespace csxa::soe {

Result<std::vector<ChunkData>> PrefetchingProvider::FetchChunks(
    uint32_t first, uint32_t count) {
  if (count == 0) return std::vector<ChunkData>{};

  // Entirely inside the buffered window: no backend round trip.
  if (!buf_.empty() && first >= buf_first_ &&
      first + count <= buf_first_ + buf_.size()) {
    ++window_hits_;
    std::vector<ChunkData> out(buf_.begin() + (first - buf_first_),
                               buf_.begin() + (first - buf_first_) + count);
    return out;
  }

  // Window policy: sequential consumption widens, a jump (skip) collapses.
  if (first == next_expected_) {
    window_ = std::min(window_ * 2, options_.max_window);
  } else {
    window_ = 1;
  }

  uint32_t n = std::max(count, window_);
  if (first < chunk_count_) {
    n = std::min<uint64_t>(n, static_cast<uint64_t>(chunk_count_) - first);
  }
  n = std::max(n, count);  // out-of-range requests pass through untouched

  CSXA_ASSIGN_OR_RETURN(std::vector<ChunkData> fetched,
                        inner_->GetChunks(first, n));
  ++fetches_;
  chunks_fetched_ += fetched.size();
  if (fetched.size() < count) {
    return Status::Internal("backend returned short chunk batch");
  }
  buf_ = std::move(fetched);
  buf_first_ = first;
  next_expected_ = first + n;

  std::vector<ChunkData> out(buf_.begin(), buf_.begin() + count);
  return out;
}

}  // namespace csxa::soe
