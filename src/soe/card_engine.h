#ifndef CSXA_SOE_CARD_ENGINE_H_
#define CSXA_SOE_CARD_ENGINE_H_

/// \file card_engine.h
/// \brief The card-resident engine: decryption, integrity control and
/// access-rights evaluation (the three boxes inside the smart card in
/// Fig. 3 of the paper).
///
/// A session evaluates one (document, subject[, query]) against sealed
/// rules, streaming chunks through ChunkSource and events through the
/// StreamingEvaluator, metering modeled RAM and time throughout.

#include <map>
#include <memory>
#include <string>

#include "core/evaluator.h"
#include "core/rule_envelope.h"
#include "crypto/container.h"
#include "crypto/keys.h"
#include "skipindex/filter.h"
#include "soe/chunk_source.h"
#include "soe/cost_model.h"
#include "soe/ram_meter.h"

namespace csxa::soe {

/// \brief Session parameters.
struct SessionOptions {
  /// Subject whose rules apply.
  std::string subject;
  /// Optional XPath query ("" = deliver the whole authorized view).
  std::string query_text;
  /// Exploit the skip index when the document carries one.
  bool use_skip = true;
  /// Abort (ResourceExhausted) if the modeled RAM budget is exceeded.
  bool strict_ram = false;
  /// Push (dissemination) mode: the whole broadcast stream crosses the
  /// link regardless of skips — skips then save decryption and CPU only.
  bool push_mode = false;
};

/// \brief Everything a session reports back.
struct SessionStats {
  // Cost model outputs.
  double transfer_seconds = 0;
  double crypto_seconds = 0;
  double evaluator_seconds = 0;
  double round_trip_seconds = 0;
  double total_seconds = 0;
  uint64_t bytes_transferred = 0;
  uint64_t bytes_decrypted = 0;
  uint64_t apdu_exchanges = 0;
  // Terminal<->DSP requests the chunk supply performed during the session
  // (0 in push mode: the broadcast already arrived).
  uint64_t dsp_round_trips = 0;
  // Chunk accounting.
  uint64_t chunks_fetched = 0;
  uint64_t chunks_avoided = 0;
  // Filtering.
  uint64_t bytes_skipped = 0;
  size_t skips = 0;
  // Evaluator.
  core::EvaluatorStats evaluator;
  // RAM.
  size_t ram_peak = 0;
  size_t ram_budget = 0;
  // Output.
  size_t output_bytes = 0;
};

/// \brief Result of a session: the delivered view plus statistics.
struct SessionOutput {
  std::string view_xml;
  SessionStats stats;
};

/// \brief The modeled smart card.
///
/// Keys live in the card's secure stable storage (SOE assumption 2); they
/// are installed through a secure channel simulated by pki/.
class CardEngine {
 public:
  explicit CardEngine(CardProfile profile) : profile_(profile) {}

  /// Installs a document key into secure storage.
  void InstallKey(const std::string& doc_id, const crypto::SymmetricKey& key) {
    keys_[doc_id] = key;
  }
  /// True if the card holds a key for `doc_id`.
  bool HasKey(const std::string& doc_id) const { return keys_.count(doc_id) > 0; }

  /// Runs a full query session. `header_bytes` is the serialized container
  /// header; `sealed_rules` the encrypted rule set as stored on the DSP;
  /// `provider` supplies ciphertext chunks on demand.
  Result<SessionOutput> RunSession(const std::string& doc_id,
                                   Span header_bytes, Span sealed_rules,
                                   ChunkProvider* provider,
                                   const SessionOptions& options);

  const CardProfile& profile() const { return profile_; }

  /// Highest rule-set version seen for `doc_id` (0 if none) — the card's
  /// anti-rollback state in secure stable storage.
  uint64_t LastRulesVersion(const std::string& doc_id) const {
    auto it = rules_versions_.find(doc_id);
    return it == rules_versions_.end() ? 0 : it->second;
  }

 private:
  CardProfile profile_;
  std::map<std::string, crypto::SymmetricKey> keys_;
  // Anti-rollback: highest rule-envelope version accepted per document.
  std::map<std::string, uint64_t> rules_versions_;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_CARD_ENGINE_H_
