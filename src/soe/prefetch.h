#ifndef CSXA_SOE_PREFETCH_H_
#define CSXA_SOE_PREFETCH_H_

/// \file prefetch.h
/// \brief Terminal-side prefetching decorator over a ChunkProvider.
///
/// The card consumes one chunk at a time (its RAM budget), but paying one
/// terminal<->DSP round trip per chunk is exactly the per-message cost the
/// paper calls out as a limiting factor (§2.3). PrefetchingProvider sits
/// in the terminal between the card's per-chunk requests and the remote
/// backend: a miss fetches a *window* of consecutive chunks in one round
/// trip and later card requests are answered from that window for free.
///
/// The window is driven by the skip pattern the card's filter produces:
///  - sequential consumption (next miss directly follows the last fetched
///    window) doubles the window up to `max_window` — long authorized runs
///    amortize the round trip across many chunks;
///  - a jump (the skip filter leapt somewhere unexpected) collapses the
///    window back to 1, so skip-heavy regions never pay for speculative
///    chunks the card will not read.
///
/// Prefetched-but-unread chunks stay in the terminal buffer and never
/// cross the APDU link, so card-side transfer and crypto costs are
/// byte-identical with and without prefetching — only the round-trip count
/// (and thus modeled latency) changes.
///
/// Reentrancy contract: a PrefetchingProvider (like every ChunkProvider)
/// belongs to ONE card session on one thread — its window buffer and
/// counters are unsynchronized by design. Concurrency lives below, in the
/// shared dsp::Service the provider fetches from (DspServer,
/// ShardedService, CachingClient and AsyncDispatcher are thread-safe);
/// each concurrent session constructs its own provider over that shared
/// backend.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/rule.h"
#include "soe/chunk_source.h"
#include "xpath/ast.h"

namespace csxa::soe {

/// Prefetch-window policy knobs.
struct PrefetchOptions {
  /// Upper bound of the adaptive window, in chunks. 1 disables batching
  /// (every card request is its own round trip).
  uint32_t max_window = 8;
};

/// \brief Windowed read-ahead over another ChunkProvider.
class PrefetchingProvider : public ChunkProvider {
 public:
  /// `chunk_count` bounds read-ahead at the end of the container (the
  /// terminal knows it from the public header).
  PrefetchingProvider(ChunkProvider* inner, uint32_t chunk_count,
                      PrefetchOptions options = {})
      : inner_(inner), chunk_count_(chunk_count), options_(options) {
    if (options_.max_window == 0) options_.max_window = 1;
  }

  uint64_t TotalWireBytes() const override { return inner_->TotalWireBytes(); }
  /// Round trips are whatever the backend actually performed; window hits
  /// cost none.
  uint64_t round_trips() const override { return inner_->round_trips(); }

  /// \name Window statistics
  /// @{
  /// Batches fetched from the backend (== backend round trips caused here).
  uint64_t fetches() const { return fetches_; }
  /// Requests answered entirely from the buffered window.
  uint64_t window_hits() const { return window_hits_; }
  /// Chunks pulled from the backend, including speculative ones.
  uint64_t chunks_fetched() const { return chunks_fetched_; }
  /// @}

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override;

 private:
  ChunkProvider* inner_;
  uint32_t chunk_count_;
  PrefetchOptions options_;

  std::vector<ChunkData> buf_;  // window [buf_first_, buf_first_+buf_.size())
  uint32_t buf_first_ = 0;
  uint32_t window_ = 1;
  uint32_t next_expected_ = 0;

  uint64_t fetches_ = 0;
  uint64_t window_hits_ = 0;
  uint64_t chunks_fetched_ = 0;
};

/// \brief The compiled fetch schedule of one query: the ordered,
/// contiguous chunk runs the scan will touch.
///
/// A plan is ADVISORY, never authoritative: it decides only which chunks
/// the terminal prefetches into its buffer. A wrong or stale plan costs
/// extra round trips (fallback to the inner provider), never correctness
/// — the card verifies and decrypts every chunk it consumes exactly as in
/// an unplanned run, so card transfer/crypto bytes are identical by
/// construction.
struct FetchPlan {
  /// Sorted, disjoint, coalesced chunk runs.
  std::vector<skipindex::ChunkRun> runs;

  /// Total chunks the plan covers.
  uint64_t total_chunks() const {
    uint64_t n = 0;
    for (const skipindex::ChunkRun& r : runs) n += r.count;
    return n;
  }
  /// True when `chunk` lies inside one of the runs.
  bool Covers(uint32_t chunk) const;
  /// Sorts, de-duplicates and coalesces `runs` in place (idempotent).
  void Normalize();

  /// Builds a plan from an observed per-chunk request sequence (what a
  /// RecordingProvider captured from a live session): the terminal's
  /// learn-on-first-run path.
  static FetchPlan FromChunkSequence(const std::vector<uint32_t>& sequence);
  /// Builds a plan from the byte ranges a planning probe recorded
  /// (skipindex::CollectTouchedRanges), via the codec chunk map.
  static FetchPlan FromRanges(const std::vector<skipindex::ByteRange>& ranges,
                              uint32_t chunk_size, uint32_t chunk_count);
};

/// \brief Owner-side planning pass: runs the skip filter's reachability
/// decisions over the skip index of the plaintext `encoded_payload` —
/// exactly the scan the card will perform — and compiles the chunk runs
/// it touches into a FetchPlan for (subject rules, query).
///
/// `chunk_size` is the container chunk geometry the document will be (or
/// was) sealed with; `use_skip` must match the query options the card
/// will run with (a no-skip scan touches every chunk). Computed where
/// plaintext legitimately lives: the publisher at publish/update time,
/// or any holder of the decoded document. The plan leaks nothing the DSP
/// does not already observe — it is precisely the access pattern an
/// unplanned scan reveals trip by trip.
Result<FetchPlan> ComputeFetchPlan(Span encoded_payload, uint32_t chunk_size,
                                   const std::vector<core::AccessRule>& rules,
                                   const xpath::PathExpr* query,
                                   bool use_skip = true);

/// Planned-fetch policy knobs.
struct PlannedOptions {
  /// Upper bound of chunks fetched by one multi-span trip; 0 fetches the
  /// whole plan in a single request. Non-zero bounds the terminal buffer
  /// at the cost of one trip per group of runs.
  uint32_t max_chunks_per_trip = 0;
};

/// \brief Plan-driven reads over another ChunkProvider.
///
/// Sibling of PrefetchingProvider with the guessing removed: instead of
/// widening a window on observed access patterns, it fetches the plan's
/// runs as multi-span batches (GetSpans — one round trip however many
/// runs) the first time the card asks for a planned chunk, then serves
/// the session from that buffer. Requests for chunks the plan missed
/// fall through to the inner provider untouched (one ordinary trip each)
/// and are counted as plan misses — the conservative fallback that makes
/// a plan advisory. Planned-but-unread chunks stay in the terminal
/// buffer and never cross the APDU link, so card-side transfer and
/// crypto costs stay byte-identical to the unplanned run.
///
/// Same reentrancy contract as PrefetchingProvider: one provider, one
/// card session, one thread.
class PlannedProvider : public ChunkProvider {
 public:
  /// `chunk_count` bounds the plan against the container geometry (runs
  /// beyond it are clamped at construction — a hostile plan must not
  /// produce unfetchable requests).
  PlannedProvider(ChunkProvider* inner, uint32_t chunk_count, FetchPlan plan,
                  PlannedOptions options = {});

  uint64_t TotalWireBytes() const override { return inner_->TotalWireBytes(); }
  /// Round trips are whatever the backend performed: planned multi-span
  /// fetches plus fallback trips for plan misses.
  uint64_t round_trips() const override { return inner_->round_trips(); }

  /// \name Plan statistics
  /// @{
  /// Multi-span planned fetches issued (== planned backend round trips).
  uint64_t planned_trips() const { return planned_trips_; }
  /// Card requests served entirely from the planned buffer.
  uint64_t plan_hits() const { return plan_hits_; }
  /// Card requests that fell through to the inner provider.
  uint64_t plan_misses() const { return plan_misses_; }
  /// Chunks pulled by planned fetches (including planned-but-never-read).
  uint64_t chunks_fetched() const { return chunks_fetched_; }
  /// The (clamped, normalized) plan in effect.
  const FetchPlan& plan() const { return plan_; }
  /// @}

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override;

 private:
  // Fetches trip group `g` into the buffer; a failed planned fetch is
  // swallowed (the request falls through to the inner provider — the
  // plan is advisory even when the batch path is broken).
  void EnsureGroup(size_t g);
  // Index of the plan run containing `chunk`, or npos.
  size_t RunOf(uint32_t chunk) const;

  ChunkProvider* inner_;
  FetchPlan plan_;
  PlannedOptions options_;

  // Plan runs partitioned into trip groups of <= max_chunks_per_trip
  // chunks; group_of_run_[i] is the group of plan_.runs[i].
  std::vector<std::vector<skipindex::ChunkRun>> groups_;
  std::vector<size_t> group_of_run_;
  std::vector<bool> group_fetched_;
  // Fetched-but-not-yet-consumed planned chunks. Entries are evicted as
  // the card consumes them (scans are forward-only, chunks are never
  // re-requested), so peak terminal RAM is the planned working set.
  std::unordered_map<uint32_t, ChunkData> buf_;

  uint64_t planned_trips_ = 0;
  uint64_t plan_hits_ = 0;
  uint64_t plan_misses_ = 0;
  uint64_t chunks_fetched_ = 0;
};

/// \brief Transparent decorator recording the card-facing chunk request
/// sequence of a session.
///
/// The terminal's learn-on-first-run probe: wrap the session's provider
/// stack in one of these and the recorded sequence — the skip filter's
/// decisions materialized as chunk indices — compiles into a FetchPlan
/// (FetchPlan::FromChunkSequence) for the next identical query.
class RecordingProvider : public ChunkProvider {
 public:
  explicit RecordingProvider(ChunkProvider* inner) : inner_(inner) {}

  uint64_t TotalWireBytes() const override { return inner_->TotalWireBytes(); }
  uint64_t round_trips() const override { return inner_->round_trips(); }

  /// Chunk indices requested so far, in request order.
  const std::vector<uint32_t>& requested() const { return requested_; }

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override {
    for (uint32_t i = 0; i < count; ++i) requested_.push_back(first + i);
    return inner_->GetChunks(first, count);
  }

 private:
  ChunkProvider* inner_;
  std::vector<uint32_t> requested_;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_PREFETCH_H_
