#ifndef CSXA_SOE_PREFETCH_H_
#define CSXA_SOE_PREFETCH_H_

/// \file prefetch.h
/// \brief Terminal-side prefetching decorator over a ChunkProvider.
///
/// The card consumes one chunk at a time (its RAM budget), but paying one
/// terminal<->DSP round trip per chunk is exactly the per-message cost the
/// paper calls out as a limiting factor (§2.3). PrefetchingProvider sits
/// in the terminal between the card's per-chunk requests and the remote
/// backend: a miss fetches a *window* of consecutive chunks in one round
/// trip and later card requests are answered from that window for free.
///
/// The window is driven by the skip pattern the card's filter produces:
///  - sequential consumption (next miss directly follows the last fetched
///    window) doubles the window up to `max_window` — long authorized runs
///    amortize the round trip across many chunks;
///  - a jump (the skip filter leapt somewhere unexpected) collapses the
///    window back to 1, so skip-heavy regions never pay for speculative
///    chunks the card will not read.
///
/// Prefetched-but-unread chunks stay in the terminal buffer and never
/// cross the APDU link, so card-side transfer and crypto costs are
/// byte-identical with and without prefetching — only the round-trip count
/// (and thus modeled latency) changes.
///
/// Reentrancy contract: a PrefetchingProvider (like every ChunkProvider)
/// belongs to ONE card session on one thread — its window buffer and
/// counters are unsynchronized by design. Concurrency lives below, in the
/// shared dsp::Service the provider fetches from (DspServer,
/// ShardedService, CachingClient and AsyncDispatcher are thread-safe);
/// each concurrent session constructs its own provider over that shared
/// backend.

#include <vector>

#include "soe/chunk_source.h"

namespace csxa::soe {

/// Prefetch-window policy knobs.
struct PrefetchOptions {
  /// Upper bound of the adaptive window, in chunks. 1 disables batching
  /// (every card request is its own round trip).
  uint32_t max_window = 8;
};

/// \brief Windowed read-ahead over another ChunkProvider.
class PrefetchingProvider : public ChunkProvider {
 public:
  /// `chunk_count` bounds read-ahead at the end of the container (the
  /// terminal knows it from the public header).
  PrefetchingProvider(ChunkProvider* inner, uint32_t chunk_count,
                      PrefetchOptions options = {})
      : inner_(inner), chunk_count_(chunk_count), options_(options) {
    if (options_.max_window == 0) options_.max_window = 1;
  }

  uint64_t TotalWireBytes() const override { return inner_->TotalWireBytes(); }
  /// Round trips are whatever the backend actually performed; window hits
  /// cost none.
  uint64_t round_trips() const override { return inner_->round_trips(); }

  /// \name Window statistics
  /// @{
  /// Batches fetched from the backend (== backend round trips caused here).
  uint64_t fetches() const { return fetches_; }
  /// Requests answered entirely from the buffered window.
  uint64_t window_hits() const { return window_hits_; }
  /// Chunks pulled from the backend, including speculative ones.
  uint64_t chunks_fetched() const { return chunks_fetched_; }
  /// @}

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override;

 private:
  ChunkProvider* inner_;
  uint32_t chunk_count_;
  PrefetchOptions options_;

  std::vector<ChunkData> buf_;  // window [buf_first_, buf_first_+buf_.size())
  uint32_t buf_first_ = 0;
  uint32_t window_ = 1;
  uint32_t next_expected_ = 0;

  uint64_t fetches_ = 0;
  uint64_t window_hits_ = 0;
  uint64_t chunks_fetched_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_PREFETCH_H_
