#ifndef CSXA_SOE_CARD_PROFILE_H_
#define CSXA_SOE_CARD_PROFILE_H_

/// \file card_profile.h
/// \brief Modeled smart-card hardware parameters.
///
/// The demonstration used Axalto e-gate cards: "a powerful CPU and strong
/// security features but ... a limited memory (only 1 KB of RAM available
/// for on-board applications) and a low bandwidth (2 KB/s)" (§3). The
/// original work validated on a cycle-accurate simulator; this profile
/// reproduces the same two bottlenecks — the link and the crypto — as a
/// first-order cost model (see DESIGN.md substitution table).

#include <cstddef>
#include <string>

namespace csxa::soe {

/// \brief Hardware cost parameters of a modeled card.
struct CardProfile {
  std::string name = "egate";

  /// CPU clock in MHz.
  double cpu_mhz = 33.0;
  /// Crypto-coprocessor decryption cost, cycles per byte.
  double cycles_per_byte_decrypt = 48.0;
  /// Hash cost, cycles per byte (integrity checking).
  double cycles_per_byte_hash = 64.0;
  /// Evaluator cost: cycles per NFA transition.
  double cycles_per_nfa_transition = 180.0;
  /// Evaluator cost: fixed cycles per parsing event.
  double cycles_per_event = 350.0;

  /// Terminal<->card link throughput in bytes/second (e-gate: 2 KB/s).
  double link_bytes_per_sec = 2048.0;
  /// Fixed latency per APDU exchange, seconds.
  double apdu_latency_sec = 0.002;
  /// Maximum APDU payload (ISO 7816-4 short form).
  size_t apdu_payload = 255;
  /// Terminal<->DSP request latency, seconds per round trip (2005-era
  /// broadband; batched dsp::Service requests amortize it).
  double round_trip_latency_sec = 0.04;

  /// Modeled working RAM available to the application, bytes.
  size_t ram_budget = 1024;

  /// The demo's Axalto e-gate card.
  static CardProfile EGate() { return CardProfile{}; }

  /// A contemporary secure element (for what-if comparisons): USB-speed
  /// link, larger RAM, faster crypto.
  static CardProfile ModernElement() {
    CardProfile p;
    p.name = "modern";
    p.cpu_mhz = 240.0;
    p.cycles_per_byte_decrypt = 12.0;
    p.cycles_per_byte_hash = 16.0;
    p.cycles_per_nfa_transition = 60.0;
    p.cycles_per_event = 120.0;
    p.link_bytes_per_sec = 1.5e6;
    p.apdu_latency_sec = 0.0002;
    p.round_trip_latency_sec = 0.005;
    p.ram_budget = 16 * 1024;
    return p;
  }
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_CARD_PROFILE_H_
