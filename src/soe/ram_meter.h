#ifndef CSXA_SOE_RAM_METER_H_
#define CSXA_SOE_RAM_METER_H_

/// \file ram_meter.h
/// \brief Tracks the modeled on-card working memory against the budget.
///
/// SOE assumption 3 (§2.1): "a small quantity of secure working memory (to
/// protect sensitive data structures at processing time)" — 1 KB on the
/// demo's e-gate. The engine reports its modeled footprint after every
/// event; in strict mode exceeding the budget aborts the session (what a
/// real applet would face), otherwise it is recorded for EXP-RAM.

#include <cstddef>

#include "common/status.h"

namespace csxa::soe {

/// \brief Budgeted high-watermark meter.
class RamMeter {
 public:
  /// `budget` of 0 means unlimited. In strict mode Update fails when the
  /// budget is exceeded.
  RamMeter(size_t budget, bool strict) : budget_(budget), strict_(strict) {}

  /// Reports the current absolute modeled usage.
  Status Update(size_t current_bytes) {
    current_ = current_bytes;
    if (current_ > peak_) peak_ = current_;
    if (strict_ && budget_ != 0 && current_ > budget_) {
      return Status::ResourceExhausted(
          "modeled card RAM exceeded: " + std::to_string(current_) + " > " +
          std::to_string(budget_) + " bytes");
    }
    return Status::OK();
  }

  size_t current() const { return current_; }
  size_t peak() const { return peak_; }
  size_t budget() const { return budget_; }

 private:
  size_t budget_;
  bool strict_;
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_RAM_METER_H_
