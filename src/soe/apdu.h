#ifndef CSXA_SOE_APDU_H_
#define CSXA_SOE_APDU_H_

/// \file apdu.h
/// \brief ISO 7816-4 style APDU framing between terminal and card.
///
/// "Application Protocol Data Unit: communication protocol between the
/// terminal and the smart card" (§3, footnote 1). Commands carry a header
/// (CLA INS P1 P2) and a payload; responses carry a payload and a status
/// word. The transport charges every exchange to the session's CostModel
/// (bandwidth plus per-exchange latency), chaining oversized payloads.

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "soe/cost_model.h"

namespace csxa::soe {

/// Instruction codes of the C-SXA applet.
enum class Ins : uint8_t {
  kSelectDocument = 0xA0,  ///< data: doc id + container header
  kInstallKey = 0xA2,      ///< data: doc id + key (via secure channel)
  kPutRules = 0xA4,        ///< data: sealed rule-set record
  kRunQuery = 0xA6,        ///< data: subject + query text
  kFetchOutput = 0xA8,     ///< response: next slice of the delivered view
  kGetStats = 0xAA,        ///< response: serialized session statistics
  kEndSession = 0xAC,
};

/// Standard status words used by the applet.
inline constexpr uint16_t kSwOk = 0x9000;
inline constexpr uint16_t kSwMoreData = 0x6100;
inline constexpr uint16_t kSwSecurityStatus = 0x6982;
inline constexpr uint16_t kSwConditionsNotSatisfied = 0x6985;
inline constexpr uint16_t kSwWrongData = 0x6A80;
inline constexpr uint16_t kSwNotFound = 0x6A82;
inline constexpr uint16_t kSwInternal = 0x6F00;

/// \brief Command APDU.
struct ApduCommand {
  uint8_t cla = 0x80;  // proprietary class
  Ins ins = Ins::kGetStats;
  uint8_t p1 = 0;
  uint8_t p2 = 0;
  Bytes data;

  void EncodeTo(ByteWriter* out) const;
  static Result<ApduCommand> DecodeFrom(ByteReader* in);
};

/// \brief Response APDU.
struct ApduResponse {
  Bytes data;
  uint16_t sw = kSwOk;

  bool ok() const { return sw == kSwOk || (sw & 0xFF00) == kSwMoreData; }
  void EncodeTo(ByteWriter* out) const;
  static Result<ApduResponse> DecodeFrom(ByteReader* in);
};

/// \brief Card-side command handler.
class ApduHandler {
 public:
  virtual ~ApduHandler() = default;
  virtual ApduResponse Process(const ApduCommand& command) = 0;
};

/// \brief Terminal-side transport over the modeled link.
///
/// Serializes the command, charges its bytes, delivers to the handler,
/// charges the response bytes. The wire format is what the cost model
/// meters; the handler receives the parsed command.
class ApduTransport {
 public:
  explicit ApduTransport(CostModel* cost) : cost_(cost) {}

  ApduResponse Exchange(ApduHandler* card, const ApduCommand& command);

  /// Number of exchanges performed.
  uint64_t exchanges() const { return exchanges_; }

 private:
  CostModel* cost_;
  uint64_t exchanges_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_APDU_H_
