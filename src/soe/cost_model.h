#ifndef CSXA_SOE_COST_MODEL_H_
#define CSXA_SOE_COST_MODEL_H_

/// \file cost_model.h
/// \brief Accumulates modeled card work and converts it to time.
///
/// The two limiting factors of the target architecture are "the cost of
/// decryption in the SOE and the cost of communication between the SOE,
/// the client and the server" (§2.3) — this model makes both visible, plus
/// the evaluator CPU, so benchmarks can decompose end-to-end latency.

#include <cstdint>

#include "soe/card_profile.h"

namespace csxa::soe {

/// \brief Modeled cost accumulator for one card session.
class CostModel {
 public:
  explicit CostModel(CardProfile profile) : profile_(profile) {}

  /// Accounts one APDU exchange carrying `bytes` of payload (either
  /// direction); payloads larger than the APDU limit are chained.
  void AddTransfer(uint64_t bytes) {
    bytes_transferred_ += bytes;
    uint64_t frames = bytes == 0 ? 1 : (bytes + profile_.apdu_payload - 1) /
                                           profile_.apdu_payload;
    apdu_exchanges_ += frames;
  }
  /// Accounts decryption of `bytes`.
  void AddDecrypt(uint64_t bytes) { bytes_decrypted_ += bytes; }
  /// Accounts hashing of `bytes` (Merkle verification, MACs).
  void AddHash(uint64_t bytes) { bytes_hashed_ += bytes; }
  /// Accounts evaluator work.
  void AddEvaluator(uint64_t events, uint64_t transitions) {
    events_ += events;
    nfa_transitions_ += transitions;
  }
  /// Accounts `n` terminal<->server round trips (the dsp::Service request
  /// latency — distinct from the terminal<->card APDU link). Batched chunk
  /// fetches exist to shrink this counter.
  void AddRoundTrip(uint64_t n = 1) { round_trips_ += n; }

  /// \name Modeled time decomposition (seconds)
  /// @{
  double TransferSeconds() const {
    return static_cast<double>(bytes_transferred_) / profile_.link_bytes_per_sec +
           static_cast<double>(apdu_exchanges_) * profile_.apdu_latency_sec;
  }
  double CryptoSeconds() const {
    double cycles =
        static_cast<double>(bytes_decrypted_) * profile_.cycles_per_byte_decrypt +
        static_cast<double>(bytes_hashed_) * profile_.cycles_per_byte_hash;
    return cycles / (profile_.cpu_mhz * 1e6);
  }
  double EvaluatorSeconds() const {
    double cycles =
        static_cast<double>(events_) * profile_.cycles_per_event +
        static_cast<double>(nfa_transitions_) * profile_.cycles_per_nfa_transition;
    return cycles / (profile_.cpu_mhz * 1e6);
  }
  double RoundTripSeconds() const {
    return static_cast<double>(round_trips_) * profile_.round_trip_latency_sec;
  }
  double TotalSeconds() const {
    return TransferSeconds() + CryptoSeconds() + EvaluatorSeconds() +
           RoundTripSeconds();
  }
  /// @}

  /// \name Raw counters
  /// @{
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t bytes_decrypted() const { return bytes_decrypted_; }
  uint64_t bytes_hashed() const { return bytes_hashed_; }
  uint64_t apdu_exchanges() const { return apdu_exchanges_; }
  uint64_t events() const { return events_; }
  uint64_t nfa_transitions() const { return nfa_transitions_; }
  uint64_t round_trips() const { return round_trips_; }
  /// @}

  const CardProfile& profile() const { return profile_; }

 private:
  CardProfile profile_;
  uint64_t bytes_transferred_ = 0;
  uint64_t bytes_decrypted_ = 0;
  uint64_t bytes_hashed_ = 0;
  uint64_t apdu_exchanges_ = 0;
  uint64_t events_ = 0;
  uint64_t nfa_transitions_ = 0;
  uint64_t round_trips_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_COST_MODEL_H_
