#ifndef CSXA_SOE_APPLET_H_
#define CSXA_SOE_APPLET_H_

/// \file applet.h
/// \brief Command-level card applet: the APDU face of the CardEngine.
///
/// Implements the terminal-visible state machine of Fig. 3: select a
/// document, receive the sealed rules, run a query, page the delivered
/// view out in APDU-sized slices. Chunk supply is modeled through the
/// ChunkProvider wired at session start (the proxy charges those
/// exchanges on the shared cost model — see DESIGN.md §2 on the
/// synchronous-callback simplification).

#include <memory>
#include <string>

#include "soe/apdu.h"
#include "soe/card_engine.h"

namespace csxa::soe {

/// \brief ApduHandler exposing the C-SXA engine.
class CsxaApplet : public ApduHandler {
 public:
  /// The applet owns its engine (the card).
  explicit CsxaApplet(CardProfile profile) : engine_(profile) {}

  /// Direct key installation (models the issuer's secure channel).
  void InstallKey(const std::string& doc_id, const crypto::SymmetricKey& key) {
    engine_.InstallKey(doc_id, key);
  }
  /// Wires the provider used for the *next* kRunQuery.
  void SetChunkProvider(ChunkProvider* provider) { provider_ = provider; }

  ApduResponse Process(const ApduCommand& command) override;

  /// Statistics of the last completed session (valid after kRunQuery).
  const SessionStats& last_stats() const { return last_stats_; }

  /// Engine access for non-APDU callers (benchmarks).
  CardEngine& engine() { return engine_; }

 private:
  ApduResponse HandleSelect(const ApduCommand& cmd);
  ApduResponse HandleInstallKey(const ApduCommand& cmd);
  ApduResponse HandlePutRules(const ApduCommand& cmd);
  ApduResponse HandleRunQuery(const ApduCommand& cmd);
  ApduResponse HandleFetchOutput(const ApduCommand& cmd);
  ApduResponse HandleGetStats(const ApduCommand& cmd);

  CardEngine engine_{CardProfile::EGate()};
  ChunkProvider* provider_ = nullptr;

  // Session state.
  std::string selected_doc_;
  Bytes header_bytes_;
  Bytes sealed_rules_;
  std::string output_;
  size_t output_cursor_ = 0;
  SessionStats last_stats_;
  bool session_ready_ = false;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_APPLET_H_
