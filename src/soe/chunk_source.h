#ifndef CSXA_SOE_CHUNK_SOURCE_H_
#define CSXA_SOE_CHUNK_SOURCE_H_

/// \file chunk_source.h
/// \brief On-demand verify-and-decrypt byte source over a secure container.
///
/// The card holds one chunk of plaintext at a time (RAM!). Reads fetch the
/// containing chunk from the provider (the terminal/DSP side), verify its
/// Merkle path against the root-MAC-checked header, decrypt, and serve.
/// Skips merely advance the cursor: chunks that are entirely jumped over
/// are neither transferred nor decrypted — the skip index's payoff.
///
/// The provider interface is batch-first: one GetChunks() call is one
/// modeled terminal<->server round trip, however many chunks it carries.
/// The card itself still consumes one chunk at a time (its RAM budget);
/// batching happens terminal-side in soe::PrefetchingProvider, which
/// absorbs per-chunk card requests into windowed server fetches.

#include <iterator>
#include <memory>
#include <vector>

#include "crypto/container.h"
#include "skipindex/byte_source.h"
#include "soe/cost_model.h"

namespace csxa::soe {

/// \brief One chunk as shipped to the card: ciphertext plus its
/// authentication material (keyed MAC or Merkle path per container mode).
struct ChunkData {
  Bytes ciphertext;
  crypto::ChunkAuth auth;

  /// Wire size as transferred to the card.
  size_t WireBytes(crypto::IntegrityMode mode) const {
    return ciphertext.size() + auth.WireBytes(mode);
  }
};

/// \brief Supplies chunk batches by range (implemented by the proxy/DSP
/// side).
///
/// Each GetChunks() call is one modeled round trip to wherever the chunks
/// live; implementations that serve from memory the terminal already holds
/// (a received broadcast, a prefetch window) override round_trips()
/// accordingly.
///
/// Reentrancy contract: one ChunkProvider instance serves one card
/// session on one thread (its round-trip counter and any buffering are
/// unsynchronized). Share the dsp::Service underneath across sessions,
/// never the provider.
class ChunkProvider {
 public:
  virtual ~ChunkProvider() = default;

  /// Fetches the `count` consecutive chunks starting at `first` in one
  /// round trip.
  Result<std::vector<ChunkData>> GetChunks(uint32_t first, uint32_t count) {
    ++round_trips_;
    return FetchChunks(first, count);
  }

  /// Single-chunk convenience: a one-chunk batch (still one round trip).
  Result<ChunkData> GetChunk(uint32_t index) {
    CSXA_ASSIGN_OR_RETURN(std::vector<ChunkData> chunks, GetChunks(index, 1));
    if (chunks.size() != 1) {
      return Status::Internal("provider returned wrong batch size");
    }
    return std::move(chunks[0]);
  }

  /// Fetches several (possibly discontiguous) chunk runs in ONE round
  /// trip, returned concatenated in run order. This is what the fetch
  /// planner uses: a whole query's worth of ranges for one trip's
  /// latency. Backends that speak a multi-span protocol (dsp::Service
  /// kGetChunks) override FetchSpans to send one request; the default
  /// gathers the runs from FetchChunks, which is honest for providers
  /// already serving from local memory.
  Result<std::vector<ChunkData>> GetSpans(
      const std::vector<skipindex::ChunkRun>& spans) {
    ++round_trips_;
    return FetchSpans(spans);
  }

  /// Total wire size of the full stream; used by push mode, where the
  /// broadcast reaches the card whether it decrypts it or not. 0 means
  /// unknown (pull-mode providers need not implement it).
  virtual uint64_t TotalWireBytes() const { return 0; }

  /// Modeled terminal<->server round trips performed so far. Decorators
  /// that answer from local buffers report their backend's count instead.
  virtual uint64_t round_trips() const { return round_trips_; }

 protected:
  /// Backend fetch of the batch [first, first+count).
  virtual Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                                     uint32_t count) = 0;

  /// Backend fetch of several runs as one exchange. Default: gather each
  /// run via FetchChunks (no extra round trips are counted — GetSpans
  /// already charged the one trip).
  virtual Result<std::vector<ChunkData>> FetchSpans(
      const std::vector<skipindex::ChunkRun>& spans) {
    std::vector<ChunkData> out;
    for (const skipindex::ChunkRun& span : spans) {
      if (span.count == 0) continue;
      CSXA_ASSIGN_OR_RETURN(std::vector<ChunkData> part,
                            FetchChunks(span.first, span.count));
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }

 private:
  uint64_t round_trips_ = 0;
};

/// \brief ChunkProvider over a parsed in-memory container.
///
/// Models either a remote store front-end (default: every batch is one
/// round trip) or a broadcast buffer the terminal already received
/// (`counts_round_trips = false`, push mode: the stream arrived whether
/// the card wanted it or not).
class ContainerChunkProvider : public ChunkProvider {
 public:
  explicit ContainerChunkProvider(const crypto::SecureContainer* container,
                                  bool counts_round_trips = true)
      : container_(container), counts_round_trips_(counts_round_trips) {}

  uint64_t TotalWireBytes() const override;
  uint64_t round_trips() const override {
    return counts_round_trips_ ? ChunkProvider::round_trips() : 0;
  }

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override;

 private:
  const crypto::SecureContainer* container_;
  bool counts_round_trips_;
};

/// \brief ByteSource over the container payload with lazy chunk fetching.
class ChunkSource : public skipindex::ByteSource {
 public:
  /// `header` must already be root-verified under `key` by the caller.
  /// With `charge_transfer` false (push mode) fetches charge only crypto:
  /// the broadcast bytes were already paid for by the caller.
  ChunkSource(const crypto::SymmetricKey& key,
              const crypto::ContainerHeader& header, ChunkProvider* provider,
              CostModel* cost, bool charge_transfer = true);

  Status ReadExact(uint8_t* buf, size_t n) override;
  /// Zero-copy read into the current chunk's plaintext buffer: succeeds
  /// when the range lies within a single chunk (fetching it if needed).
  /// The pointer is invalidated by the next chunk fetch, i.e. at the
  /// earliest by the next read that leaves this chunk — within the
  /// decoder's one-event borrow discipline that is always safe.
  const uint8_t* View(size_t n) override;
  Status Skip(uint64_t n) override;
  uint64_t position() const override { return pos_; }
  bool AtEnd() const override { return pos_ >= header_.payload_size; }

  /// Chunks actually fetched (transferred + decrypted).
  uint64_t chunks_fetched() const { return chunks_fetched_; }
  /// Chunks never touched thanks to skips.
  uint64_t chunks_avoided() const;

  /// Modeled RAM held by the source (current chunk buffer).
  size_t ModeledBytes() const { return buf_.size(); }

 private:
  Status EnsureChunk(uint32_t index);

  crypto::SymmetricKey key_;
  crypto::ContainerHeader header_;
  ChunkProvider* provider_;
  CostModel* cost_;
  bool charge_transfer_;

  uint64_t pos_ = 0;
  uint32_t buf_index_ = 0;
  bool buf_valid_ = false;
  Bytes buf_;  // plaintext of chunk buf_index_
  uint64_t chunks_fetched_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_CHUNK_SOURCE_H_
