#ifndef CSXA_SOE_CHUNK_SOURCE_H_
#define CSXA_SOE_CHUNK_SOURCE_H_

/// \file chunk_source.h
/// \brief On-demand verify-and-decrypt byte source over a secure container.
///
/// The card holds one chunk of plaintext at a time (RAM!). Reads fetch the
/// containing chunk from the provider (the terminal/DSP side), verify its
/// Merkle path against the root-MAC-checked header, decrypt, and serve.
/// Skips merely advance the cursor: chunks that are entirely jumped over
/// are neither transferred nor decrypted — the skip index's payoff.

#include <memory>
#include <vector>

#include "crypto/container.h"
#include "skipindex/byte_source.h"
#include "soe/cost_model.h"

namespace csxa::soe {

/// \brief One chunk as shipped to the card: ciphertext plus its
/// authentication material (keyed MAC or Merkle path per container mode).
struct ChunkData {
  Bytes ciphertext;
  crypto::ChunkAuth auth;

  /// Wire size as transferred to the card.
  size_t WireBytes(crypto::IntegrityMode mode) const {
    return ciphertext.size() + auth.WireBytes(mode);
  }
};

/// \brief Supplies chunks by index (implemented by the proxy/DSP side).
class ChunkProvider {
 public:
  virtual ~ChunkProvider() = default;
  virtual Result<ChunkData> GetChunk(uint32_t index) = 0;
  /// Total wire size of the full stream; used by push mode, where the
  /// broadcast reaches the card whether it decrypts it or not. 0 means
  /// unknown (pull-mode providers need not implement it).
  virtual uint64_t TotalWireBytes() const { return 0; }
};

/// \brief ByteSource over the container payload with lazy chunk fetching.
class ChunkSource : public skipindex::ByteSource {
 public:
  /// `header` must already be root-verified under `key` by the caller.
  /// With `charge_transfer` false (push mode) fetches charge only crypto:
  /// the broadcast bytes were already paid for by the caller.
  ChunkSource(const crypto::SymmetricKey& key,
              const crypto::ContainerHeader& header, ChunkProvider* provider,
              CostModel* cost, bool charge_transfer = true);

  Status ReadExact(uint8_t* buf, size_t n) override;
  /// Zero-copy read into the current chunk's plaintext buffer: succeeds
  /// when the range lies within a single chunk (fetching it if needed).
  /// The pointer is invalidated by the next chunk fetch, i.e. at the
  /// earliest by the next read that leaves this chunk — within the
  /// decoder's one-event borrow discipline that is always safe.
  const uint8_t* View(size_t n) override;
  Status Skip(uint64_t n) override;
  uint64_t position() const override { return pos_; }
  bool AtEnd() const override { return pos_ >= header_.payload_size; }

  /// Chunks actually fetched (transferred + decrypted).
  uint64_t chunks_fetched() const { return chunks_fetched_; }
  /// Chunks never touched thanks to skips.
  uint64_t chunks_avoided() const;

  /// Modeled RAM held by the source (current chunk buffer).
  size_t ModeledBytes() const { return buf_.size(); }

 private:
  Status EnsureChunk(uint32_t index);

  crypto::SymmetricKey key_;
  crypto::ContainerHeader header_;
  ChunkProvider* provider_;
  CostModel* cost_;
  bool charge_transfer_;

  uint64_t pos_ = 0;
  uint32_t buf_index_ = 0;
  bool buf_valid_ = false;
  Bytes buf_;  // plaintext of chunk buf_index_
  uint64_t chunks_fetched_ = 0;
};

}  // namespace csxa::soe

#endif  // CSXA_SOE_CHUNK_SOURCE_H_
