#include "soe/applet.h"

namespace csxa::soe {

namespace {
ApduResponse Error(uint16_t sw) {
  ApduResponse r;
  r.sw = sw;
  return r;
}
ApduResponse Ok(Bytes data = {}) {
  ApduResponse r;
  r.data = std::move(data);
  return r;
}
}  // namespace

ApduResponse CsxaApplet::Process(const ApduCommand& command) {
  switch (command.ins) {
    case Ins::kSelectDocument:
      return HandleSelect(command);
    case Ins::kInstallKey:
      return HandleInstallKey(command);
    case Ins::kPutRules:
      return HandlePutRules(command);
    case Ins::kRunQuery:
      return HandleRunQuery(command);
    case Ins::kFetchOutput:
      return HandleFetchOutput(command);
    case Ins::kGetStats:
      return HandleGetStats(command);
    case Ins::kEndSession:
      selected_doc_.clear();
      header_bytes_.clear();
      sealed_rules_.clear();
      output_.clear();
      output_cursor_ = 0;
      session_ready_ = false;
      return Ok();
  }
  return Error(kSwConditionsNotSatisfied);
}

ApduResponse CsxaApplet::HandleSelect(const ApduCommand& cmd) {
  ByteReader r(cmd.data);
  std::string doc_id;
  Span header;
  if (!r.GetString(&doc_id) || !r.GetLengthPrefixed(&header) || !r.AtEnd()) {
    return Error(kSwWrongData);
  }
  if (!engine_.HasKey(doc_id)) return Error(kSwSecurityStatus);
  selected_doc_ = doc_id;
  header_bytes_ = header.ToBytes();
  sealed_rules_.clear();
  output_.clear();
  output_cursor_ = 0;
  session_ready_ = false;
  return Ok();
}

ApduResponse CsxaApplet::HandleInstallKey(const ApduCommand& cmd) {
  ByteReader r(cmd.data);
  std::string doc_id;
  Span key_bytes;
  if (!r.GetString(&doc_id) || !r.GetLengthPrefixed(&key_bytes) || !r.AtEnd() ||
      key_bytes.size() != crypto::kAesKeySize) {
    return Error(kSwWrongData);
  }
  engine_.InstallKey(doc_id, crypto::SymmetricKey(key_bytes));
  return Ok();
}

ApduResponse CsxaApplet::HandlePutRules(const ApduCommand& cmd) {
  if (selected_doc_.empty()) return Error(kSwConditionsNotSatisfied);
  sealed_rules_ = cmd.data;
  return Ok();
}

ApduResponse CsxaApplet::HandleRunQuery(const ApduCommand& cmd) {
  if (selected_doc_.empty() || sealed_rules_.empty() || provider_ == nullptr) {
    return Error(kSwConditionsNotSatisfied);
  }
  ByteReader r(cmd.data);
  SessionOptions opts;
  uint8_t flags;
  if (!r.GetString(&opts.subject) || !r.GetString(&opts.query_text) ||
      !r.GetU8(&flags) || !r.AtEnd()) {
    return Error(kSwWrongData);
  }
  opts.use_skip = (flags & 1) != 0;
  opts.strict_ram = (flags & 2) != 0;
  auto result = engine_.RunSession(selected_doc_, header_bytes_, sealed_rules_,
                                   provider_, opts);
  if (!result.ok()) {
    switch (result.status().code()) {
      case StatusCode::kIntegrityError:
        return Error(kSwSecurityStatus);
      case StatusCode::kNotFound:
        return Error(kSwNotFound);
      case StatusCode::kResourceExhausted:
        return Error(kSwConditionsNotSatisfied);
      default:
        return Error(kSwInternal);
    }
  }
  output_ = std::move(result.value().view_xml);
  last_stats_ = result.value().stats;
  output_cursor_ = 0;
  session_ready_ = true;
  ByteWriter w;
  w.PutU64(output_.size());
  return Ok(w.Take());
}

ApduResponse CsxaApplet::HandleFetchOutput(const ApduCommand&) {
  if (!session_ready_) return Error(kSwConditionsNotSatisfied);
  constexpr size_t kSlice = 240;
  size_t n = output_.size() - output_cursor_;
  if (n > kSlice) n = kSlice;
  Bytes slice(output_.begin() + static_cast<long>(output_cursor_),
              output_.begin() + static_cast<long>(output_cursor_ + n));
  output_cursor_ += n;
  ApduResponse resp;
  resp.data = std::move(slice);
  resp.sw = output_cursor_ < output_.size() ? kSwMoreData : kSwOk;
  return resp;
}

ApduResponse CsxaApplet::HandleGetStats(const ApduCommand&) {
  if (!session_ready_) return Error(kSwConditionsNotSatisfied);
  ByteWriter w;
  w.PutU64(static_cast<uint64_t>(last_stats_.bytes_transferred));
  w.PutU64(static_cast<uint64_t>(last_stats_.bytes_decrypted));
  w.PutU64(static_cast<uint64_t>(last_stats_.chunks_fetched));
  w.PutU64(static_cast<uint64_t>(last_stats_.chunks_avoided));
  w.PutU64(static_cast<uint64_t>(last_stats_.skips));
  w.PutU64(static_cast<uint64_t>(last_stats_.ram_peak));
  return Ok(w.Take());
}

}  // namespace csxa::soe
