#include "soe/apdu.h"

namespace csxa::soe {

void ApduCommand::EncodeTo(ByteWriter* out) const {
  out->PutU8(cla);
  out->PutU8(static_cast<uint8_t>(ins));
  out->PutU8(p1);
  out->PutU8(p2);
  out->PutU32(static_cast<uint32_t>(data.size()));  // extended length field
  out->PutBytes(data);
}

Result<ApduCommand> ApduCommand::DecodeFrom(ByteReader* in) {
  ApduCommand cmd;
  uint8_t ins_raw;
  uint32_t len;
  if (!in->GetU8(&cmd.cla) || !in->GetU8(&ins_raw) || !in->GetU8(&cmd.p1) ||
      !in->GetU8(&cmd.p2) || !in->GetU32(&len)) {
    return Status::ParseError("APDU command truncated");
  }
  Span data;
  if (!in->GetBytes(len, &data)) {
    return Status::ParseError("APDU command body truncated");
  }
  cmd.ins = static_cast<Ins>(ins_raw);
  cmd.data = data.ToBytes();
  return cmd;
}

void ApduResponse::EncodeTo(ByteWriter* out) const {
  out->PutU32(static_cast<uint32_t>(data.size()));
  out->PutBytes(data);
  out->PutU16(sw);
}

Result<ApduResponse> ApduResponse::DecodeFrom(ByteReader* in) {
  ApduResponse resp;
  uint32_t len;
  if (!in->GetU32(&len)) return Status::ParseError("APDU response truncated");
  Span data;
  if (!in->GetBytes(len, &data) || !in->GetU16(&resp.sw)) {
    return Status::ParseError("APDU response body truncated");
  }
  resp.data = data.ToBytes();
  return resp;
}

ApduResponse ApduTransport::Exchange(ApduHandler* card,
                                     const ApduCommand& command) {
  ++exchanges_;
  // Wire-size accounting: header (4) + length (4) + payload, then the
  // response payload + status word. Chaining overhead is handled inside
  // CostModel::AddTransfer.
  ByteWriter wire;
  command.EncodeTo(&wire);
  if (cost_ != nullptr) cost_->AddTransfer(wire.size());
  ApduResponse resp = card->Process(command);
  if (cost_ != nullptr) cost_->AddTransfer(resp.data.size() + 2);
  return resp;
}

}  // namespace csxa::soe
