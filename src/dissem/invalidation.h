#ifndef CSXA_DISSEM_INVALIDATION_H_
#define CSXA_DISSEM_INVALIDATION_H_

/// \file invalidation.h
/// \brief Policy-update invalidation fan-out to subscribed terminals.
///
/// The paper's cheap dynamic policy update (a rules-version bump) gets its
/// push half here: when the replicated DSP fabric commits a write, the
/// fan-out notifies every subscribed terminal so version-keyed caches drop
/// the affected document *now* instead of on the next revalidation.
///
/// The channel is best-effort on purpose — exactly like the broadcast
/// dissemination channel (channel.h), delivery can be lost (scripted drop
/// probability) or a subscriber can be partitioned away. That is safe by
/// construction: the pull path still revalidates every open against the
/// authoritative version (caching.h), so a missed notification costs one
/// round trip of freshness, never correctness. Tests inject drops and
/// partitions and assert exactly that self-healing.
///
/// Subscribers register plain std::function handlers, so this layer knows
/// nothing about dsp:: types; the load harness wires the handlers to
/// CachingClient::Invalidate and ReplicatedService::set_on_write_committed
/// wires commits to Publish().
///
/// Threading: Publish()/Subscribe()/set_partitioned() are safe from any
/// number of threads. Handlers run outside the fan-out's lock (they may
/// take their own, e.g. the cache's), in subscriber order, on the
/// publishing thread — a modeled multicast, not a queue.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"

namespace csxa::dissem {

/// \brief Terminal-side callback: a policy update for `doc_id` reached
/// this subscriber (version is the committed rules version).
using InvalidationHandler =
    std::function<void(const std::string& doc_id, uint64_t rules_version)>;

/// \brief Fan-out channel knobs.
struct FanoutOptions {
  /// Per-delivery probability of losing the notification; 0 disables.
  double drop_probability = 0;
  /// Seed of the drop RNG (the usual deterministic Rng).
  uint64_t seed = 1;
};

/// \brief Best-effort notification fan-out: one publisher, N terminals.
class InvalidationFanout {
 public:
  explicit InvalidationFanout(FanoutOptions options = FanoutOptions{});

  /// Registers a terminal; returns its subscriber index (the handle for
  /// set_partitioned). Handlers must be thread-safe and must outlive the
  /// fan-out.
  size_t Subscribe(InvalidationHandler handler);

  /// Cuts (true) or heals (false) the channel to one subscriber.
  void set_partitioned(size_t subscriber, bool partitioned);

  /// Publishes one notification to every subscriber (minus partitions
  /// and random drops).
  void Publish(const std::string& doc_id, uint64_t rules_version);

  /// \name Fan-out statistics
  /// @{
  uint64_t published() const;    ///< Publish() calls
  uint64_t delivered() const;    ///< handler invocations
  uint64_t dropped() const;      ///< losses from drop_probability
  uint64_t partitioned() const;  ///< deliveries suppressed by partitions
  /// @}

 private:
  struct Sub {
    InvalidationHandler handler;
    bool partitioned = false;
  };

  mutable std::mutex mu_;  // guards subs_, rng_, counters
  FanoutOptions options_;
  Rng rng_;
  std::vector<Sub> subs_;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t partitioned_ = 0;
};

}  // namespace csxa::dissem

#endif  // CSXA_DISSEM_INVALIDATION_H_
