#ifndef CSXA_DISSEM_CHANNEL_H_
#define CSXA_DISSEM_CHANNEL_H_

/// \file channel.h
/// \brief Selective data dissemination over unsecured channels (demo
/// application 2, §3).
///
/// A publisher broadcasts encrypted, indexed content items to many
/// subscribers over an untrusted channel (think satellite/multicast: every
/// card receives every byte). Each subscriber's card filters the stream
/// against that subscriber's rules in real time: it decrypts only the
/// chunks that can contribute to its personalized view, discarding the
/// rest by the skip index — the push-mode economics of §2.3.

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/container.h"
#include "soe/card_engine.h"
#include "xml/dom.h"

namespace csxa::dissem {

/// \brief One subscriber: a named subject with a card.
class Subscriber {
 public:
  Subscriber(std::string name, soe::CardProfile profile)
      : name_(std::move(name)), card_(profile) {}

  const std::string& name() const { return name_; }
  soe::CardEngine& card() { return card_; }

 private:
  std::string name_;
  soe::CardEngine card_;
};

/// Channel configuration.
struct ChannelOptions {
  size_t chunk_size = crypto::kDefaultChunkSize;
  bool with_index = true;
  /// Skips on the subscriber cards (saves decryption, not broadcast bytes).
  bool use_skip = true;
};

/// What one subscriber received for one published item.
struct Delivery {
  std::string subscriber;
  std::string view_xml;
  soe::SessionStats stats;
};

/// Broadcast-level metrics for one published item.
struct BroadcastReport {
  uint64_t broadcast_wire_bytes = 0;
  size_t item_elements = 0;
  std::vector<Delivery> deliveries;
  /// Slowest card's modeled time — the real-time constraint of the demo
  /// (video dissemination must keep up with the stream).
  double max_subscriber_seconds = 0;
};

/// \brief A dissemination channel: one publisher key, many subscribers.
class Channel {
 public:
  /// `rules_text` covers all subscriber subjects; each registered
  /// subscriber receives the channel key (through the simulated PKI).
  Channel(std::string channel_id, std::string rules_text,
          ChannelOptions options, uint64_t seed);

  /// Registers a subscriber and installs the channel key on its card.
  void Subscribe(Subscriber* subscriber);

  /// Publishes one content item: encodes, seals, broadcasts, and runs
  /// every subscriber's card filter over the stream.
  Result<BroadcastReport> Publish(const xml::DomDocument& item);

  /// Replaces the channel's rule set (e.g. a parent tightening control) —
  /// affects the next published item, no re-keying.
  Status UpdateRules(std::string rules_text);

  const std::string& id() const { return channel_id_; }

 private:
  std::string channel_id_;
  std::string rules_text_;
  ChannelOptions options_;
  Rng rng_;
  crypto::SymmetricKey key_;
  std::vector<Subscriber*> subscribers_;
  uint64_t item_counter_ = 0;
};

}  // namespace csxa::dissem

#endif  // CSXA_DISSEM_CHANNEL_H_
