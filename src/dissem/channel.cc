#include "dissem/channel.h"

#include "core/rule.h"
#include "core/rule_envelope.h"
#include "skipindex/codec.h"

namespace csxa::dissem {

// The broadcast buffer the terminal already received is a local
// ContainerChunkProvider: batch fetches cost no server round trips
// (counts_round_trips = false — push-mode economics).

Channel::Channel(std::string channel_id, std::string rules_text,
                 ChannelOptions options, uint64_t seed)
    : channel_id_(std::move(channel_id)),
      rules_text_(std::move(rules_text)),
      options_(options),
      rng_(seed) {
  key_ = crypto::SymmetricKey::Generate(&rng_);
}

void Channel::Subscribe(Subscriber* subscriber) {
  subscriber->card().InstallKey(channel_id_, key_);
  subscribers_.push_back(subscriber);
}

Status Channel::UpdateRules(std::string rules_text) {
  CSXA_ASSIGN_OR_RETURN(core::RuleSet parsed,
                        core::RuleSet::ParseText(rules_text));
  (void)parsed;
  rules_text_ = std::move(rules_text);
  return Status::OK();
}

Result<BroadcastReport> Channel::Publish(const xml::DomDocument& item) {
  ++item_counter_;
  BroadcastReport report;
  report.item_elements = item.CountElements();

  skipindex::EncodeOptions eopt;
  eopt.with_index = options_.with_index;
  CSXA_ASSIGN_OR_RETURN(Bytes encoded, skipindex::EncodeDocument(item, eopt));
  Bytes container_bytes = crypto::SecureContainer::Seal(
      key_, encoded, options_.chunk_size, &rng_);
  CSXA_ASSIGN_OR_RETURN(crypto::SecureContainer container,
                        crypto::SecureContainer::Parse(container_bytes));

  ByteWriter header_writer;
  container.header().EncodeTo(&header_writer);
  Bytes header_bytes = header_writer.Take();

  CSXA_ASSIGN_OR_RETURN(core::RuleSet rules,
                        core::RuleSet::ParseText(rules_text_));
  // The item counter doubles as the rule-envelope version: every broadcast
  // carries the current policy, and subscriber cards refuse rollbacks.
  Bytes sealed_rules =
      core::SealRuleSet(key_, rules, item_counter_, &rng_);

  soe::ContainerChunkProvider provider(&container,
                                       /*counts_round_trips=*/false);
  report.broadcast_wire_bytes = provider.TotalWireBytes();

  for (Subscriber* sub : subscribers_) {
    soe::SessionOptions opts;
    opts.subject = sub->name();
    opts.use_skip = options_.use_skip;
    opts.push_mode = true;
    CSXA_ASSIGN_OR_RETURN(
        soe::SessionOutput out,
        sub->card().RunSession(channel_id_, header_bytes, sealed_rules,
                               &provider, opts));
    if (out.stats.total_seconds > report.max_subscriber_seconds) {
      report.max_subscriber_seconds = out.stats.total_seconds;
    }
    Delivery d;
    d.subscriber = sub->name();
    d.view_xml = std::move(out.view_xml);
    d.stats = out.stats;
    report.deliveries.push_back(std::move(d));
  }
  return report;
}

}  // namespace csxa::dissem
