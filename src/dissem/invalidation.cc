#include "dissem/invalidation.h"

namespace csxa::dissem {

InvalidationFanout::InvalidationFanout(FanoutOptions options)
    : options_(options), rng_(options_.seed) {}

size_t InvalidationFanout::Subscribe(InvalidationHandler handler) {
  std::lock_guard lock(mu_);
  subs_.push_back(Sub{std::move(handler), false});
  return subs_.size() - 1;
}

void InvalidationFanout::set_partitioned(size_t subscriber, bool partitioned) {
  std::lock_guard lock(mu_);
  if (subscriber < subs_.size()) subs_[subscriber].partitioned = partitioned;
}

void InvalidationFanout::Publish(const std::string& doc_id,
                                 uint64_t rules_version) {
  // Decide every subscriber's fate under the lock (the RNG and counters
  // live there), then invoke handlers outside it: handlers take their own
  // locks (the cache's) and must not nest under ours.
  std::vector<InvalidationHandler> reached;
  {
    std::lock_guard lock(mu_);
    ++published_;
    for (const Sub& sub : subs_) {
      if (sub.partitioned) {
        ++partitioned_;
        continue;
      }
      if (options_.drop_probability > 0 &&
          rng_.Chance(options_.drop_probability)) {
        ++dropped_;
        continue;
      }
      ++delivered_;
      reached.push_back(sub.handler);
    }
  }
  for (const InvalidationHandler& handler : reached) {
    handler(doc_id, rules_version);
  }
}

uint64_t InvalidationFanout::published() const {
  std::lock_guard lock(mu_);
  return published_;
}

uint64_t InvalidationFanout::delivered() const {
  std::lock_guard lock(mu_);
  return delivered_;
}

uint64_t InvalidationFanout::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

uint64_t InvalidationFanout::partitioned() const {
  std::lock_guard lock(mu_);
  return partitioned_;
}

}  // namespace csxa::dissem
