#include "pki/registry.h"

namespace csxa::pki {

Status KeyRegistry::Grant(const std::string& doc_id, const std::string& user,
                          const crypto::SymmetricKey& key) {
  std::lock_guard lock(mu_);
  if (users_.count(user) == 0) {
    return Status::NotFound("unknown user " + user);
  }
  grants_[{doc_id, user}] = key;
  ++keys_distributed_;
  return Status::OK();
}

Status KeyRegistry::Revoke(const std::string& doc_id, const std::string& user) {
  std::lock_guard lock(mu_);
  if (grants_.erase({doc_id, user}) == 0) {
    return Status::NotFound("no grant for " + user + " on " + doc_id);
  }
  return Status::OK();
}

Result<crypto::SymmetricKey> KeyRegistry::Fetch(const std::string& doc_id,
                                                const std::string& user) const {
  std::lock_guard lock(mu_);
  auto it = grants_.find({doc_id, user});
  if (it == grants_.end()) {
    return Status::NotFound("no grant for " + user + " on " + doc_id);
  }
  return it->second;
}

size_t KeyRegistry::GrantCount(const std::string& doc_id) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [k, v] : grants_) {
    if (k.first == doc_id) ++n;
  }
  return n;
}

}  // namespace csxa::pki
