#ifndef CSXA_PKI_REGISTRY_H_
#define CSXA_PKI_REGISTRY_H_

/// \file registry.h
/// \brief Simulated PKI: key exchange between community members.
///
/// Per the paper's own demo setup, "we will not use a PKI infrastructure
/// but rather simulate it ... PKI is a well-known technique that need not
/// be demonstrated" (§3, footnote 2). The registry plays the role of the
/// wrapped-key exchange: document owners deposit per-document secret keys
/// for named grantees; a grantee's terminal fetches its grants and
/// installs them in the card's secure storage.
///
/// Threading: safe for concurrent use — owners grant keys while terminal
/// sessions fetch them (the multi-tenant serving path). All operations
/// take one mutex; none are hot enough to need finer grain.

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/keys.h"

namespace csxa::pki {

/// \brief Simulated certificate/key-exchange authority.
class KeyRegistry {
 public:
  /// Registers a community member. Idempotent.
  void RegisterUser(const std::string& user) {
    std::lock_guard lock(mu_);
    users_.insert(user);
  }
  /// True if `user` is registered.
  bool HasUser(const std::string& user) const {
    std::lock_guard lock(mu_);
    return users_.count(user) > 0;
  }
  /// All registered users.
  std::vector<std::string> Users() const {
    std::lock_guard lock(mu_);
    return std::vector<std::string>(users_.begin(), users_.end());
  }

  /// Owner deposits `key` for `user` on `doc_id` (models a key wrapped
  /// under the grantee's public key). Fails on unknown users.
  Status Grant(const std::string& doc_id, const std::string& user,
               const crypto::SymmetricKey& key);
  /// Revokes a grant. NOTE: revocation alone does not protect already
  /// distributed content — the paper's dynamic-rule model handles
  /// fine-grained revocation by updating rules, not by re-keying.
  Status Revoke(const std::string& doc_id, const std::string& user);
  /// Grantee-side fetch (models unwrapping with the private key).
  Result<crypto::SymmetricKey> Fetch(const std::string& doc_id,
                                     const std::string& user) const;
  /// Number of grants for a document.
  size_t GrantCount(const std::string& doc_id) const;
  /// Total keys ever distributed (for EXP-DYN accounting).
  uint64_t keys_distributed() const {
    std::lock_guard lock(mu_);
    return keys_distributed_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::string> users_;
  std::map<std::pair<std::string, std::string>, crypto::SymmetricKey> grants_;
  uint64_t keys_distributed_ = 0;
};

}  // namespace csxa::pki

#endif  // CSXA_PKI_REGISTRY_H_
