#include "scengen/publish.h"

#include <utility>

#include "core/rule.h"

namespace csxa::scengen {

Result<PublishedDoc> PublishDocument(proxy::Publisher* publisher,
                                     const std::string& doc_id,
                                     const xml::DomDocument& doc,
                                     const std::string& rules_text,
                                     const proxy::PublishOptions& options) {
  auto rules = core::RuleSet::ParseText(rules_text);
  if (!rules.ok()) return rules.status();
  auto receipt = publisher->Publish(doc_id, doc, rules_text, options);
  if (!receipt.ok()) return receipt.status();
  PublishedDoc out;
  out.doc_id = doc_id;
  out.subjects = rules.value().Subjects();
  out.key = receipt.value().key;
  out.container_bytes = receipt.value().container_bytes;
  out.plaintext_bytes = receipt.value().plaintext_bytes;
  return out;
}

Result<PublishedDoc> PublishScenarioDocument(
    proxy::Publisher* publisher, const Scenario& scenario,
    const std::string& doc_id, size_t elements, uint64_t seed,
    size_t text_avg_len, const proxy::PublishOptions& options) {
  xml::DomDocument doc =
      MakeScenarioDocument(scenario, elements, seed, text_avg_len);
  return PublishDocument(publisher, doc_id, doc, scenario.rules_text, options);
}

Result<PublishedDoc> PublishGeneratedDoc(proxy::Publisher* publisher,
                                         const GeneratedScenario& scenario,
                                         const ScenarioDoc& doc,
                                         const proxy::PublishOptions& options) {
  auto out = PublishDocument(publisher, doc.doc_id, scenario.Materialize(doc),
                             doc.rules_text, options);
  if (!out.ok()) return out.status();
  // Narrow to the query-safe set: mobile "m<k>" subscribers churn out of
  // later revisions, so harnesses must not query as them.
  out.value().subjects = doc.subjects;
  return out;
}

}  // namespace csxa::scengen
