#ifndef CSXA_SCENGEN_PUBLISH_H_
#define CSXA_SCENGEN_PUBLISH_H_

/// \file publish.h
/// \brief One publishing path for scenario-shaped documents.
///
/// Examples, the load harness and the benches all used to repeat the same
/// four lines — parse the scenario rules, generate the document, publish,
/// remember the key and subjects. This helper is that loop body, so every
/// harness publishes scenario documents identically.

#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/keys.h"
#include "proxy/publisher.h"
#include "scengen/scenario.h"
#include "scengen/spec.h"
#include "xml/dom.h"

namespace csxa::scengen {

/// What a scenario publish produced: everything a harness needs to later
/// query (subjects) or republish/update (key) the document.
struct PublishedDoc {
  std::string doc_id;
  /// Query-safe subjects of the published rule set.
  std::vector<std::string> subjects;
  crypto::SymmetricKey key;
  size_t container_bytes = 0;
  size_t plaintext_bytes = 0;
};

/// Publishes `doc` as `doc_id` under `rules_text` and reports the granted
/// subjects (every subject of the rule text) alongside the key.
Result<PublishedDoc> PublishDocument(proxy::Publisher* publisher,
                                     const std::string& doc_id,
                                     const xml::DomDocument& doc,
                                     const std::string& rules_text,
                                     const proxy::PublishOptions& options = {});

/// Publishes one canonical-Scenario document: generates the document with
/// MakeScenarioDocument and publishes it under the scenario's rule text.
Result<PublishedDoc> PublishScenarioDocument(
    proxy::Publisher* publisher, const Scenario& scenario,
    const std::string& doc_id, size_t elements, uint64_t seed,
    size_t text_avg_len = 24, const proxy::PublishOptions& options = {});

/// Publishes one document of a generated scenario. The reported subjects
/// are the document's query-safe set (stable across policy revisions),
/// not the full grant list — mobile subscribers may lose access at the
/// next revision.
Result<PublishedDoc> PublishGeneratedDoc(
    proxy::Publisher* publisher, const GeneratedScenario& scenario,
    const ScenarioDoc& doc, const proxy::PublishOptions& options = {});

}  // namespace csxa::scengen

#endif  // CSXA_SCENGEN_PUBLISH_H_
