#ifndef CSXA_SCENGEN_RULEGEN_H_
#define CSXA_SCENGEN_RULEGEN_H_

/// \file rulegen.h
/// \brief Randomized access-rule and query generation.
///
/// Property tests and benchmarks need rule sets that actually interact
/// with the generated documents: paths are built by sampling tags from the
/// document's own vocabulary (and occasionally junk tags, to exercise
/// non-matching automata).

#include <string>
#include <vector>

#include "common/random.h"
#include "core/rule.h"
#include "xml/dom.h"
#include "xpath/ast.h"

namespace csxa::scengen {

/// Tag vocabulary of a document in first-seen order.
std::vector<std::string> CollectTags(const xml::DomDocument& doc);

/// Sample text values appearing in the document (for value predicates).
std::vector<std::string> CollectValues(const xml::DomDocument& doc,
                                       size_t limit = 64);

/// Parameters for random path generation.
struct PathGenParams {
  /// Maximum navigational steps.
  size_t max_steps = 4;
  /// Probability that a step uses the descendant axis.
  double descendant_prob = 0.45;
  /// Probability that a step is a wildcard.
  double wildcard_prob = 0.1;
  /// Probability that a step carries a predicate.
  double predicate_prob = 0.25;
  /// Probability that a predicate compares a value (vs pure existence).
  double value_pred_prob = 0.4;
  /// Probability of sampling a tag absent from the document.
  double junk_tag_prob = 0.05;
  /// Maximum steps inside a predicate path.
  size_t max_pred_steps = 2;
};

/// Generates a random XPath in the supported fragment over `tags`/`values`.
/// Returned string always parses via xpath::ParsePath.
std::string GeneratePathText(const std::vector<std::string>& tags,
                             const std::vector<std::string>& values,
                             const PathGenParams& params, Rng* rng);

/// Parameters for random rule-set generation.
struct RuleGenParams {
  size_t num_rules = 6;
  /// Fraction of prohibitions.
  double negative_ratio = 0.35;
  PathGenParams path;
};

/// Generates a rule set for `subject` over a document's vocabulary.
core::RuleSet GenerateRules(const xml::DomDocument& doc,
                            const std::string& subject,
                            const RuleGenParams& params, Rng* rng);

}  // namespace csxa::scengen

#endif  // CSXA_SCENGEN_RULEGEN_H_
