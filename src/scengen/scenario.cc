#include "scengen/scenario.h"

namespace csxa::scengen {

Scenario AgendaScenario() {
  Scenario s;
  s.profile = xml::DocProfile::kAgenda;
  s.description =
      "Community of users sharing an agenda via an untrusted DSP (demo "
      "application 1). The secretary sees everything except private notes; "
      "a guest only sees confirmed meetings' titles and dates; the auditor "
      "sees meeting metadata but no personal contact details.";
  s.rules_text =
      "# secretary: full agenda except private notes\n"
      "+ secretary /agenda\n"
      "- secretary //note[visibility=\"private\"]\n"
      "# guest: only meetings, not profiles or contacts\n"
      "+ guest //meeting\n"
      "- guest //notes\n"
      "- guest //participants\n"
      "# auditor: meetings and member profiles, no contact books\n"
      "+ auditor //meetings\n"
      "+ auditor //profile/name\n"
      "- auditor //note\n";
  s.queries = {
      {"all-meetings", "//meeting"},
      {"titles", "//meeting/title"},
      {"confirmed-rooms", "//meeting/room"},
  };
  return s;
}

Scenario HospitalScenario() {
  Scenario s;
  s.profile = xml::DocProfile::kHospital;
  s.description =
      "Medical folder exchange (§1): predefined sharing policies with "
      "exceptions. The treating doctor sees medical data but not billing; "
      "the accountant sees admin data only; the researcher sees anonymized "
      "medical records (no names/ssn); emergency staff see acute cases.";
  s.rules_text =
      "# doctor: whole patient folder except billing\n"
      "+ doctor //patient\n"
      "- doctor //admin/billing\n"
      "# accountant: administrative subtree only\n"
      "+ accountant //patient/admin\n"
      "# researcher: medical data, never identity\n"
      "+ researcher //patient/medical\n"
      "- researcher //patient/name\n"
      "- researcher //patient/ssn\n"
      "# emergency: folders of patients with an acute diagnosis\n"
      "+ emergency //patient[medical/diagnosis/severity=\"acute\"]\n"
      "- emergency //admin\n";
  s.queries = {
      {"treatments", "//treatment"},
      {"acute-patients", "//patient[medical/diagnosis/severity=\"acute\"]"},
      {"billing", "//billing/amount"},
  };
  return s;
}

Scenario NewsFeedScenario() {
  Scenario s;
  s.profile = xml::DocProfile::kNewsFeed;
  s.description =
      "Selective dissemination of a rated content feed (demo application "
      "2) and parental control (§1). The child profile receives only "
      "G-rated items; the teen profile excludes R-rated items; premium "
      "sees everything including media.";
  s.rules_text =
      "# child: G-rated items of any channel\n"
      "+ child //item[rating=\"G\"]\n"
      "# teen: all items except R-rated, no raw media streams\n"
      "+ teen //item\n"
      "- teen //item[rating=\"R\"]\n"
      "- teen //media\n"
      "# premium: the whole feed\n"
      "+ premium /feed\n";
  s.queries = {
      {"news-items", "//channel[genre=\"news\"]//item"},
      {"titles", "//item/title"},
      {"media", "//item/media"},
  };
  return s;
}

std::vector<Scenario> AllScenarios() {
  return {AgendaScenario(), HospitalScenario(), NewsFeedScenario()};
}

xml::DomDocument MakeScenarioDocument(const Scenario& scenario,
                                      size_t elements, uint64_t seed,
                                      size_t text_avg_len) {
  xml::GeneratorParams gp;
  gp.profile = scenario.profile;
  gp.target_elements = elements;
  gp.seed = seed;
  gp.text_avg_len = text_avg_len;
  return xml::GenerateDocument(gp);
}

}  // namespace csxa::scengen
