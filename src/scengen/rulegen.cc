#include "scengen/rulegen.h"

#include "common/logging.h"

namespace csxa::scengen {

namespace {

void CollectTagsRec(const xml::DomNode* n, std::vector<std::string>* out) {
  if (!n->is_element()) return;
  bool seen = false;
  for (const std::string& t : *out) {
    if (t == n->tag()) {
      seen = true;
      break;
    }
  }
  if (!seen) out->push_back(n->tag());
  for (const auto& c : n->children()) CollectTagsRec(c.get(), out);
}

void CollectValuesRec(const xml::DomNode* n, size_t limit,
                      std::vector<std::string>* out) {
  if (out->size() >= limit) return;
  if (n->is_text()) {
    if (!n->text().empty() && n->text().size() <= 32) out->push_back(n->text());
    return;
  }
  for (const auto& c : n->children()) CollectValuesRec(c.get(), limit, out);
}

std::string SampleTag(const std::vector<std::string>& tags, double junk_prob,
                      Rng* rng) {
  if (tags.empty() || rng->Chance(junk_prob)) {
    return "zz" + rng->Ident(3);
  }
  return rng->Pick(tags);
}

}  // namespace

std::vector<std::string> CollectTags(const xml::DomDocument& doc) {
  std::vector<std::string> out;
  if (doc.root()) CollectTagsRec(doc.root(), &out);
  return out;
}

std::vector<std::string> CollectValues(const xml::DomDocument& doc,
                                       size_t limit) {
  std::vector<std::string> out;
  if (doc.root()) CollectValuesRec(doc.root(), limit, &out);
  if (out.empty()) out.push_back("x");
  return out;
}

std::string GeneratePathText(const std::vector<std::string>& tags,
                             const std::vector<std::string>& values,
                             const PathGenParams& params, Rng* rng) {
  size_t steps = 1 + rng->Uniform(params.max_steps);
  std::string out;
  for (size_t i = 0; i < steps; ++i) {
    out += rng->Chance(params.descendant_prob) ? "//" : "/";
    if (rng->Chance(params.wildcard_prob)) {
      out += "*";
    } else {
      out += SampleTag(tags, params.junk_tag_prob, rng);
    }
    if (rng->Chance(params.predicate_prob)) {
      out.push_back('[');
      size_t psteps = 1 + rng->Uniform(params.max_pred_steps);
      for (size_t k = 0; k < psteps; ++k) {
        if (k == 0) {
          if (rng->Chance(params.descendant_prob)) out += ".//";
        } else {
          out += rng->Chance(params.descendant_prob) ? "//" : "/";
        }
        out += SampleTag(tags, params.junk_tag_prob, rng);
      }
      if (rng->Chance(params.value_pred_prob) && !values.empty()) {
        static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
        out += kOps[rng->Uniform(6)];
        out.push_back('"');
        // Escape embedded quotes out of caution (sampled values are short).
        std::string v = rng->Pick(values);
        for (char c : v) {
          if (c != '"') out.push_back(c);
        }
        out.push_back('"');
      }
      out.push_back(']');
    }
  }
  return out;
}

core::RuleSet GenerateRules(const xml::DomDocument& doc,
                            const std::string& subject,
                            const RuleGenParams& params, Rng* rng) {
  std::vector<std::string> tags = CollectTags(doc);
  std::vector<std::string> values = CollectValues(doc);
  core::RuleSet set;
  for (size_t i = 0; i < params.num_rules; ++i) {
    core::Sign sign = rng->Chance(params.negative_ratio) ? core::Sign::kDeny
                                                         : core::Sign::kPermit;
    std::string path = GeneratePathText(tags, values, params.path, rng);
    Status st = set.Add(sign, subject, path);
    CSXA_CHECK(st.ok());  // generator output must always parse
  }
  return set;
}

}  // namespace csxa::scengen
