#ifndef CSXA_SCENGEN_SCENARIO_H_
#define CSXA_SCENGEN_SCENARIO_H_

/// \file scenario.h
/// \brief The Scenario bundle and the hand-written canonical catalog.
///
/// A Scenario is a named (profile, rules, sample queries) bundle over one
/// of the generated dataset profiles. The three canonical bundles below
/// reproduce the demonstration storyline of §3 (agenda / medical folder /
/// rated feed) and are shared by examples, tests and benches; the
/// parameterized generator in spec.h mints arbitrary further bundles from
/// a ScenarioSpec.

#include <string>
#include <utility>
#include <vector>

#include "core/rule.h"
#include "xml/generator.h"

namespace csxa::scengen {

/// \brief A named (subject, rules, sample queries) bundle over a profile.
struct Scenario {
  xml::DocProfile profile;
  std::string description;
  /// Rule text (core::RuleSet::ParseText format), covering 2+ subjects.
  std::string rules_text;
  /// Sample queries with a short label.
  std::vector<std::pair<std::string, std::string>> queries;
};

/// The collaborative-agenda scenario (demo application 1: pull, textual).
Scenario AgendaScenario();
/// The hospital / medical-exchange scenario (§1 motivating example).
Scenario HospitalScenario();
/// The rated-feed scenario (demo application 2: push; parental control).
Scenario NewsFeedScenario();
/// All three canonical bundles.
std::vector<Scenario> AllScenarios();

/// One GeneratorParams boilerplate for scenario-shaped documents: the
/// profile comes from the scenario, everything else from the arguments.
/// Shared by the examples and the load harness so "a document of scenario
/// S with E elements at seed s" means the same bytes everywhere.
xml::DomDocument MakeScenarioDocument(const Scenario& scenario,
                                      size_t elements, uint64_t seed,
                                      size_t text_avg_len = 24);

}  // namespace csxa::scengen

#endif  // CSXA_SCENGEN_SCENARIO_H_
