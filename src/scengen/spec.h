#ifndef CSXA_SCENGEN_SPEC_H_
#define CSXA_SCENGEN_SPEC_H_

/// \file spec.h
/// \brief Parameterized scenario generation: ScenarioSpec → a deterministic
/// fleet of documents, per-document rule sets, a query mix and a churn
/// schedule.
///
/// The three hand-written canonical bundles (scenario.h) each pin one
/// point of the (document shape × rule selectivity × update rate) space.
/// A ScenarioSpec sweeps that space instead: every knob of the document
/// generator (xml::GeneratorParams), the rule generator (rulegen.h) and
/// the load mix is a field, and the whole scenario is a pure function of
/// (spec, spec.seed) — equal specs produce byte-identical documents,
/// rule texts and queries, on any run, on any machine. That determinism
/// is load-bearing: the property suites replay generated scenarios
/// against the DOM oracle, and the load/fault harnesses reproduce a
/// failing run from nothing but the spec.
///
/// Policy churn is part of the scenario, not the harness: RulesRevision
/// (doc, r) is revision r of a document's rule set — the stable subject
/// core keeps access across revisions (their rule bodies still change)
/// while a sliding window of mobile subscribers churns in and out, the
/// e-health dissemination pattern of users joining and leaving a
/// patient's care team.

#include <string>
#include <utility>
#include <vector>

#include "scengen/scenario.h"
#include "xml/dom.h"
#include "xml/generator.h"

namespace csxa::scengen {

/// Document-shape knobs, mapped onto xml::GeneratorParams.
struct DocShape {
  xml::DocProfile profile = xml::DocProfile::kRandom;
  /// Approximate element count of each document.
  size_t elements = 120;
  /// Average generated text payload length.
  size_t text_avg_len = 24;
  /// kRandom: maximum nesting depth.
  int max_depth = 8;
  /// kRandom: tag vocabulary size; kIoT: capability/telemetry fan-out.
  /// 0 keeps each profile's default.
  size_t fan_out = 0;
  /// kHospital: nested care-episode depth per visit (deep folders).
  size_t folder_depth = 0;
  /// kRandom: probability that an element carries text.
  double text_prob = 0.5;
};

/// Rule-set shape: how many subjects each document grants and how
/// selective their generated rules are.
struct RuleShape {
  /// Stable generated subjects per document ("s0".."s{N-1}"): they keep
  /// access across every policy revision, so they are query-safe.
  size_t subjects = 3;
  /// Generated rules per subject and revision.
  size_t rules_per_subject = 4;
  /// Fraction of prohibitions among generated rules.
  double negative_ratio = 0.35;
  /// Rule-path shape: selectivity levers of the generated XPaths.
  double predicate_prob = 0.25;
  double value_pred_prob = 0.4;
  double descendant_prob = 0.45;
  double wildcard_prob = 0.1;
  double junk_tag_prob = 0.05;
  size_t max_steps = 4;
  /// Hand-written rules prepended to every document and revision — the
  /// realistic policy core (e.g. the IoT owner/operator split). Its
  /// subjects are stable and query-safe too.
  std::string base_rules_text;
};

/// Query mix: hand-written queries plus paths generated from the fleet's
/// own tag vocabulary.
struct QueryShape {
  size_t generated = 3;
  double predicate_prob = 0.3;
  double descendant_prob = 0.5;
  std::vector<std::pair<std::string, std::string>> base_queries;
};

/// Update / republish / churn rates the load harness replays.
struct ChurnShape {
  /// Fraction of ops that are cheap policy updates (kUpdateRules).
  double update_fraction = 0.15;
  /// Fraction of ops that fully republish a document.
  double publish_fraction = 0.10;
  /// Mobile-subscriber churn: round(subjects * subject_churn) extra
  /// "m<k>" subscribers are active per revision, and the window slides
  /// every revision — subscribers join and leave the rule set while the
  /// stable core keeps access.
  double subject_churn = 0.0;
};

/// \brief The full parameter set of one generated scenario.
struct ScenarioSpec {
  /// Names document ids ("<name>-<index>") and bench/report rows.
  std::string name = "custom";
  /// Documents in the shared fleet a load run publishes up front.
  size_t documents = 8;
  DocShape doc;
  RuleShape rules;
  QueryShape queries;
  ChurnShape churn;
  /// Master seed: equal (spec, seed) ⇒ byte-identical scenario.
  uint64_t seed = 1;
};

/// One document of a generated scenario, fully resolved: materializing
/// `doc_params` is THE document (byte-identical on every call).
struct ScenarioDoc {
  size_t index = 0;
  std::string doc_id;
  xml::GeneratorParams doc_params;
  /// Revision-0 rule set (RulesRevision(index, 0)).
  std::string rules_text;
  /// Query-safe subjects: present in every policy revision.
  std::vector<std::string> subjects;
};

/// \brief A built scenario: the shared fleet plus deterministic access to
/// any further document or policy revision.
struct GeneratedScenario {
  ScenarioSpec spec;
  std::string description;
  /// The query mix (base + generated), shared by the whole fleet.
  std::vector<std::pair<std::string, std::string>> queries;
  /// The shared fleet: spec.documents entries, indexes 0..documents-1.
  std::vector<ScenarioDoc> docs;

  /// Deterministically mints document `index` (any index — the load
  /// harness uses indexes >= spec.documents for session-owned docs).
  /// `content_revision` varies the document body (a republish publishes
  /// revision r+1); the rule text always derives from revision 0's
  /// vocabulary so policy revisions stay comparable.
  ScenarioDoc MakeDoc(size_t index, uint64_t content_revision = 0) const;

  /// The document bytes of a resolved ScenarioDoc.
  xml::DomDocument Materialize(const ScenarioDoc& doc) const;

  /// Revision `revision` of document `index`'s rule set: base rules +
  /// regenerated stable-core rules + the sliding mobile-subscriber
  /// window. Revision 0 equals ScenarioDoc::rules_text.
  std::string RulesRevision(size_t index, uint64_t revision) const;

  /// Canonical serialization of the whole scenario (every fleet document,
  /// its revision-0 and revision-1 rule texts, subjects and the query
  /// mix). Two builds of equal specs produce equal fingerprints — the
  /// seed-stability contract the property suite pins.
  std::string Fingerprint() const;
};

/// Builds the scenario a spec describes. Pure: equal specs (including
/// seed) build byte-identical scenarios.
GeneratedScenario BuildScenario(const ScenarioSpec& spec);

// --- First-class scenario catalog -----------------------------------------

/// IoT fleet: ~1k devices each publishing a small capability/presence
/// document with per-user access rules — many small docs stressing
/// sharding, the shared cache and invalidation fan-out.
ScenarioSpec IoTFleetSpec();

/// E-health mobility: deep patient folders whose subscriber rule sets
/// churn (care teams follow mobile patients) under a heavy policy-update
/// mix — stressing the replicated write path, plan-cache invalidation and
/// the durable commit rate.
ScenarioSpec EHealthMobilitySpec();

}  // namespace csxa::scengen

#endif  // CSXA_SCENGEN_SPEC_H_
