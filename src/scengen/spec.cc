#include "scengen/spec.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "core/rule.h"
#include "scengen/rulegen.h"

namespace csxa::scengen {

namespace {

// Domain-separation salts: document bodies, rule revisions and queries
// draw from independent streams so tweaking one knob never perturbs the
// others' bytes.
constexpr uint64_t kDocSalt = 0x5363656e446f63ull;    // "ScenDoc"
constexpr uint64_t kRuleSalt = 0x5363656e52756cull;   // "ScenRul"
constexpr uint64_t kQuerySalt = 0x5363656e517279ull;  // "ScenQry"

// splitmix64-style mixer: collapses (seed, salt, index, revision) into one
// well-distributed 64-bit stream seed.
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  uint64_t x = a;
  x += 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull;
  x += c * 0x94D049BB133111EBull + d * 0x2545F4914F6CDD1Dull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

RuleGenParams MapRuleShape(const RuleShape& shape) {
  RuleGenParams rp;
  rp.num_rules = shape.rules_per_subject;
  rp.negative_ratio = shape.negative_ratio;
  rp.path.max_steps = shape.max_steps;
  rp.path.descendant_prob = shape.descendant_prob;
  rp.path.wildcard_prob = shape.wildcard_prob;
  rp.path.predicate_prob = shape.predicate_prob;
  rp.path.value_pred_prob = shape.value_pred_prob;
  rp.path.junk_tag_prob = shape.junk_tag_prob;
  return rp;
}

// Stable generated subjects: "s0".."s{K-1}". At least one exists when the
// spec has no hand-written base rules, so every document grants somebody
// and the load harness always has a query-safe subject to impersonate.
size_t StableSubjectCount(const ScenarioSpec& spec) {
  if (spec.rules.subjects == 0 && spec.rules.base_rules_text.empty()) return 1;
  return spec.rules.subjects;
}

size_t MobileSubjectCount(const ScenarioSpec& spec) {
  size_t k = StableSubjectCount(spec);
  double churn = std::clamp(spec.churn.subject_churn, 0.0, 1.0);
  return static_cast<size_t>(std::llround(static_cast<double>(k) * churn));
}

}  // namespace

ScenarioDoc GeneratedScenario::MakeDoc(size_t index,
                                       uint64_t content_revision) const {
  ScenarioDoc d;
  d.index = index;
  d.doc_id = spec.name + "-" + std::to_string(index);
  d.doc_params.profile = spec.doc.profile;
  d.doc_params.target_elements = spec.doc.elements;
  d.doc_params.seed = Mix(spec.seed, kDocSalt, index, content_revision);
  d.doc_params.text_avg_len = spec.doc.text_avg_len;
  d.doc_params.max_depth = spec.doc.max_depth;
  d.doc_params.text_prob = spec.doc.text_prob;
  d.doc_params.folder_depth = spec.doc.folder_depth;
  d.doc_params.fan_out = spec.doc.fan_out;
  if (spec.doc.fan_out > 0) d.doc_params.vocabulary = spec.doc.fan_out;
  d.rules_text = RulesRevision(index, 0);
  // Query-safe subjects: the hand-written base policy's subjects plus the
  // stable generated core — all present in every RulesRevision.
  if (!spec.rules.base_rules_text.empty()) {
    auto base = core::RuleSet::ParseText(spec.rules.base_rules_text);
    CSXA_CHECK(base.ok());  // specs carry well-formed base policies
    d.subjects = base.value().Subjects();
  }
  for (size_t k = 0; k < StableSubjectCount(spec); ++k) {
    d.subjects.push_back("s" + std::to_string(k));
  }
  return d;
}

xml::DomDocument GeneratedScenario::Materialize(const ScenarioDoc& doc) const {
  return xml::GenerateDocument(doc.doc_params);
}

std::string GeneratedScenario::RulesRevision(size_t index,
                                             uint64_t revision) const {
  // Rules sample the vocabulary of the document's revision-0 body so that
  // successive policy revisions stay comparable (same tag universe).
  xml::GeneratorParams gp;
  gp.profile = spec.doc.profile;
  gp.target_elements = spec.doc.elements;
  gp.seed = Mix(spec.seed, kDocSalt, index, 0);
  gp.text_avg_len = spec.doc.text_avg_len;
  gp.max_depth = spec.doc.max_depth;
  gp.text_prob = spec.doc.text_prob;
  gp.folder_depth = spec.doc.folder_depth;
  gp.fan_out = spec.doc.fan_out;
  if (spec.doc.fan_out > 0) gp.vocabulary = spec.doc.fan_out;
  xml::DomDocument doc = xml::GenerateDocument(gp);

  RuleGenParams rp = MapRuleShape(spec.rules);
  Rng rng(Mix(spec.seed, kRuleSalt, index, revision));

  std::string text = spec.rules.base_rules_text;
  if (!text.empty() && text.back() != '\n') text.push_back('\n');

  // Stable core: same subjects every revision, fresh rule bodies — a
  // policy *update*, not a revocation.
  for (size_t k = 0; k < StableSubjectCount(spec); ++k) {
    text += GenerateRules(doc, "s" + std::to_string(k), rp, &rng).ToText();
  }

  // Mobile subscribers: a window of M subjects out of a universe of 3M,
  // sliding by one each revision — each revision churns one subscriber
  // out and one in, the dissemination-list mobility of the e-health
  // scenario. Mobile subjects are never query-safe.
  size_t mobile = MobileSubjectCount(spec);
  if (mobile > 0) {
    size_t universe = 3 * mobile;
    for (size_t j = 0; j < mobile; ++j) {
      size_t id = (revision + j) % universe;
      text += GenerateRules(doc, "m" + std::to_string(id), rp, &rng).ToText();
    }
  }
  return text;
}

std::string GeneratedScenario::Fingerprint() const {
  std::string out = "scenario " + spec.name + "\n";
  for (const auto& [label, query] : queries) {
    out += "query " + label + " " + query + "\n";
  }
  for (const ScenarioDoc& d : docs) {
    out += "doc " + d.doc_id + "\n";
    out += Materialize(d).Serialize();
    out += "\nrules.r0\n" + d.rules_text;
    out += "rules.r1\n" + RulesRevision(d.index, 1);
    out += "subjects";
    for (const std::string& s : d.subjects) out += " " + s;
    out.push_back('\n');
  }
  return out;
}

GeneratedScenario BuildScenario(const ScenarioSpec& spec) {
  GeneratedScenario g;
  g.spec = spec;
  g.description = "generated scenario '" + spec.name + "': " +
                  std::to_string(spec.documents) + " " +
                  xml::DocProfileName(spec.doc.profile) + " documents of ~" +
                  std::to_string(spec.doc.elements) + " elements";

  g.queries = spec.queries.base_queries;
  if (spec.queries.generated > 0) {
    // Generated queries sample document 0's vocabulary; the fleet shares
    // one profile, so they are representative fleet-wide.
    ScenarioDoc probe;
    probe.doc_params.profile = spec.doc.profile;
    probe.doc_params.target_elements = spec.doc.elements;
    probe.doc_params.seed = Mix(spec.seed, kDocSalt, 0, 0);
    probe.doc_params.text_avg_len = spec.doc.text_avg_len;
    probe.doc_params.max_depth = spec.doc.max_depth;
    probe.doc_params.text_prob = spec.doc.text_prob;
    probe.doc_params.folder_depth = spec.doc.folder_depth;
    probe.doc_params.fan_out = spec.doc.fan_out;
    if (spec.doc.fan_out > 0) probe.doc_params.vocabulary = spec.doc.fan_out;
    xml::DomDocument doc0 = xml::GenerateDocument(probe.doc_params);
    std::vector<std::string> tags = CollectTags(doc0);
    std::vector<std::string> values = CollectValues(doc0);
    PathGenParams qp;
    qp.predicate_prob = spec.queries.predicate_prob;
    qp.descendant_prob = spec.queries.descendant_prob;
    qp.junk_tag_prob = 0.0;  // queries should usually hit the documents
    Rng rng(Mix(spec.seed, kQuerySalt, 0, 0));
    for (size_t q = 0; q < spec.queries.generated; ++q) {
      g.queries.emplace_back("gen" + std::to_string(q),
                             GeneratePathText(tags, values, qp, &rng));
    }
  }

  g.docs.reserve(spec.documents);
  for (size_t i = 0; i < spec.documents; ++i) {
    g.docs.push_back(g.MakeDoc(i));
  }
  return g;
}

ScenarioSpec IoTFleetSpec() {
  ScenarioSpec s;
  s.name = "iot-fleet";
  s.documents = 1024;
  s.doc.profile = xml::DocProfile::kIoT;
  s.doc.elements = 24;
  s.doc.text_avg_len = 12;
  s.rules.subjects = 2;
  s.rules.rules_per_subject = 2;
  s.rules.max_steps = 3;
  s.rules.predicate_prob = 0.15;
  s.rules.base_rules_text =
      "# owner: the whole device announcement\n"
      "+ owner /device\n"
      "# operator: presence, capabilities and telemetry, never location\n"
      "+ operator //status\n"
      "+ operator //capabilities\n"
      "+ operator //telemetry\n"
      "- operator //location\n"
      "# auditor: firmware lineage only, no personal owner data\n"
      "+ auditor //firmware\n"
      "- auditor //owner\n";
  s.queries.base_queries = {
      {"presence", "//status"},
      {"caps", "//capability"},
      {"firmware", "//firmware/build"},
  };
  s.queries.generated = 2;
  s.churn.update_fraction = 0.10;
  s.churn.publish_fraction = 0.15;
  s.churn.subject_churn = 0.5;
  s.seed = 20250;
  return s;
}

ScenarioSpec EHealthMobilitySpec() {
  ScenarioSpec s;
  s.name = "ehealth-mobility";
  s.documents = 12;
  s.doc.profile = xml::DocProfile::kHospital;
  s.doc.elements = 320;
  s.doc.folder_depth = 4;
  s.rules.subjects = 5;
  s.rules.rules_per_subject = 4;
  s.rules.predicate_prob = 0.35;
  s.rules.base_rules_text =
      "# doctor: whole patient folder except billing\n"
      "+ doctor //patient\n"
      "- doctor //admin/billing\n"
      "# nurse: current treatments and visit history\n"
      "+ nurse //treatments\n"
      "+ nurse //visits\n"
      "- nurse //admin\n"
      "# emergency: acute cases wherever the patient shows up\n"
      "+ emergency //patient[medical/diagnosis/severity=\"acute\"]\n"
      "- emergency //admin\n";
  s.queries.base_queries = {
      {"treatments", "//treatment"},
      {"acute", "//patient[medical/diagnosis/severity=\"acute\"]"},
      {"episodes", "//episode/note"},
  };
  s.queries.generated = 3;
  s.churn.update_fraction = 0.30;
  s.churn.publish_fraction = 0.10;
  s.churn.subject_churn = 0.6;
  s.seed = 777;
  return s;
}

}  // namespace csxa::scengen
