#include "dsp/sharded.h"

#include "common/logging.h"

namespace csxa::dsp {

ShardedService::ShardedService(std::vector<Service*> shards)
    : shards_(std::move(shards)),
      shard_requests_(new std::atomic<uint64_t>[shards_.size()]) {
  CSXA_CHECK(!shards_.empty());
  for (size_t i = 0; i < shards_.size(); ++i) shard_requests_[i] = 0;
}

size_t ShardedService::ShardFor(const std::string& doc_id) const {
  // FNV-1a: stable across runs (routing must not depend on process state).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : doc_id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards_.size());
}

std::vector<uint64_t> ShardedService::shard_requests() const {
  std::vector<uint64_t> out(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    out[i] = shard_requests_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Result<Response> ShardedService::Execute(Request request) {
  size_t home = ShardFor(request.doc_id);
  auto count = [this](size_t shard) {
    shard_requests_[shard].fetch_add(1, std::memory_order_relaxed);
  };

  // A heartbeat probes the whole fleet: one unreachable shard makes the
  // endpoint unhealthy (a replica is only in-sync if every shard is).
  if (request.op == Op::kPing) {
    Response last;
    for (size_t i = 0; i < shards_.size(); ++i) {
      count(i);
      Result<Response> probe = shards_[i]->Execute(request);
      if (!probe.ok()) return probe;
      last = std::move(probe).value();
    }
    return last;
  }

  // Publishing lands on the home shard — and must then clear any copy a
  // non-home shard still holds from an older layout, or reads could fail
  // over to the superseded container. The home publish goes FIRST: if the
  // backend rejects it, existing copies stay untouched.
  if (request.op == Op::kPublish) {
    Request clear;
    clear.op = Op::kRemove;
    clear.doc_id = request.doc_id;
    count(home);
    Result<Response> published = shards_[home]->Execute(std::move(request));
    if (!published.ok()) return published;
    // Version 1 means the home shard had never seen this id (no live copy,
    // no tombstone): if the sweep still finds a copy elsewhere, the
    // document resided purely off-home under an older layout.
    const bool home_missed = published.value().rules_version <= 1;
    bool cleared_elsewhere = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (i == home) continue;
      count(i);
      Result<Response> cleared = shards_[i]->Execute(clear);
      if (cleared.ok()) {
        cleared_elsewhere = true;
      } else if (cleared.status().code() != StatusCode::kNotFound) {
        return cleared;
      }
    }
    if (cleared_elsewhere && home_missed) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    return published;
  }

  // Removal sweeps every shard: a delete must not leave a resurrectable
  // copy behind a failover.
  if (request.op == Op::kRemove) {
    bool home_held = false;
    bool non_home_held = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
      count(i);
      Result<Response> probe = shards_[i]->Execute(request);
      if (probe.ok()) {
        (i == home ? home_held : non_home_held) = true;
      } else if (probe.status().code() != StatusCode::kNotFound) {
        return probe;
      }
    }
    if (!home_held && !non_home_held) {
      return Status::NotFound("document " + request.doc_id);
    }
    // Old-layout residency evidence only when the home shard missed; a
    // home hit means routing worked and the sweep was pure hygiene.
    if (non_home_held && !home_held) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    return Response{};
  }

  // Reads and in-place writes: home first, then fail over to the shards
  // that might still hold a document placed under an older layout.
  count(home);
  Result<Response> result = shards_[home]->Execute(request);
  if (result.ok() || result.status().code() != StatusCode::kNotFound) {
    return result;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == home) continue;
    count(i);
    Result<Response> probe = shards_[i]->Execute(request);
    if (probe.ok()) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      return probe;
    }
    if (probe.status().code() != StatusCode::kNotFound) return probe;
  }
  return result;  // the home shard's NotFound
}

ServiceStats ShardedService::stats() const {
  ServiceStats total;
  for (const Service* shard : shards_) total += shard->stats();
  return total;
}

}  // namespace csxa::dsp
