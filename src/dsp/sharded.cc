#include "dsp/sharded.h"

#include "common/logging.h"

namespace csxa::dsp {

ShardedService::ShardedService(std::vector<Service*> shards)
    : shards_(std::move(shards)), shard_requests_(shards_.size(), 0) {
  CSXA_CHECK(!shards_.empty());
}

size_t ShardedService::ShardFor(const std::string& doc_id) const {
  // FNV-1a: stable across runs (routing must not depend on process state).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : doc_id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards_.size());
}

Result<Response> ShardedService::Execute(Request request) {
  size_t home = ShardFor(request.doc_id);

  // Publishing lands on the home shard — and must then clear any copy a
  // non-home shard still holds from an older layout, or reads could fail
  // over to the superseded container. The home publish goes FIRST: if the
  // backend rejects it, existing copies stay untouched.
  if (request.op == Op::kPublish) {
    Request clear;
    clear.op = Op::kRemove;
    clear.doc_id = request.doc_id;
    ++shard_requests_[home];
    Result<Response> published = shards_[home]->Execute(std::move(request));
    if (!published.ok()) return published;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (i == home) continue;
      ++shard_requests_[i];
      Result<Response> cleared = shards_[i]->Execute(clear);
      if (!cleared.ok() &&
          cleared.status().code() != StatusCode::kNotFound) {
        return cleared;
      }
    }
    return published;
  }

  // Removal sweeps every shard: a delete must not leave a resurrectable
  // copy behind a failover.
  if (request.op == Op::kRemove) {
    bool removed = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ++shard_requests_[i];
      Result<Response> probe = shards_[i]->Execute(request);
      if (probe.ok()) {
        if (i != home) ++failovers_;
        removed = true;
      } else if (probe.status().code() != StatusCode::kNotFound) {
        return probe;
      }
    }
    if (!removed) return Status::NotFound("document " + request.doc_id);
    return Response{};
  }

  // Reads and in-place writes: home first, then fail over to the shards
  // that might still hold a document placed under an older layout.
  ++shard_requests_[home];
  Result<Response> result = shards_[home]->Execute(request);
  if (result.ok() || result.status().code() != StatusCode::kNotFound) {
    return result;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == home) continue;
    ++shard_requests_[i];
    Result<Response> probe = shards_[i]->Execute(request);
    if (probe.ok()) {
      ++failovers_;
      return probe;
    }
    if (probe.status().code() != StatusCode::kNotFound) return probe;
  }
  return result;  // the home shard's NotFound
}

ServiceStats ShardedService::stats() const {
  ServiceStats total;
  for (const Service* shard : shards_) total += shard->stats();
  return total;
}

}  // namespace csxa::dsp
