#include "dsp/blockfile.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace csxa::dsp {

// ---------------------------------------------------------------------------
// PosixEnv

namespace {

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<Bytes> ReadAt(uint64_t offset, size_t n) const override {
    Bytes out(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out.data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    out.resize(got);
    return out;
  }

  Status Append(Span data) override {
    size_t put = 0;
    while (put < data.size()) {
      ssize_t r = ::write(fd_, data.data() + put, data.size() - put);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("write: ") + std::strerror(errno));
      }
      put += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Span data) override {
    size_t put = 0;
    while (put < data.size()) {
      ssize_t r = ::pwrite(fd_, data.data() + put, data.size() - put,
                           static_cast<off_t>(offset + put));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
      }
      put += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(std::string("ftruncate: ") +
                             std::strerror(errno));
    }
    // The write cursor used by Append must not be left past the new end.
    if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
      return Status::IoError(std::string("lseek: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError(std::string("fstat: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<File>> PosixEnv::Open(const std::string& path,
                                             bool create) {
  int flags = O_RDWR | O_APPEND;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<File>(new PosixFile(fd));
}

bool PosixEnv::Exists(const std::string& path) const {
  return ::access(path.c_str(), F_OK) == 0;
}

Status PosixEnv::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return Status::IoError("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& path) {
  int fd = ::open(path.empty() ? "." : path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + path + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync dir " + path + ": " + std::strerror(saved));
  }
  return Status::OK();
}

Result<Bytes> PosixEnv::RandomBytes(size_t n) {
  Bytes out(n);
  size_t got = 0;
  while (got < n) {
    size_t chunk = std::min<size_t>(n - got, 256);  // getentropy's limit
    if (::getentropy(out.data() + got, chunk) == 0) {
      got += chunk;
      continue;
    }
    // Fall back to /dev/urandom (e.g. older kernels without the syscall).
    int fd = ::open("/dev/urandom", O_RDONLY);
    if (fd < 0) {
      return Status::IoError(std::string("no entropy source: ") +
                             std::strerror(errno));
    }
    while (got < n) {
      ssize_t r = ::read(fd, out.data() + got, n - got);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        ::close(fd);
        return Status::IoError("read /dev/urandom failed");
      }
      got += static_cast<size_t>(r);
    }
    ::close(fd);
  }
  return out;
}

Status PosixEnv::CreateDir(const std::string& path) {
  // mkdir -p: create each prefix component, tolerating existing ones.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      std::string prefix = path.substr(0, i);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IoError("mkdir " + prefix + ": " +
                               std::strerror(errno));
      }
    }
  }
  return Status::OK();
}

PosixEnv* PosixEnv::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked
  return env;
}

// ---------------------------------------------------------------------------
// MemEnv

class MemFile : public File {
 public:
  MemFile(MemEnv* env, std::shared_ptr<Bytes> bytes)
      : env_(env), bytes_(std::move(bytes)) {}

  Result<Bytes> ReadAt(uint64_t offset, size_t n) const override;
  Status Append(Span data) override;
  Status WriteAt(uint64_t offset, Span data) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override { return Status::OK(); }
  Result<uint64_t> Size() const override;

 private:
  MemEnv* env_;
  std::shared_ptr<Bytes> bytes_;
};

Result<Bytes> MemFile::ReadAt(uint64_t offset, size_t n) const {
  std::lock_guard<std::mutex> lock(env_->mu_);
  if (offset >= bytes_->size()) return Bytes{};
  size_t avail = bytes_->size() - static_cast<size_t>(offset);
  size_t take = std::min(n, avail);
  return Bytes(bytes_->begin() + static_cast<size_t>(offset),
               bytes_->begin() + static_cast<size_t>(offset) + take);
}

Status MemFile::Append(Span data) {
  std::lock_guard<std::mutex> lock(env_->mu_);
  bytes_->insert(bytes_->end(), data.data(), data.data() + data.size());
  return Status::OK();
}

Status MemFile::WriteAt(uint64_t offset, Span data) {
  std::lock_guard<std::mutex> lock(env_->mu_);
  if (offset + data.size() > bytes_->size()) {
    bytes_->resize(static_cast<size_t>(offset) + data.size(), 0);
  }
  std::memcpy(bytes_->data() + static_cast<size_t>(offset), data.data(),
              data.size());
  return Status::OK();
}

Status MemFile::Truncate(uint64_t size) {
  std::lock_guard<std::mutex> lock(env_->mu_);
  if (size < bytes_->size()) bytes_->resize(static_cast<size_t>(size));
  return Status::OK();
}

Result<uint64_t> MemFile::Size() const {
  std::lock_guard<std::mutex> lock(env_->mu_);
  return static_cast<uint64_t>(bytes_->size());
}

Result<std::unique_ptr<File>> MemEnv::Open(const std::string& path,
                                           bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) return Status::IoError("mem file not found: " + path);
    it = files_.emplace(path, std::make_shared<Bytes>()).first;
  }
  return std::unique_ptr<File>(new MemFile(this, it->second));
}

bool MemEnv::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemEnv::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::IoError("mem file not found: " + path);
  }
  return Status::OK();
}

Result<Bytes> MemEnv::RandomBytes(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes out(n);
  for (uint8_t& b : out) b = static_cast<uint8_t>(entropy_.Next());
  return out;
}

Result<Bytes> MemEnv::Snapshot(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("mem file not found: " + path);
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// FaultyEnv

class FaultyFile : public File {
 public:
  FaultyFile(FaultyEnv* env, std::unique_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Result<Bytes> ReadAt(uint64_t offset, size_t n) const override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    return base_->ReadAt(offset, n);
  }

  Status Append(Span data) override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    if (env_->MutationDies()) {
      // The torn tail of a dying append: a prefix of the payload reaches
      // the platter before the power does.
      size_t torn = std::min(env_->torn_tail(), data.size());
      if (torn > 0) base_->Append(data.subspan(0, torn));
      return Status::IoError("disk: crash during append");
    }
    return base_->Append(data);
  }

  Status WriteAt(uint64_t offset, Span data) override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    if (env_->MutationDies()) return Status::IoError("disk: crash");
    return base_->WriteAt(offset, data);
  }

  Status Truncate(uint64_t size) override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    if (env_->MutationDies()) return Status::IoError("disk: crash");
    return base_->Truncate(size);
  }

  Status Sync() override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    if (env_->MutationDies()) return Status::IoError("disk: crash");
    return base_->Sync();
  }

  Result<uint64_t> Size() const override {
    if (env_->crashed()) return Status::IoError("disk: process crashed");
    return base_->Size();
  }

 private:
  FaultyEnv* env_;
  std::unique_ptr<File> base_;
};

FaultyEnv::FaultyEnv(Env* base, DiskFaultPlan plan)
    : base_(base), plan_(std::move(plan)) {
  crash_at_ = plan_.crash_at_write_point;
  torn_tail_ = plan_.torn_tail_bytes;
}

Result<std::unique_ptr<File>> FaultyEnv::Open(const std::string& path,
                                              bool create) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::IoError("disk: process crashed");
  }
  CSXA_ASSIGN_OR_RETURN(std::unique_ptr<File> file, base_->Open(path, create));
  // Scripted at-rest corruption lands when the file is next opened: the
  // damage happened "while the process was away".
  std::vector<DiskFaultPlan::BitFlip> flips;
  std::vector<DiskFaultPlan::TruncateAt> cuts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = plan_.bit_flips.begin(); it != plan_.bit_flips.end();) {
      if (path.find(it->path_substring) != std::string::npos) {
        flips.push_back(*it);
        it = plan_.bit_flips.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = plan_.truncates.begin(); it != plan_.truncates.end();) {
      if (path.find(it->path_substring) != std::string::npos) {
        cuts.push_back(*it);
        it = plan_.truncates.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& flip : flips) {
    CSXA_ASSIGN_OR_RETURN(Bytes byte, file->ReadAt(flip.offset, 1));
    if (byte.size() == 1) {
      byte[0] ^= flip.mask;
      CSXA_RETURN_IF_ERROR(file->WriteAt(flip.offset, byte));
    }
  }
  for (const auto& cut : cuts) {
    CSXA_RETURN_IF_ERROR(file->Truncate(cut.size));
  }
  return std::unique_ptr<File>(new FaultyFile(this, std::move(file)));
}

bool FaultyEnv::Exists(const std::string& path) const {
  return base_->Exists(path);
}

Status FaultyEnv::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::IoError("disk: process crashed");
  }
  if (MutationDies()) return Status::IoError("disk: crash");
  return base_->Remove(path);
}

Status FaultyEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultyEnv::SyncDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::IoError("disk: process crashed");
  }
  if (MutationDies()) return Status::IoError("disk: crash");
  return base_->SyncDir(path);
}

Result<Bytes> FaultyEnv::RandomBytes(size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::IoError("disk: process crashed");
  }
  return base_->RandomBytes(n);
}

void FaultyEnv::ArmCrash(uint64_t after, size_t torn_tail_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = writes_ + after;
  torn_tail_ = torn_tail_bytes;
  dead_ = false;
}

void FaultyEnv::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = false;
  crash_at_ = UINT64_MAX;
  torn_tail_ = 0;
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t FaultyEnv::write_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

bool FaultyEnv::MutationDies() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = writes_++;
  if (index >= crash_at_) {
    dead_ = true;
    return true;
  }
  return false;
}

size_t FaultyEnv::torn_tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_tail_;
}

// ---------------------------------------------------------------------------
// BlockLog

Result<BlockLog> BlockLog::Open(Env* env, std::string dir,
                                crypto::SymmetricKey key,
                                std::string store_id, size_t segment_bytes,
                                uint64_t* torn_tail_bytes) {
  BlockLog log;
  log.env_ = env;
  log.dir_ = std::move(dir);
  log.key_ = key;
  log.store_id_ = std::move(store_id);
  log.blocks_per_segment_ =
      std::max<uint64_t>(1, segment_bytes / crypto::kSealedBlockSize);
  if (torn_tail_bytes != nullptr) *torn_tail_bytes = 0;

  // Discover existing segments: seq 0, 1, 2, ... until a gap.
  uint64_t seq = 0;
  while (env->Exists(log.SegmentPath(seq))) ++seq;
  if (seq > 0) {
    uint64_t last = seq - 1;
    CSXA_ASSIGN_OR_RETURN(File * file, log.SegmentFor(last *
                                                      log.blocks_per_segment_,
                                                      /*create=*/false));
    CSXA_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    uint64_t torn = size % crypto::kSealedBlockSize;
    if (torn != 0) {
      // A torn final write: the partial block never committed anywhere.
      CSXA_RETURN_IF_ERROR(file->Truncate(size - torn));
      if (torn_tail_bytes != nullptr) *torn_tail_bytes = torn;
      size -= torn;
    }
    log.block_count_ = last * log.blocks_per_segment_ +
                       size / crypto::kSealedBlockSize;
  }
  return log;
}

std::string BlockLog::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "data-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Result<File*> BlockLog::SegmentFor(uint64_t index, bool create) const {
  uint64_t seq = index / blocks_per_segment_;
  auto it = segments_.find(seq);
  if (it == segments_.end()) {
    const std::string path = SegmentPath(seq);
    const bool fresh = create && !env_->Exists(path);
    auto opened = env_->Open(path, create);
    if (!opened.ok()) return opened.status();
    if (fresh) {
      // The directory entry must be durable before any manifest record can
      // name blocks in this segment — fsyncing the file alone does not
      // persist its dirent on a real filesystem.
      Status synced = env_->SyncDir(dir_);
      if (!synced.ok()) return synced;
    }
    it = segments_.emplace(seq, std::move(opened).value()).first;
  }
  return it->second.get();
}

Result<uint64_t> BlockLog::AppendBlock(Span payload,
                                       crypto::NonceSequence* nonces) {
  if (poisoned_) {
    return Status::IoError(
        "block log poisoned: an earlier failed append could not be "
        "realigned");
  }
  uint64_t index = block_count_;
  CSXA_ASSIGN_OR_RETURN(File * file, SegmentFor(index, /*create=*/true));
  Bytes sealed = crypto::SealBlock(key_, store_id_, index, payload, nonces);
  Status appended = file->Append(sealed);
  if (!appended.ok()) {
    // A partial append (e.g. ENOSPC midway) leaves a misaligned tail that
    // would shift every later block off its frame boundary; cut back to
    // the last whole block, or refuse to continue at all.
    uint64_t keep = (index % blocks_per_segment_) * crypto::kSealedBlockSize;
    if (!file->Truncate(keep).ok()) poisoned_ = true;
    return appended;
  }
  ++block_count_;
  uint64_t seq = index / blocks_per_segment_;
  if (dirty_.empty() || dirty_.back() != seq) dirty_.push_back(seq);
  return index;
}

Result<Bytes> BlockLog::ReadBlock(uint64_t index) const {
  if (index >= block_count_) {
    return Status::IntegrityError("block " + std::to_string(index) +
                                  " out of range (truncated store?)");
  }
  CSXA_ASSIGN_OR_RETURN(File * file, SegmentFor(index, /*create=*/false));
  uint64_t offset =
      (index % blocks_per_segment_) * crypto::kSealedBlockSize;
  CSXA_ASSIGN_OR_RETURN(Bytes sealed,
                        file->ReadAt(offset, crypto::kSealedBlockSize));
  return crypto::OpenBlock(key_, store_id_, index, sealed);
}

Status BlockLog::Sync() {
  for (uint64_t seq : dirty_) {
    CSXA_ASSIGN_OR_RETURN(
        File * file,
        SegmentFor(seq * blocks_per_segment_, /*create=*/false));
    CSXA_RETURN_IF_ERROR(file->Sync());
  }
  dirty_.clear();
  return Status::OK();
}

Status BlockLog::TruncateBlocks(uint64_t count) {
  if (count >= block_count_) return Status::OK();
  uint64_t keep_segments = (count + blocks_per_segment_ - 1) /
                           blocks_per_segment_;
  uint64_t have_segments = (block_count_ + blocks_per_segment_ - 1) /
                           blocks_per_segment_;
  // Delete whole segments past the keep point.
  bool removed_any = false;
  for (uint64_t seq = keep_segments == 0 ? (count > 0 ? keep_segments : 0)
                                         : keep_segments;
       seq < have_segments; ++seq) {
    segments_.erase(seq);
    if (env_->Exists(SegmentPath(seq))) {
      CSXA_RETURN_IF_ERROR(env_->Remove(SegmentPath(seq)));
      removed_any = true;
    }
  }
  if (removed_any) CSXA_RETURN_IF_ERROR(env_->SyncDir(dir_));
  // Trim the now-last segment to the surviving block count.
  if (count > 0) {
    uint64_t last_seq = (count - 1) / blocks_per_segment_;
    uint64_t keep_in_last = count - last_seq * blocks_per_segment_;
    CSXA_ASSIGN_OR_RETURN(
        File * file,
        SegmentFor(last_seq * blocks_per_segment_, /*create=*/false));
    CSXA_RETURN_IF_ERROR(
        file->Truncate(keep_in_last * crypto::kSealedBlockSize));
  }
  block_count_ = count;
  dirty_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ManifestLog

Result<ManifestLog> ManifestLog::Open(Env* env, std::string path,
                                      crypto::SymmetricKey key,
                                      std::string store_id,
                                      ManifestScan* scan) {
  ManifestLog log;
  log.env_ = env;
  log.path_ = std::move(path);
  log.key_ = key;
  log.store_id_ = std::move(store_id) + "#manifest";
  const bool fresh = !env->Exists(log.path_);
  CSXA_ASSIGN_OR_RETURN(log.file_, env->Open(log.path_, /*create=*/true));
  if (fresh) {
    // Make the MANIFEST dirent itself durable before the store commits
    // anything through it.
    size_t slash = log.path_.rfind('/');
    CSXA_RETURN_IF_ERROR(env->SyncDir(
        slash == std::string::npos ? std::string(".")
                                   : log.path_.substr(0, slash)));
  }

  ManifestScan out;
  CSXA_ASSIGN_OR_RETURN(uint64_t size, log.file_->Size());
  const uint64_t frames = size / kManifestRecordSize;
  const uint64_t partial = size % kManifestRecordSize;

  // Open every full frame; find the end of the valid prefix.
  std::vector<Bytes> payloads;
  uint64_t valid_prefix = 0;
  bool prefix_broken = false;
  for (uint64_t i = 0; i < frames; ++i) {
    CSXA_ASSIGN_OR_RETURN(
        Bytes frame,
        log.file_->ReadAt(i * kManifestRecordSize, kManifestRecordSize));
    auto opened = crypto::OpenBlock(log.key_, log.store_id_, i, frame,
                                    kManifestRecordSize);
    if (opened.ok() && !prefix_broken) {
      payloads.push_back(std::move(opened).value());
      valid_prefix = i + 1;
    } else if (opened.ok() && prefix_broken) {
      // A valid record AFTER an invalid one: no crash produces a hole in
      // an append-fsync log — this is tampering with the history.
      return Status::IntegrityError(
          "manifest record " + std::to_string(valid_prefix) +
          " invalid but record " + std::to_string(i) +
          " verifies: interior manifest tampering");
    } else {
      prefix_broken = true;
    }
  }
  const uint64_t invalid_frames = frames - valid_prefix;
  if (invalid_frames > 1) {
    // One torn frame is what a single interrupted append leaves; several
    // unreadable frames in a row cannot be a crash artifact.
    return Status::IntegrityError(
        std::to_string(invalid_frames) +
        " trailing manifest records fail authentication: tampering");
  }
  out.torn_tail_records = invalid_frames;
  out.torn_tail_bytes = invalid_frames * kManifestRecordSize + partial;
  if (out.torn_tail_bytes > 0) {
    CSXA_RETURN_IF_ERROR(
        log.file_->Truncate(valid_prefix * kManifestRecordSize));
  }
  out.records = std::move(payloads);
  log.next_seq_ = valid_prefix;
  if (scan != nullptr) *scan = std::move(out);
  return log;
}

Status ManifestLog::Append(Span payload, crypto::NonceSequence* nonces) {
  CSXA_CHECK(payload.size() <= kManifestPayloadCapacity);
  if (poisoned_) {
    return Status::IoError(
        "manifest log poisoned: an earlier failed append could not be "
        "realigned");
  }
  Bytes sealed = crypto::SealBlock(key_, store_id_, next_seq_, payload,
                                   nonces, kManifestRecordSize);
  Status result = file_->Append(sealed);
  if (result.ok()) result = file_->Sync();
  if (!result.ok()) {
    // The record did not commit. A partial append (or a full one that
    // never reached the platter) must not stay under the write cursor, or
    // every later record lands misaligned and fails authentication while
    // the in-process store believes it is healthy.
    if (!file_->Truncate(next_seq_ * kManifestRecordSize).ok()) {
      poisoned_ = true;
    }
    return result;
  }
  ++next_seq_;
  return Status::OK();
}

}  // namespace csxa::dsp
