#include "dsp/async.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace csxa::dsp {

AsyncDispatcher::AsyncDispatcher(Service* backend)
    : AsyncDispatcher(backend, Options()) {}

AsyncDispatcher::AsyncDispatcher(Service* backend, Options options)
    : backend_(backend), options_(options) {
  CSXA_CHECK(backend_ != nullptr);
  if (options_.workers == 0) options_.workers = 1;
  queues_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    queues_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

AsyncDispatcher::~AsyncDispatcher() {
  stopping_.store(true, std::memory_order_release);
  for (auto& lane : queues_) {
    // Acquire the lane lock so a worker blocked between its empty-check
    // and its wait cannot miss the wake-up.
    std::lock_guard lock(lane->mu);
    lane->cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

size_t AsyncDispatcher::LaneFor(const std::string& doc_id) const {
  // Same stable FNV-1a as ShardedService::ShardFor: one document, one
  // lane — per-document FIFO regardless of which thread submits.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : doc_id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % queues_.size());
}

std::future<Result<Response>> AsyncDispatcher::Submit(Request request) {
  Job job;
  job.request = std::move(request);
  std::future<Result<Response>> future = job.promise.get_future();
  Lane& lane = *queues_[LaneFor(job.request.doc_id)];
  {
    std::lock_guard lock(lane.mu);
    lane.jobs.push_back(std::move(job));
  }
  lane.cv.notify_one();
  return future;
}

void AsyncDispatcher::WorkerLoop(size_t lane_index) {
  Lane& lane = *queues_[lane_index];
  for (;;) {
    Job job;
    {
      std::unique_lock lock(lane.mu);
      lane.cv.wait(lock, [&] {
        return !lane.jobs.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (lane.jobs.empty()) return;  // stopping and drained
      job = std::move(lane.jobs.front());
      lane.jobs.pop_front();
    }
    Result<Response> result = backend_->Execute(std::move(job.request));
    // Charge the lane's modeled clock: fixed admission cost plus the
    // response payload at server bandwidth. Errors still cost admission.
    double seconds = options_.per_request_seconds;
    if (result.ok() && options_.server_bytes_per_second > 0) {
      seconds += static_cast<double>(result.value().wire_bytes) /
                 options_.server_bytes_per_second;
    }
    lane.busy_ns.fetch_add(static_cast<uint64_t>(std::llround(seconds * 1e9)),
                           std::memory_order_relaxed);
    lane.executed.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(result));
  }
}

std::vector<double> AsyncDispatcher::lane_busy_seconds() const {
  std::vector<double> out;
  out.reserve(queues_.size());
  for (const auto& lane : queues_) {
    out.push_back(
        static_cast<double>(lane->busy_ns.load(std::memory_order_relaxed)) /
        1e9);
  }
  return out;
}

double AsyncDispatcher::modeled_busy_seconds() const {
  double total = 0;
  for (double s : lane_busy_seconds()) total += s;
  return total;
}

double AsyncDispatcher::modeled_makespan_seconds() const {
  double max = 0;
  for (double s : lane_busy_seconds()) max = std::max(max, s);
  return max;
}

uint64_t AsyncDispatcher::executed() const {
  uint64_t n = 0;
  for (const auto& lane : queues_) {
    n += lane->executed.load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace csxa::dsp
