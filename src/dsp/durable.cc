#include "dsp/durable.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace csxa::dsp {

namespace {

// Modeled framing costs, identical to DspServer's.
constexpr uint64_t kRevalidationWireBytes = 16;
constexpr uint64_t kPingWireBytes = 8;

// Manifest record / blob types. A blob carries the same type tag as the
// record that commits it, so a remapped extent of the wrong kind is
// caught before any field is trusted.
enum RecordType : uint8_t {
  kCommit = 1,      // publish/republish: blob = container + sealed rules
  kRulesCommit = 2,  // rules update: blob = sealed rules
  kRemove = 3,      // tombstone; no blob
  kClean = 4,       // clean-shutdown marker; no blob
  kInUse = 5,       // appended at open to consume a kClean marker, so a
                    // crash after a warm open still forces the cold path
};

// Keeps every record type within one 512 B manifest frame.
constexpr size_t kMaxDocIdSize = 256;

struct RecordFields {
  uint8_t type = 0;
  std::string doc_id;
  uint64_t version = 0;
  uint64_t first_block = 0;
  uint64_t block_count = 0;
};

Result<RecordFields> ParseRecord(Span payload) {
  RecordFields rec;
  ByteReader r(payload);
  if (!r.GetU8(&rec.type)) {
    return Status::IntegrityError("manifest record: empty");
  }
  if (rec.type == kClean || rec.type == kInUse) return rec;
  bool ok = r.GetString(&rec.doc_id) && r.GetU64(&rec.version);
  if (ok && (rec.type == kCommit || rec.type == kRulesCommit)) {
    ok = r.GetU64(&rec.first_block) && r.GetU64(&rec.block_count);
  }
  if (!ok || !r.AtEnd()) {
    return Status::IntegrityError("manifest record: malformed fields");
  }
  return rec;
}

Bytes EncodeCommitRecord(uint8_t type, const std::string& doc_id,
                         uint64_t version, uint64_t first_block,
                         uint64_t block_count) {
  ByteWriter w;
  w.PutU8(type);
  w.PutString(doc_id);
  w.PutU64(version);
  if (type == kCommit || type == kRulesCommit) {
    w.PutU64(first_block);
    w.PutU64(block_count);
  }
  return w.Take();
}

// Blob layout: type tag, embedded identity, then the payloads. Identity
// and version are cross-checked against the committing manifest record so
// extents cannot be remapped between documents.
Bytes EncodeBlob(uint8_t type, const std::string& doc_id, uint64_t version,
                 Span container, Span sealed_rules) {
  ByteWriter w;
  w.PutU8(type);
  w.PutString(doc_id);
  w.PutU64(version);
  if (type == kCommit) w.PutLengthPrefixed(container);
  w.PutLengthPrefixed(sealed_rules);
  return w.Take();
}

struct BlobFields {
  Bytes container;     // kCommit only
  Bytes sealed_rules;  // kCommit and kRulesCommit
};

Result<BlobFields> ParseBlob(Span blob, uint8_t want_type,
                             const std::string& want_doc_id,
                             uint64_t want_version) {
  ByteReader r(blob);
  uint8_t type = 0;
  std::string doc_id;
  uint64_t version = 0;
  if (!r.GetU8(&type) || !r.GetString(&doc_id) || !r.GetU64(&version)) {
    return Status::IntegrityError("stored blob: truncated envelope");
  }
  if (type != want_type || doc_id != want_doc_id || version != want_version) {
    return Status::IntegrityError(
        "stored blob for '" + want_doc_id + "' v" +
        std::to_string(want_version) + " carries '" + doc_id + "' v" +
        std::to_string(version) + ": extent remapped between documents");
  }
  BlobFields out;
  Span payload;
  if (type == kCommit) {
    if (!r.GetLengthPrefixed(&payload)) {
      return Status::IntegrityError("stored blob: truncated container");
    }
    out.container = payload.ToBytes();
  }
  if (!r.GetLengthPrefixed(&payload) || !r.AtEnd()) {
    return Status::IntegrityError("stored blob: truncated sealed rules");
  }
  out.sealed_rules = payload.ToBytes();
  return out;
}

}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    DurableOptions options) {
  if (options.env == nullptr) options.env = PosixEnv::Default();
  CSXA_RETURN_IF_ERROR(options.env->CreateDir(options.directory));

  auto server = std::unique_ptr<DurableServer>(new DurableServer());
  server->store_id_ = options.store_id;
  server->key_ = options.key;

  uint64_t data_torn_bytes = 0;
  CSXA_ASSIGN_OR_RETURN(
      server->blocks_,
      BlockLog::Open(options.env, options.directory, options.key,
                     options.store_id, options.segment_bytes,
                     &data_torn_bytes));
  ManifestScan scan;
  CSXA_ASSIGN_OR_RETURN(
      server->manifest_,
      ManifestLog::Open(options.env, options.directory + "/MANIFEST",
                        options.key, options.store_id, &scan));
  // Fresh nonce epoch per open: any mutation this store retries after a
  // crash rewound its block indices seals under a different epoch, so the
  // CTR (key, nonce, index) triple can never repeat (blockseal.h).
  CSXA_ASSIGN_OR_RETURN(Bytes epoch_bytes, options.env->RandomBytes(8));
  uint64_t epoch = 0;
  for (size_t i = 0; i < 8; ++i) {
    epoch |= static_cast<uint64_t>(epoch_bytes[i]) << (8 * i);
  }
  server->nonces_ = crypto::NonceSequence(epoch);

  if (options.expected_manifest_records > scan.records.size()) {
    return Status::IntegrityError(
        "manifest rollback: publisher committed " +
        std::to_string(options.expected_manifest_records) +
        " records but only " + std::to_string(scan.records.size()) +
        " survive the scan");
  }

  // Replay the manifest into document metadata.
  RecoveryReport& report = server->recovery_;
  report.manifest_records = scan.records.size();
  report.torn_tail_records = scan.torn_tail_records;
  report.torn_tail_bytes = scan.torn_tail_bytes + data_torn_bytes;
  // A dropped FULL frame is ambiguous between a torn commit append and an
  // attacker rolling back the last committed record; surface it instead
  // of absorbing it silently into the torn-tail count.
  report.rollback_suspected = scan.torn_tail_records > 0;
  if (report.rollback_suspected) {
    CSXA_LOG(kWarning)
        << "store '" << options.store_id << "': dropped a whole trailing "
        << "manifest frame failing authentication — a torn commit, or a "
        << "one-record rollback by the volume; verify against the last "
        << "commit_seq if one was retained";
  }
  uint64_t committed_end = 0;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    CSXA_ASSIGN_OR_RETURN(RecordFields rec, ParseRecord(scan.records[i]));
    report.clean_shutdown = rec.type == kClean;
    switch (rec.type) {
      case kCommit: {
        Doc doc;
        doc.rules_version = rec.version;
        doc.commit_version = rec.version;
        doc.first_block = rec.first_block;
        doc.block_count = rec.block_count;
        server->docs_[rec.doc_id] = std::move(doc);
        break;
      }
      case kRulesCommit: {
        auto it = server->docs_.find(rec.doc_id);
        if (it == server->docs_.end()) {
          return Status::IntegrityError(
              "manifest: rules update for unknown document '" + rec.doc_id +
              "'");
        }
        it->second.rules_version = rec.version;
        it->second.rules_first = rec.first_block;
        it->second.rules_count = rec.block_count;
        break;
      }
      case kRemove:
        server->retired_versions_[rec.doc_id] = rec.version;
        server->docs_.erase(rec.doc_id);
        break;
      case kClean:
      case kInUse:
        break;
      default:
        return Status::IntegrityError("manifest: unknown record type " +
                                      std::to_string(rec.type));
    }
    committed_end = std::max(committed_end, rec.first_block + rec.block_count);
  }
  report.documents = server->docs_.size();

  // GC: blocks past the last committed extent were appended by a mutation
  // whose commit record never made it — the op never happened.
  if (server->blocks_.block_count() > committed_end) {
    report.orphaned_blocks_gced =
        server->blocks_.block_count() - committed_end;
    CSXA_RETURN_IF_ERROR(server->blocks_.TruncateBlocks(committed_end));
  }

  if (report.clean_shutdown) {
    // Consume the marker: from here the store is in use, and a crash
    // before the next Close() must force the cold path.
    CSXA_RETURN_IF_ERROR(server->manifest_.Append(
        EncodeCommitRecord(kInUse, std::string(), 0, 0, 0),
        &server->nonces_));
  } else {
    // Cold open: the previous run ended in a crash (or this is a fresh
    // store) — authenticate every live document now so damage surfaces at
    // open, not at first read.
    for (auto& [doc_id, doc] : server->docs_) {
      report.blocks_verified += doc.block_count + doc.rules_count;
      Status loaded = server->LoadDoc(doc_id, &doc);
      if (!loaded.ok()) {
        report.quarantined.push_back(doc_id);
        server->quarantine_.emplace(doc_id, std::move(loaded));
      }
    }
  }
  return server;
}

Result<std::pair<uint64_t, uint64_t>> DurableServer::WriteExtent(Span blob) {
  const uint64_t first = blocks_.block_count();
  uint64_t count = 0;
  for (size_t off = 0; off == 0 || off < blob.size();
       off += crypto::kBlockPayloadCapacity) {
    size_t n = std::min(crypto::kBlockPayloadCapacity, blob.size() - off);
    CSXA_RETURN_IF_ERROR(
        blocks_.AppendBlock(blob.subspan(off, n), &nonces_).status());
    ++count;
  }
  // Data durable before the manifest may name it (commit protocol step 2).
  CSXA_RETURN_IF_ERROR(blocks_.Sync());
  return std::make_pair(first, count);
}

Result<Bytes> DurableServer::ReadExtent(uint64_t first,
                                        uint64_t count) const {
  Bytes blob;
  for (uint64_t i = 0; i < count; ++i) {
    CSXA_ASSIGN_OR_RETURN(Bytes part, blocks_.ReadBlock(first + i));
    blob.insert(blob.end(), part.begin(), part.end());
  }
  return blob;
}

Status DurableServer::LoadDoc(const std::string& doc_id, Doc* doc) {
  CSXA_ASSIGN_OR_RETURN(Bytes blob,
                        ReadExtent(doc->first_block, doc->block_count));
  CSXA_ASSIGN_OR_RETURN(
      BlobFields fields,
      ParseBlob(blob, kCommit, doc_id, doc->commit_version));
  auto container_bytes = std::make_unique<Bytes>(std::move(fields.container));
  CSXA_ASSIGN_OR_RETURN(crypto::SecureContainer container,
                        crypto::SecureContainer::Parse(*container_bytes));
  Bytes sealed_rules = std::move(fields.sealed_rules);
  if (doc->rules_count > 0) {
    CSXA_ASSIGN_OR_RETURN(Bytes rules_blob,
                          ReadExtent(doc->rules_first, doc->rules_count));
    CSXA_ASSIGN_OR_RETURN(
        BlobFields rules,
        ParseBlob(rules_blob, kRulesCommit, doc_id, doc->rules_version));
    sealed_rules = std::move(rules.sealed_rules);
  }
  doc->container_bytes = std::move(container_bytes);
  doc->container = std::move(container);
  doc->sealed_rules = std::move(sealed_rules);
  doc->loaded = true;
  return Status::OK();
}

Result<Response> DurableServer::ServeRead(const Request& request,
                                          const Doc& doc) const {
  switch (request.op) {
    case Op::kOpenDocument: {
      Response resp;
      resp.rules_version = doc.rules_version;
      if (request.known_rules_version != 0 &&
          request.known_rules_version == doc.rules_version) {
        resp.not_modified = true;
        resp.wire_bytes = kRevalidationWireBytes;
        not_modified_.fetch_add(1, std::memory_order_relaxed);
        return resp;
      }
      const Bytes& raw = *doc.container_bytes;
      if (raw.size() < crypto::ContainerHeader::kWireSize) {
        return Status::Internal("stored container shorter than a header");
      }
      resp.header.assign(raw.begin(),
                         raw.begin() + crypto::ContainerHeader::kWireSize);
      resp.sealed_rules = doc.sealed_rules;
      resp.wire_bytes = resp.header.size() + resp.sealed_rules.size() + 8;
      return resp;
    }
    case Op::kGetChunks: {
      Response resp;
      resp.rules_version = doc.rules_version;
      for (const ChunkSpan& span : request.spans) {
        for (uint32_t i = 0; i < span.count; ++i) {
          uint32_t index = span.first + i;
          soe::ChunkData chunk;
          CSXA_ASSIGN_OR_RETURN(Span cipher,
                                doc.container.ChunkCiphertext(index));
          chunk.ciphertext = cipher.ToBytes();
          CSXA_ASSIGN_OR_RETURN(chunk.auth, doc.container.GetChunkAuth(index));
          resp.wire_bytes += chunk.WireBytes(doc.container.header().integrity);
          resp.chunks.push_back(std::move(chunk));
        }
      }
      chunks_served_.fetch_add(resp.chunks.size(), std::memory_order_relaxed);
      return resp;
    }
    default: {  // kGetContainer
      Response resp;
      resp.rules_version = doc.rules_version;
      resp.container = *doc.container_bytes;
      resp.wire_bytes = resp.container.size();
      return resp;
    }
  }
}

Result<Response> DurableServer::Execute(Request request) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  Result<Response> result = [&]() -> Result<Response> {
    switch (request.op) {
      case Op::kPublish: {
        if (request.doc_id.size() > kMaxDocIdSize) {
          return Status::InvalidArgument("doc_id too long to commit");
        }
        // Parse before taking the lock: validation needs no store state.
        auto container_bytes =
            std::make_unique<Bytes>(std::move(request.container));
        CSXA_ASSIGN_OR_RETURN(
            crypto::SecureContainer container,
            crypto::SecureContainer::Parse(*container_bytes));

        std::unique_lock lock(mu_);
        // Same version monotonicity as DspServer: republish and
        // remove-then-republish must exceed every version ever served.
        uint64_t floor = 0;
        auto existing = docs_.find(request.doc_id);
        if (existing != docs_.end()) {
          floor = existing->second.rules_version;
        } else if (auto retired = retired_versions_.find(request.doc_id);
                   retired != retired_versions_.end()) {
          floor = retired->second;
        }
        uint64_t version = request.force_rules_version != 0
                               ? request.force_rules_version
                               : floor + 1;
        Bytes blob = EncodeBlob(kCommit, request.doc_id, version,
                                *container_bytes, request.sealed_rules);
        CSXA_ASSIGN_OR_RETURN(auto extent, WriteExtent(blob));
        CSXA_RETURN_IF_ERROR(manifest_.Append(
            EncodeCommitRecord(kCommit, request.doc_id, version,
                               extent.first, extent.second),
            &nonces_));
        // Committed: apply to memory. A republish heals any quarantine.
        Doc doc;
        doc.rules_version = version;
        doc.commit_version = version;
        doc.first_block = extent.first;
        doc.block_count = extent.second;
        doc.loaded = true;
        doc.container_bytes = std::move(container_bytes);
        doc.container = std::move(container);
        doc.sealed_rules = std::move(request.sealed_rules);
        docs_[request.doc_id] = std::move(doc);
        quarantine_.erase(request.doc_id);
        Response resp;
        resp.rules_version = version;
        resp.commit_seq = manifest_.next_seq();
        return resp;
      }

      case Op::kUpdateRules: {
        std::unique_lock lock(mu_);
        if (auto q = quarantine_.find(request.doc_id);
            q != quarantine_.end()) {
          return q->second;
        }
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        uint64_t version = request.force_rules_version != 0
                               ? request.force_rules_version
                               : it->second.rules_version + 1;
        Bytes blob = EncodeBlob(kRulesCommit, request.doc_id, version,
                                Span(), request.sealed_rules);
        CSXA_ASSIGN_OR_RETURN(auto extent, WriteExtent(blob));
        CSXA_RETURN_IF_ERROR(manifest_.Append(
            EncodeCommitRecord(kRulesCommit, request.doc_id, version,
                               extent.first, extent.second),
            &nonces_));
        it->second.rules_version = version;
        it->second.rules_first = extent.first;
        it->second.rules_count = extent.second;
        if (it->second.loaded) {
          it->second.sealed_rules = std::move(request.sealed_rules);
        }
        Response resp;
        resp.rules_version = version;
        resp.commit_seq = manifest_.next_seq();
        return resp;
      }

      case Op::kRemove: {
        std::unique_lock lock(mu_);
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        uint64_t version = it->second.rules_version;
        CSXA_RETURN_IF_ERROR(manifest_.Append(
            EncodeCommitRecord(kRemove, request.doc_id, version, 0, 0),
            &nonces_));
        retired_versions_[request.doc_id] = version;
        docs_.erase(it);
        // Removing a damaged document is a legitimate way to retire it.
        quarantine_.erase(request.doc_id);
        Response resp;
        resp.commit_seq = manifest_.next_seq();
        return resp;
      }

      case Op::kPing: {
        Response resp;
        resp.wire_bytes = kPingWireBytes;
        return resp;
      }

      case Op::kOpenDocument:
      case Op::kGetChunks:
      case Op::kGetContainer: {
        {
          std::shared_lock lock(mu_);
          if (auto q = quarantine_.find(request.doc_id);
              q != quarantine_.end()) {
            return q->second;
          }
          auto it = docs_.find(request.doc_id);
          if (it == docs_.end()) {
            return Status::NotFound("document " + request.doc_id);
          }
          if (it->second.loaded) return ServeRead(request, it->second);
        }
        // Warm-open lazy path: first access loads and verifies the blobs
        // under the exclusive lock (this also serializes the BlockLog).
        std::unique_lock lock(mu_);
        if (auto q = quarantine_.find(request.doc_id);
            q != quarantine_.end()) {
          return q->second;
        }
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        if (!it->second.loaded) {
          Status loaded = LoadDoc(request.doc_id, &it->second);
          if (!loaded.ok()) {
            quarantine_.emplace(request.doc_id, loaded);
            return loaded;
          }
        }
        return ServeRead(request, it->second);
      }
    }
    return Status::InvalidArgument("unknown DSP op");
  }();

  if (result.ok()) {
    bytes_served_.fetch_add(result.value().wire_bytes,
                            std::memory_order_relaxed);
  }
  return result;
}

Status DurableServer::Close() {
  std::unique_lock lock(mu_);
  if (closed_) return Status::OK();
  CSXA_RETURN_IF_ERROR(manifest_.Append(
      EncodeCommitRecord(kClean, std::string(), 0, 0, 0), &nonces_));
  closed_ = true;
  return Status::OK();
}

std::vector<std::string> DurableServer::quarantined() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [doc_id, status] : quarantine_) out.push_back(doc_id);
  return out;
}

ServiceStats DurableServer::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.chunks_served = chunks_served_.load(std::memory_order_relaxed);
  out.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  out.not_modified = not_modified_.load(std::memory_order_relaxed);
  out.documents = size();
  return out;
}

}  // namespace csxa::dsp
