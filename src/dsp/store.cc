#include "dsp/store.h"

namespace csxa::dsp {

namespace {
// Modeled fixed framing of a response that carries only status + version
// (the not-modified revalidation reply).
constexpr uint64_t kRevalidationWireBytes = 16;
}  // namespace

Result<Response> DspServer::OpenDocumentImpl(const Request& request,
                                             const Entry& entry) {
  Response resp;
  resp.rules_version = entry.rules_version;
  if (request.known_rules_version != 0 &&
      request.known_rules_version == entry.rules_version) {
    // The client's cached header + rules are still current: elide the
    // bodies. A policy update bumps the version and naturally invalidates.
    resp.not_modified = true;
    resp.wire_bytes = kRevalidationWireBytes;
    ++stats_.not_modified;
    return resp;
  }
  const Bytes& raw = *entry.container_bytes;
  if (raw.size() < crypto::ContainerHeader::kWireSize) {
    return Status::Internal("stored container shorter than a header");
  }
  resp.header.assign(raw.begin(), raw.begin() + crypto::ContainerHeader::kWireSize);
  resp.sealed_rules = entry.sealed_rules;
  resp.wire_bytes = resp.header.size() + resp.sealed_rules.size() + 8;
  return resp;
}

Result<Response> DspServer::GetChunksImpl(const Request& request,
                                          const Entry& entry) {
  Response resp;
  for (const ChunkSpan& span : request.spans) {
    for (uint32_t i = 0; i < span.count; ++i) {
      uint32_t index = span.first + i;
      soe::ChunkData chunk;
      CSXA_ASSIGN_OR_RETURN(Span cipher, entry.container.ChunkCiphertext(index));
      chunk.ciphertext = cipher.ToBytes();
      CSXA_ASSIGN_OR_RETURN(chunk.auth, entry.container.GetChunkAuth(index));
      resp.wire_bytes += chunk.WireBytes(entry.container.header().integrity);
      resp.chunks.push_back(std::move(chunk));
    }
  }
  stats_.chunks_served += resp.chunks.size();
  return resp;
}

Result<Response> DspServer::Execute(Request request) {
  ++stats_.requests;

  if (request.op == Op::kPublish) {
    Entry entry;
    entry.container_bytes =
        std::make_unique<Bytes>(std::move(request.container));
    CSXA_ASSIGN_OR_RETURN(entry.container, crypto::SecureContainer::Parse(
                                               *entry.container_bytes));
    entry.sealed_rules = std::move(request.sealed_rules);
    // Monotone even across republish and remove-then-republish: a new
    // container under a previously seen id must exceed every version ever
    // served for it, or version-keyed caches would serve the old header
    // and rules as not-modified against the new chunks.
    uint64_t floor = 0;
    auto existing = docs_.find(request.doc_id);
    if (existing != docs_.end()) {
      floor = existing->second.rules_version;
    } else if (auto retired = retired_versions_.find(request.doc_id);
               retired != retired_versions_.end()) {
      floor = retired->second;
    }
    entry.rules_version = floor + 1;
    Response resp;
    resp.rules_version = entry.rules_version;
    docs_.insert_or_assign(request.doc_id, std::move(entry));
    return resp;
  }

  auto it = docs_.find(request.doc_id);
  if (it == docs_.end()) {
    return Status::NotFound("document " + request.doc_id);
  }
  Entry& entry = it->second;

  Response resp;
  switch (request.op) {
    case Op::kOpenDocument: {
      CSXA_ASSIGN_OR_RETURN(resp, OpenDocumentImpl(request, entry));
      break;
    }
    case Op::kGetChunks: {
      CSXA_ASSIGN_OR_RETURN(resp, GetChunksImpl(request, entry));
      break;
    }
    case Op::kGetContainer: {
      resp.container = *entry.container_bytes;
      resp.wire_bytes = resp.container.size();
      break;
    }
    case Op::kUpdateRules: {
      entry.sealed_rules = std::move(request.sealed_rules);
      ++entry.rules_version;
      resp.rules_version = entry.rules_version;
      break;
    }
    case Op::kRemove: {
      // Tombstone the version so a future republish of the id stays
      // monotone for caches that still hold the deleted document.
      retired_versions_[request.doc_id] = entry.rules_version;
      docs_.erase(it);
      break;
    }
    case Op::kPublish:
      break;  // handled above
  }
  stats_.bytes_served += resp.wire_bytes;
  return resp;
}

ServiceStats DspServer::stats() const {
  ServiceStats out = stats_;
  out.documents = docs_.size();
  return out;
}

}  // namespace csxa::dsp
