#include "dsp/store.h"

#include <mutex>

namespace csxa::dsp {

namespace {
// Modeled fixed framing of a response that carries only status + version
// (the not-modified revalidation reply).
constexpr uint64_t kRevalidationWireBytes = 16;
// Modeled framing of a heartbeat probe reply (status only).
constexpr uint64_t kPingWireBytes = 8;
}  // namespace

Result<Response> DspServer::OpenDocumentImpl(const Request& request,
                                             const Entry& entry) const {
  Response resp;
  resp.rules_version = entry.rules_version;
  if (request.known_rules_version != 0 &&
      request.known_rules_version == entry.rules_version) {
    // The client's cached header + rules are still current: elide the
    // bodies. A policy update bumps the version and naturally invalidates.
    resp.not_modified = true;
    resp.wire_bytes = kRevalidationWireBytes;
    not_modified_.fetch_add(1, std::memory_order_relaxed);
    return resp;
  }
  const Bytes& raw = *entry.container_bytes;
  if (raw.size() < crypto::ContainerHeader::kWireSize) {
    return Status::Internal("stored container shorter than a header");
  }
  resp.header.assign(raw.begin(), raw.begin() + crypto::ContainerHeader::kWireSize);
  resp.sealed_rules = entry.sealed_rules;
  resp.wire_bytes = resp.header.size() + resp.sealed_rules.size() + 8;
  return resp;
}

Result<Response> DspServer::GetChunksImpl(const Request& request,
                                          const Entry& entry) const {
  Response resp;
  // Chunk replies carry the document's rules version too, so a replicated
  // read path can detect a lagging replica on ANY read, not just opens.
  resp.rules_version = entry.rules_version;
  for (const ChunkSpan& span : request.spans) {
    for (uint32_t i = 0; i < span.count; ++i) {
      uint32_t index = span.first + i;
      soe::ChunkData chunk;
      CSXA_ASSIGN_OR_RETURN(Span cipher, entry.container.ChunkCiphertext(index));
      chunk.ciphertext = cipher.ToBytes();
      CSXA_ASSIGN_OR_RETURN(chunk.auth, entry.container.GetChunkAuth(index));
      resp.wire_bytes += chunk.WireBytes(entry.container.header().integrity);
      resp.chunks.push_back(std::move(chunk));
    }
  }
  chunks_served_.fetch_add(resp.chunks.size(), std::memory_order_relaxed);
  return resp;
}

Result<Response> DspServer::Execute(Request request) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  Result<Response> result = [&]() -> Result<Response> {
    switch (request.op) {
      case Op::kPublish: {
        // Probe under the shared lock: a republish whose container bytes
        // are identical to the stored ones (rules-only republish,
        // replication catch-up replays) can skip the re-parse entirely.
        bool maybe_identical = false;
        {
          std::shared_lock lock(mu_);
          auto it = docs_.find(request.doc_id);
          maybe_identical = it != docs_.end() &&
                            *it->second.container_bytes == request.container;
        }
        Entry entry;
        if (!maybe_identical) {
          entry.container_bytes =
              std::make_unique<Bytes>(std::move(request.container));
          CSXA_ASSIGN_OR_RETURN(entry.container,
                                crypto::SecureContainer::Parse(
                                    *entry.container_bytes));
        }
        entry.sealed_rules = std::move(request.sealed_rules);
        std::unique_lock lock(mu_);
        // Monotone even across republish and remove-then-republish: a new
        // container under a previously seen id must exceed every version
        // ever served for it, or version-keyed caches would serve the old
        // header and rules as not-modified against the new chunks.
        uint64_t floor = 0;
        auto existing = docs_.find(request.doc_id);
        if (existing != docs_.end()) {
          floor = existing->second.rules_version;
        } else if (auto retired = retired_versions_.find(request.doc_id);
                   retired != retired_versions_.end()) {
          floor = retired->second;
        }
        // A replication layer stamps the primary's canonical version so
        // replicas converge on one version history; plain clients leave
        // force_rules_version 0 and get the monotone floor+1.
        entry.rules_version = request.force_rules_version != 0
                                  ? request.force_rules_version
                                  : floor + 1;
        Response resp;
        resp.rules_version = entry.rules_version;
        if (maybe_identical && existing != docs_.end() &&
            *existing->second.container_bytes == request.container) {
          // Confirmed under the exclusive lock: keep the stored container
          // and its parse, replacing only rules and version.
          publish_parse_skips_.fetch_add(1, std::memory_order_relaxed);
          existing->second.sealed_rules = std::move(entry.sealed_rules);
          existing->second.rules_version = entry.rules_version;
          return resp;
        }
        if (entry.container_bytes == nullptr) {
          // The probe matched but a racing write changed the stored bytes
          // before we got the exclusive lock: parse now.
          entry.container_bytes =
              std::make_unique<Bytes>(std::move(request.container));
          CSXA_ASSIGN_OR_RETURN(entry.container,
                                crypto::SecureContainer::Parse(
                                    *entry.container_bytes));
        }
        docs_.insert_or_assign(request.doc_id, std::move(entry));
        return resp;
      }

      case Op::kUpdateRules: {
        std::unique_lock lock(mu_);
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        it->second.sealed_rules = std::move(request.sealed_rules);
        if (request.force_rules_version != 0) {
          it->second.rules_version = request.force_rules_version;
        } else {
          ++it->second.rules_version;
        }
        Response resp;
        resp.rules_version = it->second.rules_version;
        return resp;
      }

      case Op::kRemove: {
        std::unique_lock lock(mu_);
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        // Tombstone the version so a future republish of the id stays
        // monotone for caches that still hold the deleted document.
        retired_versions_[request.doc_id] = it->second.rules_version;
        docs_.erase(it);
        return Response{};
      }

      case Op::kPing: {
        Response resp;
        resp.wire_bytes = kPingWireBytes;
        return resp;
      }

      case Op::kOpenDocument:
      case Op::kGetChunks:
      case Op::kGetContainer: {
        std::shared_lock lock(mu_);
        auto it = docs_.find(request.doc_id);
        if (it == docs_.end()) {
          return Status::NotFound("document " + request.doc_id);
        }
        const Entry& entry = it->second;
        switch (request.op) {
          case Op::kOpenDocument:
            return OpenDocumentImpl(request, entry);
          case Op::kGetChunks:
            return GetChunksImpl(request, entry);
          default: {
            Response resp;
            resp.rules_version = entry.rules_version;
            resp.container = *entry.container_bytes;
            resp.wire_bytes = resp.container.size();
            return resp;
          }
        }
      }
    }
    return Status::InvalidArgument("unknown DSP op");
  }();

  if (result.ok()) {
    bytes_served_.fetch_add(result.value().wire_bytes,
                            std::memory_order_relaxed);
  }
  return result;
}

ServiceStats DspServer::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.chunks_served = chunks_served_.load(std::memory_order_relaxed);
  out.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  out.not_modified = not_modified_.load(std::memory_order_relaxed);
  out.documents = size();
  return out;
}

}  // namespace csxa::dsp
