#include "dsp/store.h"

namespace csxa::dsp {

Status DspServer::PublishDocument(const std::string& doc_id, Bytes container,
                                  Bytes sealed_rules) {
  Entry entry;
  entry.container_bytes = std::make_unique<Bytes>(std::move(container));
  CSXA_ASSIGN_OR_RETURN(
      entry.container, crypto::SecureContainer::Parse(*entry.container_bytes));
  entry.sealed_rules = std::move(sealed_rules);
  entry.rules_version = 1;
  auto [it, inserted] = docs_.insert_or_assign(doc_id, std::move(entry));
  (void)it;
  (void)inserted;
  return Status::OK();
}

Status DspServer::UpdateRules(const std::string& doc_id, Bytes sealed_rules) {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  it->second.sealed_rules = std::move(sealed_rules);
  ++it->second.rules_version;
  return Status::OK();
}

Status DspServer::Remove(const std::string& doc_id) {
  if (docs_.erase(doc_id) == 0) return Status::NotFound("document " + doc_id);
  return Status::OK();
}

Result<Bytes> DspServer::GetHeader(const std::string& doc_id) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  const Bytes& raw = *it->second.container_bytes;
  if (raw.size() < crypto::ContainerHeader::kWireSize) {
    return Status::Internal("stored container shorter than a header");
  }
  Bytes header(raw.begin(),
               raw.begin() + crypto::ContainerHeader::kWireSize);
  bytes_served_ += header.size();
  return header;
}

Result<soe::ChunkData> DspServer::GetChunk(const std::string& doc_id,
                                           uint32_t index) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  soe::ChunkData chunk;
  CSXA_ASSIGN_OR_RETURN(Span cipher, it->second.container.ChunkCiphertext(index));
  chunk.ciphertext = cipher.ToBytes();
  CSXA_ASSIGN_OR_RETURN(chunk.auth, it->second.container.GetChunkAuth(index));
  ++chunk_requests_;
  bytes_served_ += chunk.WireBytes(it->second.container.header().integrity);
  return chunk;
}

Result<Bytes> DspServer::GetSealedRules(const std::string& doc_id) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  bytes_served_ += it->second.sealed_rules.size();
  return it->second.sealed_rules;
}

Result<Bytes> DspServer::GetContainer(const std::string& doc_id) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  bytes_served_ += it->second.container_bytes->size();
  return *it->second.container_bytes;
}

Result<uint64_t> DspServer::GetRulesVersion(const std::string& doc_id) const {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return Status::NotFound("document " + doc_id);
  return it->second.rules_version;
}

}  // namespace csxa::dsp
