#ifndef CSXA_DSP_BLOCKFILE_H_
#define CSXA_DSP_BLOCKFILE_H_

/// \file blockfile.h
/// \brief The durable backend's block layer: an injectable file
/// abstraction, deterministic disk-fault injection, segmented sealed-block
/// storage and the sequenced manifest log.
///
/// Everything dsp::DurableServer persists goes through two append-only
/// structures built here:
///
///  - **BlockLog** — the *data* half: fixed-size authenticated-encrypted
///    blocks (crypto/blockseal.h; 4 KB, per-block nonce + auth tag, AAD =
///    `(store_id, block_index)`) appended into large segment files
///    (`data-NNNNNN.seg`, 4 MB by default, à la destor's containers).
///    Block indices are global across segments, so the segment split is
///    pure file hygiene — the AAD still pins every block to one position
///    in one store.
///  - **ManifestLog** — the *meta* half: a single append-only `MANIFEST`
///    file of fixed-frame (512 B) sealed records, each sealed like a data
///    block with AAD `(store_id + "#manifest", sequence number)` — record
///    N lives at offset N * 512 and nowhere else, so the manifest can no
///    more be reordered or spliced than the data can. A record is the
///    commit point of every mutation: data blocks are written and fsynced
///    *first*, then one manifest record is appended and fsynced. Recovery
///    replays the valid record prefix; a torn tail (crash artifact: a
///    partial final frame, or at most one full final frame that fails
///    authentication) is truncated, while an *interior* invalid record —
///    valid records follow it, which no crash produces — is tampering and
///    fails the scan with a typed kIntegrityError.
///
/// Both halves do I/O only through the Env/File interface, so tests swap
/// in MemEnv (hermetic in-RAM filesystem whose state survives a simulated
/// process death) and wrap any Env in FaultyEnv, which executes a
/// DiskFaultPlan: crash-at-write-point k (with an optional torn tail on
/// the dying append), scripted single-bit flips and truncate-at-offset
/// applied when a file is next opened. The crash-point matrix test walks
/// every k for every mutation and proves recovery lands on exactly the
/// pre-op or post-op state.
///
/// Threading: Env implementations are thread-safe; BlockLog and
/// ManifestLog are NOT — DurableServer serializes every BlockLog /
/// ManifestLog call (appends, syncs and block reads alike) on one writer
/// mutex; the hot read path serves from memory and never touches them.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/blockseal.h"
#include "crypto/keys.h"

namespace csxa::dsp {

/// \brief One open file: positional reads, appends, truncate, fsync.
class File {
 public:
  virtual ~File() = default;
  /// Reads up to `n` bytes at `offset`; short reads near EOF return fewer.
  virtual Result<Bytes> ReadAt(uint64_t offset, size_t n) const = 0;
  virtual Status Append(Span data) = 0;
  /// Overwrites in place (used by fault injection to corrupt at-rest
  /// bytes; the store itself never overwrites).
  virtual Status WriteAt(uint64_t offset, Span data) = 0;
  virtual Status Truncate(uint64_t size) = 0;
  /// Durability barrier: everything appended before this survives a crash.
  virtual Status Sync() = 0;
  virtual Result<uint64_t> Size() const = 0;
};

/// \brief Minimal filesystem the block layer runs on.
class Env {
 public:
  virtual ~Env() = default;
  /// Opens (creating if `create`) the file at `path`.
  virtual Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool create) = 0;
  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Creates a directory (and parents); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// Durability barrier for the directory itself: file creations and
  /// removals inside `path` done before this survive a crash. fsyncing a
  /// file makes its *contents* durable, not its directory entry — without
  /// this a power loss can keep a durable manifest record while losing
  /// the segment file it names.
  virtual Status SyncDir(const std::string& path) = 0;
  /// `n` fresh entropy bytes. The real env reads the OS CSPRNG; MemEnv
  /// serves a deterministic stream that lives in the env (the simulated
  /// machine), so successive store opens — including crash-recovery
  /// reopens — draw distinct values while tests stay reproducible.
  virtual Result<Bytes> RandomBytes(size_t n) = 0;
};

/// \brief Real filesystem via POSIX I/O (pread/write/ftruncate/fsync).
class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     bool create) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  /// getentropy(), falling back to /dev/urandom.
  Result<Bytes> RandomBytes(size_t n) override;

  /// Process-wide instance.
  static PosixEnv* Default();
};

/// \brief Hermetic in-memory filesystem. Files live in the Env object, so
/// a "process crash" (dropping every File/store object) and a "reboot"
/// (reopening against the same MemEnv) exercise the exact durable-state
/// contract without touching a disk. Thread-safe.
class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     bool create) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string&) override { return Status::OK(); }
  Status SyncDir(const std::string&) override { return Status::OK(); }
  Result<Bytes> RandomBytes(size_t n) override;

  /// Direct peek at a file's current bytes (tests).
  Result<Bytes> Snapshot(const std::string& path) const;

 private:
  friend class MemFile;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Bytes>> files_;
  Rng entropy_{0xe47286a1b5ULL};  ///< survives simulated crashes with files_
};

/// \brief Scripted disk faults for one FaultyEnv.
struct DiskFaultPlan {
  /// Mutations (Append / WriteAt / Truncate / Sync / Remove) are numbered
  /// from 0 as they arrive. The mutation with this index — and everything
  /// after it — does not happen: the env is "dead" and returns kIoError
  /// until Revive(). Default: never crash.
  uint64_t crash_at_write_point = UINT64_MAX;
  /// When the crashing mutation is an Append, this many of its bytes ARE
  /// persisted first — the torn final block a real power cut leaves.
  size_t torn_tail_bytes = 0;

  /// At-rest corruption: XOR one bit into byte `offset` of the first file
  /// whose path contains `path_substring`, applied when that file is next
  /// opened (each entry fires once).
  struct BitFlip {
    std::string path_substring;
    uint64_t offset = 0;
    uint8_t mask = 0x01;
  };
  std::vector<BitFlip> bit_flips;

  /// At-rest truncation: cut the matching file to `size` bytes when it is
  /// next opened (each entry fires once).
  struct TruncateAt {
    std::string path_substring;
    uint64_t size = 0;
  };
  std::vector<TruncateAt> truncates;
};

/// \brief Env decorator executing a DiskFaultPlan. Thread-safe.
class FaultyEnv : public Env {
 public:
  /// `base` must outlive this env.
  FaultyEnv(Env* base, DiskFaultPlan plan);
  explicit FaultyEnv(Env* base) : FaultyEnv(base, DiskFaultPlan{}) {}

  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     bool create) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  /// Counts as a mutation: a crash can land between creating a file and
  /// making its directory entry durable.
  Status SyncDir(const std::string& path) override;
  Result<Bytes> RandomBytes(size_t n) override;

  /// Re-arms the crash: the `after`-th mutation from *now* dies (0 = the
  /// very next one), tearing `torn_tail_bytes` of a dying append.
  void ArmCrash(uint64_t after, size_t torn_tail_bytes = 0);
  /// The reboot: clears the dead state (and any pending crash) so the
  /// store can be reopened against the surviving bytes.
  void Revive();
  bool crashed() const;
  /// Mutations executed so far (counting the one that crashed).
  uint64_t write_points() const;

 private:
  friend class FaultyFile;
  /// Returns true when the current mutation must die (counts it).
  bool MutationDies();
  /// Bytes of a dying append that still reach the base file.
  size_t torn_tail() const;

  Env* base_;
  mutable std::mutex mu_;
  DiskFaultPlan plan_;
  uint64_t writes_ = 0;
  uint64_t crash_at_ = UINT64_MAX;
  size_t torn_tail_ = 0;
  bool dead_ = false;
};

/// \brief The data half: sealed blocks appended across segment files.
///
/// Blocks are written with crypto::SealBlock under the store key and AAD
/// `(store_id, global block index)`; segment `s` holds global indices
/// `[s * blocks_per_segment, (s+1) * blocks_per_segment)`.
class BlockLog {
 public:
  /// Opens (or creates) the log rooted at `dir` on `env`. `segment_bytes`
  /// is rounded down to a whole number of blocks (min 1). A partial block
  /// at the tail of the last segment (a torn final write) is truncated
  /// away and reported through `torn_tail_bytes` when non-null.
  static Result<BlockLog> Open(Env* env, std::string dir,
                               crypto::SymmetricKey key, std::string store_id,
                               size_t segment_bytes,
                               uint64_t* torn_tail_bytes = nullptr);

  /// Appends one sealed block; returns its global index. Not durable
  /// until Sync(). A failed append (e.g. ENOSPC after a partial write)
  /// truncates the segment back to the last whole-block boundary so later
  /// appends stay frame-aligned; if even that fails, the log is poisoned
  /// and every further append is refused — it never corrupts forward.
  Result<uint64_t> AppendBlock(Span payload, crypto::NonceSequence* nonces);
  /// Reads and opens (verifies + decrypts) block `index`.
  Result<Bytes> ReadBlock(uint64_t index) const;
  /// Fsyncs every segment touched since the last Sync().
  Status Sync();
  /// Drops every block with index >= `count` (recovery truncating
  /// orphaned, never-committed appends), deleting emptied segments.
  Status TruncateBlocks(uint64_t count);

  uint64_t block_count() const { return block_count_; }
  uint64_t blocks_per_segment() const { return blocks_per_segment_; }
  /// Total sealed bytes on disk.
  uint64_t disk_bytes() const {
    return block_count_ * crypto::kSealedBlockSize;
  }

  /// Empty log; assign from Open() before use.
  BlockLog() = default;

 private:
  std::string SegmentPath(uint64_t seq) const;
  /// Segment holding `index`, opened lazily and cached.
  Result<File*> SegmentFor(uint64_t index, bool create) const;

  Env* env_ = nullptr;
  std::string dir_;
  crypto::SymmetricKey key_;
  std::string store_id_;
  uint64_t blocks_per_segment_ = 0;
  uint64_t block_count_ = 0;
  bool poisoned_ = false;  // failed append could not be realigned
  mutable std::map<uint64_t, std::unique_ptr<File>> segments_;  // lazy cache
  std::vector<uint64_t> dirty_;  // segment seqs with unsynced appends
};

/// Fixed frame size of one manifest record on disk.
inline constexpr size_t kManifestRecordSize = 512;
/// Maximum payload of one manifest record.
inline constexpr size_t kManifestPayloadCapacity =
    crypto::BlockPayloadCapacity(kManifestRecordSize);

/// \brief Result of scanning a manifest.
struct ManifestScan {
  std::vector<Bytes> records;  ///< payloads of the valid prefix, in order
  /// Trailing bytes dropped as a torn write (a partial final frame and/or
  /// one final full frame failing authentication).
  uint64_t torn_tail_bytes = 0;
  /// Full final frames dropped (0 or 1). Unlike a partial frame — which
  /// only an interrupted append produces — a whole frame failing
  /// authentication is ambiguous: a crash mid-frame leaves it, but so
  /// does an attacker flipping one bit of the *last committed record* to
  /// roll the store back by exactly one mutation. Callers must surface
  /// this (DurableServer reports it as rollback_suspected and lets
  /// publishers anchor the expected record count; see DurableOptions).
  uint64_t torn_tail_records = 0;
};

/// \brief The meta half: sequenced sealed records in one append-only file.
class ManifestLog {
 public:
  /// Opens (creating) the manifest and scans it. A torn tail is truncated
  /// and reported in the scan; an invalid record *followed by a valid
  /// one* fails with kIntegrityError — crashes tear tails, only tampering
  /// makes holes.
  static Result<ManifestLog> Open(Env* env, std::string path,
                                  crypto::SymmetricKey key,
                                  std::string store_id, ManifestScan* scan);

  /// Appends one sealed record (next sequence number) and fsyncs — this
  /// is the commit point. The record is durable when Append returns OK.
  /// On append/fsync failure the file is truncated back to the last
  /// committed frame so the log stays frame-aligned (the record did NOT
  /// commit); if realignment fails too, the log is poisoned and refuses
  /// all further appends rather than corrupt forward.
  Status Append(Span payload, crypto::NonceSequence* nonces);

  uint64_t next_seq() const { return next_seq_; }

  /// Empty log; assign from Open() before use.
  ManifestLog() = default;

 private:
  Env* env_ = nullptr;
  std::string path_;
  crypto::SymmetricKey key_;
  std::string store_id_;
  std::unique_ptr<File> file_;
  uint64_t next_seq_ = 0;
  bool poisoned_ = false;  // failed append could not be realigned
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_BLOCKFILE_H_
