#ifndef CSXA_DSP_FAULT_H_
#define CSXA_DSP_FAULT_H_

/// \file fault.h
/// \brief Deterministic fault injection for the DSP serving stack.
///
/// The replicated fabric's failure modes — crashed replicas, network
/// partitions, lost responses, replayed (duplicated) requests — must be
/// unit tests, not hopes. FaultInjectingService is a Service decorator
/// that breaks its backend on a *script*: each fault is a window over the
/// decorator's own request counter, so a test (or the load harness) can
/// say "requests 20..60 hit a crashed server" and get exactly that, every
/// run. Probabilistic response drops use the repo's deterministic
/// env-overridable RNG, seeded from the options.
///
/// Fault vocabulary (FaultKind):
///  - kCrash:     the process is gone. The request is NOT applied; the
///                caller sees IoError. State is retained across restore
///                (modeling a paused process / rebooted node with its
///                store intact; durable-state loss is ROADMAP item 1).
///  - kPartition: the network is gone. Same visible effect as kCrash —
///                distinguishing them matters only for the counters and
///                for tests that heal the two independently.
///  - kTimeout:   the request IS applied but the response is lost; the
///                caller sees IoError. The at-least-once hazard: a write
///                that "failed" actually happened.
///  - kBlackhole: the request is silently dropped but acknowledged with a
///                fabricated empty-OK response. Models a replica that lies
///                about having applied a write — the way a backup becomes
///                stale while looking healthy (the stale-read guard in
///                ReplicatedService exists for exactly this).
///  - kDuplicate: the request is applied twice (a replayed delivery); the
///                caller sees the second response. Safe for idempotent
///                reads; for kUpdateRules it bumps the version twice,
///                which version-keyed caches must absorb.
///
/// Threading: safe for concurrent Execute() from any number of threads.
/// The request counter and manual toggles are atomics; the drop RNG is
/// mutexed. Note that under concurrency the *assignment* of concurrent
/// requests to counter indices is racy by nature — schedules stay
/// deterministic for single-threaded tests and statistically faithful for
/// the load harness.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "dsp/service.h"

namespace csxa::dsp {

/// \brief What a scripted fault does to one request.
enum class FaultKind : uint8_t {
  kNone,       ///< healthy
  kCrash,      ///< not applied, IoError (process down; state retained)
  kPartition,  ///< not applied, IoError (network down)
  kTimeout,    ///< applied, response replaced with IoError
  kBlackhole,  ///< NOT applied, fabricated empty-OK response
  kDuplicate,  ///< applied twice, second response returned
};

/// \brief One scripted fault: requests with index in [from, to) get `kind`.
struct FaultWindow {
  uint64_t from_request = 0;  ///< inclusive, 0-based request index
  uint64_t to_request = 0;    ///< exclusive
  FaultKind kind = FaultKind::kCrash;
};

/// \brief Fault schedule of one injector.
struct FaultOptions {
  /// Scripted windows, checked in order; the first match wins.
  std::vector<FaultWindow> schedule;
  /// Per-request probability of a kTimeout (lost response) outside any
  /// scheduled window; 0 disables.
  double timeout_probability = 0;
  /// Seed of the drop RNG (the usual deterministic Rng).
  uint64_t seed = 1;
};

/// \brief Service decorator injecting scripted and random faults.
class FaultInjectingService : public Service {
 public:
  /// `backend` must outlive the injector.
  FaultInjectingService(Service* backend, FaultOptions options);
  explicit FaultInjectingService(Service* backend)
      : FaultInjectingService(backend, FaultOptions{}) {}

  Result<Response> Execute(Request request) override;
  /// The backend's view; a crashed injector still reports its backend's
  /// counters (the monitor's view of a dead node is the heartbeat, not
  /// its stats endpoint).
  ServiceStats stats() const override { return backend_->stats(); }

  /// \name Manual toggles (the load harness flips these mid-run)
  /// @{
  void set_crashed(bool v) { crashed_.store(v, std::memory_order_relaxed); }
  void set_partitioned(bool v) {
    partitioned_.store(v, std::memory_order_relaxed);
  }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  bool partitioned() const {
    return partitioned_.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Injection statistics
  /// @{
  uint64_t requests_seen() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }
  uint64_t crashes() const { return crashes_.load(std::memory_order_relaxed); }
  uint64_t partitions() const {
    return partitions_.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  uint64_t blackholes() const {
    return blackholes_.load(std::memory_order_relaxed);
  }
  uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  FaultKind Classify(uint64_t index);

  Service* backend_;
  FaultOptions options_;
  std::atomic<bool> crashed_{false};
  std::atomic<bool> partitioned_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> partitions_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> blackholes_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_FAULT_H_
