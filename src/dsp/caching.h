#ifndef CSXA_DSP_CACHING_H_
#define CSXA_DSP_CACHING_H_

/// \file caching.h
/// \brief Terminal-side caching decorator keyed by rules version.
///
/// Headers and sealed rules are small but re-fetched on every session; a
/// CachingClient keeps the last kOpenDocument response per document and
/// revalidates it with the protocol's known_rules_version field. While the
/// policy is unchanged the backend answers with a tiny not-modified reply
/// and the cached bodies are served locally — the paper's cheap dynamic
/// policy update is exactly a version bump that invalidates this cache.
/// Because every open still revalidates in one round trip, out-of-band
/// updates (another terminal, the owner, even a DSP restore) are picked up
/// on the next session; the card's own anti-rollback anchor still guards
/// against a lying backend.
///
/// Threading: safe for concurrent Execute() from many terminal sessions.
/// Cache lookups take a shared lock; fills, invalidations and the
/// write-path erase take it exclusively. The backend call itself runs
/// outside any lock, so a slow fetch never serializes other sessions'
/// cache hits. A fill never overwrites a newer entry with an older racing
/// response (versions only move forward), and a hit is returned only when
/// the backend confirmed the cached version is *currently* live — so a
/// served pair is never stale at serve time and never torn (header, rules
/// and version are installed together from one atomic server reply).

#include <atomic>
#include <map>
#include <shared_mutex>
#include <string>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Service decorator caching kOpenDocument bodies by rules version.
class CachingClient : public Service {
 public:
  /// `backend` must outlive the client.
  explicit CachingClient(Service* backend) : backend_(backend) {}

  Result<Response> Execute(Request request) override;
  /// Load as observed by the backend (cache hits shrink bytes_served).
  ServiceStats stats() const override { return backend_->stats(); }

  /// \name Cache statistics
  /// @{
  /// Served after not-modified.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// First fetch of a doc.
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Version moved (or entry vanished server-side).
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by push notifications (Invalidate()).
  uint64_t fanout_invalidations() const {
    return fanout_invalidations_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Push-invalidation entry point for the dissemination fan-out
  /// (dissem/invalidation.h): drops the cached entry when its version is
  /// older than `rules_version` (0 drops unconditionally). Purely an
  /// optimization — a lost or reordered notification only costs one
  /// revalidation round trip, because every open revalidates anyway.
  void Invalidate(const std::string& doc_id, uint64_t rules_version);

  /// Number of cached documents (tests).
  size_t cache_size() const {
    std::shared_lock lock(mu_);
    return cache_.size();
  }

 private:
  struct CacheEntry {
    Bytes header;
    Bytes sealed_rules;
    uint64_t rules_version = 0;
  };

  Service* backend_;
  mutable std::shared_mutex mu_;  // guards cache_
  std::map<std::string, CacheEntry> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> fanout_invalidations_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_CACHING_H_
