#ifndef CSXA_DSP_CACHING_H_
#define CSXA_DSP_CACHING_H_

/// \file caching.h
/// \brief Terminal-side caching decorator keyed by rules version.
///
/// Headers and sealed rules are small but re-fetched on every session; a
/// CachingClient keeps the last kOpenDocument response per document and
/// revalidates it with the protocol's known_rules_version field. While the
/// policy is unchanged the backend answers with a tiny not-modified reply
/// and the cached bodies are served locally — the paper's cheap dynamic
/// policy update is exactly a version bump that invalidates this cache.
/// Because every open still revalidates in one round trip, out-of-band
/// updates (another terminal, the owner, even a DSP restore) are picked up
/// on the next session; the card's own anti-rollback anchor still guards
/// against a lying backend.

#include <map>
#include <string>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Service decorator caching kOpenDocument bodies by rules version.
class CachingClient : public Service {
 public:
  /// `backend` must outlive the client.
  explicit CachingClient(Service* backend) : backend_(backend) {}

  Result<Response> Execute(Request request) override;
  /// Load as observed by the backend (cache hits shrink bytes_served).
  ServiceStats stats() const override { return backend_->stats(); }

  /// \name Cache statistics
  /// @{
  uint64_t hits() const { return hits_; }          ///< served after not-modified
  uint64_t misses() const { return misses_; }      ///< first fetch of a doc
  uint64_t invalidations() const { return invalidations_; }  ///< version moved
  /// @}

 private:
  struct CacheEntry {
    Bytes header;
    Bytes sealed_rules;
    uint64_t rules_version = 0;
  };

  Service* backend_;
  std::map<std::string, CacheEntry> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_CACHING_H_
