#ifndef CSXA_DSP_STORE_H_
#define CSXA_DSP_STORE_H_

/// \file store.h
/// \brief The untrusted Database Service Provider (Fig. 1, Fig. 3).
///
/// The DSP hosts encrypted XML documents and encrypted access rules; it is
/// *honest-but-curious at best and possibly malicious*: it never sees keys
/// or plaintext, and any tampering it attempts (chunk substitution,
/// reordering, truncation, stale rules) is caught by the card's integrity
/// checks. It serves container headers, sealed rules and chunk batches
/// with their authentication material through the dsp::Service protocol,
/// which is what makes server-side skipping — and server-side scale-out —
/// possible.
///
/// Threading: DspServer is safe for concurrent Execute() calls from any
/// number of threads. Reads (kOpenDocument, kGetChunks, kGetContainer)
/// share a reader lock; writes (kPublish, kUpdateRules, kRemove) take it
/// exclusively, so a reader always observes a consistent
/// (header, sealed rules, version) triple — never a torn pair from a
/// half-applied update. Load counters are atomics so the read fast path
/// never upgrades its lock.

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/container.h"
#include "dsp/service.h"

namespace csxa::dsp {

/// \brief In-memory DSP backend speaking the Service protocol.
class DspServer : public Service {
 public:
  Result<Response> Execute(Request request) override;
  ServiceStats stats() const override;

  /// Number of stored documents.
  size_t size() const {
    std::shared_lock lock(mu_);
    return docs_.size();
  }

  /// Publishes that reused the stored parse because the incoming container
  /// bytes were identical to the stored ones (replication catch-up and
  /// rules-only republish make this common).
  uint64_t publish_parse_skips() const {
    return publish_parse_skips_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::unique_ptr<Bytes> container_bytes;  // stable address for the view
    crypto::SecureContainer container;
    Bytes sealed_rules;
    uint64_t rules_version = 1;
  };

  Result<Response> OpenDocumentImpl(const Request& request,
                                    const Entry& entry) const;
  Result<Response> GetChunksImpl(const Request& request,
                                 const Entry& entry) const;

  /// Guards docs_ and retired_versions_ (shared for reads, exclusive for
  /// publish/update/remove). Entries are only ever mutated or destroyed
  /// under the exclusive lock, so borrowing an Entry& under the shared
  /// lock is safe for the duration of one Execute().
  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> docs_;
  // Last version of removed documents: republishing the same id must stay
  // version-monotone so caches never see a not-modified stale header.
  std::map<std::string, uint64_t> retired_versions_;

  // Load counters; relaxed order is fine, they are statistics.
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> chunks_served_{0};
  mutable std::atomic<uint64_t> bytes_served_{0};
  mutable std::atomic<uint64_t> not_modified_{0};
  mutable std::atomic<uint64_t> publish_parse_skips_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_STORE_H_
