#ifndef CSXA_DSP_STORE_H_
#define CSXA_DSP_STORE_H_

/// \file store.h
/// \brief The untrusted Database Service Provider (Fig. 1, Fig. 3).
///
/// The DSP hosts encrypted XML documents and encrypted access rules; it is
/// *honest-but-curious at best and possibly malicious*: it never sees keys
/// or plaintext, and any tampering it attempts (chunk substitution,
/// reordering, truncation, stale rules) is caught by the card's integrity
/// checks. It serves container headers and individual chunks with their
/// Merkle proofs, which is what makes server-side skipping possible.

#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/container.h"
#include "soe/chunk_source.h"

namespace csxa::dsp {

/// \brief In-memory DSP server.
class DspServer {
 public:
  /// Stores a document container and its sealed rule set.
  Status PublishDocument(const std::string& doc_id, Bytes container,
                         Bytes sealed_rules);
  /// Replaces the sealed rules of an existing document (the cheap policy
  /// update the paper's dynamic model enables); bumps the version.
  Status UpdateRules(const std::string& doc_id, Bytes sealed_rules);
  /// Removes a document.
  Status Remove(const std::string& doc_id);

  /// Serialized container header (public metadata).
  Result<Bytes> GetHeader(const std::string& doc_id) const;
  /// One ciphertext chunk plus its Merkle path.
  Result<soe::ChunkData> GetChunk(const std::string& doc_id,
                                  uint32_t index) const;
  /// The sealed rules blob.
  Result<Bytes> GetSealedRules(const std::string& doc_id) const;
  /// Whole container (used by the full-download baseline).
  Result<Bytes> GetContainer(const std::string& doc_id) const;
  /// Rule-set version counter (starts at 1).
  Result<uint64_t> GetRulesVersion(const std::string& doc_id) const;

  /// Number of stored documents.
  size_t size() const { return docs_.size(); }
  /// Total bytes served through chunk requests (load accounting).
  uint64_t bytes_served() const { return bytes_served_; }
  uint64_t chunk_requests() const { return chunk_requests_; }

 private:
  struct Entry {
    std::unique_ptr<Bytes> container_bytes;  // stable address for the view
    crypto::SecureContainer container;
    Bytes sealed_rules;
    uint64_t rules_version = 1;
  };
  std::map<std::string, Entry> docs_;
  mutable uint64_t bytes_served_ = 0;
  mutable uint64_t chunk_requests_ = 0;
};

/// \brief ChunkProvider bound to one document on a DSP (what the proxy
/// hands to the card engine in pull mode).
class DspChunkProvider : public soe::ChunkProvider {
 public:
  DspChunkProvider(const DspServer* server, std::string doc_id)
      : server_(server), doc_id_(std::move(doc_id)) {}

  Result<soe::ChunkData> GetChunk(uint32_t index) override {
    return server_->GetChunk(doc_id_, index);
  }

 private:
  const DspServer* server_;
  std::string doc_id_;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_STORE_H_
