#ifndef CSXA_DSP_STORE_H_
#define CSXA_DSP_STORE_H_

/// \file store.h
/// \brief The untrusted Database Service Provider (Fig. 1, Fig. 3).
///
/// The DSP hosts encrypted XML documents and encrypted access rules; it is
/// *honest-but-curious at best and possibly malicious*: it never sees keys
/// or plaintext, and any tampering it attempts (chunk substitution,
/// reordering, truncation, stale rules) is caught by the card's integrity
/// checks. It serves container headers, sealed rules and chunk batches
/// with their authentication material through the dsp::Service protocol,
/// which is what makes server-side skipping — and server-side scale-out —
/// possible.

#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/container.h"
#include "dsp/service.h"

namespace csxa::dsp {

/// \brief In-memory DSP backend speaking the Service protocol.
class DspServer : public Service {
 public:
  Result<Response> Execute(Request request) override;
  ServiceStats stats() const override;

  /// Number of stored documents.
  size_t size() const { return docs_.size(); }

 private:
  struct Entry {
    std::unique_ptr<Bytes> container_bytes;  // stable address for the view
    crypto::SecureContainer container;
    Bytes sealed_rules;
    uint64_t rules_version = 1;
  };

  Result<Response> OpenDocumentImpl(const Request& request, const Entry& entry);
  Result<Response> GetChunksImpl(const Request& request, const Entry& entry);

  std::map<std::string, Entry> docs_;
  // Last version of removed documents: republishing the same id must stay
  // version-monotone so caches never see a not-modified stale header.
  std::map<std::string, uint64_t> retired_versions_;
  ServiceStats stats_;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_STORE_H_
