#ifndef CSXA_DSP_SERVICE_H_
#define CSXA_DSP_SERVICE_H_

/// \file service.h
/// \brief The batch-first DSP request/response protocol.
///
/// The two limiting costs of the target architecture are "decryption in
/// the SOE and communication between the SOE, the client and the server"
/// (§2.3). This interface shapes the communication half: every interaction
/// with a DSP backend is ONE Execute(Request) -> Response exchange — one
/// modeled round trip — and the request vocabulary is deliberately batchy:
///
///  - kOpenDocument returns container header + sealed rules + rules
///    version together (the old header/rules/version triple of calls in
///    one trip), and carries the client's cached rules version so an
///    unchanged policy costs a tiny not-modified reply — the paper's
///    cheap policy-update path becomes a cache invalidation;
///  - kGetChunks takes *spans* of chunks, however many, in one trip;
///  - kGetContainer ships the whole container (full-download baseline);
///  - kPublish / kUpdateRules / kRemove are the owner-side writes.
///
/// Backends compose: DspServer is the in-memory store, ShardedService
/// routes doc_ids across N backends, ReplicatedService runs a
/// primary/backup replica group, CachingClient revalidates header +
/// sealed-rules by rules version, FaultInjectingService breaks any of
/// them on a script, and RetryingClient masks transient failures with
/// backoff. All of them speak only this protocol, which is what makes
/// the server side replaceable, scale-out-able and survivable.

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "soe/chunk_source.h"

namespace csxa::dsp {

/// \brief A run of consecutive chunks: [first, first + count).
struct ChunkSpan {
  uint32_t first = 0;
  uint32_t count = 0;
};

/// \brief Request vocabulary of the DSP protocol.
enum class Op : uint8_t {
  kOpenDocument,  ///< header + sealed rules + rules version, one trip
  kGetChunks,     ///< chunk spans with their authentication material
  kGetContainer,  ///< the whole stored container (full-download baseline)
  kPublish,       ///< store container + sealed rules (version 1 for new ids;
                  ///< republishing bumps past the old version so version-keyed
                  ///< caches revalidate the new container)
  kUpdateRules,   ///< replace sealed rules, bump version (the cheap update)
  kRemove,        ///< delete the document
  kPing,          ///< liveness probe (heartbeat); carries and returns nothing
};

/// \brief One DSP request. Exactly one Execute() call — one round trip —
/// regardless of how much it asks for.
struct Request {
  Op op = Op::kOpenDocument;
  std::string doc_id;
  /// kOpenDocument: rules version the client already holds; when it still
  /// matches, the response is `not_modified` and omits the bodies.
  uint64_t known_rules_version = 0;
  /// kGetChunks: the chunk ranges wanted, served in request order.
  std::vector<ChunkSpan> spans;
  /// kPublish: the sealed container.
  Bytes container;
  /// kPublish, kUpdateRules: the sealed rule-set blob.
  Bytes sealed_rules;
  /// kPublish, kUpdateRules: when non-zero, the backend stores exactly this
  /// rules version instead of assigning floor+1. Replication-internal: the
  /// replication layer stamps the primary's canonical version onto backup
  /// applies and op-log catch-up replays so every replica converges on the
  /// same version history. Client code leaves it 0.
  uint64_t force_rules_version = 0;
};

/// \brief One DSP response. Fields are populated per the request op.
struct Response {
  /// kOpenDocument: the client's known_rules_version is still current;
  /// header/sealed_rules are omitted (empty).
  bool not_modified = false;
  Bytes header;        ///< kOpenDocument: serialized public container header
  Bytes sealed_rules;  ///< kOpenDocument: the sealed rule-set blob
  uint64_t rules_version = 0;  ///< kOpenDocument, kUpdateRules
  std::vector<soe::ChunkData> chunks;  ///< kGetChunks, span order
  Bytes container;                     ///< kGetContainer
  /// kPublish/kUpdateRules/kRemove on a durable backend: the total count
  /// of committed manifest records after this mutation — a *commitment*
  /// the publisher can retain and later feed back as
  /// DurableOptions::expected_manifest_records, making a storage volume
  /// that rolls the log back (even by a single record disguised as a
  /// torn crash tail) detectable at the next open. 0 from non-durable
  /// backends.
  uint64_t commit_seq = 0;
  /// Modeled payload size of this response (server load accounting).
  uint64_t wire_bytes = 0;
};

/// \brief Aggregate server-side load counters.
struct ServiceStats {
  uint64_t requests = 0;      ///< Execute() calls served
  uint64_t chunks_served = 0;
  uint64_t bytes_served = 0;  ///< response payload bytes
  uint64_t not_modified = 0;  ///< kOpenDocument revalidation hits
  uint64_t documents = 0;     ///< documents currently stored

  ServiceStats& operator+=(const ServiceStats& o) {
    requests += o.requests;
    chunks_served += o.chunks_served;
    bytes_served += o.bytes_served;
    not_modified += o.not_modified;
    documents += o.documents;
    return *this;
  }
};

/// \brief Abstract DSP backend: one entry point, one round trip per call.
class Service {
 public:
  virtual ~Service() = default;

  /// The single protocol entry point. Takes the request by value so large
  /// payloads (kPublish containers) can be moved into the backend.
  virtual Result<Response> Execute(Request request) = 0;
  /// Load counters (decorators report their backend's view).
  virtual ServiceStats stats() const = 0;

  /// \name Typed conveniences — each is exactly one Execute() round trip.
  /// @{
  Result<Response> OpenDocument(const std::string& doc_id,
                                uint64_t known_rules_version = 0);
  Result<std::vector<soe::ChunkData>> GetChunks(const std::string& doc_id,
                                                std::vector<ChunkSpan> spans);
  Result<Bytes> GetContainer(const std::string& doc_id);
  Status Publish(const std::string& doc_id, Bytes container,
                 Bytes sealed_rules);
  Status UpdateRules(const std::string& doc_id, Bytes sealed_rules);
  Status Remove(const std::string& doc_id);
  /// Liveness probe: OK iff the backend (the whole fleet, for routers) is
  /// reachable. Heartbeat monitors call this, nothing else should.
  Status Ping();
  /// @}
};

/// \brief soe::ChunkProvider bound to one document on a Service (what the
/// proxy hands to the card engine in pull mode). Every batch is one
/// kGetChunks round trip; wrap it in soe::PrefetchingProvider to amortize.
class ServiceChunkProvider : public soe::ChunkProvider {
 public:
  ServiceChunkProvider(Service* service, std::string doc_id)
      : service_(service), doc_id_(std::move(doc_id)) {}

 protected:
  Result<std::vector<soe::ChunkData>> FetchChunks(uint32_t first,
                                                  uint32_t count) override {
    return service_->GetChunks(doc_id_, {ChunkSpan{first, count}});
  }

  /// Several runs become one multi-span kGetChunks request — the wire
  /// capability the fetch planner exists to exploit.
  Result<std::vector<soe::ChunkData>> FetchSpans(
      const std::vector<skipindex::ChunkRun>& spans) override {
    std::vector<ChunkSpan> wire;
    wire.reserve(spans.size());
    for (const skipindex::ChunkRun& span : spans) {
      if (span.count == 0) continue;
      wire.push_back(ChunkSpan{span.first, span.count});
    }
    if (wire.empty()) return std::vector<soe::ChunkData>{};
    return service_->GetChunks(doc_id_, std::move(wire));
  }

 private:
  Service* service_;
  std::string doc_id_;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_SERVICE_H_
