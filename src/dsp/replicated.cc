#include "dsp/replicated.h"

#include "common/logging.h"

namespace csxa::dsp {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kInSync:
      return "in-sync";
    case ReplicaState::kSuspect:
      return "suspect";
    case ReplicaState::kDown:
      return "down";
    case ReplicaState::kLagging:
      return "lagging";
  }
  return "unknown";
}

ReplicatedService::ReplicatedService(std::vector<Service*> replicas,
                                     ReplicationOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  CSXA_CHECK(!replicas_.empty());
  state_.resize(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    state_[i].service = replicas_[i];
  }
  if (options_.write_quorum == 0) {
    options_.write_quorum = replicas_.size() / 2 + 1;
  }
  if (options_.write_quorum > replicas_.size()) {
    options_.write_quorum = replicas_.size();
  }
  if (options_.suspect_after < 1) options_.suspect_after = 1;
}

Result<Response> ReplicatedService::Execute(Request request) {
  return IsWrite(request.op) ? ExecuteWrite(std::move(request))
                             : ExecuteRead(std::move(request));
}

bool ReplicatedService::EnsurePrimaryLocked() {
  std::lock_guard lock(mu_);
  if (state_[primary_].state == ReplicaState::kInSync) return true;
  for (size_t i = 0; i < state_.size(); ++i) {
    if (state_[i].state == ReplicaState::kInSync) {
      primary_ = i;
      primary_promotions_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ReplicatedService::MarkSuspect(size_t index) {
  std::lock_guard lock(mu_);
  if (state_[index].state == ReplicaState::kInSync) {
    state_[index].state = ReplicaState::kSuspect;
  }
}

void ReplicatedService::MarkLagging(size_t index) {
  std::lock_guard lock(mu_);
  state_[index].state = ReplicaState::kLagging;
  // The replica acked something it never applied (or missed an ack we
  // recorded): its prefix bookkeeping cannot be trusted — rebuild from the
  // start of the log on reintegration.
  state_[index].applied_ops = 0;
}

Result<Response> ReplicatedService::ExecuteWrite(Request request) {
  std::unique_lock wl(write_mu_);

  // Apply on the primary first: its DspServer assigns the canonical rules
  // version. A primary that fails with IoError is demoted on the spot
  // (passive detection) and the next in-sync replica is promoted.
  Result<Response> primary_result = Status::IoError("unreachable");
  size_t p = 0;
  for (;;) {
    if (!EnsurePrimaryLocked()) {
      return Status::IoError("no in-sync replica can take writes");
    }
    {
      std::lock_guard lock(mu_);
      p = primary_;
    }
    Request attempt = request;
    primary_result = state_[p].service->Execute(std::move(attempt));
    if (primary_result.ok()) break;
    if (primary_result.status().code() != StatusCode::kIoError) {
      // Authoritative rejection (e.g. updating a document that does not
      // exist): not a fault, nothing was applied, nothing is logged.
      return primary_result;
    }
    MarkSuspect(p);
  }

  const uint64_t canonical = primary_result.value().rules_version;
  // The logged form of the op carries the canonical version, so backup
  // applies and catch-up replays converge on the primary's history.
  LogEntry entry;
  entry.request = std::move(request);
  if (entry.request.op != Op::kRemove) {
    entry.request.force_rules_version = canonical;
  }

  size_t log_index = 0;
  std::vector<size_t> backups;
  {
    std::lock_guard lock(mu_);
    log_.push_back(entry);
    log_index = log_.size();
    state_[p].applied_ops = log_index;
    for (size_t i = 0; i < state_.size(); ++i) {
      if (i != p && state_[i].state == ReplicaState::kInSync) {
        backups.push_back(i);
      }
    }
  }

  size_t acks = 1;  // the primary
  for (size_t r : backups) {
    Request replica_req = entry.request;
    Result<Response> res = state_[r].service->Execute(std::move(replica_req));
    const bool applied =
        res.ok() || (entry.request.op == Op::kRemove &&
                     res.status().code() == StatusCode::kNotFound);
    if (applied) {
      std::lock_guard lock(mu_);
      state_[r].applied_ops = log_index;
      ++acks;
    } else if (res.status().code() == StatusCode::kIoError) {
      MarkSuspect(r);
    } else {
      // An in-sync backup rejecting an op the primary accepted has
      // silently diverged (e.g. a blackholed earlier write): rebuild it.
      MarkLagging(r);
    }
  }

  const std::string doc_id = entry.request.doc_id;
  {
    // The committed version rises even when quorum fails below: the op IS
    // applied on the primary, and the stale-read guard must never let a
    // replica serve below anything a reader might already have seen.
    std::lock_guard lock(mu_);
    if (entry.request.op == Op::kRemove) {
      committed_.erase(doc_id);
    } else if (uint64_t& v = committed_[doc_id]; canonical > v) {
      v = canonical;
    }
  }

  if (acks < options_.write_quorum) {
    quorum_failures_.fetch_add(1, std::memory_order_relaxed);
    // At-least-once: the write is applied on the primary (and possibly
    // some backups) but under-replicated. The caller retries; version
    // monotonicity makes the duplicate apply safe.
    return Status::IoError("write acked by " + std::to_string(acks) + "/" +
                           std::to_string(options_.write_quorum) +
                           " required replicas");
  }
  writes_.fetch_add(1, std::memory_order_relaxed);

  WriteCommitHook hook;
  {
    std::lock_guard lock(mu_);
    hook = on_write_committed_;
  }
  wl.unlock();
  if (hook && entry.request.op != Op::kRemove) hook(doc_id, canonical);
  return primary_result;
}

Result<Response> ReplicatedService::ExecuteRead(Request request) {
  std::vector<size_t> candidates;
  uint64_t committed = 0;
  {
    std::lock_guard lock(mu_);
    const size_t n = state_.size();
    const size_t start =
        read_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (start + k) % n;
      if (state_[i].state == ReplicaState::kInSync) candidates.push_back(i);
    }
    if (request.op != Op::kPing) {
      if (auto it = committed_.find(request.doc_id); it != committed_.end()) {
        committed = it->second;
      }
    }
  }
  if (candidates.empty()) {
    return Status::IoError("no in-sync replica reachable");
  }

  Status last = Status::IoError("no in-sync replica reachable");
  for (size_t k = 0; k < candidates.size(); ++k) {
    const size_t r = candidates[k];
    Request attempt = request;
    Result<Response> res = state_[r].service->Execute(std::move(attempt));
    if (!res.ok()) {
      const StatusCode code = res.status().code();
      if (code == StatusCode::kIoError) {
        MarkSuspect(r);
        last = res.status();
        continue;
      }
      if (code == StatusCode::kNotFound && committed > 0) {
        // The group acked a version of this document to a writer; this
        // replica missed the publish. Not an authoritative miss.
        stale_reads_detected_.fetch_add(1, std::memory_order_relaxed);
        MarkLagging(r);
        last = Status::IoError("replica lagging (missed committed doc)");
        continue;
      }
      return res;  // authoritative NotFound / access error
    }
    if (request.op != Op::kPing && res.value().rules_version < committed) {
      // Below the version acked to its writer — including the fabricated
      // version-0 reply of a blackholed read: never serve it. (Vacuous
      // when committed == 0; every store read op reports its version.)
      stale_reads_detected_.fetch_add(1, std::memory_order_relaxed);
      MarkLagging(r);
      last = Status::IoError("replica lagging (stale rules version)");
      continue;
    }
    if (k > 0) read_reroutes_.fetch_add(1, std::memory_order_relaxed);
    return res;
  }
  return last;
}

void ReplicatedService::HeartbeatTick() {
  const size_t n = replicas_.size();
  std::vector<size_t> recovered;
  for (size_t i = 0; i < n; ++i) {
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    Request ping;
    ping.op = Op::kPing;
    Result<Response> res = replicas_[i]->Execute(std::move(ping));
    std::lock_guard lock(mu_);
    Replica& rep = state_[i];
    if (res.ok()) {
      rep.missed_heartbeats = 0;
      if (rep.state != ReplicaState::kInSync) recovered.push_back(i);
    } else {
      heartbeat_failures_.fetch_add(1, std::memory_order_relaxed);
      ++rep.missed_heartbeats;
      if (rep.missed_heartbeats >= options_.suspect_after) {
        rep.state = ReplicaState::kDown;
      } else if (rep.state == ReplicaState::kInSync) {
        rep.state = ReplicaState::kSuspect;
      }
    }
  }
  for (size_t i : recovered) {
    std::lock_guard wl(write_mu_);
    CatchUpLocked(i);
  }
  {
    std::lock_guard wl(write_mu_);
    EnsurePrimaryLocked();
  }
}

bool ReplicatedService::CatchUpLocked(size_t index) {
  size_t from = 0;
  size_t target = 0;
  {
    std::lock_guard lock(mu_);
    Replica& rep = state_[index];
    if (rep.state == ReplicaState::kInSync) return true;  // raced, done
    from = rep.applied_ops;
    target = log_.size();  // frozen: writers need write_mu_, which we hold
  }
  bool restarted = false;
  uint64_t replayed = 0;
  for (size_t i = from; i < target; ++i) {
    // A lost response (applied-but-unacked timeout) is transient: replaying
    // the entry is idempotent, so give each one a small retry budget and
    // only abort the round when the replica looks genuinely unreachable.
    // Without this, a long log behind a lossy link aborts on the first
    // dropped ack and catch-up crawls one heartbeat-sized bite at a time.
    Result<Response> res = Status::IoError("unreachable");
    for (int attempt = 0; attempt < 3; ++attempt) {
      Request replay = log_[i].request;
      res = state_[index].service->Execute(std::move(replay));
      ++replayed;
      if (res.status().code() != StatusCode::kIoError) break;
    }
    const bool applied =
        res.ok() || (log_[i].request.op == Op::kRemove &&
                     res.status().code() == StatusCode::kNotFound);
    if (applied) continue;
    if (res.status().code() == StatusCode::kIoError || restarted) {
      // Unreachable again mid-replay (or diverged beyond a full rebuild):
      // stays out of rotation until a later heartbeat retries. Keep the
      // cleanly replayed prefix — re-replaying entry i is idempotent
      // (forced versions, overwriting republishes), so the next attempt
      // resumes here instead of restarting the whole suffix. Without
      // this, a long op-log (a thousand-document fleet) with sprinkled
      // response-loss faults makes all-or-nothing catch-up vanishingly
      // unlikely to ever finish, and the replica never reintegrates.
      {
        std::lock_guard lock(mu_);
        state_[index].applied_ops = i;
      }
      catchup_ops_replayed_.fetch_add(replayed, std::memory_order_relaxed);
      return false;
    }
    // Divergence the suffix cannot fix (an update replay hitting a doc a
    // blackholed publish never stored): replay the whole log — forced
    // versions and overwriting republishes make a full replay idempotent.
    restarted = true;
    i = static_cast<size_t>(-1);  // the loop increment restarts at 0
  }
  catchup_ops_replayed_.fetch_add(replayed, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    Replica& rep = state_[index];
    rep.applied_ops = target;
    rep.state = ReplicaState::kInSync;
    rep.missed_heartbeats = 0;
  }
  reintegrations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ServiceStats ReplicatedService::stats() const {
  Service* primary_service = nullptr;
  {
    std::lock_guard lock(mu_);
    primary_service = state_[primary_].service;
  }
  return primary_service->stats();
}

void ReplicatedService::set_on_write_committed(WriteCommitHook hook) {
  std::lock_guard lock(mu_);
  on_write_committed_ = std::move(hook);
}

size_t ReplicatedService::primary() const {
  std::lock_guard lock(mu_);
  return primary_;
}

std::vector<ReplicaState> ReplicatedService::replica_states() const {
  std::lock_guard lock(mu_);
  std::vector<ReplicaState> out;
  out.reserve(state_.size());
  for (const Replica& rep : state_) out.push_back(rep.state);
  return out;
}

ReplicationStats ReplicatedService::replication_stats() const {
  ReplicationStats out;
  out.writes = writes_.load(std::memory_order_relaxed);
  out.quorum_failures = quorum_failures_.load(std::memory_order_relaxed);
  out.read_reroutes = read_reroutes_.load(std::memory_order_relaxed);
  out.stale_reads_detected =
      stale_reads_detected_.load(std::memory_order_relaxed);
  out.stale_reads_served = stale_reads_served_.load(std::memory_order_relaxed);
  out.primary_promotions =
      primary_promotions_.load(std::memory_order_relaxed);
  out.reintegrations = reintegrations_.load(std::memory_order_relaxed);
  out.catchup_ops_replayed =
      catchup_ops_replayed_.load(std::memory_order_relaxed);
  out.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  out.heartbeat_failures =
      heartbeat_failures_.load(std::memory_order_relaxed);
  return out;
}

uint64_t ReplicatedService::committed_version(const std::string& doc_id) const {
  std::lock_guard lock(mu_);
  auto it = committed_.find(doc_id);
  return it != committed_.end() ? it->second : 0;
}

size_t ReplicatedService::log_size() const {
  std::lock_guard lock(mu_);
  return log_.size();
}

}  // namespace csxa::dsp
