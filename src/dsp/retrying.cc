#include "dsp/retrying.h"

#include <algorithm>

#include "common/logging.h"

namespace csxa::dsp {

namespace {
bool IsWrite(Op op) {
  return op == Op::kPublish || op == Op::kUpdateRules || op == Op::kRemove;
}
}  // namespace

RetryingClient::RetryingClient(Service* backend, RetryOptions options)
    : backend_(backend), options_(options) {
  CSXA_CHECK(backend_ != nullptr);
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

void RetryingClient::set_on_backoff(BackoffHook hook) {
  std::lock_guard lock(hook_mu_);
  on_backoff_ = std::move(hook);
}

Result<Response> RetryingClient::Execute(Request request) {
  const Op op = request.op;
  const bool retryable = !IsWrite(op) || options_.retry_writes;
  double backoff = options_.initial_backoff_seconds;
  Result<Response> result = Status::IoError("unreachable");
  for (int attempt = 1;; ++attempt) {
    Request attempt_req = request;
    result = backend_->Execute(std::move(attempt_req));
    if (result.ok()) return result;
    if (op == Op::kRemove && attempt > 1 &&
        result.status().code() == StatusCode::kNotFound) {
      // The earlier attempt whose response was lost DID apply the remove;
      // this NotFound is our own success echoing back.
      remove_races_absorbed_.fetch_add(1, std::memory_order_relaxed);
      return Response{};
    }
    if (!retryable || result.status().code() != StatusCode::kIoError) {
      return result;  // authoritative answer, not a transport fault
    }
    if (attempt >= options_.max_attempts) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    modeled_backoff_seconds_.fetch_add(backoff, std::memory_order_relaxed);
    BackoffHook hook;
    {
      std::lock_guard lock(hook_mu_);
      hook = on_backoff_;
    }
    if (hook) hook(attempt, backoff);
    backoff = std::min(backoff * options_.backoff_multiplier,
                       options_.max_backoff_seconds);
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace csxa::dsp
