#ifndef CSXA_DSP_ASYNC_H_
#define CSXA_DSP_ASYNC_H_

/// \file async.h
/// \brief Asynchronous batched execution behind the Service protocol.
///
/// A real DSP front-end serves many tenants at once; executing every
/// request inline on the caller's thread means one terminal's slow
/// full-container fetch head-of-line-blocks another tenant's tiny
/// revalidation. AsyncDispatcher puts a fixed thread pool between the
/// protocol and a backend Service:
///
///  - Submit(Request) enqueues and returns a future<Result<Response>>;
///    the caller overlaps its own work (or other submissions) with the
///    server-side execution.
///  - Requests are routed to per-worker queues by a stable FNV-1a hash of
///    the doc_id — the same scheme ShardedService routes with — so all
///    operations on one document execute in submission order (per-document
///    FIFO), while different documents never queue behind each other
///    unless they happen to share a lane.
///  - Execute() is Submit().get(): the dispatcher is itself a Service, so
///    the decorator stack (CachingClient, ShardedService) composes around
///    it unchanged.
///
/// The dispatcher also keeps the modeled server-side clock: each executed
/// request charges its lane a fixed per-request overhead plus its
/// response's wire_bytes at the modeled server bandwidth. The modeled
/// makespan (busiest lane) is what the load harness divides by to get
/// aggregate throughput — on a machine with few real cores, the modeled
/// clock is what scales with worker count, exactly like the modeled card
/// costs elsewhere in this repo.
///
/// Threading: Submit() is safe from any thread. The backend must be
/// thread-safe (DspServer, ShardedService and CachingClient are); workers
/// call it concurrently. Destruction drains every queued request before
/// joining, so no future is ever abandoned.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Thread-pool Service decorator with per-shard work queues and a
/// future-returning submission API.
class AsyncDispatcher : public Service {
 public:
  struct Options {
    /// Worker threads == work queues. 1 reproduces the synchronous,
    /// single-threaded server (the load harness's baseline).
    size_t workers = 4;
    /// Modeled fixed server-side cost of admitting and parsing one
    /// request (queueing, lookup, framing).
    double per_request_seconds = 200e-6;
    /// Modeled server-side serialization bandwidth applied to each
    /// response's wire_bytes.
    double server_bytes_per_second = 100e6;
  };

  /// `backend` must be thread-safe and outlive the dispatcher.
  AsyncDispatcher(Service* backend, Options options);
  explicit AsyncDispatcher(Service* backend);  // default Options
  ~AsyncDispatcher() override;

  /// Enqueues `request` on its document's lane and returns immediately.
  std::future<Result<Response>> Submit(Request request);

  /// Synchronous convenience: Submit + wait. Keeps the dispatcher a
  /// drop-in Service for callers that don't overlap requests.
  Result<Response> Execute(Request request) override {
    return Submit(std::move(request)).get();
  }
  ServiceStats stats() const override { return backend_->stats(); }

  size_t worker_count() const { return queues_.size(); }
  /// Lane a document's requests execute on (stable across the run).
  size_t LaneFor(const std::string& doc_id) const;

  /// \name Modeled server-side clock
  /// @{
  /// Modeled busy seconds accumulated per worker lane.
  std::vector<double> lane_busy_seconds() const;
  /// Sum over lanes: total modeled server work.
  double modeled_busy_seconds() const;
  /// Busiest lane: the modeled wall-clock the fleet needed. Throughput =
  /// operations / makespan.
  double modeled_makespan_seconds() const;
  /// Requests executed so far.
  uint64_t executed() const;
  /// @}

 private:
  struct Job {
    Request request;
    std::promise<Result<Response>> promise;
  };
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
    // Modeled busy time, in nanoseconds (atomic: written by the lane's
    // worker, read by reporting threads).
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> executed{0};
  };

  void WorkerLoop(size_t lane_index);

  Service* backend_;
  Options options_;
  std::vector<std::unique_ptr<Lane>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_ASYNC_H_
