#include "dsp/caching.h"

namespace csxa::dsp {

Result<Response> CachingClient::Execute(Request request) {
  // Callers that manage their own revalidation bypass the cache.
  if (request.op != Op::kOpenDocument || request.known_rules_version != 0) {
    const Op op = request.op;
    const std::string doc_id = request.doc_id;
    Result<Response> result = backend_->Execute(std::move(request));
    if (op == Op::kPublish || op == Op::kUpdateRules || op == Op::kRemove) {
      cache_.erase(doc_id);
    }
    return result;
  }

  const std::string doc_id = request.doc_id;
  auto it = cache_.find(doc_id);
  if (it != cache_.end()) {
    request.known_rules_version = it->second.rules_version;
  }
  CSXA_ASSIGN_OR_RETURN(Response resp, backend_->Execute(std::move(request)));
  if (resp.not_modified && it != cache_.end()) {
    // Policy unchanged: reconstitute the full response from the cache.
    ++hits_;
    resp.not_modified = false;
    resp.header = it->second.header;
    resp.sealed_rules = it->second.sealed_rules;
    resp.rules_version = it->second.rules_version;
    return resp;
  }
  if (it != cache_.end()) {
    ++invalidations_;  // version moved (or entry vanished server-side)
  } else {
    ++misses_;
  }
  cache_[doc_id] = CacheEntry{resp.header, resp.sealed_rules, resp.rules_version};
  return resp;
}

}  // namespace csxa::dsp
