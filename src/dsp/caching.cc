#include "dsp/caching.h"

#include <mutex>

namespace csxa::dsp {

Result<Response> CachingClient::Execute(Request request) {
  // Callers that manage their own revalidation bypass the cache.
  if (request.op != Op::kOpenDocument || request.known_rules_version != 0) {
    const Op op = request.op;
    const std::string doc_id = request.doc_id;
    Result<Response> result = backend_->Execute(std::move(request));
    if (op == Op::kPublish || op == Op::kUpdateRules || op == Op::kRemove) {
      std::unique_lock lock(mu_);
      cache_.erase(doc_id);
    }
    return result;
  }

  const std::string doc_id = request.doc_id;
  // Shared-lock fast path: snapshot the cached triple, then release the
  // lock before the backend round trip so other sessions keep hitting.
  CacheEntry snapshot;
  bool cached = false;
  {
    std::shared_lock lock(mu_);
    auto it = cache_.find(doc_id);
    if (it != cache_.end()) {
      snapshot = it->second;
      cached = true;
    }
  }
  if (cached) request.known_rules_version = snapshot.rules_version;

  Result<Response> result = backend_->Execute(std::move(request));
  if (!result.ok()) {
    if (cached && result.status().code() == StatusCode::kNotFound) {
      // The cached document vanished server-side: drop the entry, or a
      // later republish under the same id could revalidate against bodies
      // from the deleted incarnation. Erase only the version we read, so
      // a racing fill of a newer incarnation is not destroyed.
      std::unique_lock lock(mu_);
      auto it = cache_.find(doc_id);
      if (it != cache_.end() &&
          it->second.rules_version == snapshot.rules_version) {
        cache_.erase(it);
      }
    }
    return result;
  }

  Response resp = std::move(result).value();
  if (resp.not_modified && cached) {
    // Policy unchanged *right now* (the backend just confirmed the cached
    // version is current): reconstitute the full response locally.
    hits_.fetch_add(1, std::memory_order_relaxed);
    resp.not_modified = false;
    resp.header = snapshot.header;
    resp.sealed_rules = snapshot.sealed_rules;
    resp.rules_version = snapshot.rules_version;
    return resp;
  }

  if (cached) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Fill — but never let an older racing response clobber a newer
    // entry: server versions are monotone, the cache must be too.
    std::unique_lock lock(mu_);
    auto it = cache_.find(doc_id);
    if (it == cache_.end() || it->second.rules_version < resp.rules_version) {
      cache_[doc_id] =
          CacheEntry{resp.header, resp.sealed_rules, resp.rules_version};
    }
  }
  return resp;
}

void CachingClient::Invalidate(const std::string& doc_id,
                               uint64_t rules_version) {
  std::unique_lock lock(mu_);
  auto it = cache_.find(doc_id);
  if (it == cache_.end()) return;
  // Keep entries already at (or past) the notified version: the
  // notification raced a fill of the very update it announces.
  if (rules_version != 0 && it->second.rules_version >= rules_version) return;
  cache_.erase(it);
  fanout_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace csxa::dsp
