#include "dsp/service.h"

namespace csxa::dsp {

Result<Response> Service::OpenDocument(const std::string& doc_id,
                                       uint64_t known_rules_version) {
  Request req;
  req.op = Op::kOpenDocument;
  req.doc_id = doc_id;
  req.known_rules_version = known_rules_version;
  return Execute(std::move(req));
}

Result<std::vector<soe::ChunkData>> Service::GetChunks(
    const std::string& doc_id, std::vector<ChunkSpan> spans) {
  Request req;
  req.op = Op::kGetChunks;
  req.doc_id = doc_id;
  req.spans = std::move(spans);
  CSXA_ASSIGN_OR_RETURN(Response resp, Execute(std::move(req)));
  return std::move(resp.chunks);
}

Result<Bytes> Service::GetContainer(const std::string& doc_id) {
  Request req;
  req.op = Op::kGetContainer;
  req.doc_id = doc_id;
  CSXA_ASSIGN_OR_RETURN(Response resp, Execute(std::move(req)));
  return std::move(resp.container);
}

Status Service::Publish(const std::string& doc_id, Bytes container,
                        Bytes sealed_rules) {
  Request req;
  req.op = Op::kPublish;
  req.doc_id = doc_id;
  req.container = std::move(container);
  req.sealed_rules = std::move(sealed_rules);
  return Execute(std::move(req)).status();
}

Status Service::UpdateRules(const std::string& doc_id, Bytes sealed_rules) {
  Request req;
  req.op = Op::kUpdateRules;
  req.doc_id = doc_id;
  req.sealed_rules = std::move(sealed_rules);
  return Execute(std::move(req)).status();
}

Status Service::Remove(const std::string& doc_id) {
  Request req;
  req.op = Op::kRemove;
  req.doc_id = doc_id;
  return Execute(std::move(req)).status();
}

Status Service::Ping() {
  Request req;
  req.op = Op::kPing;
  return Execute(std::move(req)).status();
}

}  // namespace csxa::dsp
