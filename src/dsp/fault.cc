#include "dsp/fault.h"

#include "common/logging.h"

namespace csxa::dsp {

FaultInjectingService::FaultInjectingService(Service* backend,
                                             FaultOptions options)
    : backend_(backend), options_(std::move(options)), rng_(options_.seed) {
  CSXA_CHECK(backend_ != nullptr);
}

FaultKind FaultInjectingService::Classify(uint64_t index) {
  // Manual toggles dominate the script: the load harness flips them on a
  // completed-op clock while tests script exact request windows.
  if (crashed_.load(std::memory_order_relaxed)) return FaultKind::kCrash;
  if (partitioned_.load(std::memory_order_relaxed)) {
    return FaultKind::kPartition;
  }
  for (const FaultWindow& w : options_.schedule) {
    if (index >= w.from_request && index < w.to_request) return w.kind;
  }
  if (options_.timeout_probability > 0) {
    std::lock_guard lock(rng_mu_);
    if (rng_.Chance(options_.timeout_probability)) return FaultKind::kTimeout;
  }
  return FaultKind::kNone;
}

Result<Response> FaultInjectingService::Execute(Request request) {
  const uint64_t index = requests_.fetch_add(1, std::memory_order_relaxed);
  const FaultKind kind = Classify(index);
  if (kind != FaultKind::kNone) {
    faults_.fetch_add(1, std::memory_order_relaxed);
  }
  switch (kind) {
    case FaultKind::kNone:
      return backend_->Execute(std::move(request));
    case FaultKind::kCrash:
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("replica crashed (injected)");
    case FaultKind::kPartition:
      partitions_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("network partition (injected)");
    case FaultKind::kTimeout: {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      // Applied, response lost: the caller must treat the outcome as
      // unknown — the at-least-once case retries and quorums exist for.
      (void)backend_->Execute(std::move(request));
      return Status::IoError("response timed out (injected)");
    }
    case FaultKind::kBlackhole: {
      blackholes_.fetch_add(1, std::memory_order_relaxed);
      // Dropped but acknowledged: the backend never sees the request, yet
      // the caller gets a plausible empty success. A replica fed this on a
      // write is now silently stale.
      return Response{};
    }
    case FaultKind::kDuplicate: {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      Request replay = request;  // the duplicated delivery
      Result<Response> first = backend_->Execute(std::move(request));
      if (!first.ok()) return first;
      return backend_->Execute(std::move(replay));
    }
  }
  return Status::Internal("unhandled fault kind");
}

}  // namespace csxa::dsp
