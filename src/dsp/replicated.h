#ifndef CSXA_DSP_REPLICATED_H_
#define CSXA_DSP_REPLICATED_H_

/// \file replicated.h
/// \brief Primary/backup replication with quorum writes, heartbeat
/// failure detection and op-log catch-up (ROADMAP item 3).
///
/// ShardedService scales the namespace *out*; ReplicatedService keeps it
/// *up*. It runs N interchangeable backend Services (typically each a
/// sharded fleet wrapped in a FaultInjectingService under test) as one
/// replica group:
///
///  - **Writes** (kPublish / kUpdateRules / kRemove) are applied on the
///    primary first — the primary's DspServer assigns the canonical rules
///    version — then fanned out to every in-sync backup with the
///    canonical version stamped into Request::force_rules_version, so all
///    replicas converge on one version history. The write is acked to the
///    caller once `write_quorum` replicas (counting the primary) applied
///    it; fewer acks return IoError and the caller retries (at-least-once
///    is safe: versions are monotone and version-keyed caches
///    revalidate). Every accepted write is appended to the op log.
///  - **Reads** are served by any in-sync replica (round-robin), guarded
///    by the committed rules version: a reply whose rules_version is
///    below the version last acked to a writer — or a NotFound for a
///    document known to be committed — marks the replica as lagging and
///    the read moves on. A stale reply never leaves this layer; the
///    stale_reads_served counter existing (and staying 0) is the point.
///  - **Failure detection** is heartbeat-based on a modeled clock: each
///    HeartbeatTick() pings every replica (Op::kPing) once. A replica
///    missing `suspect_after` consecutive beats is kDown. Request-path
///    failures additionally mark a replica kSuspect immediately (passive
///    detection), taking it out of rotation without waiting for a beat.
///    If the primary leaves the in-sync set, the next write (or tick)
///    promotes the first in-sync replica.
///  - **Reintegration**: a replica whose heartbeat returns catches up by
///    replaying the op-log suffix it missed (with canonical versions
///    forced), then rejoins the in-sync set. A replica caught serving
///    stale state (it acked a write it never applied) is rebuilt by
///    replaying the full log — replays are idempotent because versions
///    are forced and republishes overwrite.
///
/// Threading: safe for concurrent Execute()/HeartbeatTick() from any
/// number of threads. Writers and catch-up serialize on one write mutex
/// (log order == apply order on every replica); reads are lock-free
/// against each other and never block behind a write that is executing on
/// the replicas (state snapshots take a short mutex). Lock order is
/// write_mu_ -> mu_; replica Execute() calls are made holding write_mu_
/// at most (writes, catch-up) or nothing (reads, pings).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Where a replica stands in the group.
enum class ReplicaState : uint8_t {
  kInSync,   ///< serving reads, receiving writes
  kSuspect,  ///< failed a request or a beat; out of rotation, not yet down
  kDown,     ///< missed `suspect_after` consecutive heartbeats
  kLagging,  ///< caught serving stale state; needs full catch-up
};

/// \brief Human-readable name for a ReplicaState (e.g. "in-sync").
const char* ReplicaStateName(ReplicaState state);

/// \brief Replication knobs.
struct ReplicationOptions {
  /// Replicas (counting the primary) that must apply a write before it is
  /// acked. 0 means majority (n/2 + 1). Clamped to [1, n].
  size_t write_quorum = 0;
  /// Consecutive missed heartbeats before kSuspect becomes kDown.
  int suspect_after = 2;
};

/// \brief Monotone counters of the replication layer.
struct ReplicationStats {
  uint64_t writes = 0;            ///< quorum-acked writes
  uint64_t quorum_failures = 0;   ///< writes acked by fewer than quorum
  uint64_t read_reroutes = 0;     ///< reads served by a non-first choice
  uint64_t stale_reads_detected = 0;  ///< stale replies caught and bypassed
  uint64_t stale_reads_served = 0;    ///< stale replies returned (MUST be 0)
  uint64_t primary_promotions = 0;    ///< failovers of the primary role
  uint64_t reintegrations = 0;        ///< replicas caught up and rejoined
  uint64_t catchup_ops_replayed = 0;  ///< log entries replayed in catch-up
  uint64_t heartbeats = 0;            ///< ticks * replicas probed
  uint64_t heartbeat_failures = 0;    ///< probes that failed
};

/// \brief Service decorator running N backends as one replica group.
class ReplicatedService : public Service {
 public:
  /// Called (outside all locks) after a write reaches quorum: the policy
  /// update invalidation fan-out hooks in here (dissem/invalidation.h).
  using WriteCommitHook =
      std::function<void(const std::string& doc_id, uint64_t rules_version)>;

  /// `replicas` must be non-empty and outlive the group. All replicas are
  /// assumed empty and identical at construction; replica 0 is the
  /// initial primary.
  ReplicatedService(std::vector<Service*> replicas,
                    ReplicationOptions options);
  explicit ReplicatedService(std::vector<Service*> replicas)
      : ReplicatedService(std::move(replicas), ReplicationOptions{}) {}

  Result<Response> Execute(Request request) override;
  /// The current primary's view of the store (aggregating replicas would
  /// multiply document counts).
  ServiceStats stats() const override;

  /// One heartbeat round on the modeled clock: ping every replica, demote
  /// the unresponsive, reintegrate (catch up) the recovered, and make
  /// sure the primary role is held by an in-sync replica.
  void HeartbeatTick();

  /// Installs the post-commit hook (pass {} to clear).
  void set_on_write_committed(WriteCommitHook hook);

  size_t replica_count() const { return replicas_.size(); }
  size_t primary() const;
  std::vector<ReplicaState> replica_states() const;
  ReplicationStats replication_stats() const;
  /// Highest rules version acked to a writer for `doc_id` (0 if none).
  uint64_t committed_version(const std::string& doc_id) const;
  /// Op-log length (tests).
  size_t log_size() const;

 private:
  struct Replica {
    Service* service = nullptr;
    ReplicaState state = ReplicaState::kInSync;
    size_t applied_ops = 0;  ///< prefix of log_ applied on this replica
    int missed_heartbeats = 0;
  };

  static bool IsWrite(Op op) {
    return op == Op::kPublish || op == Op::kUpdateRules || op == Op::kRemove;
  }

  Result<Response> ExecuteWrite(Request request);
  Result<Response> ExecuteRead(Request request);
  /// Requires write_mu_. Ensures primary_ names an in-sync replica,
  /// promoting if needed; returns false when none is left.
  bool EnsurePrimaryLocked();
  /// Marks a replica out of rotation after a request-path IoError.
  void MarkSuspect(size_t index);
  /// Marks a replica caught serving stale state: full replay on rejoin.
  void MarkLagging(size_t index);
  /// Requires write_mu_. Replays the log onto `index`; true on rejoin.
  bool CatchUpLocked(size_t index);

  std::vector<Service*> replicas_;
  ReplicationOptions options_;

  /// Serializes writers and catch-up so the log order is the apply order
  /// on every replica.
  std::mutex write_mu_;
  /// Guards state_, primary_, log_, committed_ (held only for short
  /// bookkeeping sections, never across a replica call).
  mutable std::mutex mu_;
  std::vector<Replica> state_;
  size_t primary_ = 0;
  struct LogEntry {
    Request request;  ///< force_rules_version stamped with the canonical
  };
  std::vector<LogEntry> log_;
  std::map<std::string, uint64_t> committed_;
  WriteCommitHook on_write_committed_;
  std::atomic<size_t> read_cursor_{0};

  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> quorum_failures_{0};
  std::atomic<uint64_t> read_reroutes_{0};
  std::atomic<uint64_t> stale_reads_detected_{0};
  std::atomic<uint64_t> stale_reads_served_{0};
  std::atomic<uint64_t> primary_promotions_{0};
  std::atomic<uint64_t> reintegrations_{0};
  std::atomic<uint64_t> catchup_ops_replayed_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> heartbeat_failures_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_REPLICATED_H_
