#ifndef CSXA_DSP_SHARDED_H_
#define CSXA_DSP_SHARDED_H_

/// \file sharded.h
/// \brief Horizontal scale-out: one Service routing doc_ids across N
/// backend Services.
///
/// The DSP is untrusted and stateless with respect to the protocol, so
/// scaling it out is pure routing: a stable hash of the doc_id picks the
/// home shard; reads fail over to the other shards when the home shard
/// does not hold the document (e.g. documents placed before the shard
/// count changed). Publishing writes the home shard and clears stale
/// copies elsewhere; removal sweeps every shard — so failover can never
/// resurrect a superseded or deleted document. Terminals are oblivious —
/// they speak the same Execute() protocol to one shard or to a fleet.
///
/// Failover here is *layout* failover (the document lives on a non-home
/// shard), counted once per operation regardless of how many shards an op
/// touches — NOT availability failover. Routing away from crashed or
/// lagging replicas is ReplicatedService's job (replicated.h), which
/// keeps its own read_reroutes / primary_promotions counters; stack the
/// two (replica groups of sharded fleets) to get both.
///
/// Threading: the router holds no mutable routing state — only atomic
/// counters — so concurrent Execute() calls are safe as long as the
/// backend shards are themselves thread-safe (DspServer is). Multi-shard
/// writes (publish-then-clear, remove sweep) are NOT atomic across
/// shards: a racing reader can observe the intermediate state, which is
/// the same window a crashed-and-recovered sweep would leave; the
/// version-keyed revalidation protocol keeps that window safe (a reader
/// can see the old or the new version, never a torn mix of both).

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Service decorator fanning one namespace out over N backends.
class ShardedService : public Service {
 public:
  /// `shards` must be non-empty and outlive the router.
  explicit ShardedService(std::vector<Service*> shards);

  Result<Response> Execute(Request request) override;
  /// Aggregate load over all shards.
  ServiceStats stats() const override;

  /// Home shard of a document (stable FNV-1a hash of the id).
  size_t ShardFor(const std::string& doc_id) const;
  size_t shard_count() const { return shards_.size(); }

  /// \name Routing statistics
  /// @{
  /// Requests issued to each shard (including failover probes and remove
  /// sweeps); a point-in-time snapshot under concurrency.
  std::vector<uint64_t> shard_requests() const;
  /// Operations that found the document on a non-home shard while the
  /// home shard missed — evidence of old-layout residency. Counted at
  /// most ONCE per operation (not once per probed shard): read failovers,
  /// remove sweeps that only hit elsewhere, and publishes that cleared a
  /// stale non-home copy of an id the home shard had never seen. For
  /// crash/partition failover counts see the replica-level counters in
  /// ReplicatedService::replication_stats() (replicated.h).
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  std::vector<Service*> shards_;
  // Atomic per-shard counters: the router itself is lock-free.
  std::unique_ptr<std::atomic<uint64_t>[]> shard_requests_;
  std::atomic<uint64_t> failovers_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_SHARDED_H_
