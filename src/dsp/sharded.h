#ifndef CSXA_DSP_SHARDED_H_
#define CSXA_DSP_SHARDED_H_

/// \file sharded.h
/// \brief Horizontal scale-out: one Service routing doc_ids across N
/// backend Services.
///
/// The DSP is untrusted and stateless with respect to the protocol, so
/// scaling it out is pure routing: a stable hash of the doc_id picks the
/// home shard; reads fail over to the other shards when the home shard
/// does not hold the document (e.g. documents placed before the shard
/// count changed). Publishing writes the home shard and clears stale
/// copies elsewhere; removal sweeps every shard — so failover can never
/// resurrect a superseded or deleted document. Terminals are oblivious —
/// they speak the same Execute() protocol to one shard or to a fleet.

#include <string>
#include <vector>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Service decorator fanning one namespace out over N backends.
class ShardedService : public Service {
 public:
  /// `shards` must be non-empty and outlive the router.
  explicit ShardedService(std::vector<Service*> shards);

  Result<Response> Execute(Request request) override;
  /// Aggregate load over all shards.
  ServiceStats stats() const override;

  /// Home shard of a document (stable FNV-1a hash of the id).
  size_t ShardFor(const std::string& doc_id) const;
  size_t shard_count() const { return shards_.size(); }

  /// \name Routing statistics
  /// @{
  /// Requests issued to each shard (including failover probes).
  const std::vector<uint64_t>& shard_requests() const {
    return shard_requests_;
  }
  /// Requests served by a shard other than the document's home shard.
  uint64_t failovers() const { return failovers_; }
  /// @}

 private:
  std::vector<Service*> shards_;
  std::vector<uint64_t> shard_requests_;
  uint64_t failovers_ = 0;
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_SHARDED_H_
