#ifndef CSXA_DSP_RETRYING_H_
#define CSXA_DSP_RETRYING_H_

/// \file retrying.h
/// \brief Terminal-side retry decorator: timeouts + bounded exponential
/// backoff over idempotent operations.
///
/// The terminal end of the fault story. A transport failure (kIoError —
/// crash, partition, lost response) is transient by definition in this
/// stack: the heartbeat/failover machinery below (replicated.h) reroutes
/// around the fault, so a retried request usually lands on a healthy
/// replica. RetryingClient turns those transient errors into latency:
///
///  - only kIoError is retried — authoritative rejections (NotFound,
///    PermissionDenied, InvalidArgument) are final answers, and retrying
///    them would just hammer a healthy server;
///  - reads and pings always retry; writes retry only when
///    `retry_writes` is set. In this protocol writes ARE safe to retry
///    (at-least-once): versions are monotone, republishes overwrite, and
///    a kRemove retry answered NotFound just means the first, timed-out
///    attempt actually applied — that is translated back into success;
///  - backoff is exponential with a cap, on the *modeled* clock: no real
///    sleeps, the accumulated backoff is reported in seconds and the
///    `on_backoff` hook gives the embedding harness a place to advance
///    the world (the load harness pumps HeartbeatTick() there, so a
///    retry loop and failure detection make progress together, exactly
///    as wall-clock time would interleave them).
///
/// Threading: safe for concurrent Execute() from any number of threads;
/// counters are atomics and the hook is copied under a mutex per use.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Retry policy knobs.
struct RetryOptions {
  /// Total attempts including the first (1 disables retries).
  int max_attempts = 4;
  /// Modeled backoff before the first retry.
  double initial_backoff_seconds = 0.005;
  /// Growth factor per retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  double max_backoff_seconds = 0.25;
  /// Retry writes too (safe here: versioned, at-least-once tolerant).
  bool retry_writes = true;
};

/// \brief Service decorator retrying transient (kIoError) failures.
class RetryingClient : public Service {
 public:
  /// Called before each retry with the attempt number just failed and the
  /// modeled backoff being "slept". The load harness advances heartbeats
  /// here so failover happens *during* a retry loop.
  using BackoffHook = std::function<void(int attempt, double backoff_seconds)>;

  /// `backend` must outlive the client.
  RetryingClient(Service* backend, RetryOptions options);
  explicit RetryingClient(Service* backend)
      : RetryingClient(backend, RetryOptions{}) {}

  Result<Response> Execute(Request request) override;
  ServiceStats stats() const override { return backend_->stats(); }

  /// Installs the backoff hook (pass {} to clear).
  void set_on_backoff(BackoffHook hook);

  /// \name Retry statistics
  /// @{
  /// Attempts beyond the first.
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  /// Operations that exhausted the attempt budget and failed.
  uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// kRemove retries answered NotFound and translated to success.
  uint64_t remove_races_absorbed() const {
    return remove_races_absorbed_.load(std::memory_order_relaxed);
  }
  /// Total modeled backoff "slept" across all operations.
  double modeled_backoff_seconds() const {
    return modeled_backoff_seconds_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  Service* backend_;
  RetryOptions options_;
  std::mutex hook_mu_;  // guards on_backoff_
  BackoffHook on_backoff_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> remove_races_absorbed_{0};
  std::atomic<double> modeled_backoff_seconds_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_RETRYING_H_
