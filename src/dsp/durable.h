#ifndef CSXA_DSP_DURABLE_H_
#define CSXA_DSP_DURABLE_H_

/// \file durable.h
/// \brief Disk-backed DSP: the crash-safe, tamper-evident Service backend.
///
/// DspServer loses everything on restart; DurableServer stores the same
/// (container bytes, sealed rules, rules version) state in the sealed
/// block layer of dsp/blockfile.h, under the paper's threat model extended
/// to the disk: the storage volume is as untrusted as the DSP process, so
/// every persisted byte is authenticated-encrypted and position-bound
/// (crypto/blockseal.h), and every crash or corruption must be *detected*,
/// never silently decrypted around.
///
/// ## Commit protocol
///
/// Every mutation is one blob (doc_id + version + payload, sealed across
/// 4 KB data blocks) plus one 512 B manifest record naming the blob's
/// extent, written strictly in this order:
///
///   1. append the blob's data blocks          (not yet reachable)
///   2. fsync the data segments                (blocks durable, orphaned)
///   3. append + fsync one manifest record     (<-- the commit point)
///
/// A crash before step 3 leaves orphaned tail blocks that no manifest
/// record names; recovery truncates them and the store reopens in exactly
/// the pre-op state. A crash after step 3 is simply the post-op state.
/// There is no window in which a record names blocks that are not durable:
/// creating a segment file (or the MANIFEST) also fsyncs its directory, so
/// the dirent cannot be lost after a record referencing the segment
/// commits. Nonces are structurally unique — `epoch || counter`, with the
/// epoch drawn from the Env's entropy source at every open — so a crash
/// that rewinds block indices never reuses a CTR keystream (see
/// crypto/blockseal.h).
///
/// ## Recovery state machine (on Open)
///
///   scan manifest ── torn tail (≤1 unreadable trailing frame + partial
///        │           bytes) → truncate; interior invalid record →
///        │           kIntegrityError, store does not open
///        ▼
///   replay records → documents, versions, tombstones, live extents
///        ▼
///   GC: truncate data blocks past the last committed extent (orphans of
///        an interrupted step 1-2)
///        ▼
///   last record kClean?  yes → *warm open*: blobs verified lazily on
///        │                     first access
///        no → *cold open*: eagerly read + authenticate every live doc
///        ▼
///   verification failure (bit flip, truncation, relocation, transplant,
///   extent remap) → the document is *quarantined*: reads fail with a
///   typed kIntegrityError naming the damage; every other document keeps
///   serving; republishing the id heals it.
///
/// Close() appends the kClean shutdown marker; destruction without Close()
/// (a crash) leaves no marker, forcing the cold path. A warm open
/// *consumes* the marker (it appends an in-use record on top), so a crash
/// after a warm open is still detected as unclean next time.
///
/// Each blob embeds its own doc_id and version, cross-checked against the
/// manifest record that names it — a DSP that remaps extents between
/// documents (both individually authentic) is caught at load.
///
/// Threading: like DspServer, Execute() is safe from any number of
/// threads. Loaded documents serve reads under a shared lock from memory;
/// mutations and first-access loads of a warm open serialize on the
/// exclusive lock, which also serializes every BlockLog / ManifestLog
/// call (see blockfile.h).

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/container.h"
#include "crypto/keys.h"
#include "dsp/blockfile.h"
#include "dsp/service.h"

namespace csxa::dsp {

/// \brief Configuration for DurableServer::Open.
struct DurableOptions {
  /// Directory holding MANIFEST and data-NNNNNN.seg (created if absent).
  std::string directory;
  /// Identity baked into every block's AAD: blocks from a store with a
  /// different id (or the manifest of any store) never authenticate here.
  std::string store_id = "dsp";
  /// Store sealing key; never written to the env.
  crypto::SymmetricKey key;
  /// Filesystem to run on; null means the real one (PosixEnv::Default()).
  Env* env = nullptr;
  /// Data segment size; rounded down to whole 4 KB blocks.
  size_t segment_bytes = 4 << 20;
  /// Rollback anchor: the publisher's record of how many manifest records
  /// the store had committed (the `commit_seq` of its last mutation
  /// response). When non-zero, Open fails with kIntegrityError if fewer
  /// valid records survive the scan — catching a hostile volume that
  /// rolled back the last committed mutation disguised as a crash's torn
  /// tail. 0 disables the check.
  uint64_t expected_manifest_records = 0;
};

/// \brief What recovery found and did while opening the store.
struct RecoveryReport {
  bool clean_shutdown = false;   ///< last manifest record was kClean
  uint64_t manifest_records = 0;  ///< valid records replayed
  uint64_t torn_tail_records = 0;  ///< manifest frames dropped as torn
  uint64_t torn_tail_bytes = 0;    ///< manifest + data tail bytes dropped
  /// A whole trailing manifest frame failed authentication and was
  /// dropped. A crash mid-append leaves this — but so does an attacker
  /// flipping one bit of the last committed record to silently roll back
  /// exactly one mutation. Publishers holding a `commit_seq` commitment
  /// should verify it (or open with expected_manifest_records set).
  bool rollback_suspected = false;
  uint64_t orphaned_blocks_gced = 0;  ///< uncommitted data blocks truncated
  uint64_t blocks_verified = 0;  ///< blocks authenticated during eager verify
  uint64_t documents = 0;        ///< live documents after replay
  /// Documents whose blobs failed verification on a cold open.
  std::vector<std::string> quarantined;
};

/// \brief Durable DSP backend speaking the Service protocol.
class DurableServer : public Service {
 public:
  /// Opens (creating or recovering) the store at `options.directory`.
  static Result<std::unique_ptr<DurableServer>> Open(DurableOptions options);

  Result<Response> Execute(Request request) override;
  ServiceStats stats() const override;

  /// Appends the clean-shutdown marker. Idempotent; after OK, destroying
  /// the server and reopening takes the warm path.
  Status Close();

  /// What Open's recovery pass found.
  const RecoveryReport& recovery() const { return recovery_; }

  /// Documents currently quarantined (damaged, serving kIntegrityError).
  std::vector<std::string> quarantined() const;

  size_t size() const {
    std::shared_lock lock(mu_);
    return docs_.size();
  }

 private:
  /// One live document: durable extent meta (always present) plus the
  /// decrypted serving state (present when `loaded`).
  struct Doc {
    uint64_t rules_version = 0;  ///< current serving version
    uint64_t commit_version = 0;  ///< version embedded in the commit blob
    uint64_t first_block = 0;   ///< commit blob extent (container + rules)
    uint64_t block_count = 0;
    uint64_t rules_first = 0;   ///< later rules-update blob; count 0 = none
    uint64_t rules_count = 0;

    bool loaded = false;
    std::unique_ptr<Bytes> container_bytes;  // stable address for the view
    crypto::SecureContainer container;
    Bytes sealed_rules;
  };

  DurableServer() = default;

  /// Writes one blob as sealed blocks, fsyncs, returns [first, count).
  /// Requires the exclusive lock.
  Result<std::pair<uint64_t, uint64_t>> WriteExtent(Span blob);
  /// Reads a blob back from its extent. Requires the exclusive lock.
  Result<Bytes> ReadExtent(uint64_t first, uint64_t count) const;
  /// Loads + verifies a doc's blobs into memory (exclusive lock). On any
  /// failure the doc's state is untouched and the error is returned.
  Status LoadDoc(const std::string& doc_id, Doc* doc);
  /// Serves one read op from a loaded doc (either lock held).
  Result<Response> ServeRead(const Request& request, const Doc& doc) const;

  RecoveryReport recovery_;
  std::string store_id_;
  crypto::SymmetricKey key_;

  /// Guards everything below plus all BlockLog / ManifestLog calls.
  mutable std::shared_mutex mu_;
  BlockLog blocks_;
  ManifestLog manifest_;
  crypto::NonceSequence nonces_;
  std::map<std::string, Doc> docs_;
  std::map<std::string, uint64_t> retired_versions_;
  /// Damage found by verification, keyed by doc_id; reads of these ids
  /// return the stored status until a republish heals them.
  std::map<std::string, Status> quarantine_;
  bool closed_ = false;

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> chunks_served_{0};
  mutable std::atomic<uint64_t> bytes_served_{0};
  mutable std::atomic<uint64_t> not_modified_{0};
};

}  // namespace csxa::dsp

#endif  // CSXA_DSP_DURABLE_H_
