#ifndef CSXA_XML_WRITER_H_
#define CSXA_XML_WRITER_H_

/// \file writer.h
/// \brief Canonical event-stream writer.
///
/// The SOE's delivered view leaves the card as an event stream; the proxy
/// renders it with this writer. Output is canonical (stable attribute
/// order as received, escaped text, no added whitespace) so that two event
/// streams are equal iff their rendered strings are equal — the property
/// the oracle tests rely on.

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/event.h"

namespace csxa::xml {

/// \brief EventSink rendering canonical XML text.
///
/// Renders from borrowed views natively (`OnEventView`): text and
/// attribute bytes flow from the producer's buffer straight into the
/// output string, so the borrowed pipeline never materializes an event on
/// the way out.
class CanonicalWriter : public EventSink {
 public:
  Status OnEvent(const Event& event) override;
  Status OnEventView(const EventView& view) override;

  /// The rendered document so far.
  const std::string& str() const { return out_; }
  /// True if every opened element has closed.
  bool complete() const { return depth_ == 0; }

 private:
  std::string out_;
  int depth_ = 0;
  std::vector<AttrView> attr_scratch_;  // OnEvent → OnEventView bridge
};

/// \brief EventSink that records events into a vector (test utility).
class EventRecorder : public EventSink {
 public:
  Status OnEvent(const Event& event) override {
    if (event.type != EventType::kEnd) events_.push_back(event);
    return Status::OK();
  }
  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> Take() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

/// Renders an event vector to canonical XML text.
Result<std::string> RenderEvents(const std::vector<Event>& events);

}  // namespace csxa::xml

#endif  // CSXA_XML_WRITER_H_
