#include "xml/escape.h"

namespace csxa::xml {

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  AppendEscaped(raw, &out);
  return out;
}

void AppendEscaped(std::string_view raw, std::string* outp) {
  std::string& out = *outp;
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
}

Result<std::string> Unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  CSXA_RETURN_IF_ERROR(AppendUnescaped(escaped, &out));
  return out;
}

Status AppendUnescaped(std::string_view escaped, std::string* outp) {
  std::string& out = *outp;
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '&') {
      out.push_back(escaped[i]);
      continue;
    }
    size_t semi = escaped.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return csxa::Status::ParseError("unterminated entity reference");
    }
    std::string_view ent = escaped.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      size_t start = 1;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        base = 16;
        start = 2;
      }
      if (start >= ent.size()) {
        return csxa::Status::ParseError("empty character reference");
      }
      unsigned long code = 0;
      for (size_t k = start; k < ent.size(); ++k) {
        char c = ent[k];
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return csxa::Status::ParseError("bad character reference digit");
        }
        code = code * base + static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) {
          return csxa::Status::ParseError("character reference out of range");
        }
      }
      // Encode as UTF-8.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return csxa::Status::ParseError("unknown entity: &" + std::string(ent) +
                                      ";");
    }
    i = semi;
  }
  return Status::OK();
}

}  // namespace csxa::xml
