#ifndef CSXA_XML_EVENT_H_
#define CSXA_XML_EVENT_H_

/// \file event.h
/// \brief SAX-style event model shared by the parser, the access-control
/// evaluator and the output writers.
///
/// The paper's evaluator "is fed by an event-based parser (e.g., SAX)
/// raising open, value and close events" (§2.3). Attributes ride along with
/// the open event; the XPath fragment XP{[],*,//} does not address them, so
/// they inherit their element's authorization.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace csxa::xml {

/// One attribute of a start-element event.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

/// Event kinds raised by the parser.
enum class EventType : uint8_t {
  /// Opening tag; `name` and `attrs` are set.
  kOpen = 0,
  /// Text content; `text` is set.
  kValue = 1,
  /// Closing tag; `name` is set.
  kClose = 2,
  /// End of document.
  kEnd = 3,
};

/// \brief A single parsing event (open / value / close / end).
struct Event {
  EventType type = EventType::kEnd;
  std::string name;               ///< Tag name for kOpen / kClose.
  std::string text;               ///< Character data for kValue.
  std::vector<Attribute> attrs;   ///< Attributes for kOpen.

  static Event Open(std::string tag, std::vector<Attribute> attrs = {}) {
    Event e;
    e.type = EventType::kOpen;
    e.name = std::move(tag);
    e.attrs = std::move(attrs);
    return e;
  }
  static Event Value(std::string text) {
    Event e;
    e.type = EventType::kValue;
    e.text = std::move(text);
    return e;
  }
  static Event Close(std::string tag) {
    Event e;
    e.type = EventType::kClose;
    e.name = std::move(tag);
    return e;
  }
  static Event End() { return Event{}; }

  bool operator==(const Event&) const = default;
};

/// \brief Consumer interface for event streams.
///
/// Implementations include the access-control evaluator, the canonical
/// writer and the document encoder.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Receives the next event. Returning a non-OK status aborts the stream.
  virtual Status OnEvent(const Event& event) = 0;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_EVENT_H_
