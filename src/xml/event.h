#ifndef CSXA_XML_EVENT_H_
#define CSXA_XML_EVENT_H_

/// \file event.h
/// \brief SAX-style event model shared by the parser, the access-control
/// evaluator and the output writers.
///
/// The paper's evaluator "is fed by an event-based parser (e.g., SAX)
/// raising open, value and close events" (§2.3). Attributes ride along with
/// the open event; the XPath fragment XP{[],*,//} does not address them, so
/// they inherit their element's authorization.
///
/// Events carry an optional interned `TagId` (common/interner.h) assigned
/// by their producer: the document decoder emits its dictionary's ids
/// natively, and the parser / DOM emitter fill them in when handed an
/// interner. Consumers that dispatch per tag (the evaluator above all)
/// translate the producer id once and then work on integers; `name`/`text`
/// remain owned strings so recorded event streams stay valid after their
/// producer is gone (short tags sit in SSO storage, so ownership costs no
/// heap traffic on the hot path).

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace csxa::xml {

/// One attribute of a start-element event.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

/// Event kinds raised by the parser.
enum class EventType : uint8_t {
  /// Opening tag; `name` and `attrs` are set.
  kOpen = 0,
  /// Text content; `text` is set.
  kValue = 1,
  /// Closing tag; `name` is set.
  kClose = 2,
  /// End of document.
  kEnd = 3,
};

/// \brief A single parsing event (open / value / close / end).
struct Event {
  EventType type = EventType::kEnd;
  std::string name;               ///< Tag name for kOpen / kClose.
  std::string text;               ///< Character data for kValue.
  std::vector<Attribute> attrs;   ///< Attributes for kOpen.
  /// Producer-assigned interned id of `name` (kNoTagId when the producer
  /// had no interner). Advisory: equality ignores it.
  TagId tag_id = kNoTagId;

  static Event Open(std::string tag, std::vector<Attribute> attrs = {},
                    TagId id = kNoTagId) {
    Event e;
    e.type = EventType::kOpen;
    e.name = std::move(tag);
    e.attrs = std::move(attrs);
    e.tag_id = id;
    return e;
  }
  static Event Value(std::string text) {
    Event e;
    e.type = EventType::kValue;
    e.text = std::move(text);
    return e;
  }
  static Event Close(std::string tag, TagId id = kNoTagId) {
    Event e;
    e.type = EventType::kClose;
    e.name = std::move(tag);
    e.tag_id = id;
    return e;
  }
  static Event End() { return Event{}; }

  /// Structural equality; the advisory tag_id is deliberately excluded so
  /// streams from id-carrying and plain producers compare equal.
  bool operator==(const Event& o) const {
    return type == o.type && name == o.name && text == o.text &&
           attrs == o.attrs;
  }
};

/// \brief Consumer interface for event streams.
///
/// Implementations include the access-control evaluator, the canonical
/// writer and the document encoder.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Receives the next event. Returning a non-OK status aborts the stream.
  virtual Status OnEvent(const Event& event) = 0;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_EVENT_H_
