#ifndef CSXA_XML_EVENT_H_
#define CSXA_XML_EVENT_H_

/// \file event.h
/// \brief SAX-style event model shared by the parser, the access-control
/// evaluator and the output writers.
///
/// The paper's evaluator "is fed by an event-based parser (e.g., SAX)
/// raising open, value and close events" (§2.3). Attributes ride along with
/// the open event; the XPath fragment XP{[],*,//} does not address them, so
/// they inherit their element's authorization.
///
/// Two representations exist:
///
///  - `Event` **owns** its strings. Recorded owning streams stay valid
///    after their producer is gone; short tags sit in SSO storage.
///  - `EventView` **borrows**: tag/text are `std::string_view` slices of a
///    producer-owned buffer (the parser's input, the decoder's chunk
///    scratch, a DOM node's strings, or an `EventArena`). Views are only
///    valid until the producer's next event — consumers that must retain
///    one call `Materialize()` (→ owning `Event`) or record it into an
///    `EventArena` they control. This is the pipeline's zero-copy fast
///    path: a text event flows parser/decoder → evaluator → writer without
///    its bytes ever being copied into a per-event allocation.
///
/// Both carry an optional interned `TagId` (common/interner.h) assigned by
/// their producer: the document decoder emits its dictionary's ids
/// natively, and the parser / DOM emitter fill them in when handed an
/// interner. Consumers that dispatch per tag (the evaluator above all)
/// translate the producer id once and then work on integers. The id is
/// advisory: equality ignores it.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace csxa::xml {

/// One attribute of a start-element event (owning form).
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

/// One attribute of a start-element event (borrowed form).
struct AttrView {
  std::string_view name;
  std::string_view value;

  bool operator==(const AttrView&) const = default;
};

/// Event kinds raised by the parser.
enum class EventType : uint8_t {
  /// Opening tag; `name` and `attrs` are set.
  kOpen = 0,
  /// Text content; `text` is set.
  kValue = 1,
  /// Closing tag; `name` is set.
  kClose = 2,
  /// End of document.
  kEnd = 3,
};

/// \brief A single parsing event (open / value / close / end), owning form.
struct Event {
  EventType type = EventType::kEnd;
  std::string name;               ///< Tag name for kOpen / kClose.
  std::string text;               ///< Character data for kValue.
  std::vector<Attribute> attrs;   ///< Attributes for kOpen.
  /// Producer-assigned interned id of `name` (kNoTagId when the producer
  /// had no interner). Advisory: equality ignores it.
  TagId tag_id = kNoTagId;

  static Event Open(std::string tag, std::vector<Attribute> attrs = {},
                    TagId id = kNoTagId) {
    Event e;
    e.type = EventType::kOpen;
    e.name = std::move(tag);
    e.attrs = std::move(attrs);
    e.tag_id = id;
    return e;
  }
  static Event Value(std::string text) {
    Event e;
    e.type = EventType::kValue;
    e.text = std::move(text);
    return e;
  }
  static Event Close(std::string tag, TagId id = kNoTagId) {
    Event e;
    e.type = EventType::kClose;
    e.name = std::move(tag);
    e.tag_id = id;
    return e;
  }
  static Event End() { return Event{}; }

  /// Structural equality; the advisory tag_id is deliberately excluded so
  /// streams from id-carrying and plain producers compare equal.
  bool operator==(const Event& o) const {
    return type == o.type && name == o.name && text == o.text &&
           attrs == o.attrs;
  }
};

/// \brief A single parsing event, borrowed form.
///
/// All views (including `attrs[i].name/value`) point into storage owned by
/// the producer; unless documented otherwise they are invalidated by the
/// producer's next event, its destruction, or — for arena-backed streams —
/// `EventArena::Reset()`.
struct EventView {
  EventType type = EventType::kEnd;
  std::string_view name;          ///< Tag name for kOpen / kClose.
  std::string_view text;          ///< Character data for kValue.
  const AttrView* attrs = nullptr;  ///< Attributes for kOpen.
  size_t num_attrs = 0;
  /// Advisory producer-assigned interned id of `name`; equality ignores it.
  TagId tag_id = kNoTagId;

  static EventView Open(std::string_view tag, const AttrView* attrs = nullptr,
                        size_t num_attrs = 0, TagId id = kNoTagId) {
    EventView v;
    v.type = EventType::kOpen;
    v.name = tag;
    v.attrs = attrs;
    v.num_attrs = num_attrs;
    v.tag_id = id;
    return v;
  }
  static EventView Value(std::string_view text) {
    EventView v;
    v.type = EventType::kValue;
    v.text = text;
    return v;
  }
  static EventView Close(std::string_view tag, TagId id = kNoTagId) {
    EventView v;
    v.type = EventType::kClose;
    v.name = tag;
    v.tag_id = id;
    return v;
  }
  static EventView End() { return EventView{}; }

  /// Escape hatch: deep-copies the borrowed bytes into an owning Event
  /// that survives the producer. The advisory tag_id is preserved.
  Event Materialize() const;

  /// Structural equality (tag_id excluded), mirroring Event::operator==.
  bool operator==(const EventView& o) const {
    if (type != o.type || name != o.name || text != o.text ||
        num_attrs != o.num_attrs) {
      return false;
    }
    for (size_t i = 0; i < num_attrs; ++i) {
      if (!(attrs[i] == o.attrs[i])) return false;
    }
    return true;
  }
};

/// Builds a borrowed view over an owning event. `attr_scratch` (cleared
/// first) receives the attribute views and must outlive every use of the
/// returned view; the event itself must outlive it too.
EventView ViewOf(const Event& e, std::vector<AttrView>* attr_scratch);

/// \brief Bump allocator owning the bytes behind a recorded borrowed
/// stream.
///
/// The explicit-ownership companion of `EventView`: producers (or
/// consumers that must retain events past a producer's lifetime) copy the
/// borrowed bytes into an arena once, and every view handed back borrows
/// from the arena instead. One arena serves a whole recorded stream, so
/// the per-event cost is a bump-pointer copy, never a per-string
/// allocation.
///
/// Ownership rules (see src/xml/README.md):
///  - views returned by Copy()/CopyAttrs()/Record() are valid until
///    Reset() or destruction — *not* invalidated by later arena use;
///  - Reset() keeps the largest block for reuse but invalidates every
///    outstanding view;
///  - the arena never shrinks while views are live; Materialize() remains
///    the escape hatch for single events that must outlive the arena.
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;
  // Movable: blocks live on the heap, so outstanding views survive a move
  // (RecordedEvents relies on this to be returnable by value).
  EventArena(EventArena&&) = default;
  EventArena& operator=(EventArena&&) = default;

  /// Copies `s` into the arena; the returned view lives until Reset().
  std::string_view Copy(std::string_view s);
  /// Copies `n` attribute views (array and backing strings) into the
  /// arena; the returned array lives until Reset().
  const AttrView* CopyAttrs(const AttrView* attrs, size_t n);
  /// Deep-copies a borrowed event into the arena and returns a view of
  /// the arena-owned copy (the recorded stream's unit operation).
  EventView Record(const EventView& v);

  /// Invalidates every outstanding view; keeps the largest block.
  void Reset();
  /// Bytes handed out so far (excludes block slack).
  size_t bytes_used() const { return bytes_used_; }

 private:
  char* Allocate(size_t n, size_t align);

  struct Block {
    std::unique_ptr<char[]> data;
    size_t cap = 0;
    size_t used = 0;
  };
  static constexpr size_t kMinBlock = 4096;
  // Growth ceiling: blocks double up to this; larger single allocations
  // get a dedicated exact-size block.
  static constexpr size_t kMaxBlock = 65536;
  std::vector<Block> blocks_;
  size_t bytes_used_ = 0;
};

/// \brief A recorded borrowed event stream: a vector of views plus the
/// arena that owns their bytes. The parse-into-arena and record-and-replay
/// paths both return this.
struct RecordedEvents {
  EventArena arena;
  std::vector<EventView> events;

  /// Deep-copies `v` into the arena and appends the arena-backed view.
  void Append(const EventView& v) { events.push_back(arena.Record(v)); }
};

/// \brief Consumer interface for event streams.
///
/// Implementations include the access-control evaluator, the canonical
/// writer and the document encoder. Sinks receive events through one of
/// two entry points:
///  - OnEvent(const Event&): owning events, always available;
///  - OnEventView(const EventView&): the borrowed fast path. The default
///    implementation materializes and forwards to OnEvent(), so every
///    sink accepts borrowed streams; hot sinks override it to consume the
///    views in place (the borrowed contract: views die when the call
///    returns).
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Receives the next event. Returning a non-OK status aborts the stream.
  virtual Status OnEvent(const Event& event) = 0;
  /// Borrowed fast path; views are valid only for the duration of the
  /// call. Default: materialize and forward to OnEvent().
  virtual Status OnEventView(const EventView& view) {
    return OnEvent(view.Materialize());
  }
};

}  // namespace csxa::xml

#endif  // CSXA_XML_EVENT_H_
