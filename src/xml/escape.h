#ifndef CSXA_XML_ESCAPE_H_
#define CSXA_XML_ESCAPE_H_

/// \file escape.h
/// \brief XML entity escaping and unescaping.

#include <string>
#include <string_view>

#include "common/status.h"

namespace csxa::xml {

/// Escapes &, <, >, ", ' for safe inclusion in text or attribute values.
std::string Escape(std::string_view raw);

/// Append-style Escape: writes into `out` without a temporary string, so
/// hot writers keep one growing buffer (the zero-copy pipeline's sink
/// side).
void AppendEscaped(std::string_view raw, std::string* out);

/// Resolves the five predefined entities plus decimal/hex character
/// references. Unknown entities are a ParseError.
Result<std::string> Unescape(std::string_view escaped);

/// Append-style Unescape: appends the resolved text to `out` (which is
/// not cleared), so the parser reuses scratch buffers across events.
Status AppendUnescaped(std::string_view escaped, std::string* out);

}  // namespace csxa::xml

#endif  // CSXA_XML_ESCAPE_H_
