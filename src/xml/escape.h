#ifndef CSXA_XML_ESCAPE_H_
#define CSXA_XML_ESCAPE_H_

/// \file escape.h
/// \brief XML entity escaping and unescaping.

#include <string>
#include <string_view>

#include "common/status.h"

namespace csxa::xml {

/// Escapes &, <, >, ", ' for safe inclusion in text or attribute values.
std::string Escape(std::string_view raw);

/// Resolves the five predefined entities plus decimal/hex character
/// references. Unknown entities are a ParseError.
Result<std::string> Unescape(std::string_view escaped);

}  // namespace csxa::xml

#endif  // CSXA_XML_ESCAPE_H_
