#include "xml/event.h"

#include <cstring>

namespace csxa::xml {

Event EventView::Materialize() const {
  Event e;
  e.type = type;
  e.name.assign(name);
  e.text.assign(text);
  e.attrs.reserve(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    e.attrs.push_back(Attribute{std::string(attrs[i].name),
                                std::string(attrs[i].value)});
  }
  e.tag_id = tag_id;
  return e;
}

EventView ViewOf(const Event& e, std::vector<AttrView>* attr_scratch) {
  attr_scratch->clear();
  for (const Attribute& a : e.attrs) {
    attr_scratch->push_back(AttrView{a.name, a.value});
  }
  EventView v;
  v.type = e.type;
  v.name = e.name;
  v.text = e.text;
  v.attrs = attr_scratch->data();
  v.num_attrs = attr_scratch->size();
  v.tag_id = e.tag_id;
  return v;
}

char* EventArena::Allocate(size_t n, size_t align) {
  size_t need = n + align - 1;
  if (blocks_.empty() || blocks_.back().cap - blocks_.back().used < need) {
    // Geometric growth capped at kMaxBlock so one outlier string never
    // becomes the doubling base; oversized requests get an exact-size
    // block instead of inflating the growth schedule.
    size_t cap = kMinBlock;
    if (!blocks_.empty()) {
      cap = blocks_.back().cap * 2;
      if (cap > kMaxBlock) cap = kMaxBlock;
      if (cap < kMinBlock) cap = kMinBlock;
    }
    if (cap < need) cap = need;
    Block b;
    b.data = std::make_unique<char[]>(cap);
    b.cap = cap;
    blocks_.push_back(std::move(b));
  }
  Block& b = blocks_.back();
  size_t off = b.used;
  size_t misalign = reinterpret_cast<uintptr_t>(b.data.get() + off) % align;
  if (misalign != 0) off += align - misalign;
  char* p = b.data.get() + off;
  b.used = off + n;
  bytes_used_ += n;
  return p;
}

std::string_view EventArena::Copy(std::string_view s) {
  if (s.empty()) return {};
  char* p = Allocate(s.size(), 1);
  std::memcpy(p, s.data(), s.size());
  return std::string_view(p, s.size());
}

const AttrView* EventArena::CopyAttrs(const AttrView* attrs, size_t n) {
  if (n == 0) return nullptr;
  char* raw = Allocate(n * sizeof(AttrView), alignof(AttrView));
  AttrView* out = reinterpret_cast<AttrView*>(raw);
  for (size_t i = 0; i < n; ++i) {
    out[i].name = Copy(attrs[i].name);
    out[i].value = Copy(attrs[i].value);
  }
  return out;
}

EventView EventArena::Record(const EventView& v) {
  EventView out;
  out.type = v.type;
  out.name = Copy(v.name);
  out.text = Copy(v.text);
  out.attrs = CopyAttrs(v.attrs, v.num_attrs);
  out.num_attrs = v.num_attrs;
  out.tag_id = v.tag_id;
  return out;
}

void EventArena::Reset() {
  if (blocks_.empty()) {
    bytes_used_ = 0;
    return;
  }
  size_t largest = 0;
  for (size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].cap > blocks_[largest].cap) largest = i;
  }
  Block keep = std::move(blocks_[largest]);
  keep.used = 0;
  blocks_.clear();
  blocks_.push_back(std::move(keep));
  bytes_used_ = 0;
}

}  // namespace csxa::xml
