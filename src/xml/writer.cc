#include "xml/writer.h"

#include "xml/escape.h"

namespace csxa::xml {

Status CanonicalWriter::OnEvent(const Event& event) {
  switch (event.type) {
    case EventType::kOpen:
      out_.push_back('<');
      out_ += event.name;
      for (const Attribute& a : event.attrs) {
        out_.push_back(' ');
        out_ += a.name;
        out_ += "=\"";
        out_ += Escape(a.value);
        out_.push_back('"');
      }
      out_.push_back('>');
      ++depth_;
      return Status::OK();
    case EventType::kValue:
      out_ += Escape(event.text);
      return Status::OK();
    case EventType::kClose:
      if (depth_ == 0) {
        return Status::InvalidArgument("close event without open");
      }
      out_ += "</";
      out_ += event.name;
      out_.push_back('>');
      --depth_;
      return Status::OK();
    case EventType::kEnd:
      return Status::OK();
  }
  return Status::Internal("unknown event type");
}

Result<std::string> RenderEvents(const std::vector<Event>& events) {
  CanonicalWriter w;
  for (const Event& e : events) {
    CSXA_RETURN_IF_ERROR(w.OnEvent(e));
  }
  if (!w.complete()) {
    return Status::InvalidArgument("unbalanced event stream");
  }
  return w.str();
}

}  // namespace csxa::xml
