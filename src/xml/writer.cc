#include "xml/writer.h"

#include "xml/escape.h"

namespace csxa::xml {

Status CanonicalWriter::OnEvent(const Event& event) {
  return OnEventView(ViewOf(event, &attr_scratch_));
}

Status CanonicalWriter::OnEventView(const EventView& event) {
  switch (event.type) {
    case EventType::kOpen:
      out_.push_back('<');
      out_ += event.name;
      for (size_t i = 0; i < event.num_attrs; ++i) {
        const AttrView& a = event.attrs[i];
        out_.push_back(' ');
        out_ += a.name;
        out_ += "=\"";
        AppendEscaped(a.value, &out_);
        out_.push_back('"');
      }
      out_.push_back('>');
      ++depth_;
      return Status::OK();
    case EventType::kValue:
      AppendEscaped(event.text, &out_);
      return Status::OK();
    case EventType::kClose:
      if (depth_ == 0) {
        return Status::InvalidArgument("close event without open");
      }
      out_ += "</";
      out_ += event.name;
      out_.push_back('>');
      --depth_;
      return Status::OK();
    case EventType::kEnd:
      return Status::OK();
  }
  return Status::Internal("unknown event type");
}

Result<std::string> RenderEvents(const std::vector<Event>& events) {
  CanonicalWriter w;
  for (const Event& e : events) {
    CSXA_RETURN_IF_ERROR(w.OnEvent(e));
  }
  if (!w.complete()) {
    return Status::InvalidArgument("unbalanced event stream");
  }
  return w.str();
}

}  // namespace csxa::xml
