#ifndef CSXA_XML_PARSER_H_
#define CSXA_XML_PARSER_H_

/// \file parser.h
/// \brief Pull-style XML parser producing open/value/close events.
///
/// This is the terminal/publisher-side parser used to encode documents and
/// to load reference DOMs. The SOE itself never parses textual XML — it
/// consumes the compressed encoded stream (see skipindex/document_codec.h).
///
/// Supported: elements, attributes, character data with entity references,
/// comments, processing instructions and XML declarations (skipped),
/// CDATA sections, self-closing tags. Not supported (ParseError or
/// NotSupported): DTDs, namespaces beyond treating ':' as a name char.

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/event.h"

namespace csxa::xml {

/// \brief Parser options.
struct ParserOptions {
  /// Drop text events that consist solely of whitespace (typical for
  /// pretty-printed documents).
  bool skip_whitespace_text = true;
  /// Coalesce adjacent character data (including around CDATA) into a
  /// single value event.
  bool coalesce_text = true;
};

/// \brief Cursor-based pull parser over an in-memory document.
class PullParser {
 public:
  explicit PullParser(std::string input, ParserOptions options = {});

  /// Produces the next event; Event.type == kEnd after the root closes.
  /// Returns ParseError on malformed input.
  Result<Event> Next();

  /// Current 1-based line number (for error messages).
  int line() const { return line_; }

  /// Convenience: parses the whole document, pushing every event (including
  /// the trailing kEnd) into `sink`.
  static Status ParseAll(const std::string& input, EventSink* sink,
                         ParserOptions options = {});

  /// Convenience: parses the whole document into an event vector
  /// (excluding the trailing kEnd).
  static Result<std::vector<Event>> ParseToEvents(const std::string& input,
                                                  ParserOptions options = {});

 private:
  Status SkipMisc();               // whitespace, comments, PIs between markup
  Status SkipComment();            // after "<!--"
  Status SkipProcessingInstruction();  // after "<?"
  Result<Event> ParseOpenTag();    // after '<'
  Result<Event> ParseCloseTag();   // after "</"
  Result<std::string> ParseName();
  Result<std::string> ParseAttrValue();
  Status Error(const std::string& msg) const;

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Lookahead(const char* s) const;
  void Advance();

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  ParserOptions options_;
  int depth_ = 0;
  bool root_seen_ = false;
  bool done_ = false;
  // Pending end-tag event for self-closing elements.
  bool pending_close_ = false;
  std::string pending_close_name_;
  std::vector<std::string> open_tags_;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_PARSER_H_
