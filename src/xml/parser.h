#ifndef CSXA_XML_PARSER_H_
#define CSXA_XML_PARSER_H_

/// \file parser.h
/// \brief Pull-style XML parser producing open/value/close events.
///
/// This is the terminal/publisher-side parser used to encode documents and
/// to load reference DOMs. The SOE itself never parses textual XML — it
/// consumes the compressed encoded stream (see skipindex/codec.h).
///
/// The core API is borrowed-view (`NextView()`): tag names are always
/// slices of the input buffer, text and attribute values are slices
/// whenever they contain no entity references (the common case), and
/// escaped content lands in per-parser scratch buffers that are reused
/// across events — steady state performs no per-event allocation. `Next()`
/// materializes the same stream into owning events for callers that retain
/// them.
///
/// Supported: elements, attributes, character data with entity references,
/// comments, processing instructions and XML declarations (skipped),
/// CDATA sections, self-closing tags. Not supported (ParseError or
/// NotSupported): DTDs, namespaces beyond treating ':' as a name char.

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "xml/event.h"

namespace csxa::xml {

/// \brief Parser options.
struct ParserOptions {
  /// Drop text events that consist solely of whitespace (typical for
  /// pretty-printed documents).
  bool skip_whitespace_text = true;
  /// Coalesce adjacent character data (including around CDATA) into a
  /// single value event.
  bool coalesce_text = true;
  /// When set, every open/close event carries this interner's id for its
  /// tag (names are interned on first sight). Must outlive the parser;
  /// not owned.
  Interner* interner = nullptr;
};

/// \brief Cursor-based pull parser over an in-memory document.
class PullParser {
 public:
  explicit PullParser(std::string input, ParserOptions options = {});

  // Non-copyable/movable: events and internal state hold views into
  // input_ and the scratch buffers, which relocate under copy/move (SSO).
  PullParser(const PullParser&) = delete;
  PullParser& operator=(const PullParser&) = delete;

  /// Produces the next event as a borrowed view; type == kEnd after the
  /// root closes. The view (name/text/attrs) is valid only until the next
  /// NextView()/Next() call — callers that retain it must Materialize()
  /// or Record() it into an EventArena. Returns ParseError on malformed
  /// input.
  Result<EventView> NextView();

  /// Owning convenience: NextView() materialized.
  Result<Event> Next();

  /// Current 1-based line number (for error messages).
  int line() const { return line_; }

  /// Convenience: parses the whole document, pushing every event
  /// (including the trailing kEnd) into `sink` through the borrowed fast
  /// path (`OnEventView`); sinks that only implement `OnEvent` receive
  /// materialized copies via the default forwarding.
  static Status ParseAll(const std::string& input, EventSink* sink,
                         ParserOptions options = {});

  /// Convenience: parses the whole document into an event vector
  /// (excluding the trailing kEnd).
  static Result<std::vector<Event>> ParseToEvents(const std::string& input,
                                                  ParserOptions options = {});

  /// Parse-into-arena mode: the whole document as a recorded borrowed
  /// stream (excluding the trailing kEnd). One arena owns every byte; the
  /// views stay valid for the RecordedEvents' lifetime.
  static Result<RecordedEvents> ParseToRecorded(const std::string& input,
                                                ParserOptions options = {});

 private:
  Status SkipMisc();               // whitespace, comments, PIs between markup
  Status SkipComment();            // after "<!--"
  Status SkipProcessingInstruction();  // after "<?"
  Result<EventView> ParseOpenTag();    // after '<'
  Result<EventView> ParseCloseTag();   // after "</"
  // Non-owning slice of input_; valid for the parser's lifetime.
  Result<std::string_view> ParseName();
  // Raw slice when unescaped, scratch-backed otherwise; valid until the
  // next event.
  Result<std::string_view> ParseAttrValue();
  Status Error(const std::string& msg) const;
  TagId InternTag(std::string_view name) {
    return options_.interner != nullptr ? options_.interner->Intern(name)
                                        : kNoTagId;
  }
  // Scratch string reused across events (capacity kept). Deque storage:
  // growth never moves earlier strings, so views into them stay valid
  // within one event.
  std::string* NewScratch();

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Lookahead(const char* s) const;
  void Advance();

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  ParserOptions options_;
  int depth_ = 0;
  bool root_seen_ = false;
  bool done_ = false;
  // Pending end-tag event for self-closing elements. The name is a slice
  // of input_, which is stable for the parser's lifetime.
  bool pending_close_ = false;
  std::string_view pending_close_name_;
  TagId pending_close_id_ = kNoTagId;
  std::vector<std::string_view> open_tags_;
  // Per-event borrowed storage, invalidated by the next NextView() call.
  std::vector<AttrView> attr_views_;
  std::deque<std::string> scratch_;
  size_t scratch_used_ = 0;
};

}  // namespace csxa::xml

#endif  // CSXA_XML_PARSER_H_
