#include "xml/generator.h"

#include <algorithm>
#include <cstdio>

namespace csxa::xml {

namespace {

const char* kWords[] = {
    "review",  "budget",  "signal", "matrix",  "tulip",  "quarter", "launch",
    "sprint",  "metric",  "harbor", "stone",   "velvet", "beacon",  "cedar",
    "ember",   "fathom",  "grove",  "helix",   "indigo", "jasper",  "karma",
    "lumen",   "meadow",  "nectar", "onyx",    "prairie", "quartz", "ripple",
    "saffron", "timber",  "umber",  "vertex",  "willow", "xenon",   "yarrow",
    "zephyr"};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

std::string RandomText(Rng* rng, size_t avg_len) {
  std::string out;
  size_t target = avg_len / 2 + rng->Uniform(avg_len + 1);
  while (out.size() < target) {
    if (!out.empty()) out.push_back(' ');
    out += kWords[rng->Uniform(kWordCount)];
  }
  return out;
}

std::string RandomDate(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "200%d-%02d-%02d", static_cast<int>(rng->Uniform(6)),
                static_cast<int>(rng->Range(1, 12)), static_cast<int>(rng->Range(1, 28)));
  return buf;
}

std::string RandomName(Rng* rng) {
  static const char* kFirst[] = {"alice", "bruno", "carla", "denis",  "elena",
                                 "felix", "gilda", "henri", "ingrid", "jules"};
  static const char* kLast[] = {"moreau", "durand", "lefevre", "marchand",
                                "girard", "bonnet", "francois", "mercier"};
  std::string s = kFirst[rng->Uniform(10)];
  s += " ";
  s += kLast[rng->Uniform(8)];
  return s;
}

// ---------------------------------------------------------------------------
// Agenda profile: the collaborative-work application of §3.
// ---------------------------------------------------------------------------
DomDocument GenerateAgenda(const GeneratorParams& p, Rng* rng) {
  auto root = DomNode::Element("agenda");
  size_t budget = p.target_elements;
  // A member subtree costs ~10 elements, a meeting ~8.
  size_t members = budget / 24 + 1;
  size_t meetings_per_member = 1 + budget / (members * 16 + 1);
  for (size_t m = 0; m < members; ++m) {
    DomNode* member = root->AddElement(
        "member", {{"id", "m" + std::to_string(m)}});
    DomNode* profile = member->AddElement("profile");
    profile->AddElement("name")->AddText(RandomName(rng));
    profile->AddElement("email")->AddText(rng->Ident(6) + "@inria.fr");
    profile->AddElement("phone")->AddText("+33" + std::to_string(rng->Range(100000000, 999999999)));
    DomNode* meetings = member->AddElement("meetings");
    for (size_t k = 0; k < meetings_per_member; ++k) {
      DomNode* meeting = meetings->AddElement(
          "meeting", {{"status", rng->Chance(0.3) ? "tentative" : "confirmed"}});
      meeting->AddElement("title")->AddText(RandomText(rng, p.text_avg_len));
      meeting->AddElement("date")->AddText(RandomDate(rng));
      meeting->AddElement("room")->AddText("B" + std::to_string(rng->Range(100, 399)));
      DomNode* parts = meeting->AddElement("participants");
      size_t np = rng->Range(1, 3);
      for (size_t q = 0; q < np; ++q) {
        parts->AddElement("participant")->AddText(RandomName(rng));
      }
      if (rng->Chance(0.6)) {
        DomNode* notes = meeting->AddElement("notes");
        DomNode* note = notes->AddElement("note");
        note->AddElement("visibility")
            ->AddText(rng->Chance(0.5) ? "private" : "public");
        note->AddElement("body")->AddText(RandomText(rng, p.text_avg_len * 2));
      }
    }
    if (rng->Chance(0.4)) {
      DomNode* contacts = member->AddElement("contacts");
      size_t nc = rng->Range(1, 3);
      for (size_t q = 0; q < nc; ++q) {
        DomNode* c = contacts->AddElement("contact");
        c->AddElement("name")->AddText(RandomName(rng));
        c->AddElement("note")->AddText(RandomText(rng, p.text_avg_len));
      }
    }
  }
  return DomDocument(std::move(root));
}

// ---------------------------------------------------------------------------
// Hospital profile: the medical-exchange scenario of §1.
// ---------------------------------------------------------------------------
DomDocument GenerateHospital(const GeneratorParams& p, Rng* rng) {
  auto root = DomNode::Element("hospital");
  size_t budget = p.target_elements;
  size_t wards = budget / 120 + 1;
  size_t patients_per_ward = 1 + budget / (wards * 22 + 1);
  static const char* kWards[] = {"cardiology", "oncology", "pediatrics",
                                 "emergency", "neurology"};
  static const char* kDiagnoses[] = {"hypertension", "arrhythmia", "fracture",
                                     "asthma", "diabetes", "migraine"};
  static const char* kDrugs[] = {"atenolol", "lisinopril", "ibuprofen",
                                 "insulin", "salbutamol", "aspirin"};
  for (size_t w = 0; w < wards; ++w) {
    DomNode* ward = root->AddElement("ward", {{"name", kWards[w % 5]}});
    for (size_t i = 0; i < patients_per_ward; ++i) {
      DomNode* patient = ward->AddElement(
          "patient", {{"id", "p" + std::to_string(w * 1000 + i)}});
      patient->AddElement("name")->AddText(RandomName(rng));
      patient->AddElement("age")->AddText(std::to_string(rng->Range(1, 95)));
      patient->AddElement("ssn")->AddText(std::to_string(rng->Range(100000000, 999999999)));
      DomNode* medical = patient->AddElement("medical");
      DomNode* diag = medical->AddElement("diagnosis");
      diag->AddElement("severity")
          ->AddText(rng->Chance(0.25) ? "acute" : "routine");
      diag->AddElement("label")->AddText(kDiagnoses[rng->Uniform(6)]);
      DomNode* treatment = medical->AddElement("treatment");
      DomNode* drug = treatment->AddElement(
          "drug", {{"dose", std::to_string(rng->Range(5, 500)) + "mg"}});
      drug->AddText(kDrugs[rng->Uniform(6)]);
      if (rng->Chance(0.5)) {
        treatment->AddElement("protocol")->AddText(RandomText(rng, p.text_avg_len));
      }
      DomNode* visit = medical->AddElement("visit", {{"date", RandomDate(rng)}});
      visit->AddElement("doctor")->AddText(RandomName(rng));
      visit->AddElement("report")->AddText(RandomText(rng, p.text_avg_len * 2));
      if (p.folder_depth > 0) {
        // Deep folders: a nested care-episode chain per visit. Guarded so
        // the legacy flat folder (folder_depth == 0) consumes no extra
        // rng draws and stays byte-identical.
        DomNode* episode = visit->AddElement("history");
        for (size_t d = 0; d < p.folder_depth; ++d) {
          episode = episode->AddElement("episode");
          episode->AddElement("date")->AddText(RandomDate(rng));
          episode->AddElement("note")->AddText(RandomText(rng, p.text_avg_len));
        }
      }
      DomNode* admin = patient->AddElement("admin");
      admin->AddElement("insurance")->AddText(rng->Ident(8));
      DomNode* billing = admin->AddElement("billing");
      billing->AddElement("amount")->AddText(std::to_string(rng->Range(50, 5000)));
    }
  }
  return DomDocument(std::move(root));
}

// ---------------------------------------------------------------------------
// News feed profile: the selective-dissemination application of §3 and the
// parental-control scenario of §1.
// ---------------------------------------------------------------------------
DomDocument GenerateNewsFeed(const GeneratorParams& p, Rng* rng) {
  auto root = DomNode::Element("feed");
  size_t budget = p.target_elements;
  size_t channels = budget / 90 + 1;
  size_t items_per_channel = 1 + budget / (channels * 9 + 1);
  static const char* kGenres[] = {"news", "sport", "cinema", "music", "games"};
  static const char* kRatings[] = {"G", "PG", "PG13", "R"};
  for (size_t c = 0; c < channels; ++c) {
    DomNode* channel = root->AddElement("channel");
    channel->AddElement("genre")->AddText(kGenres[c % 5]);
    channel->AddElement("title")->AddText(RandomText(rng, p.text_avg_len / 2 + 4));
    for (size_t i = 0; i < items_per_channel; ++i) {
      DomNode* item = channel->AddElement("item");
      item->AddElement("rating")->AddText(kRatings[rng->Uniform(4)]);
      item->AddElement("title")->AddText(RandomText(rng, p.text_avg_len));
      item->AddElement("summary")->AddText(RandomText(rng, p.text_avg_len * 2));
      DomNode* content = item->AddElement("content");
      content->AddText(RandomText(rng, p.text_avg_len * 4));
      DomNode* media = item->AddElement(
          "media", {{"seconds", std::to_string(rng->Range(10, 600))}});
      media->AddElement("codec")->AddText(rng->Chance(0.5) ? "h264" : "mpeg2");
      if (rng->Chance(0.4)) {
        DomNode* kws = item->AddElement("keywords");
        size_t nk = rng->Range(1, 4);
        for (size_t k = 0; k < nk; ++k) {
          kws->AddElement("kw")->AddText(kWords[rng->Uniform(kWordCount)]);
        }
      }
    }
  }
  return DomDocument(std::move(root));
}

// ---------------------------------------------------------------------------
// IoT profile: one device's capability/presence announcement. Fleets
// publish thousands of these small documents; per-user access rules hide
// location or telemetry from some subjects.
// ---------------------------------------------------------------------------
DomDocument GenerateIoT(const GeneratorParams& p, Rng* rng) {
  static const char* kCapabilities[] = {"temperature", "humidity", "motion",
                                        "camera",      "lock",     "relay",
                                        "display",     "speaker"};
  static const char* kZones[] = {"lobby", "lab", "warehouse", "roof", "dock"};
  static const char* kVendors[] = {"acme", "borealis", "cirrus", "dynamo"};
  auto root = DomNode::Element(
      "device", {{"id", "dev-" + std::to_string(rng->Uniform(1u << 20))}});
  DomNode* status = root->AddElement("status");
  status->AddElement("online")->AddText(rng->Chance(0.85) ? "yes" : "no");
  status->AddElement("battery")->AddText(std::to_string(rng->Range(1, 100)));
  status->AddElement("signal")->AddText(std::to_string(rng->Range(-90, -30)));
  status->AddElement("seen")->AddText(RandomDate(rng));

  // The announcement body scales with target_elements: fixed sections cost
  // ~13 elements, each capability 2 and each telemetry reading 1.
  const size_t budget = p.target_elements > 13 ? p.target_elements - 13 : 3;
  const size_t caps = p.fan_out > 0 ? p.fan_out : 1 + (budget / 3) % 8;
  DomNode* capabilities = root->AddElement("capabilities");
  for (size_t c = 0; c < caps; ++c) {
    DomNode* cap = capabilities->AddElement(
        "capability", {{"name", kCapabilities[rng->Uniform(8)]}});
    cap->AddElement("version")
        ->AddText(std::to_string(rng->Range(1, 4)) + "." +
                  std::to_string(rng->Uniform(10)));
  }
  DomNode* location = root->AddElement("location");
  location->AddElement("zone")->AddText(kZones[rng->Uniform(5)]);
  location->AddElement("room")->AddText("r" + std::to_string(rng->Range(1, 40)));
  DomNode* firmware = root->AddElement("firmware");
  firmware->AddElement("vendor")->AddText(kVendors[rng->Uniform(4)]);
  firmware->AddElement("build")->AddText(rng->Ident(8));
  const size_t readings =
      p.fan_out > 0 ? p.fan_out : 1 + budget - std::min(budget, caps * 2);
  DomNode* telemetry = root->AddElement("telemetry");
  for (size_t t = 0; t < readings; ++t) {
    telemetry
        ->AddElement("reading", {{"kind", kCapabilities[rng->Uniform(8)]}})
        ->AddText(std::to_string(rng->Uniform(1000)));
  }
  DomNode* owner = root->AddElement("owner");
  owner->AddElement("name")->AddText(RandomName(rng));
  owner->AddElement("contact")->AddText(rng->Ident(6) + "@fleet.example");
  return DomDocument(std::move(root));
}

// ---------------------------------------------------------------------------
// Random profile: adversarial structure for property tests.
// ---------------------------------------------------------------------------
void GrowRandom(DomNode* node, const GeneratorParams& p, Rng* rng,
                size_t* remaining, int depth) {
  while (*remaining > 0) {
    // Bias toward closing as depth grows to bound the tree height.
    double close_prob = 0.25 + 0.6 * depth / (p.max_depth + 1.0);
    if (depth >= p.max_depth || rng->Chance(close_prob)) return;
    std::string tag = "t" + std::to_string(rng->Uniform(p.vocabulary));
    DomNode* child = node->AddElement(tag);
    --*remaining;
    if (rng->Chance(p.text_prob)) {
      // Short numeric-ish payloads make value predicates selective.
      if (rng->Chance(0.5)) {
        child->AddText(std::to_string(rng->Uniform(20)));
      } else {
        child->AddText(kWords[rng->Uniform(kWordCount)]);
      }
    }
    GrowRandom(child, p, rng, remaining, depth + 1);
  }
}

DomDocument GenerateRandom(const GeneratorParams& p, Rng* rng) {
  auto root = DomNode::Element("t0");
  size_t remaining = p.target_elements > 0 ? p.target_elements - 1 : 0;
  // Keep growing top-level branches until the budget is exhausted so the
  // requested size is actually reached.
  while (remaining > 0) {
    GrowRandom(root.get(), p, rng, &remaining, 1);
  }
  return DomDocument(std::move(root));
}

}  // namespace

DomDocument GenerateDocument(const GeneratorParams& params) {
  Rng rng(params.seed ^ 0x5D5Aull << 16 ^ static_cast<uint64_t>(params.profile));
  switch (params.profile) {
    case DocProfile::kAgenda:
      return GenerateAgenda(params, &rng);
    case DocProfile::kHospital:
      return GenerateHospital(params, &rng);
    case DocProfile::kNewsFeed:
      return GenerateNewsFeed(params, &rng);
    case DocProfile::kRandom:
      return GenerateRandom(params, &rng);
    case DocProfile::kIoT:
      return GenerateIoT(params, &rng);
  }
  return DomDocument();
}

const char* DocProfileName(DocProfile profile) {
  switch (profile) {
    case DocProfile::kAgenda:
      return "agenda";
    case DocProfile::kHospital:
      return "hospital";
    case DocProfile::kNewsFeed:
      return "newsfeed";
    case DocProfile::kRandom:
      return "random";
    case DocProfile::kIoT:
      return "iot";
  }
  return "?";
}

}  // namespace csxa::xml
