#ifndef CSXA_XML_DOM_H_
#define CSXA_XML_DOM_H_

/// \file dom.h
/// \brief In-memory XML tree.
///
/// The DOM exists for the *trusted terminal and test oracle only* — the
/// whole point of the paper is that the SOE cannot afford one (§2.3
/// "precluding materialization"). It backs the reference access-control
/// evaluator, the trusted-server baseline and document generators.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/event.h"
#include "xml/parser.h"

namespace csxa::xml {

/// \brief A node in the tree: an element or a text node.
class DomNode {
 public:
  enum class Kind : uint8_t { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<DomNode> Element(std::string tag,
                                          std::vector<Attribute> attrs = {});
  /// Creates a text node.
  static std::unique_ptr<DomNode> Text(std::string text);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag (empty for text nodes).
  const std::string& tag() const { return tag_; }
  /// Text content (empty for element nodes).
  const std::string& text() const { return text_; }
  /// Attributes (elements only).
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Children in document order (elements only).
  const std::vector<std::unique_ptr<DomNode>>& children() const {
    return children_;
  }
  /// Parent element; nullptr at the root.
  DomNode* parent() const { return parent_; }
  /// Depth: root element is 1 (matches XPath step counting).
  int depth() const { return depth_; }

  /// Appends a child, wiring parent/depth. Returns the raw pointer.
  DomNode* AddChild(std::unique_ptr<DomNode> child);
  /// Convenience: appends a fresh element child.
  DomNode* AddElement(std::string tag, std::vector<Attribute> attrs = {});
  /// Convenience: appends a fresh text child.
  DomNode* AddText(std::string text);

  /// Concatenation of all descendant text (XPath string-value).
  std::string StringValue() const;

  /// Concatenation of the *direct* text children only. Value predicates in
  /// this system compare direct text (a streaming-friendly restriction;
  /// see DESIGN.md §4).
  std::string DirectText() const;

  /// Number of element nodes in this subtree (including self if element).
  size_t CountElements() const;
  /// Maximum element depth within this subtree.
  int MaxDepth() const;

  /// Pre-order walk emitting open/value/close events into `sink`
  /// (no trailing kEnd). Events are delivered as borrowed views over the
  /// DOM's own strings (`OnEventView`): view-aware sinks consume them
  /// zero-copy, plain sinks receive materialized copies via the default
  /// forwarding. With `tags`, every open/close event carries the
  /// interner's id for its tag, so id-dispatching consumers (the streaming
  /// evaluator after BindDocumentTags) skip per-event name lookups.
  Status EmitEvents(EventSink* sink, Interner* tags = nullptr) const;

  /// Collects every element in the subtree in document order.
  void CollectElements(std::vector<const DomNode*>* out) const;

 private:
  DomNode() = default;

  Status EmitEventsImpl(EventSink* sink, Interner* tags,
                        std::vector<AttrView>* attr_scratch) const;

  Kind kind_ = Kind::kElement;
  std::string tag_;
  std::string text_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<DomNode>> children_;
  DomNode* parent_ = nullptr;
  int depth_ = 1;
};

/// \brief An owned document: a root element plus parsing/serialization.
class DomDocument {
 public:
  DomDocument() = default;
  explicit DomDocument(std::unique_ptr<DomNode> root) : root_(std::move(root)) {}

  /// Parses a textual XML document.
  static Result<DomDocument> Parse(const std::string& text,
                                   ParserOptions options = {});

  /// Root element; nullptr for an empty document.
  DomNode* root() const { return root_.get(); }
  /// Transfers root ownership.
  std::unique_ptr<DomNode> TakeRoot() { return std::move(root_); }

  /// Serializes to compact canonical XML (attributes in stored order,
  /// escaped text, no insignificant whitespace). Suitable for equality
  /// comparison between evaluator outputs.
  std::string Serialize() const;
  /// Serializes with 2-space indentation for human consumption.
  std::string SerializePretty() const;

  /// Total element count (0 when empty).
  size_t CountElements() const { return root_ ? root_->CountElements() : 0; }
  /// Maximum depth (0 when empty).
  int MaxDepth() const { return root_ ? root_->MaxDepth() : 0; }

 private:
  std::unique_ptr<DomNode> root_;
};

/// \brief EventSink that builds a DOM from a stream of events.
///
/// Also used to materialize the *delivered view* produced by the streaming
/// evaluator so tests can compare it structurally with the oracle.
class DomBuilder : public EventSink {
 public:
  Status OnEvent(const Event& event) override;
  /// Borrowed fast path: nodes copy out of the view directly, skipping
  /// the intermediate owning Event a default sink would materialize.
  Status OnEventView(const EventView& view) override;

  /// True once the root element has closed (or nothing was ever opened).
  bool complete() const { return open_stack_.empty(); }
  /// Takes the built document. Empty document if no events arrived.
  DomDocument TakeDocument();

 private:
  std::unique_ptr<DomNode> root_;
  std::vector<DomNode*> open_stack_;
  std::vector<AttrView> attr_scratch_;  // OnEvent → OnEventView bridge
};

}  // namespace csxa::xml

#endif  // CSXA_XML_DOM_H_
