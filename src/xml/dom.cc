#include "xml/dom.h"

#include "xml/escape.h"

namespace csxa::xml {

std::unique_ptr<DomNode> DomNode::Element(std::string tag,
                                          std::vector<Attribute> attrs) {
  auto n = std::unique_ptr<DomNode>(new DomNode());
  n->kind_ = Kind::kElement;
  n->tag_ = std::move(tag);
  n->attrs_ = std::move(attrs);
  return n;
}

std::unique_ptr<DomNode> DomNode::Text(std::string text) {
  auto n = std::unique_ptr<DomNode>(new DomNode());
  n->kind_ = Kind::kText;
  n->text_ = std::move(text);
  return n;
}

DomNode* DomNode::AddChild(std::unique_ptr<DomNode> child) {
  child->parent_ = this;
  child->depth_ = depth_ + 1;
  children_.push_back(std::move(child));
  return children_.back().get();
}

DomNode* DomNode::AddElement(std::string tag, std::vector<Attribute> attrs) {
  return AddChild(Element(std::move(tag), std::move(attrs)));
}

DomNode* DomNode::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

std::string DomNode::StringValue() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) out += c->StringValue();
  return out;
}

std::string DomNode::DirectText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) {
    if (c->is_text()) out += c->text();
  }
  return out;
}

size_t DomNode::CountElements() const {
  if (is_text()) return 0;
  size_t n = 1;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

int DomNode::MaxDepth() const {
  if (is_text()) return 0;
  int best = depth_;
  for (const auto& c : children_) {
    int d = c->MaxDepth();
    if (d > best) best = d;
  }
  return best;
}

Status DomNode::EmitEvents(EventSink* sink, Interner* tags) const {
  std::vector<AttrView> attr_scratch;
  return EmitEventsImpl(sink, tags, &attr_scratch);
}

Status DomNode::EmitEventsImpl(EventSink* sink, Interner* tags,
                               std::vector<AttrView>* attr_scratch) const {
  if (is_text()) {
    return sink->OnEventView(EventView::Value(text_));
  }
  TagId id = tags != nullptr ? tags->Intern(tag_) : kNoTagId;
  attr_scratch->clear();
  for (const Attribute& a : attrs_) {
    attr_scratch->push_back(AttrView{a.name, a.value});
  }
  CSXA_RETURN_IF_ERROR(sink->OnEventView(EventView::Open(
      tag_, attr_scratch->data(), attr_scratch->size(), id)));
  for (const auto& c : children_) {
    CSXA_RETURN_IF_ERROR(c->EmitEventsImpl(sink, tags, attr_scratch));
  }
  return sink->OnEventView(EventView::Close(tag_, id));
}

void DomNode::CollectElements(std::vector<const DomNode*>* out) const {
  if (is_text()) return;
  out->push_back(this);
  for (const auto& c : children_) c->CollectElements(out);
}

Result<DomDocument> DomDocument::Parse(const std::string& text,
                                       ParserOptions options) {
  DomBuilder builder;
  CSXA_RETURN_IF_ERROR(PullParser::ParseAll(text, &builder, options));
  if (!builder.complete()) {
    return Status::ParseError("document ended with open elements");
  }
  return builder.TakeDocument();
}

namespace {
void SerializeNode(const DomNode* n, bool pretty, int indent, std::string* out) {
  if (n->is_text()) {
    if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
    *out += Escape(n->text());
    if (pretty) out->push_back('\n');
    return;
  }
  if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
  out->push_back('<');
  *out += n->tag();
  for (const Attribute& a : n->attrs()) {
    out->push_back(' ');
    *out += a.name;
    *out += "=\"";
    *out += Escape(a.value);
    out->push_back('"');
  }
  if (n->children().empty() && pretty) {
    // Self-closing only in pretty mode; canonical mode always writes the
    // explicit pair so it matches CanonicalWriter output byte-for-byte.
    *out += "/>";
    out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (pretty) out->push_back('\n');
  for (const auto& c : n->children()) {
    SerializeNode(c.get(), pretty, indent + 1, out);
  }
  if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += "</";
  *out += n->tag();
  out->push_back('>');
  if (pretty) out->push_back('\n');
}
}  // namespace

std::string DomDocument::Serialize() const {
  std::string out;
  if (root_) SerializeNode(root_.get(), /*pretty=*/false, 0, &out);
  return out;
}

std::string DomDocument::SerializePretty() const {
  std::string out;
  if (root_) SerializeNode(root_.get(), /*pretty=*/true, 0, &out);
  return out;
}

Status DomBuilder::OnEvent(const Event& event) {
  return OnEventView(ViewOf(event, &attr_scratch_));
}

Status DomBuilder::OnEventView(const EventView& event) {
  switch (event.type) {
    case EventType::kOpen: {
      std::vector<Attribute> attrs;
      attrs.reserve(event.num_attrs);
      for (size_t i = 0; i < event.num_attrs; ++i) {
        attrs.push_back(Attribute{std::string(event.attrs[i].name),
                                  std::string(event.attrs[i].value)});
      }
      auto node = DomNode::Element(std::string(event.name), std::move(attrs));
      if (open_stack_.empty()) {
        if (root_) {
          return Status::ParseError("multiple root elements in event stream");
        }
        root_ = std::move(node);
        open_stack_.push_back(root_.get());
      } else {
        open_stack_.push_back(open_stack_.back()->AddChild(std::move(node)));
      }
      return Status::OK();
    }
    case EventType::kValue: {
      if (open_stack_.empty()) {
        return Status::ParseError("text event outside any element");
      }
      open_stack_.back()->AddText(std::string(event.text));
      return Status::OK();
    }
    case EventType::kClose: {
      if (open_stack_.empty()) {
        return Status::ParseError("close event without matching open");
      }
      if (open_stack_.back()->tag() != event.name) {
        return Status::ParseError("close event tag mismatch: expected " +
                                  open_stack_.back()->tag() + " got " +
                                  std::string(event.name));
      }
      open_stack_.pop_back();
      return Status::OK();
    }
    case EventType::kEnd:
      return Status::OK();
  }
  return Status::Internal("unknown event type");
}

DomDocument DomBuilder::TakeDocument() { return DomDocument(std::move(root_)); }

}  // namespace csxa::xml
