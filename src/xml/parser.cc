#include "xml/parser.h"

#include <cctype>
#include <cstring>

#include "xml/escape.h"

namespace csxa::xml {

namespace {
bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

PullParser::PullParser(std::string input, ParserOptions options)
    : input_(std::move(input)), options_(options) {}

std::string* PullParser::NewScratch() {
  if (scratch_used_ == scratch_.size()) scratch_.emplace_back();
  std::string* s = &scratch_[scratch_used_++];
  s->clear();
  return s;
}

bool PullParser::Lookahead(const char* s) const {
  size_t n = std::strlen(s);
  if (pos_ + n > input_.size()) return false;
  return std::memcmp(input_.data() + pos_, s, n) == 0;
}

void PullParser::Advance() {
  if (input_[pos_] == '\n') ++line_;
  ++pos_;
}

Status PullParser::Error(const std::string& msg) const {
  return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
}

Status PullParser::SkipComment() {
  // Cursor is just past "<!--".
  while (!AtEnd()) {
    if (Lookahead("-->")) {
      pos_ += 3;
      return Status::OK();
    }
    Advance();
  }
  return Error("unterminated comment");
}

Status PullParser::SkipProcessingInstruction() {
  // Cursor is just past "<?".
  while (!AtEnd()) {
    if (Lookahead("?>")) {
      pos_ += 2;
      return Status::OK();
    }
    Advance();
  }
  return Error("unterminated processing instruction");
}

Status PullParser::SkipMisc() {
  for (;;) {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
    if (Lookahead("<!--")) {
      pos_ += 4;
      CSXA_RETURN_IF_ERROR(SkipComment());
      continue;
    }
    if (Lookahead("<?")) {
      pos_ += 2;
      CSXA_RETURN_IF_ERROR(SkipProcessingInstruction());
      continue;
    }
    if (Lookahead("<!DOCTYPE")) {
      return Status::NotSupported("DTDs are not supported");
    }
    return Status::OK();
  }
}

Result<std::string_view> PullParser::ParseName() {
  if (AtEnd() || !IsNameStart(Peek())) {
    return Error("expected name");
  }
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) Advance();
  return std::string_view(input_).substr(start, pos_ - start);
}

Result<std::string_view> PullParser::ParseAttrValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = Peek();
  Advance();
  size_t start = pos_;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '<') return Error("'<' in attribute value");
    Advance();
  }
  if (AtEnd()) return Error("unterminated attribute value");
  std::string_view raw = std::string_view(input_).substr(start, pos_ - start);
  Advance();  // closing quote
  if (raw.find('&') == std::string_view::npos) {
    return raw;  // zero-copy: slice of input_
  }
  std::string* s = NewScratch();
  CSXA_RETURN_IF_ERROR(AppendUnescaped(raw, s));
  return std::string_view(*s);
}

Result<EventView> PullParser::ParseOpenTag() {
  // Cursor is just past '<'. attr_views_ was cleared by NextView().
  CSXA_ASSIGN_OR_RETURN(std::string_view name, ParseName());
  for (;;) {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>') {
      Advance();
      open_tags_.push_back(name);
      ++depth_;
      return EventView::Open(name, attr_views_.data(), attr_views_.size(),
                             InternTag(name));
    }
    if (Lookahead("/>")) {
      pos_ += 2;
      pending_close_ = true;
      pending_close_name_ = name;
      pending_close_id_ = InternTag(name);
      return EventView::Open(name, attr_views_.data(), attr_views_.size(),
                             pending_close_id_);
    }
    CSXA_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
    if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
    Advance();
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
    CSXA_ASSIGN_OR_RETURN(std::string_view value, ParseAttrValue());
    attr_views_.push_back(AttrView{attr_name, value});
  }
}

Result<EventView> PullParser::ParseCloseTag() {
  // Cursor is just past "</".
  CSXA_ASSIGN_OR_RETURN(std::string_view name, ParseName());
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
  Advance();
  if (open_tags_.empty() || open_tags_.back() != name) {
    return Error("mismatched end tag </" + std::string(name) + ">");
  }
  open_tags_.pop_back();
  --depth_;
  if (depth_ == 0) done_ = true;
  return EventView::Close(name, InternTag(name));
}

Result<EventView> PullParser::NextView() {
  // Views from the previous event die here.
  attr_views_.clear();
  scratch_used_ = 0;
  if (pending_close_) {
    pending_close_ = false;
    if (depth_ == 0) done_ = true;
    return EventView::Close(pending_close_name_, pending_close_id_);
  }
  for (;;) {
    if (done_) {
      // Only trailing misc is allowed after the root element.
      CSXA_RETURN_IF_ERROR(SkipMisc());
      if (!AtEnd()) return Error("content after document root");
      return EventView::End();
    }
    if (depth_ == 0) {
      CSXA_RETURN_IF_ERROR(SkipMisc());
      if (AtEnd()) {
        if (!root_seen_) return Error("no root element");
        return EventView::End();
      }
      if (Peek() != '<') return Error("text outside root element");
      Advance();
      if (Peek() == '/') return Error("unexpected end tag");
      if (root_seen_) return Error("multiple root elements");
      root_seen_ = true;
      return ParseOpenTag();
    }
    // Inside the root: gather text until markup. `direct` holds the text
    // as a raw input slice while a single unescaped chunk suffices (the
    // common case — no copy); `acc` takes over once escaping or
    // coalescing across chunks forces materialization into scratch.
    std::string_view direct;
    std::string* acc = nullptr;
    bool have_text = false;
    auto force_acc = [&]() {
      if (acc == nullptr) {
        acc = NewScratch();
        acc->append(direct);
        direct = {};
      }
    };
    for (;;) {
      if (AtEnd()) return Error("unexpected end of input inside element");
      if (Peek() == '<') {
        if (Lookahead("<!--")) {
          pos_ += 4;
          CSXA_RETURN_IF_ERROR(SkipComment());
          continue;
        } else if (Lookahead("<![CDATA[")) {
          pos_ += 9;
          size_t start = pos_;
          while (!AtEnd() && !Lookahead("]]>")) Advance();
          if (AtEnd()) return Error("unterminated CDATA section");
          std::string_view raw =
              std::string_view(input_).substr(start, pos_ - start);
          pos_ += 3;
          if (!have_text && acc == nullptr) {
            direct = raw;  // CDATA needs no unescaping
          } else {
            force_acc();
            acc->append(raw);
          }
          have_text = true;
          continue;
        } else if (Lookahead("<?")) {
          pos_ += 2;
          CSXA_RETURN_IF_ERROR(SkipProcessingInstruction());
          continue;
        } else {
          break;  // element markup
        }
      } else {
        size_t start = pos_;
        while (!AtEnd() && Peek() != '<') Advance();
        std::string_view raw =
            std::string_view(input_).substr(start, pos_ - start);
        bool needs_unescape = raw.find('&') != std::string_view::npos;
        if (!have_text && acc == nullptr && !needs_unescape) {
          direct = raw;
        } else {
          force_acc();
          if (needs_unescape) {
            CSXA_RETURN_IF_ERROR(AppendUnescaped(raw, acc));
          } else {
            acc->append(raw);
          }
        }
        have_text = true;
        if (!options_.coalesce_text) break;
      }
    }
    std::string_view text = acc != nullptr ? std::string_view(*acc) : direct;
    if (!text.empty() &&
        !(options_.skip_whitespace_text && IsAllWhitespace(text))) {
      return EventView::Value(text);
    }
    // No deliverable text: handle the markup that stopped the scan.
    if (Peek() == '<') {
      Advance();
      if (!AtEnd() && Peek() == '/') {
        Advance();
        return ParseCloseTag();
      }
      return ParseOpenTag();
    }
  }
}

Result<Event> PullParser::Next() {
  CSXA_ASSIGN_OR_RETURN(EventView v, NextView());
  return v.Materialize();
}

Status PullParser::ParseAll(const std::string& input, EventSink* sink,
                            ParserOptions options) {
  PullParser parser(input, options);
  for (;;) {
    CSXA_ASSIGN_OR_RETURN(EventView v, parser.NextView());
    CSXA_RETURN_IF_ERROR(sink->OnEventView(v));
    if (v.type == EventType::kEnd) return Status::OK();
  }
}

Result<std::vector<Event>> PullParser::ParseToEvents(const std::string& input,
                                                     ParserOptions options) {
  PullParser parser(input, options);
  std::vector<Event> events;
  for (;;) {
    CSXA_ASSIGN_OR_RETURN(EventView v, parser.NextView());
    if (v.type == EventType::kEnd) return events;
    events.push_back(v.Materialize());
  }
}

Result<RecordedEvents> PullParser::ParseToRecorded(const std::string& input,
                                                   ParserOptions options) {
  PullParser parser(input, options);
  RecordedEvents rec;
  for (;;) {
    CSXA_ASSIGN_OR_RETURN(EventView v, parser.NextView());
    if (v.type == EventType::kEnd) return rec;
    rec.Append(v);
  }
}

}  // namespace csxa::xml
