#ifndef CSXA_XML_GENERATOR_H_
#define CSXA_XML_GENERATOR_H_

/// \file generator.h
/// \brief Synthetic XML dataset generators.
///
/// The demonstration exercises two applications — collaborative work among
/// a community (pull, textual) and selective dissemination of rated
/// content (push) — plus the medical-exchange and parental-control
/// scenarios motivating §1. The authors' demo used live data we do not
/// have; these seeded generators produce structurally equivalent documents
/// (see DESIGN.md §2 substitution table).

#include <string>

#include "common/random.h"
#include "xml/dom.h"

namespace csxa::xml {

/// Dataset profiles.
enum class DocProfile {
  /// Community agenda: members, meetings, participants, private notes.
  kAgenda,
  /// Hospital folder: wards, patients, diagnoses, treatments, billing.
  kHospital,
  /// Rated content feed: channels, items with ratings, media (push app).
  kNewsFeed,
  /// Random tags/structure for property tests (uses `vocabulary` tags,
  /// recursive nesting).
  kRandom,
  /// One IoT device's capability/presence announcement: status, declared
  /// capabilities, location, firmware and a telemetry tail. Small by
  /// design — fleets publish thousands of these.
  kIoT,
};

/// Generation parameters. Sizes are approximate targets.
struct GeneratorParams {
  DocProfile profile = DocProfile::kAgenda;
  /// Approximate number of element nodes to produce.
  size_t target_elements = 200;
  /// RNG seed: equal params produce identical documents.
  uint64_t seed = 1;
  /// Average length of generated text payloads in characters.
  size_t text_avg_len = 24;
  /// kRandom only: number of distinct tags.
  size_t vocabulary = 8;
  /// kRandom only: maximum element depth.
  int max_depth = 8;
  /// kRandom only: probability that a generated element carries text.
  double text_prob = 0.5;
  /// kHospital only: nested care-episode depth under each visit. 0 (the
  /// default) keeps the flat legacy folder byte-identical; deeper values
  /// grow an `<episode>` chain per visit — the deep-patient-folder shape
  /// the e-health mobility scenario sweeps.
  size_t folder_depth = 0;
  /// kIoT only: capability / telemetry fan-out per section; 0 picks a
  /// default proportional to `target_elements`.
  size_t fan_out = 0;
};

/// Generates a document for the given parameters.
DomDocument GenerateDocument(const GeneratorParams& params);

/// Human-readable profile name ("agenda", "hospital", ...).
const char* DocProfileName(DocProfile profile);

}  // namespace csxa::xml

#endif  // CSXA_XML_GENERATOR_H_
