/// \file bench_load.cc
/// \brief Multi-tenant serving throughput under concurrent load.
///
/// Replays mixed query / policy-update / republish traffic from N
/// concurrent terminal sessions (workload::RunLoad) against the full
/// serving stack — CachingClient over AsyncDispatcher over a 4-shard
/// ShardedService — and sweeps the dispatcher worker count. The 1-worker
/// row is the single-threaded server baseline; the headline criterion is
/// aggregate modeled throughput at >=4 workers exceeding 2x that baseline,
/// measured by the same harness.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/load.h"

using namespace csxa;

int main() {
  std::printf("== Multi-tenant DSP load: %s ==\n",
              bench::SmokeMode() ? "smoke workload" : "full workload");

  workload::LoadOptions base;
  base.sessions = bench::Smoke(16, 8);
  base.ops_per_session = bench::Smoke(6, 2);
  base.shards = 4;
  base.documents = bench::Smoke(6, 3);
  base.elements_per_doc = bench::Smoke(200, 60);
  base.seed = 1;

  const std::vector<size_t> worker_sweep = bench::SmokeMode()
                                               ? std::vector<size_t>{1, 4}
                                               : std::vector<size_t>{1, 2, 4, 8};

  bench::Table table({"workers", "sessions", "ops", "fail", "thrpt ops/s",
                      "p50 ms", "p99 ms", "makespan ms", "imbalance",
                      "cache hit%", "wall s"});

  double baseline_throughput = 0;
  double best_throughput = 0;
  size_t best_workers = 0;
  for (size_t workers : worker_sweep) {
    workload::LoadOptions opt = base;
    opt.workers = workers;
    workload::LoadReport r = workload::RunLoad(opt);
    const uint64_t ops = r.queries + r.updates + r.publishes;
    const uint64_t lookups = r.cache_hits + r.cache_misses;
    const double hit_pct =
        lookups > 0 ? 100.0 * static_cast<double>(r.cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    table.AddRow({bench::Fmt("%zu", workers), bench::Fmt("%zu", r.sessions),
                  bench::Fmt("%llu", static_cast<unsigned long long>(ops)),
                  bench::Fmt("%llu", static_cast<unsigned long long>(r.failures)),
                  bench::Fmt("%.0f", r.throughput_ops_per_sec),
                  bench::Fmt("%.2f", r.p50_latency_ms),
                  bench::Fmt("%.2f", r.p99_latency_ms),
                  bench::Fmt("%.2f", r.modeled_makespan_seconds * 1e3),
                  bench::Fmt("%.2f", r.shard_imbalance),
                  bench::Fmt("%.1f", hit_pct),
                  bench::Fmt("%.2f", r.wall_seconds)});

    const std::string tag = "load/workers_" + std::to_string(workers);
    bench::JsonReport::Get().Add(tag, r.modeled_makespan_seconds * 1e9,
                                 r.throughput_ops_per_sec, 0.0,
                                 r.shard_imbalance);
    bench::JsonReport::Get().AddValue(tag + "/p50_ms", r.p50_latency_ms);
    bench::JsonReport::Get().AddValue(tag + "/p99_ms", r.p99_latency_ms);
    bench::JsonReport::Get().AddValue(tag + "/failures",
                                      static_cast<double>(r.failures));

    if (workers == 1) baseline_throughput = r.throughput_ops_per_sec;
    if (workers >= 4 && r.throughput_ops_per_sec > best_throughput) {
      best_throughput = r.throughput_ops_per_sec;
      best_workers = workers;
    }
  }
  table.Print();

  if (baseline_throughput > 0 && best_workers > 0) {
    const double speedup = best_throughput / baseline_throughput;
    std::printf("\n%zu workers vs single-threaded baseline: %.2fx aggregate "
                "modeled throughput (%zu concurrent sessions)\n",
                best_workers, speedup, base.sessions);
    bench::JsonReport::Get().AddValue("load/speedup_vs_single_thread", speedup);
  }
  return 0;
}
