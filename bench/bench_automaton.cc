// EXP-F2 — the access-rule automaton engine (Fig. 2, §2.3).
//
// Microbenchmarks of the streaming NFA evaluator on the host: throughput
// in parse events/second as the rule count, rule complexity and predicate
// density grow. The paper's engine must keep up with the card link
// (2 KB/s ≈ a few hundred events/s after decoding), so host throughput in
// the millions leaves orders of magnitude of headroom — the point is the
// scaling *shape*: linear in rules, mild in depth.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "core/evaluator.h"
#include "scengen/rulegen.h"
#include "xml/generator.h"
#include "xml/writer.h"

namespace {

using namespace csxa;

struct Workload {
  std::vector<xml::Event> events;
  core::RuleSet rules;
  // Document tag dictionary; events carry its ids and each evaluator
  // binds it, exercising the interned dispatch path the SOE uses.
  Interner tags;
};

Workload MakeWorkload(size_t doc_elements, size_t num_rules,
                      double predicate_prob, size_t max_steps,
                      uint64_t seed) {
  Workload w;
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kRandom;
  gp.target_elements = doc_elements;
  gp.seed = seed;
  gp.vocabulary = 10;
  auto doc = xml::GenerateDocument(gp);
  xml::EventRecorder recorder;
  CSXA_CHECK(doc.root()->EmitEvents(&recorder, &w.tags).ok());
  w.events = recorder.Take();
  Rng rng(seed * 3 + 1);
  scengen::RuleGenParams rp;
  rp.num_rules = num_rules;
  rp.path.predicate_prob = predicate_prob;
  rp.path.max_steps = max_steps;
  w.rules = scengen::GenerateRules(doc, "u", rp, &rng);
  return w;
}

// Discards evaluator output (we measure the engine, not the serializer).
class NullSink : public xml::EventSink {
 public:
  Status OnEvent(const xml::Event&) override { return Status::OK(); }
};

void RunEvaluator(benchmark::State& state, const Workload& w) {
  size_t events = 0;
  size_t transitions = 0;
  for (auto _ : state) {
    NullSink sink;
    auto ev = core::StreamingEvaluator::Create(w.rules.ForSubject("u"),
                                               nullptr, &sink);
    CSXA_CHECK(ev.ok());
    ev.value()->BindDocumentTags(w.tags);
    for (const xml::Event& e : w.events) {
      Status st = ev.value()->OnEvent(e);
      CSXA_CHECK(st.ok());
    }
    CSXA_CHECK(ev.value()->Finish().ok());
    events += ev.value()->stats().events;
    transitions += ev.value()->TotalTransitions();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["transitions/s"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
}

void BM_RuleCount(benchmark::State& state) {
  Workload w = MakeWorkload(500, static_cast<size_t>(state.range(0)), 0.0, 4,
                            42);
  RunEvaluator(state, w);
}
BENCHMARK(BM_RuleCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RuleComplexity(benchmark::State& state) {
  Workload w = MakeWorkload(500, 8, 0.0, static_cast<size_t>(state.range(0)),
                            43);
  RunEvaluator(state, w);
}
BENCHMARK(BM_RuleComplexity)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PredicateDensity(benchmark::State& state) {
  double density = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeWorkload(500, 8, density, 4, 44);
  RunEvaluator(state, w);
}
BENCHMARK(BM_PredicateDensity)->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100);

void BM_DocumentDepth(benchmark::State& state) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kRandom;
  gp.target_elements = 500;
  gp.max_depth = static_cast<int>(state.range(0));
  gp.seed = 45;
  auto doc = xml::GenerateDocument(gp);
  Workload w;
  xml::EventRecorder recorder;
  CSXA_CHECK(doc.root()->EmitEvents(&recorder, &w.tags).ok());
  w.events = recorder.Take();
  Rng rng(46);
  scengen::RuleGenParams rp;
  rp.num_rules = 8;
  w.rules = scengen::GenerateRules(doc, "u", rp, &rng);
  RunEvaluator(state, w);
}
BENCHMARK(BM_DocumentDepth)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_RealisticScenario(benchmark::State& state) {
  // The hospital scenario: 8 rules with predicates over a 2k-element doc.
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 2000;
  gp.seed = 47;
  auto doc = xml::GenerateDocument(gp);
  Workload w;
  xml::EventRecorder recorder;
  CSXA_CHECK(doc.root()->EmitEvents(&recorder, &w.tags).ok());
  w.events = recorder.Take();
  w.rules = core::RuleSet::ParseText(
                "+ emergency //patient[medical/diagnosis/severity=\"acute\"]\n"
                "- emergency //admin\n")
                .value();
  RunEvaluator(state, w);
}
BENCHMARK(BM_RealisticScenario);

}  // namespace

BENCHMARK_MAIN();
