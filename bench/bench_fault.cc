/// \file bench_fault.cc
/// \brief Degraded-mode serving cost of the replicated DSP fabric.
///
/// Runs the full decorator stack (RetryingClient over CachingClient over
/// AsyncDispatcher over a 3-replica ReplicatedService of fault-injected
/// 2-shard fleets) through workload::RunLoad twice per worker count: once
/// healthy, once under the scripted fault schedule (a backup crash
/// mid-run, a later partition, sprinkled lost responses). The headline
/// criterion is that degraded-mode modeled throughput stays within 2x of
/// healthy-mode at >= 4 workers — the price of riding out faults is
/// retries and reroutes, not collapse — with zero failed operations and
/// zero stale reads in both modes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/load.h"

using namespace csxa;

namespace {

workload::LoadOptions BaseOptions() {
  workload::LoadOptions opt;
  opt.sessions = bench::Smoke(12, 6);
  opt.ops_per_session = bench::Smoke(8, 3);
  opt.shards = 2;
  opt.documents = bench::Smoke(6, 3);
  opt.elements_per_doc = bench::Smoke(200, 60);
  opt.seed = 17;
  opt.replicas = 3;
  opt.retry_attempts = 8;
  return opt;
}

workload::LoadOptions Degraded(workload::LoadOptions opt) {
  const uint64_t total_ops =
      static_cast<uint64_t>(opt.sessions) * opt.ops_per_session;
  opt.faults.enabled = true;
  opt.faults.crash_replica = 1;
  opt.faults.crash_at_op = total_ops / 8;
  opt.faults.crash_heal_at_op = total_ops * 3 / 8;
  opt.faults.partition_replica = 2;
  opt.faults.partition_at_op = total_ops / 2;
  opt.faults.partition_heal_at_op = total_ops * 3 / 4;
  opt.faults.timeout_probability = 0.05;
  return opt;
}

}  // namespace

int main() {
  std::printf("== Replicated fabric under faults: %s ==\n",
              bench::SmokeMode() ? "smoke workload" : "full workload");

  const std::vector<size_t> worker_sweep =
      bench::SmokeMode() ? std::vector<size_t>{4} : std::vector<size_t>{1, 4};

  bench::Table table({"mode", "workers", "ops", "fail", "thrpt ops/s",
                      "retries", "reroutes", "promote", "reinteg",
                      "stale det", "stale srv", "faults"});

  double healthy_at_4 = 0, degraded_at_4 = 0;
  bool invariants_held = true;
  for (size_t workers : worker_sweep) {
    for (const bool degraded : {false, true}) {
      workload::LoadOptions opt =
          degraded ? Degraded(BaseOptions()) : BaseOptions();
      opt.workers = workers;
      workload::LoadReport r = workload::RunLoad(opt);
      const uint64_t ops = r.queries + r.updates + r.publishes;
      const char* mode = degraded ? "degraded" : "healthy";
      table.AddRow(
          {mode, bench::Fmt("%zu", workers),
           bench::Fmt("%llu", static_cast<unsigned long long>(ops)),
           bench::Fmt("%llu", static_cast<unsigned long long>(r.failures)),
           bench::Fmt("%.0f", r.throughput_ops_per_sec),
           bench::Fmt("%llu", static_cast<unsigned long long>(r.retries)),
           bench::Fmt("%llu",
                      static_cast<unsigned long long>(r.replica_read_reroutes)),
           bench::Fmt("%llu",
                      static_cast<unsigned long long>(r.primary_promotions)),
           bench::Fmt("%llu", static_cast<unsigned long long>(r.reintegrations)),
           bench::Fmt("%llu",
                      static_cast<unsigned long long>(r.stale_reads_detected)),
           bench::Fmt("%llu",
                      static_cast<unsigned long long>(r.stale_reads_served)),
           bench::Fmt("%llu",
                      static_cast<unsigned long long>(r.faults_injected))});

      const std::string tag =
          std::string("fault/") + mode + "/workers_" + std::to_string(workers);
      bench::JsonReport::Get().Add(tag, r.modeled_makespan_seconds * 1e9,
                                   r.throughput_ops_per_sec, 0.0, 0.0);
      bench::JsonReport::Get().AddValue(tag + "/failures",
                                        static_cast<double>(r.failures));
      bench::JsonReport::Get().AddValue(
          tag + "/stale_reads_served", static_cast<double>(r.stale_reads_served));
      bench::JsonReport::Get().AddValue(tag + "/retries",
                                        static_cast<double>(r.retries));
      bench::JsonReport::Get().AddValue(
          tag + "/reintegrations", static_cast<double>(r.reintegrations));

      if (r.failures != 0 || r.stale_reads_served != 0) invariants_held = false;
      if (workers == 4) {
        (degraded ? degraded_at_4 : healthy_at_4) = r.throughput_ops_per_sec;
      }
    }
  }
  table.Print();

  const double ratio =
      degraded_at_4 > 0 ? healthy_at_4 / degraded_at_4 : 0.0;
  bench::JsonReport::Get().AddValue("fault/healthy_over_degraded_at_4", ratio);
  std::printf(
      "\nheadline: healthy/degraded throughput at 4 workers = %.2fx "
      "(criterion: <= 2x), invariants (0 failures, 0 stale serves): %s\n",
      ratio, invariants_held ? "held" : "VIOLATED");
  return invariants_held && ratio <= 2.0 ? 0 : 1;
}
