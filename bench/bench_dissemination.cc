// EXP-PUSH — selective dissemination (demo application 2, §3).
//
// Push-mode economics: every card receives the whole broadcast; the skip
// index saves decryption and CPU, not bandwidth. The bench sweeps
// subscriber counts and item sizes and reports per-item broadcast cost,
// per-card decryption, and the slowest card's modeled latency — the
// real-time constraint of the video-dissemination demo.

#include "bench/bench_util.h"
#include "dissem/channel.h"

using namespace csxa;
using namespace csxa::bench;

namespace {

xml::DomDocument FeedItem(size_t elements, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kNewsFeed;
  gp.target_elements = Smoke(elements);
  gp.seed = seed;
  gp.text_avg_len = 48;
  return xml::GenerateDocument(gp);
}

}  // namespace

int main() {
  std::printf("=== EXP-PUSH: dissemination throughput and per-card cost ===\n\n");

  const char* kRules =
      "+ child //item[rating=\"G\"]\n"
      "+ teen //item\n- teen //item[rating=\"R\"]\n- teen //media\n"
      "+ genres //channel/genre\n"
      "+ premium /feed\n";

  std::printf("--- per-subscriber economics (one 400-element item) ---\n");
  Table t1({"subscriber", "view B", "decrypt B", "of broadcast", "skips",
            "card s"});
  {
    dissem::ChannelOptions opt;
    opt.chunk_size = 256;
    dissem::Channel channel("feed", kRules, opt, 2718);
    dissem::Subscriber child("child", soe::CardProfile::EGate());
    dissem::Subscriber teen("teen", soe::CardProfile::EGate());
    dissem::Subscriber genres("genres", soe::CardProfile::EGate());
    dissem::Subscriber premium("premium", soe::CardProfile::EGate());
    for (auto* s : {&child, &teen, &genres, &premium}) channel.Subscribe(s);
    auto report = channel.Publish(FeedItem(400, 1));
    CSXA_CHECK(report.ok());
    uint64_t wire = report.value().broadcast_wire_bytes;
    for (const auto& d : report.value().deliveries) {
      t1.AddRow({d.subscriber, Fmt("%zu", d.view_xml.size()),
                 Fmt("%llu", (unsigned long long)d.stats.bytes_decrypted),
                 Fmt("%.0f%%", 100.0 * static_cast<double>(d.stats.bytes_decrypted) /
                                   static_cast<double>(wire)),
                 Fmt("%zu", d.stats.skips),
                 Fmt("%.1f", d.stats.total_seconds)});
      JsonReport::Get().Add(Fmt("push_card_s/%s", d.subscriber.c_str()),
                            d.stats.total_seconds * 1e9, 0, 0,
                            static_cast<double>(d.stats.bytes_decrypted));
    }
    t1.Print();
    std::printf("broadcast: %llu wire bytes per item\n\n",
                (unsigned long long)wire);
  }

  std::printf("--- item-size sweep: slowest card vs real-time budget ---\n");
  Table t2({"item elems", "broadcast B", "slowest card s", "egate keeps up",
            "modern s"});
  for (size_t elems : {100u, 200u, 400u, 800u}) {
    dissem::ChannelOptions opt;
    opt.chunk_size = 256;
    dissem::Channel channel("feed", kRules, opt, 3141);
    dissem::Subscriber teen("teen", soe::CardProfile::EGate());
    dissem::Subscriber premium("premium", soe::CardProfile::EGate());
    channel.Subscribe(&teen);
    channel.Subscribe(&premium);
    auto report = channel.Publish(FeedItem(elems, 10 + elems));
    CSXA_CHECK(report.ok());

    dissem::Channel modern_channel("feed2", kRules, opt, 3142);
    dissem::Subscriber mteen("teen", soe::CardProfile::ModernElement());
    dissem::Subscriber mpremium("premium", soe::CardProfile::ModernElement());
    modern_channel.Subscribe(&mteen);
    modern_channel.Subscribe(&mpremium);
    auto mreport = modern_channel.Publish(FeedItem(elems, 10 + elems));
    CSXA_CHECK(mreport.ok());

    // Real-time budget: one item per 30 s of playout (demo-style video
    // metadata stream).
    bool keeps_up = report.value().max_subscriber_seconds < 30.0;
    t2.AddRow({Fmt("%zu", elems),
               Fmt("%llu", (unsigned long long)report.value().broadcast_wire_bytes),
               Fmt("%.1f", report.value().max_subscriber_seconds),
               keeps_up ? "yes" : "NO",
               Fmt("%.3f", mreport.value().max_subscriber_seconds)});
    JsonReport::Get().Add(Fmt("push_slowest_s/%zu/egate", elems),
                          report.value().max_subscriber_seconds * 1e9, 0, 0,
                          static_cast<double>(
                              report.value().broadcast_wire_bytes));
    JsonReport::Get().Add(Fmt("push_slowest_s/%zu/modern", elems),
                          mreport.value().max_subscriber_seconds * 1e9);
  }
  t2.Print();
  std::printf("\nexpected shape: the 2 KB/s e-gate link caps broadcast "
              "consumption near ~2 KB of stream per second — the demo used "
              "low-rate textual/metadata streams; a modern element keeps "
              "up with three orders of magnitude more.\n");

  std::printf("\n--- subscriber scaling (400-element item, e-gate) ---\n");
  Table t3({"subscribers", "total card-seconds", "slowest s"});
  for (size_t n : {1u, 4u, 16u, 64u}) {
    n = Smoke(n, /*cap=*/4);
    dissem::ChannelOptions opt;
    opt.chunk_size = 256;
    dissem::Channel channel("feed", kRules, opt, 1618);
    std::vector<std::unique_ptr<dissem::Subscriber>> subs;
    for (size_t i = 0; i < n; ++i) {
      const char* names[] = {"child", "teen", "genres", "premium"};
      subs.push_back(std::make_unique<dissem::Subscriber>(
          names[i % 4], soe::CardProfile::EGate()));
      channel.Subscribe(subs.back().get());
    }
    auto report = channel.Publish(FeedItem(400, 5));
    CSXA_CHECK(report.ok());
    double total = 0;
    for (const auto& d : report.value().deliveries) {
      total += d.stats.total_seconds;
    }
    t3.AddRow({Fmt("%zu", n), Fmt("%.1f", total),
               Fmt("%.1f", report.value().max_subscriber_seconds)});
    JsonReport::Get().AddValue(Fmt("push_total_card_s/%zu", n), total);
  }
  t3.Print();
  std::printf("\nexpected shape: cards filter in parallel — wall-clock per "
              "item is the slowest card, independent of the audience size "
              "(the broadcast is sent once).\n");
  return 0;
}
