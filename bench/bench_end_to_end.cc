// EXP-APDU — end-to-end pull latency on the e-gate link (§3: "limited
// memory ... and a low bandwidth (2KB/s)").
//
// Decomposition of a full proxy→card→DSP query into transfer, crypto and
// evaluator time as document size grows, on the demo's e-gate profile and
// on a modern secure element; then a chunk-size sweep exposing the
// Merkle-proof overhead vs skip-granularity trade-off.

#include "bench/bench_util.h"

using namespace csxa;
using namespace csxa::bench;

int main() {
  std::printf("=== EXP-APDU: end-to-end pull latency decomposition ===\n");
  std::printf("hospital profile, subject sees //patient/admin (~10%%), "
              "chunk 256 B\n\n");

  Table t1({"elems", "doc B", "card", "transfer s", "crypto s", "eval s",
            "total s", "APDUs"});
  for (size_t elems : {250u, 1000u, 4000u, 16000u}) {
    Fixture fx = MakeFixture(xml::DocProfile::kHospital, elems,
                             "+ u //patient/admin\n", 555, 256, true, true,
                             /*text_avg=*/48);
    for (auto profile :
         {soe::CardProfile::EGate(), soe::CardProfile::ModernElement()}) {
      auto out = RunSession(fx, "u", "", true, profile);
      t1.AddRow({Fmt("%zu", elems), Fmt("%zu", fx.container_bytes.size()),
                 profile.name.c_str(),
                 Fmt("%.2f", out.stats.transfer_seconds),
                 Fmt("%.3f", out.stats.crypto_seconds),
                 Fmt("%.3f", out.stats.evaluator_seconds),
                 Fmt("%.2f", out.stats.total_seconds),
                 Fmt("%llu", (unsigned long long)out.stats.apdu_exchanges)});
      double secs = out.stats.total_seconds;
      JsonReport::Get().Add(
          Fmt("pull_latency/%zu/%s", elems, profile.name.c_str()),
          secs * 1e9,
          secs > 0 ? static_cast<double>(out.stats.evaluator.events) / secs : 0,
          secs > 0 ? static_cast<double>(fx.container_bytes.size()) / secs : 0);
    }
  }
  t1.Print();
  std::printf("\nexpected shape: transfer dominates on the 2 KB/s e-gate "
              "(the paper's motivation for skipping); the modern element "
              "shifts the bottleneck toward crypto/CPU.\n");

  std::printf("\n--- chunk-size sweep (4000 elements, e-gate, skip on) ---\n");
  Table t2({"chunk B", "container B", "transfer B", "decrypt B", "chunks",
            "skips", "total s"});
  for (size_t chunk : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    Fixture fx = MakeFixture(xml::DocProfile::kHospital, 4000,
                             "+ u //patient/admin\n", 556, chunk, true, true,
                             /*text_avg=*/48);
    auto out = RunSession(fx, "u", "", true);
    t2.AddRow({Fmt("%zu", chunk), Fmt("%zu", fx.container_bytes.size()),
               Fmt("%llu", (unsigned long long)out.stats.bytes_transferred),
               Fmt("%llu", (unsigned long long)out.stats.bytes_decrypted),
               Fmt("%llu/%llu", (unsigned long long)out.stats.chunks_fetched,
                   (unsigned long long)(out.stats.chunks_fetched +
                                        out.stats.chunks_avoided)),
               Fmt("%zu", out.stats.skips),
               Fmt("%.2f", out.stats.total_seconds)});
    double secs = out.stats.total_seconds;
    JsonReport::Get().Add(
        Fmt("chunk_sweep/%zu", chunk), secs * 1e9,
        secs > 0 ? static_cast<double>(out.stats.evaluator.events) / secs : 0,
        secs > 0 ? static_cast<double>(out.stats.bytes_transferred) / secs : 0);
  }
  t2.Print();
  std::printf("\nexpected shape: with constant-size chunk MACs, finer "
              "chunks harvest more skips (less decryption and transfer) "
              "until the 32 B/chunk MAC and per-APDU overheads bite; for "
              "selective access the optimum sits at small, APDU-sized "
              "chunks — the regime the demo card operated in.\n");

  std::printf("\n--- integrity schemes: per-chunk MAC (default) vs Merkle "
              "proofs (keyless verification), 4000 elems ---\n");
  Table t3({"chunk B", "scheme", "auth wire B", "overhead", "session s"});
  for (size_t chunk : {128u, 512u}) {
    for (auto mode : {crypto::IntegrityMode::kChunkMac,
                      crypto::IntegrityMode::kMerkle}) {
      Rng rng(558);
      auto key = crypto::SymmetricKey::Generate(&rng);
      xml::GeneratorParams gp;
      gp.profile = xml::DocProfile::kHospital;
      gp.target_elements = Smoke(4000);
      gp.seed = 558;
      gp.text_avg_len = 48;
      auto doc = xml::GenerateDocument(gp);
      auto encoded = skipindex::EncodeDocument(doc, {}).value();
      Bytes container_bytes =
          crypto::SecureContainer::Seal(key, encoded, chunk, &rng, mode);
      auto container = crypto::SecureContainer::Parse(container_bytes).value();
      FixtureProvider provider(&container);
      uint64_t payload = container.header().payload_size;
      uint64_t wire = provider.TotalWireBytes();

      soe::CardEngine card(soe::CardProfile::EGate());
      card.InstallKey("doc", key);
      ByteWriter hw;
      container.header().EncodeTo(&hw);
      auto rules = core::RuleSet::ParseText("+ u //patient/admin\n").value();
      Bytes sealed_rules = core::SealRuleSet(key, rules, /*version=*/1, &rng);
      soe::SessionOptions opts;
      opts.subject = "u";
      auto out =
          card.RunSession("doc", hw.bytes(), sealed_rules, &provider, opts);
      CSXA_CHECK(out.ok());
      t3.AddRow({Fmt("%zu", chunk),
                 mode == crypto::IntegrityMode::kChunkMac ? "chunk-mac"
                                                          : "merkle",
                 Fmt("%llu", (unsigned long long)(wire - payload)),
                 Fmt("%.1f%%", 100.0 * static_cast<double>(wire - payload) /
                                   static_cast<double>(payload)),
                 Fmt("%.2f", out.value().stats.total_seconds)});
    }
  }
  t3.Print();
  std::printf("\nthe card holds the MAC key, so keyed chunk MACs give the "
              "same tamper/substitution detection as Merkle proofs at "
              "constant cost; Merkle remains available when third parties "
              "must verify without the key.\n");
  return 0;
}
