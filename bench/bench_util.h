#ifndef CSXA_BENCH_BENCH_UTIL_H_
#define CSXA_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared setup for the experiment binaries: sealed-document
/// fixtures, rule sets calibrated to an authorized fraction, and a small
/// aligned-table printer so every bench prints paper-style rows.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/ref_evaluator.h"
#include "core/rule.h"
#include "core/rule_envelope.h"
#include "crypto/container.h"
#include "skipindex/codec.h"
#include "soe/card_engine.h"
#include "xml/generator.h"
#include "xpath/parser.h"

namespace csxa::bench {

/// True when CSXA_BENCH_SMOKE is set (the ctest `bench-smoke` entries set
/// it): every bench shrinks its workload to a tiny size so the perf code
/// keeps running — not just compiling — on every CI pass.
inline bool SmokeMode() {
  static const bool on = [] {
    const char* v = std::getenv("CSXA_BENCH_SMOKE");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return on;
}

/// Caps a workload dimension (element count, fan-out, repeat count) in
/// smoke mode; returns it unchanged in a full run.
inline size_t Smoke(size_t n, size_t cap = 200) {
  return SmokeMode() && n > cap ? cap : n;
}

/// \brief Machine-readable benchmark tracking (the BENCH_*.json files).
///
/// When the CSXA_BENCH_JSON environment variable names a file, every
/// Add() call records one entry and the report is written on process exit
/// as a flat JSON object:
///
///   { "<name>": {"time_ns": ..., "events_per_s": ..., "bytes_per_s": ...,
///                "value": ...},
///     ... }
///
/// `value` carries series that are not times or rates (modeled RAM peaks,
/// index overhead fractions, policy-update byte counts); time/rate-shaped
/// benches leave it 0.
///
/// scripts/bench.sh sets the variable per bench binary; the table output
/// on stdout stays the human-readable form of the same runs. Without the
/// variable, Add() is a no-op — benches never write files on their own.
class JsonReport {
 public:
  static JsonReport& Get() {
    static JsonReport* r = new JsonReport();  // intentionally leaked
    return *r;
  }

  void Add(const std::string& name, double time_ns, double events_per_s = 0.0,
           double bytes_per_s = 0.0, double value = 0.0) {
    if (path_.empty()) return;
    entries_.push_back(Entry{name, time_ns, events_per_s, bytes_per_s, value});
  }

  /// Records a value-shaped series (no time/rate component).
  void AddValue(const std::string& name, double value) {
    Add(name, 0.0, 0.0, 0.0, value);
  }

  /// Writes the report (atexit hook; safe to call when disabled or empty).
  void Write() {
    if (path_.empty() || entries_.empty() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "  \"%s\": {\"time_ns\": %.6g, \"events_per_s\": %.6g, "
                   "\"bytes_per_s\": %.6g, \"value\": %.6g}%s\n",
                   e.name.c_str(), e.time_ns, e.events_per_s, e.bytes_per_s,
                   e.value, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

 private:
  JsonReport() {
    const char* p = std::getenv("CSXA_BENCH_JSON");
    if (p != nullptr && *p != '\0') {
      path_ = p;
      std::atexit([] { JsonReport::Get().Write(); });
    }
  }

  struct Entry {
    std::string name;
    double time_ns;
    double events_per_s;
    double bytes_per_s;
    double value;
  };
  std::string path_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

/// A sealed document ready for card sessions, with an in-memory provider.
struct Fixture {
  crypto::SymmetricKey key;
  Bytes container_bytes;
  std::unique_ptr<crypto::SecureContainer> container;
  Bytes header_bytes;
  Bytes sealed_rules;
  core::RuleSet rules;
  xml::DomDocument doc;
  skipindex::EncodeStats encode_stats;
  size_t encoded_bytes = 0;
};

/// ChunkProvider over a fixture (pull or push): the shared container
/// provider, modeling a remote DSP front-end (round trips counted).
using FixtureProvider = soe::ContainerChunkProvider;

/// Builds a sealed fixture from a generated document and rule text.
inline Fixture MakeFixture(xml::DocProfile profile, size_t elements,
                           const std::string& rules_text, uint64_t seed,
                           size_t chunk_size = 512, bool with_index = true,
                           bool recursive = true, size_t text_avg = 24) {
  Fixture fx;
  elements = Smoke(elements);
  Rng rng(seed);
  fx.key = crypto::SymmetricKey::Generate(&rng);
  xml::GeneratorParams gp;
  gp.profile = profile;
  gp.target_elements = elements;
  gp.seed = seed;
  gp.text_avg_len = text_avg;
  fx.doc = xml::GenerateDocument(gp);
  skipindex::EncodeOptions eopt;
  eopt.with_index = with_index;
  eopt.recursive_bitmaps = recursive;
  auto encoded = skipindex::EncodeDocument(fx.doc, eopt, &fx.encode_stats);
  fx.encoded_bytes = encoded.value().size();
  fx.container_bytes =
      crypto::SecureContainer::Seal(fx.key, encoded.value(), chunk_size, &rng);
  fx.container = std::make_unique<crypto::SecureContainer>(
      crypto::SecureContainer::Parse(fx.container_bytes).value());
  ByteWriter hw;
  fx.container->header().EncodeTo(&hw);
  fx.header_bytes = hw.Take();
  fx.rules = core::RuleSet::ParseText(rules_text).value();
  fx.sealed_rules = core::SealRuleSet(fx.key, fx.rules, /*version=*/1, &rng);
  return fx;
}

/// Runs one pull session on an e-gate card over the fixture.
inline soe::SessionOutput RunSession(const Fixture& fx,
                                     const std::string& subject,
                                     const std::string& query, bool use_skip,
                                     soe::CardProfile profile =
                                         soe::CardProfile::EGate(),
                                     bool push_mode = false) {
  soe::CardEngine card(profile);
  card.InstallKey("doc", fx.key);
  FixtureProvider provider(fx.container.get());
  soe::SessionOptions opts;
  opts.subject = subject;
  opts.query_text = query;
  opts.use_skip = use_skip;
  opts.push_mode = push_mode;
  auto out =
      card.RunSession("doc", fx.header_bytes, fx.sealed_rules, &provider, opts);
  CSXA_CHECK(out.ok());
  return std::move(out).value();
}

/// Authorized element fraction for (subject, query) on the fixture.
inline double AuthFraction(const Fixture& fx, const std::string& subject,
                           const std::string& query) {
  xpath::PathExpr qexpr;
  const xpath::PathExpr* qptr = nullptr;
  if (!query.empty()) {
    qexpr = xpath::ParsePath(query).value();
    qptr = &qexpr;
  }
  return core::AuthorizedFraction(fx.doc, fx.rules.ForSubject(subject), qptr);
}

/// \brief Tiny fixed-width table printer (paper-style rows).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < headers_.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s|", std::string(widths[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell formatting helper.
inline std::string Fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace csxa::bench

#endif  // CSXA_BENCH_BENCH_UTIL_H_
