// EXP-DYN — the motivating claim of §1: dynamic rules vs static
// subset-encryption ([1, 6]).
//
// "Once the dataset is encrypted, changes in the access control rules
// definition may impact the subset boundaries, hence incurring a partial
// re-encryption of the dataset and a potential redistribution of keys."
//
// The bench applies the same sequence of policy changes to (a) C-SXA —
// re-seal a few hundred bytes of rules — and (b) the subset-encryption
// store — re-partition, re-encrypt, redistribute — across document sizes.

#include "baseline/subset_encryption.h"
#include "bench/bench_util.h"

using namespace csxa;
using namespace csxa::bench;

namespace {

struct PolicyStep {
  const char* label;
  const char* rules;
};

// An evolving community policy over the hospital document (new staff, an
// emergency exception, its revocation, a researcher restriction).
const PolicyStep kSteps[] = {
    {"initial",
     "+ doctor //patient\n- doctor //admin/billing\n"
     "+ accountant //patient/admin\n"},
    {"add researcher",
     "+ doctor //patient\n- doctor //admin/billing\n"
     "+ accountant //patient/admin\n"
     "+ researcher //patient/medical\n- researcher //patient/name\n"},
    {"emergency exception",
     "+ doctor //patient\n"
     "+ accountant //patient/admin\n"
     "+ researcher //patient/medical\n- researcher //patient/name\n"
     "+ oncall //patient[medical/diagnosis/severity=\"acute\"]\n"},
    {"revoke exception",
     "+ doctor //patient\n- doctor //admin/billing\n"
     "+ accountant //patient/admin\n"
     "+ researcher //patient/medical\n- researcher //patient/name\n"},
    {"tighten researcher",
     "+ doctor //patient\n- doctor //admin/billing\n"
     "+ accountant //patient/admin\n"
     "+ researcher //patient/medical/treatment\n"},
};

}  // namespace

int main() {
  std::printf("=== EXP-DYN: policy-change cost, C-SXA vs subset encryption ===\n\n");

  for (size_t elems : {500u, 2000u, 8000u}) {
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kHospital;
    gp.target_elements = Smoke(elems);
    gp.seed = 4242;
    auto doc = xml::GenerateDocument(gp);
    std::printf("--- hospital document, %zu elements ---\n",
                doc.CountElements());

    Rng rng(1);
    auto rules0 = core::RuleSet::ParseText(kSteps[0].rules).value();
    auto store = baseline::SubsetEncryptionStore::Build(&doc, rules0, &rng);
    CSXA_CHECK(store.ok());
    std::printf("subset build: %zu classes, %llu encrypted bytes, "
                "%.1f keys/subject\n",
                store.value().build_stats().class_count,
                (unsigned long long)store.value().build_stats().encrypted_bytes,
                store.value().build_stats().avg_keys_per_subject);

    Table table({"change", "csxa update B", "subset re-enc B",
                 "subset keys redist", "ratio"});
    Rng seal_rng(2);
    auto key = crypto::SymmetricKey::Generate(&seal_rng);
    for (size_t i = 1; i < sizeof(kSteps) / sizeof(kSteps[0]); ++i) {
      // C-SXA: the update is the sealed rule blob, nothing else.
      auto rules = core::RuleSet::ParseText(kSteps[i].rules).value();
      Bytes sealed =
          core::SealRuleSet(key, rules, /*version=*/i + 1, &seal_rng);

      auto change = store.value().ApplyPolicyChange(rules, &rng);
      CSXA_CHECK(change.ok());
      double ratio =
          sealed.size() == 0
              ? 0
              : static_cast<double>(change.value().bytes_reencrypted) /
                    static_cast<double>(sealed.size());
      table.AddRow({kSteps[i].label, Fmt("%zu", sealed.size()),
                    Fmt("%llu", (unsigned long long)change.value().bytes_reencrypted),
                    Fmt("%zu", change.value().keys_redistributed),
                    Fmt("%.0fx", ratio)});
      JsonReport::Get().AddValue(Fmt("csxa_update_bytes/%zu/step%zu",
                                     elems, i),
                                 static_cast<double>(sealed.size()));
      JsonReport::Get().AddValue(
          Fmt("subset_reenc_bytes/%zu/step%zu", elems, i),
          static_cast<double>(change.value().bytes_reencrypted));
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("--- read cost under the static scheme (whole classes) vs "
              "C-SXA (skip to the authorized parts) ---\n");
  Table t2({"elems", "subject", "subset decrypt B", "csxa decrypt B"});
  for (size_t elems : {2000u}) {
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kHospital;
    gp.target_elements = Smoke(elems);
    gp.seed = 4242;
    auto doc = xml::GenerateDocument(gp);
    Rng rng(3);
    auto rules = core::RuleSet::ParseText(kSteps[1].rules).value();
    auto store = baseline::SubsetEncryptionStore::Build(&doc, rules, &rng);
    CSXA_CHECK(store.ok());
    Fixture fx = MakeFixture(xml::DocProfile::kHospital, elems,
                             kSteps[1].rules, 4242, 256);
    for (const char* subject : {"doctor", "accountant", "researcher"}) {
      auto subset_cost = store.value().QueryCost(subject);
      auto csxa = RunSession(fx, subject, "", true);
      t2.AddRow({Fmt("%zu", elems), subject,
                 Fmt("%llu", (unsigned long long)subset_cost.bytes_decrypted),
                 Fmt("%llu", (unsigned long long)csxa.stats.bytes_decrypted)});
    }
  }
  t2.Print();
  std::printf("\nexpected shape: C-SXA's update cost is flat (a few hundred "
              "bytes, independent of document size); the static scheme "
              "re-encrypts in proportion to the affected subsets and "
              "redistributes keys whenever subset boundaries split.\n");
  return 0;
}
