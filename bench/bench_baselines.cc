// EXP-BASE — architecture comparison (§1/§2).
//
// Query latency for the same (document, subject, query) under:
//   csxa+skip   — this system, skip index on (the paper's proposal)
//   csxa-noskip — same card, index off (client full-scan with decryption)
//   server-acl  — trusted server prunes plaintext and ships the result
//                 (latency lower bound, but requires trusting the server —
//                 exactly what §1 says is eroding)
//   subset-enc  — static client-side scheme: download+decrypt every
//                 readable class
//
// Absolute numbers are modeled; the shape to check: csxa+skip approaches
// server-acl as selectivity rises, and beats full-scan everywhere.

#include "baseline/server_acl.h"
#include "baseline/subset_encryption.h"
#include "bench/bench_util.h"

using namespace csxa;
using namespace csxa::bench;

int main() {
  std::printf("=== EXP-BASE: query latency across architectures ===\n");
  std::printf("hospital, 3000 elements; e-gate card; 512 kbit/s terminal "
              "network\n\n");

  const char* kRules =
      "+ doctor //patient\n- doctor //admin/billing\n"
      "+ accountant //patient/admin\n"
      "+ auditor //billing/amount\n";

  struct Query {
    const char* subject;
    const char* query;
  };
  const Query queries[] = {
      {"auditor", ""},                 // ~2% of the document
      {"accountant", ""},              // ~10%
      {"doctor", "//medical/visit"},   // query-restricted
      {"doctor", ""},                  // ~85%
  };

  Fixture fx = MakeFixture(xml::DocProfile::kHospital, 3000, kRules, 777, 128,
                           true, true, /*text_avg=*/48);
  // Server baseline holds the same plaintext document.
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = Smoke(3000);
  gp.seed = 777;
  gp.text_avg_len = 48;
  baseline::TrustedServerBaseline server;
  CSXA_CHECK(server.AddDocument("h", xml::GenerateDocument(gp), kRules).ok());
  // Subset-encryption store over the same rules.
  Rng rng(8);
  auto subset =
      baseline::SubsetEncryptionStore::Build(&fx.doc, fx.rules, &rng);
  CSXA_CHECK(subset.ok());
  baseline::NetworkProfile net;

  Table table({"subject/query", "auth frac", "csxa+skip s", "csxa-noskip s",
               "server-acl s", "subset-enc s", "skip vs noskip"});
  for (const Query& q : queries) {
    auto with = RunSession(fx, q.subject, q.query, true);
    auto without = RunSession(fx, q.subject, q.query, false);
    CSXA_CHECK(with.view_xml == without.view_xml);
    auto srv = server.Query("h", q.subject, q.query, net);
    CSXA_CHECK(srv.ok());
    // Subset scheme: client downloads+decrypts all readable classes over
    // the card link, then filters locally (query does not reduce I/O);
    // every class blob is its own server round trip (no batch protocol).
    auto cost = subset.value().QueryCost(q.subject);
    soe::CardProfile egate = soe::CardProfile::EGate();
    double subset_seconds =
        static_cast<double>(cost.bytes_transferred) / egate.link_bytes_per_sec +
        static_cast<double>(cost.bytes_decrypted) *
            egate.cycles_per_byte_decrypt / (egate.cpu_mhz * 1e6) +
        static_cast<double>(cost.round_trips) * egate.round_trip_latency_sec;

    std::string label = std::string(q.subject) +
                        (q.query[0] ? std::string(" ") + q.query : "");
    table.AddRow({label, Fmt("%.2f", AuthFraction(fx, q.subject, q.query)),
                  Fmt("%.2f", with.stats.total_seconds),
                  Fmt("%.2f", without.stats.total_seconds),
                  Fmt("%.3f", srv.value().modeled_seconds),
                  Fmt("%.2f", subset_seconds),
                  Fmt("%.2fx", without.stats.total_seconds /
                                   with.stats.total_seconds)});
    std::string slug = label;
    for (char& c : slug) {
      if (c == ' ' || c == '/') c = '_';
    }
    const std::string tag = "baselines/" + slug;
    JsonReport::Get().Add(tag + "/csxa_skip", with.stats.total_seconds * 1e9);
    JsonReport::Get().Add(tag + "/csxa_noskip",
                          without.stats.total_seconds * 1e9);
    JsonReport::Get().Add(tag + "/server_acl",
                          srv.value().modeled_seconds * 1e9);
    JsonReport::Get().Add(tag + "/subset_enc", subset_seconds * 1e9);
  }
  table.Print();
  std::printf(
      "\ntrust column (not in the table): server-acl requires a trusted "
      "server; subset-enc cannot express dynamic/per-user rules without "
      "re-encryption (EXP-DYN); csxa needs only the tamper-resistant "
      "card.\n");
  std::printf("expected shape: csxa+skip tracks selectivity (auth frac) "
              "while csxa-noskip pays the whole document every time; the "
              "gap between csxa+skip and server-acl is the price of not "
              "trusting the server on a 2 KB/s card.\n");
  return 0;
}
