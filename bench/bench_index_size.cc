// EXP-IDXSZ — compactness of the skip index (§2.3).
//
// "These two features lead to design a very compact index (its decryption
// and transmission overhead must not exceed its own benefit)." The bench
// reports, per dataset profile and document size, the index overhead as a
// fraction of the indexless encoding, split into size varints and tag
// bitmaps, with and without the paper's recursive compression.

#include "bench/bench_util.h"

using namespace csxa;
using namespace csxa::bench;

int main() {
  std::printf("=== EXP-IDXSZ: skip-index overhead and recursive compression ===\n\n");
  Table table({"profile", "elems", "doc B (no idx)", "idx size B",
               "idx bitmap B", "overhead", "flat bitmap B", "flat overhead"});

  const xml::DocProfile profiles[] = {
      xml::DocProfile::kAgenda, xml::DocProfile::kHospital,
      xml::DocProfile::kNewsFeed, xml::DocProfile::kRandom};
  const size_t sizes[] = {500, 2000, 8000};

  for (auto profile : profiles) {
    for (size_t elems : sizes) {
      xml::GeneratorParams gp;
      gp.profile = profile;
      gp.target_elements = Smoke(elems);
      gp.seed = 99;
      auto doc = xml::GenerateDocument(gp);

      skipindex::EncodeStats none_stats, rec_stats, flat_stats;
      skipindex::EncodeOptions none;
      none.with_index = false;
      CSXA_CHECK(skipindex::EncodeDocument(doc, none, &none_stats).ok());
      skipindex::EncodeOptions rec;
      CSXA_CHECK(skipindex::EncodeDocument(doc, rec, &rec_stats).ok());
      skipindex::EncodeOptions flat;
      flat.recursive_bitmaps = false;
      CSXA_CHECK(skipindex::EncodeDocument(doc, flat, &flat_stats).ok());

      table.AddRow(
          {xml::DocProfileName(profile), Fmt("%zu", rec_stats.element_count),
           Fmt("%zu", none_stats.total_bytes),
           Fmt("%zu", rec_stats.index_size_bytes),
           Fmt("%zu", rec_stats.index_bitmap_bytes),
           Fmt("%.1f%%", 100.0 * rec_stats.IndexOverhead()),
           Fmt("%zu", flat_stats.index_bitmap_bytes),
           Fmt("%.1f%%", 100.0 * flat_stats.IndexOverhead())});
      JsonReport::Get().AddValue(
          Fmt("idx_overhead/%s/%zu", xml::DocProfileName(profile), elems),
          rec_stats.IndexOverhead());
      JsonReport::Get().AddValue(
          Fmt("idx_overhead_flat/%s/%zu", xml::DocProfileName(profile),
              elems),
          flat_stats.IndexOverhead());
    }
  }
  table.Print();

  std::printf("\n--- effect of vocabulary size (random profile, 2000 elems) ---\n");
  Table vtable({"tags", "idx bitmap B", "recursive overhead", "flat bitmap B",
                "flat overhead"});
  for (size_t vocab : {4u, 8u, 16u, 32u, 64u}) {
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kRandom;
    gp.target_elements = Smoke(2000);
    gp.vocabulary = vocab;
    gp.seed = 7;
    auto doc = xml::GenerateDocument(gp);
    skipindex::EncodeStats rec_stats, flat_stats;
    skipindex::EncodeOptions rec;
    CSXA_CHECK(skipindex::EncodeDocument(doc, rec, &rec_stats).ok());
    skipindex::EncodeOptions flat;
    flat.recursive_bitmaps = false;
    CSXA_CHECK(skipindex::EncodeDocument(doc, flat, &flat_stats).ok());
    vtable.AddRow({Fmt("%zu", vocab), Fmt("%zu", rec_stats.index_bitmap_bytes),
                   Fmt("%.1f%%", 100.0 * rec_stats.IndexOverhead()),
                   Fmt("%zu", flat_stats.index_bitmap_bytes),
                   Fmt("%.1f%%", 100.0 * flat_stats.IndexOverhead())});
    JsonReport::Get().AddValue(Fmt("idx_bitmap_bytes/vocab/%zu", vocab),
                               static_cast<double>(rec_stats.index_bitmap_bytes));
  }
  vtable.Print();
  std::printf("\nexpected shape: recursive compression keeps bitmap cost "
              "near-flat as the vocabulary grows; flat bitmaps grow "
              "linearly with it.\n");
  return 0;
}
