// EXP-RAM — the SOE memory constraint (§2.1, §3: 1 KB of RAM).
//
// Modeled peak working memory of a card session as document depth, rule
// count, predicate density (pending buffering!) and chunk size vary. The
// claim under test: the streaming evaluator fits the e-gate's 1 KB for
// realistic workloads, with pending predicates being the main pressure.

#include "bench/bench_util.h"
#include "scengen/rulegen.h"

using namespace csxa;
using namespace csxa::bench;

namespace {

size_t PeakForRandomDoc(int depth, size_t num_rules, double pred_prob,
                        size_t chunk, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kRandom;
  gp.target_elements = Smoke(600);
  gp.max_depth = depth;
  gp.seed = seed;
  auto doc = xml::GenerateDocument(gp);
  Rng rng(seed + 1);
  scengen::RuleGenParams rp;
  rp.num_rules = num_rules;
  rp.path.predicate_prob = pred_prob;
  auto rules = scengen::GenerateRules(doc, "u", rp, &rng);

  Rng seal_rng(seed + 2);
  auto key = crypto::SymmetricKey::Generate(&seal_rng);
  auto encoded = skipindex::EncodeDocument(doc, {}).value();
  Bytes container_bytes =
      crypto::SecureContainer::Seal(key, encoded, chunk, &seal_rng);
  auto container = crypto::SecureContainer::Parse(container_bytes).value();
  ByteWriter hw;
  container.header().EncodeTo(&hw);
  Bytes sealed_rules = core::SealRuleSet(key, rules, /*version=*/1, &seal_rng);

  soe::CardEngine card(soe::CardProfile::EGate());
  card.InstallKey("doc", key);
  FixtureProvider provider(&container);
  soe::SessionOptions opts;
  opts.subject = "u";
  auto out = card.RunSession("doc", hw.bytes(), sealed_rules, &provider, opts);
  CSXA_CHECK(out.ok());
  return out.value().stats.ram_peak;
}

std::string Verdict(size_t peak) { return peak <= 1024 ? "fits" : "OVER"; }

}  // namespace

int main() {
  std::printf("=== EXP-RAM: modeled card RAM vs workload shape "
              "(e-gate budget: 1024 B) ===\n\n");

  std::printf("--- document depth (6 rules, no predicates, chunk 256) ---\n");
  Table t1({"max depth", "ram peak B", "verdict"});
  for (int depth : {4, 8, 16, 32}) {
    size_t peak = PeakForRandomDoc(depth, 6, 0.0, 256, 50 + depth);
    t1.AddRow({Fmt("%d", depth), Fmt("%zu", peak), Verdict(peak)});
    JsonReport::Get().AddValue(Fmt("ram_peak/depth/%d", depth),
                               static_cast<double>(peak));
  }
  t1.Print();

  std::printf("\n--- rule count (depth 8, no predicates, chunk 256) ---\n");
  Table t2({"rules", "ram peak B", "verdict"});
  for (size_t rules : {2u, 4u, 8u, 16u, 32u}) {
    size_t peak = PeakForRandomDoc(8, rules, 0.0, 256, 80 + rules);
    t2.AddRow({Fmt("%zu", rules), Fmt("%zu", peak), Verdict(peak)});
    JsonReport::Get().AddValue(Fmt("ram_peak/rules/%zu", rules),
                               static_cast<double>(peak));
  }
  t2.Print();

  std::printf("\n--- predicate density (depth 8, 6 rules, chunk 256): the "
              "pending buffer at work ---\n");
  Table t3({"pred prob", "ram peak B", "verdict"});
  for (int p : {0, 25, 50, 75, 100}) {
    size_t peak = PeakForRandomDoc(8, 6, p / 100.0, 256, 120 + p);
    t3.AddRow({Fmt("%d%%", p), Fmt("%zu", peak), Verdict(peak)});
    JsonReport::Get().AddValue(Fmt("ram_peak/pred/%d", p),
                               static_cast<double>(peak));
  }
  t3.Print();

  std::printf("\n--- chunk size (depth 8, 6 rules, 25%% predicates): the I/O "
              "buffer share ---\n");
  Table t4({"chunk B", "ram peak B", "verdict"});
  for (size_t chunk : {64u, 128u, 256u, 512u, 1024u}) {
    size_t peak = PeakForRandomDoc(8, 6, 0.25, chunk, 200 + chunk);
    t4.AddRow({Fmt("%zu", chunk), Fmt("%zu", peak), Verdict(peak)});
    JsonReport::Get().AddValue(Fmt("ram_peak/chunk/%zu", chunk),
                               static_cast<double>(peak));
  }
  t4.Print();

  std::printf("\n--- the three demo scenarios (chunk 256) ---\n");
  Table t5({"scenario", "subject", "ram peak B", "verdict"});
  struct Case {
    xml::DocProfile profile;
    const char* rules;
    const char* subject;
    const char* label;
  };
  const Case cases[] = {
      {xml::DocProfile::kAgenda,
       "+ secretary /agenda\n- secretary //note[visibility=\"private\"]\n",
       "secretary", "agenda"},
      {xml::DocProfile::kHospital,
       "+ researcher //patient/medical\n- researcher //patient/name\n"
       "- researcher //patient/ssn\n",
       "researcher", "hospital"},
      {xml::DocProfile::kNewsFeed, "+ child //item[rating=\"G\"]\n", "child",
       "newsfeed"},
  };
  for (const Case& c : cases) {
    Fixture fx = MakeFixture(c.profile, 800, c.rules, 333, 256);
    auto out = RunSession(fx, c.subject, "", true);
    t5.AddRow({c.label, c.subject, Fmt("%zu", out.stats.ram_peak),
               Verdict(out.stats.ram_peak)});
    JsonReport::Get().AddValue(Fmt("ram_peak/scenario/%s", c.label),
                               static_cast<double>(out.stats.ram_peak));
  }
  t5.Print();
  std::printf("\nexpected shape: RAM grows with depth (stacks) and predicate "
              "density (pending buffer), stays flat in document size; the "
              "chunk buffer dominates at large chunk sizes.\n");
  return 0;
}
