/// \file bench_scenarios.cc
/// \brief Scenario-shape sweep: how document size, rule-set weight and
/// policy-update rate move serving throughput.
///
/// Sweeps a parameterized ScenarioSpec over an elements x rules x
/// update-rate grid (the three knobs the paper's experiments vary) and
/// replays each cell through the full serving stack with workload::RunLoad.
/// Every cell reports modeled throughput, server round trips
/// (backend.requests), and the cache/invalidation counters — so the
/// tracked series shows, e.g., how a heavier update mix converts cache
/// hits into invalidation fan-out. Two headline rows replay the
/// first-class catalog scenarios (the IoT fleet and the e-health mobility
/// workload) under the same harness.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scengen/spec.h"
#include "workload/load.h"

using namespace csxa;

namespace {

// One grid cell: a compact e-health-shaped spec with the swept knobs
// applied. Document count stays small so the sweep measures shape, not
// fleet size (the headline rows cover fleet scale).
scengen::ScenarioSpec CellSpec(size_t elements, size_t rules_per_subject,
                               double update_fraction) {
  scengen::ScenarioSpec spec;
  spec.name = "grid";
  spec.documents = 6;
  spec.seed = 404;
  spec.doc.profile = xml::DocProfile::kHospital;
  spec.doc.elements = elements;
  spec.doc.text_avg_len = 24;
  spec.rules.subjects = 3;
  spec.rules.rules_per_subject = rules_per_subject;
  spec.queries.generated = 3;
  spec.churn.update_fraction = update_fraction;
  spec.churn.publish_fraction = 0.05;
  spec.churn.subject_churn = 0.5;
  return spec;
}

workload::LoadReport RunCell(const scengen::ScenarioSpec& spec) {
  workload::LoadOptions opt;
  opt.sessions = bench::Smoke(8, 4);
  opt.ops_per_session = bench::Smoke(6, 3);
  opt.shards = 2;
  opt.workers = 4;
  opt.seed = 7;
  opt.spec = spec;
  return workload::RunLoad(opt);
}

void Report(const std::string& tag, const workload::LoadReport& r,
            bench::Table* table, const std::string& label) {
  const uint64_t ops = r.queries + r.updates + r.publishes;
  const uint64_t lookups = r.cache_hits + r.cache_misses;
  const double hit_pct = lookups > 0 ? 100.0 * static_cast<double>(r.cache_hits) /
                                           static_cast<double>(lookups)
                                     : 0.0;
  const uint64_t invalidations = r.cache_invalidations + r.fanout_invalidations;
  table->AddRow({label, bench::Fmt("%llu", static_cast<unsigned long long>(ops)),
                 bench::Fmt("%llu", static_cast<unsigned long long>(r.failures)),
                 bench::Fmt("%.0f", r.throughput_ops_per_sec),
                 bench::Fmt("%llu",
                            static_cast<unsigned long long>(r.backend.requests)),
                 bench::Fmt("%.1f", hit_pct),
                 bench::Fmt("%llu",
                            static_cast<unsigned long long>(invalidations)),
                 bench::Fmt("%.2f", r.p50_latency_ms),
                 bench::Fmt("%.2f", r.wall_seconds)});

  bench::JsonReport::Get().Add(tag, r.modeled_makespan_seconds * 1e9,
                               r.throughput_ops_per_sec, 0.0,
                               static_cast<double>(r.backend.requests));
  bench::JsonReport::Get().AddValue(tag + "/round_trips",
                                    static_cast<double>(r.backend.requests));
  bench::JsonReport::Get().AddValue(tag + "/cache_hits",
                                    static_cast<double>(r.cache_hits));
  bench::JsonReport::Get().AddValue(tag + "/cache_misses",
                                    static_cast<double>(r.cache_misses));
  bench::JsonReport::Get().AddValue(tag + "/invalidations",
                                    static_cast<double>(invalidations));
  bench::JsonReport::Get().AddValue(tag + "/failures",
                                    static_cast<double>(r.failures));
}

}  // namespace

int main() {
  std::printf("== Scenario-shape sweep: %s ==\n",
              bench::SmokeMode() ? "smoke workload" : "full workload");

  // The grid. Full mode: 3 x 2 x 3 = 18 cells; smoke trims each axis but
  // keeps the sweep alive (2 x 1 x 2 = 4 cells).
  const std::vector<size_t> element_axis =
      bench::SmokeMode() ? std::vector<size_t>{40, 120}
                         : std::vector<size_t>{60, 160, 320};
  const std::vector<size_t> rule_axis = bench::SmokeMode()
                                            ? std::vector<size_t>{2}
                                            : std::vector<size_t>{2, 6};
  const std::vector<double> update_axis =
      bench::SmokeMode() ? std::vector<double>{0.05, 0.35}
                         : std::vector<double>{0.05, 0.20, 0.40};

  bench::Table table({"cell", "ops", "fail", "thrpt ops/s", "round trips",
                      "cache hit%", "invalidations", "p50 ms", "wall s"});

  for (size_t elements : element_axis) {
    for (size_t rules : rule_axis) {
      for (double update : update_axis) {
        const scengen::ScenarioSpec spec = CellSpec(elements, rules, update);
        const workload::LoadReport r = RunCell(spec);
        const std::string tag = bench::Fmt("scenarios/e%zu_r%zu_u%02d",
                                           elements, rules,
                                           static_cast<int>(update * 100));
        Report(tag, r, &table, bench::Fmt("e=%zu r=%zu u=%.2f", elements,
                                          rules, update));
      }
    }
  }

  // Headline rows: the first-class catalog scenarios, same harness.
  {
    scengen::ScenarioSpec iot = scengen::IoTFleetSpec();
    if (bench::SmokeMode()) iot.documents = 64;
    Report("scenarios/iot_fleet", RunCell(iot), &table, "iot_fleet");

    scengen::ScenarioSpec health = scengen::EHealthMobilitySpec();
    if (bench::SmokeMode()) health.documents = 4;
    Report("scenarios/ehealth", RunCell(health), &table, "ehealth");
  }

  table.Print();
  return 0;
}
