// EXP-RPC — transport batching over the dsp::Service protocol (§2.3).
//
// "The cost of communication between the SOE, the client and the server"
// is one of the two limiting factors; this bench measures the round-trip
// half of it across the full proxy -> card -> DSP stack: per-chunk fetches
// vs the adaptive prefetch window, on the skip-heavy selective workload
// and on the full-scan worst case. Then the scale-out pieces: per-shard
// load of a ShardedService fleet and the CachingClient's revalidation
// economics across repeated sessions.

#include "bench/bench_util.h"
#include "core/rule.h"
#include "dsp/caching.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "skipindex/codec.h"
#include "soe/prefetch.h"

using namespace csxa;
using namespace csxa::bench;

namespace {

xml::DomDocument Hospital(size_t elements, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = Smoke(elements);
  gp.seed = seed;
  gp.text_avg_len = 48;
  return xml::GenerateDocument(gp);
}

struct Workload {
  const char* label;
  const char* rules;
  bool use_skip;
};

}  // namespace

int main() {
  std::printf("=== EXP-RPC: batch transport — round trips and modeled "
              "latency ===\n");
  std::printf("hospital profile, 3000 elements, chunk 128 B, e-gate card, "
              "%.0f ms DSP round trip\n\n",
              soe::CardProfile::EGate().round_trip_latency_sec * 1e3);

  const Workload workloads[] = {
      {"skip_heavy", "+ u //patient/admin\n", true},   // ~10% authorized
      {"full_scan", "+ u /hospital\n", false},         // every chunk fetched
  };

  for (const Workload& w : workloads) {
    std::printf("--- %s (%s) ---\n", w.label,
                w.use_skip ? "skip on" : "skip off");
    Table table({"schedule", "DSP round trips", "rtt s", "transfer s",
                 "crypto s", "total s", "speedup"});
    double per_chunk_total = 0;
    uint64_t per_chunk_trips = 0;
    std::string reference_view;
    double reference_transfer = 0, reference_crypto = 0;
    xml::DomDocument doc = Hospital(3000, 9);

    auto add_row = [&](const char* row_label, const char* json_name,
                       const proxy::QueryResult& result) {
      const auto& card = result.card;
      if (reference_view.empty()) {
        per_chunk_total = card.total_seconds;
        per_chunk_trips = card.dsp_round_trips;
        reference_view = result.xml;
        reference_transfer = card.transfer_seconds;
        reference_crypto = card.crypto_seconds;
      } else {
        // Every schedule must deliver the identical view at identical
        // card transfer/crypto cost — only round trips may differ.
        CSXA_CHECK(result.xml == reference_view);
        CSXA_CHECK(card.transfer_seconds == reference_transfer);
        CSXA_CHECK(card.crypto_seconds == reference_crypto);
      }
      table.AddRow({row_label,
                    Fmt("%llu", (unsigned long long)card.dsp_round_trips),
                    Fmt("%.2f", card.round_trip_seconds),
                    Fmt("%.2f", card.transfer_seconds),
                    Fmt("%.3f", card.crypto_seconds),
                    Fmt("%.2f", card.total_seconds),
                    Fmt("%.2fx", per_chunk_total / card.total_seconds)});
      JsonReport::Get().AddValue(
          Fmt("transport/%s/round_trips/%s", w.label, json_name),
          static_cast<double>(card.dsp_round_trips));
      JsonReport::Get().Add(Fmt("transport/%s/modeled_s/%s", w.label,
                                json_name),
                            card.total_seconds * 1e9);
    };

    for (uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
      dsp::DspServer dsp;
      pki::KeyRegistry registry;
      proxy::Publisher publisher(&dsp, &registry, 4242);
      proxy::PublishOptions popt;
      popt.chunk_size = 128;
      CSXA_CHECK(publisher.Publish("h", doc, w.rules, popt).ok());
      proxy::Terminal term("u", soe::CardProfile::EGate(), &dsp, &registry);
      CSXA_CHECK(term.Provision("h").ok());
      proxy::QueryOptions q;
      q.use_skip = w.use_skip;
      q.max_prefetch = window;
      auto result = term.Query("h", q);
      CSXA_CHECK(result.ok());
      add_row(window == 1 ? "w1 (per-chunk)" : Fmt("w%u", window).c_str(),
              window == 1 ? "perchunk" : Fmt("w%u", window).c_str(),
              result.value());
    }

    // The fetch planner: an owner-computed plan (the skip filter's
    // reachability pass over the plaintext encoding), then the terminal's
    // learned plan (second identical query on the same terminal).
    {
      Bytes encoded =
          skipindex::EncodeDocument(doc, skipindex::EncodeOptions{}).value();
      core::RuleSet rules = core::RuleSet::ParseText(w.rules).value();
      soe::FetchPlan plan =
          soe::ComputeFetchPlan(Span(encoded), 128, rules.ForSubject("u"),
                                nullptr, w.use_skip)
              .value();

      dsp::DspServer dsp;
      pki::KeyRegistry registry;
      proxy::Publisher publisher(&dsp, &registry, 4242);
      proxy::PublishOptions popt;
      popt.chunk_size = 128;
      CSXA_CHECK(publisher.Publish("h", doc, w.rules, popt).ok());

      proxy::Terminal owner_term("u", soe::CardProfile::EGate(), &dsp,
                                 &registry);
      CSXA_CHECK(owner_term.Provision("h").ok());
      proxy::QueryOptions q;
      q.use_skip = w.use_skip;
      q.fetch_policy = proxy::FetchPolicy::kPlanned;
      q.plan = &plan;
      auto owner = owner_term.Query("h", q);
      CSXA_CHECK(owner.ok());
      CSXA_CHECK(owner.value().plan_miss_trips == 0);
      add_row("planned (owner)", "planned", owner.value());

      proxy::Terminal learn_term("u", soe::CardProfile::EGate(), &dsp,
                                 &registry);
      CSXA_CHECK(learn_term.Provision("h").ok());
      proxy::QueryOptions lq;
      lq.use_skip = w.use_skip;
      lq.fetch_policy = proxy::FetchPolicy::kPlanned;  // learn on first run
      auto probe = learn_term.Query("h", lq);
      CSXA_CHECK(probe.ok() && probe.value().plan_learned);
      auto learned = learn_term.Query("h", lq);
      CSXA_CHECK(learned.ok());
      add_row("planned (learned)", "planned_learned", learned.value());

      table.Print();
      std::printf("per-chunk baseline: %llu round trips; plan: %zu ranges, "
                  "%llu chunks\n\n",
                  (unsigned long long)per_chunk_trips, plan.runs.size(),
                  (unsigned long long)plan.total_chunks());
      JsonReport::Get().AddValue(Fmt("transport/%s/plan_ranges", w.label),
                                 static_cast<double>(plan.runs.size()));
    }
  }
  std::printf("expected shape: sequential runs amortize one round trip over "
              "the whole window while skip jumps collapse it, so the win "
              "grows with the authorized-run length; the planner removes the "
              "guessing entirely — the whole needed chunk set arrives as one "
              "multi-span request, so round trips collapse to open + 1 "
              "regardless of how scattered the authorized ranges are. "
              "Transfer and crypto columns are identical by construction "
              "(prefetched or planned chunks the card never reads never "
              "cross the APDU link).\n");

  std::printf("\n--- sharded fleet: per-shard load, 12 documents ---\n");
  {
    dsp::DspServer s0, s1, s2, s3;
    dsp::ShardedService sharded({&s0, &s1, &s2, &s3});
    pki::KeyRegistry registry;
    proxy::Publisher publisher(&sharded, &registry, 7);
    size_t docs = Smoke(12, 6);
    for (size_t i = 0; i < docs; ++i) {
      CSXA_CHECK(publisher
                     .Publish(Fmt("doc-%zu", i), Hospital(300, 100 + i),
                              "+ u //patient/admin\n")
                     .ok());
    }
    for (size_t i = 0; i < docs; ++i) {
      proxy::Terminal term("u", soe::CardProfile::EGate(), &sharded,
                           &registry);
      CSXA_CHECK(term.Provision(Fmt("doc-%zu", i)).ok());
      CSXA_CHECK(term.Query(Fmt("doc-%zu", i), proxy::QueryOptions{}).ok());
    }
    Table table({"shard", "documents", "requests", "chunks", "bytes served"});
    const dsp::DspServer* shards[] = {&s0, &s1, &s2, &s3};
    for (size_t i = 0; i < 4; ++i) {
      auto st = shards[i]->stats();
      table.AddRow({Fmt("%zu", i), Fmt("%llu", (unsigned long long)st.documents),
                    Fmt("%llu", (unsigned long long)st.requests),
                    Fmt("%llu", (unsigned long long)st.chunks_served),
                    Fmt("%llu", (unsigned long long)st.bytes_served)});
      JsonReport::Get().AddValue(Fmt("transport/sharded/requests/shard%zu", i),
                                 static_cast<double>(st.requests));
    }
    table.Print();
    std::printf("failovers: %llu (hash routing, none expected)\n",
                (unsigned long long)sharded.failovers());
  }

  std::printf("\n--- caching client: repeated sessions, one policy update ---\n");
  {
    dsp::DspServer dsp;
    dsp::CachingClient cached(&dsp);
    pki::KeyRegistry registry;
    proxy::Publisher publisher(&dsp, &registry, 8);
    auto receipt =
        publisher.Publish("h", Hospital(1000, 11), "+ u //patient/admin\n");
    CSXA_CHECK(receipt.ok());
    proxy::Terminal term("u", soe::CardProfile::EGate(), &cached, &registry);
    CSXA_CHECK(term.Provision("h").ok());

    Table table({"session", "dsp wire B", "cache", "view B"});
    size_t sessions = Smoke(6, 4);
    for (size_t i = 0; i < sessions; ++i) {
      if (i == sessions / 2) {
        // Owner tightens the policy mid-series: one cheap sealed-rules
        // update; the next revalidation notices the version bump.
        CSXA_CHECK(publisher
                       .UpdateRules("h", receipt.value().key,
                                    "+ u //patient/admin\n- u //admin/billing\n")
                       .ok());
      }
      uint64_t hits_before = cached.hits();
      uint64_t inval_before = cached.invalidations();
      auto result = term.Query("h", proxy::QueryOptions{});
      CSXA_CHECK(result.ok());
      const char* outcome = cached.hits() > hits_before          ? "hit"
                            : cached.invalidations() > inval_before ? "inval"
                                                                    : "miss";
      table.AddRow({Fmt("%zu", i),
                    Fmt("%llu",
                        (unsigned long long)result.value().dsp_bytes_fetched),
                    outcome, Fmt("%zu", result.value().xml.size())});
    }
    table.Print();
    std::printf("hits %llu, misses %llu, invalidations %llu; total DSP bytes "
                "served %llu\n",
                (unsigned long long)cached.hits(),
                (unsigned long long)cached.misses(),
                (unsigned long long)cached.invalidations(),
                (unsigned long long)dsp.stats().bytes_served);
    JsonReport::Get().AddValue("transport/caching/hits",
                               static_cast<double>(cached.hits()));
    JsonReport::Get().AddValue("transport/caching/invalidations",
                               static_cast<double>(cached.invalidations()));
  }
  return 0;
}
