// EXP-ABL — ablations of the design choices DESIGN.md calls out.
//
//   A. Pending machinery: predicate density vs buffered output and the
//      cost of the order-preserving pipeline.
//   B. Skip-decision ingredients: disable the tag-set test (size-only
//      index) and measure lost skips.
//   C. Recursive bitmap compression: end-to-end effect on a session, not
//      just on stored bytes (decrypting a fatter index costs time).

#include "bench/bench_util.h"
#include "scengen/rulegen.h"
#include "xml/writer.h"

using namespace csxa;
using namespace csxa::bench;

namespace {

// A: run the evaluator directly and report pending/buffering counters.
void AblationPending() {
  std::printf("--- A. pending machinery vs predicate density "
              "(random docs, 6 rules) ---\n");
  Table table({"pred prob", "pending nodes", "buffered peak", "obligations",
               "ram peak B"});
  for (int p : {0, 25, 50, 75, 100}) {
    size_t pending = 0, buffered = 0, obligations = 0, ram = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      xml::GeneratorParams gp;
      gp.profile = xml::DocProfile::kRandom;
      gp.target_elements = Smoke(500);
      gp.seed = 900 + seed;
      auto doc = xml::GenerateDocument(gp);
      Rng rng(1000 + seed);
      scengen::RuleGenParams rp;
      rp.num_rules = 6;
      rp.path.predicate_prob = p / 100.0;
      auto rules = scengen::GenerateRules(doc, "u", rp, &rng);
      xml::CanonicalWriter out;
      auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"),
                                                 nullptr, &out);
      CSXA_CHECK(ev.ok());
      CSXA_CHECK(doc.root()->EmitEvents(ev.value().get()).ok());
      CSXA_CHECK(ev.value()->Finish().ok());
      const auto& st = ev.value()->stats();
      pending += st.nodes_initially_pending;
      buffered = std::max(buffered, st.buffered_events_peak);
      obligations += st.obligations_created;
      ram = std::max(ram, st.modeled_ram_peak);
    }
    table.AddRow({Fmt("%d%%", p), Fmt("%zu", pending), Fmt("%zu", buffered),
                  Fmt("%zu", obligations), Fmt("%zu", ram)});
    const std::string tag = Fmt("ablation/pending/pred_%d", p);
    JsonReport::Get().AddValue(tag + "/pending_nodes",
                               static_cast<double>(pending));
    JsonReport::Get().AddValue(tag + "/ram_peak_bytes",
                               static_cast<double>(ram));
  }
  table.Print();
  std::printf("expected shape: with no predicates nothing is ever pending; "
              "buffering and RAM grow with predicate density — the cost of "
              "exact (non-conservative) pending resolution.\n\n");
}

// B: size-only index — emulate by a has_tag that always answers yes,
// which removes the tag-set pruning and leaves only decisions that are
// deniable without looking inside. Both variants run through the same
// byte-granular driver so skipped bytes are directly comparable.
void AblationTagSets() {
  std::printf("--- B. skip ingredients: full index vs size-only index ---\n");
  Table table({"rules", "full: skipped B", "size-only: skipped B",
               "tag sets contribute"});
  struct Case {
    const char* label;
    const char* rules;
  };
  const Case cases[] = {
      {"//billing/amount", "+ u //billing/amount\n"},
      {"//patient/admin", "+ u //patient/admin\n"},
      {"//patient - medical", "+ u //patient\n- u //medical\n"},
  };
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = Smoke(3000);
  gp.seed = 31;
  gp.text_avg_len = 48;
  auto doc = xml::GenerateDocument(gp);
  auto encoded = skipindex::EncodeDocument(doc, {}).value();

  auto run = [&](const core::RuleSet& rules, bool use_tag_sets) {
    skipindex::MemorySource src(encoded);
    auto dec = skipindex::DocumentDecoder::Open(&src).value();
    xml::CanonicalWriter out;
    auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr,
                                               &out)
                  .value();
    uint64_t skipped = 0;
    for (;;) {
      auto event = dec->Next().value();
      CSXA_CHECK(ev->OnEvent(event).ok());
      if (event.type == xml::EventType::kEnd) break;
      if (event.type == xml::EventType::kOpen &&
          dec->last_content_size() > 0) {
        auto real_tags = [&](std::string_view t) {
          return dec->SubtreeHasTag(t);
        };
        auto any_tag = [](std::string_view) { return true; };
        bool can =
            use_tag_sets
                ? ev->CanSkipCurrentSubtree(real_tags, dec->last_has_elements(),
                                            dec->last_has_text())
                : ev->CanSkipCurrentSubtree(any_tag, dec->last_has_elements(),
                                            dec->last_has_text());
        if (can) {
          skipped += dec->last_content_size();
          CSXA_CHECK(dec->SkipContent().ok());
          ev->NoteSubtreeSkipped();
        }
      }
    }
    return skipped;
  };

  for (const Case& c : cases) {
    auto rules = core::RuleSet::ParseText(c.rules).value();
    uint64_t full = run(rules, true);
    uint64_t size_only = run(rules, false);
    table.AddRow(
        {c.label, Fmt("%llu", (unsigned long long)full),
         Fmt("%llu", (unsigned long long)size_only),
         Fmt("%.0f%%", full == 0 ? 0.0
                                 : 100.0 * (1.0 - static_cast<double>(size_only) /
                                                      static_cast<double>(full)))});
    JsonReport::Get().AddValue(
        std::string("ablation/tagsets/") + c.label + "/full_skipped_bytes",
        static_cast<double>(full));
    JsonReport::Get().AddValue(
        std::string("ablation/tagsets/") + c.label + "/size_only_skipped_bytes",
        static_cast<double>(size_only));
  }
  table.Print();
  std::printf("expected shape: without tag sets the engine only skips "
              "text-only regions (nothing structural can be ruled out), "
              "losing the deep subtree skips — which is why the paper "
              "stores tag bitmaps despite their cost.\n\n");
}

// C: end-to-end effect of recursive compression.
void AblationRecursive() {
  std::printf("--- C. recursive bitmap compression, end-to-end ---\n");
  Table table({"bitmaps", "container B", "transfer B", "decrypt B",
               "total s"});
  for (bool recursive : {true, false}) {
    Fixture fx = MakeFixture(xml::DocProfile::kHospital, 3000,
                             "+ u //patient/admin\n", 33, 128,
                             /*with_index=*/true, recursive, /*text_avg=*/48);
    auto out = RunSession(fx, "u", "", true);
    table.AddRow({recursive ? "recursive" : "flat",
                  Fmt("%zu", fx.container_bytes.size()),
                  Fmt("%llu", (unsigned long long)out.stats.bytes_transferred),
                  Fmt("%llu", (unsigned long long)out.stats.bytes_decrypted),
                  Fmt("%.2f", out.stats.total_seconds)});
    const std::string tag =
        std::string("ablation/bitmaps/") + (recursive ? "recursive" : "flat");
    JsonReport::Get().Add(tag, out.stats.total_seconds * 1e9, 0.0, 0.0,
                          static_cast<double>(fx.container_bytes.size()));
  }
  table.Print();
  std::printf("expected shape: flat bitmaps inflate every open token, so "
              "the card transfers and decrypts more for the same skips.\n");
}

}  // namespace

int main() {
  std::printf("=== EXP-ABL: design-choice ablations ===\n\n");
  AblationPending();
  AblationTagSets();
  AblationRecursive();
  return 0;
}
