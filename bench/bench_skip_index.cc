// EXP-SKIP — the skip index benefit (§2.3).
//
// "Indexing is of utmost importance considering the two limiting factors
// of the target architecture: the cost of decryption in the SOE and the
// cost of communication." This bench sweeps the authorized fraction (how
// selective the subject's rules are) and reports transferred bytes,
// decrypted bytes and modeled e-gate time with and without the skip index.
//
// Expected shape (companion paper, VLDB'04): the more selective the
// access, the larger the win; at ~100% authorized the index costs its
// overhead and wins nothing.

#include "bench/bench_util.h"

using namespace csxa;
using namespace csxa::bench;

int main() {
  std::printf("=== EXP-SKIP: skip-index benefit vs authorized fraction ===\n");
  std::printf("hospital profile, 3000 elements, 48-char texts, chunk 128 B, "
              "e-gate card\n");
  std::printf("(chunks are the fetch/decrypt unit: only fully skipped "
              "chunks are saved — see the chunk sweep in EXP-APDU)\n\n");

  // Rule sets of decreasing selectivity over the hospital document.
  struct Level {
    const char* label;
    const char* rules;
  };
  const Level levels[] = {
      {"~1-2% (billing amounts)", "+ u //billing/amount\n"},
      {"~10% (admin subtree)", "+ u //patient/admin\n"},
      {"~35% (medical subtree)", "+ u //patient/medical\n"},
      {"~60% (patients minus medical)", "+ u //patient\n- u //medical\n"},
      {"100% (whole document)", "+ u /hospital\n"},
  };

  Table table({"authorized", "frac", "mode", "transfer B", "decrypt B",
               "skipped B", "chunks", "skips", "time s", "speedup"});
  for (const Level& level : levels) {
    Fixture fx = MakeFixture(xml::DocProfile::kHospital, 3000, level.rules,
                             1234, /*chunk_size=*/128, true, true,
                             /*text_avg=*/48);
    double frac = AuthFraction(fx, "u", "");
    auto with = RunSession(fx, "u", "", /*use_skip=*/true);
    auto without = RunSession(fx, "u", "", /*use_skip=*/false);
    CSXA_CHECK(with.view_xml == without.view_xml);
    double speedup = without.stats.total_seconds / with.stats.total_seconds;
    JsonReport::Get().Add(Fmt("skip_session_s/frac%.2f/skip", frac),
                          with.stats.total_seconds * 1e9, 0, 0, speedup);
    JsonReport::Get().Add(Fmt("skip_session_s/frac%.2f/noskip", frac),
                          without.stats.total_seconds * 1e9);
    table.AddRow({level.label, Fmt("%.2f", frac), "skip",
                  Fmt("%llu", (unsigned long long)with.stats.bytes_transferred),
                  Fmt("%llu", (unsigned long long)with.stats.bytes_decrypted),
                  Fmt("%llu", (unsigned long long)with.stats.bytes_skipped),
                  Fmt("%llu/%llu", (unsigned long long)with.stats.chunks_fetched,
                      (unsigned long long)(with.stats.chunks_fetched +
                                           with.stats.chunks_avoided)),
                  Fmt("%zu", with.stats.skips),
                  Fmt("%.2f", with.stats.total_seconds),
                  Fmt("%.2fx", speedup)});
    table.AddRow({"", "", "noskip",
                  Fmt("%llu", (unsigned long long)without.stats.bytes_transferred),
                  Fmt("%llu", (unsigned long long)without.stats.bytes_decrypted),
                  "0",
                  Fmt("%llu/%llu",
                      (unsigned long long)without.stats.chunks_fetched,
                      (unsigned long long)(without.stats.chunks_fetched +
                                           without.stats.chunks_avoided)),
                  "0", Fmt("%.2f", without.stats.total_seconds), "1.00x"});
  }
  table.Print();

  std::printf("\n--- query selectivity on a fully authorized document ---\n");
  Table qtable({"query", "frac", "mode", "transfer B", "decrypt B", "time s",
                "speedup"});
  const char* queries[] = {"//billing/amount", "//patient/medical/visit",
                           "//ward", ""};
  Fixture fx = MakeFixture(xml::DocProfile::kHospital, 3000, "+ u /hospital\n",
                           1235, 128, true, true, 48);
  for (const char* q : queries) {
    auto with = RunSession(fx, "u", q, true);
    auto without = RunSession(fx, "u", q, false);
    CSXA_CHECK(with.view_xml == without.view_xml);
    JsonReport::Get().Add(Fmt("skip_query_s/%s", q[0] ? q : "(none)"),
                          with.stats.total_seconds * 1e9, 0, 0,
                          without.stats.total_seconds /
                              with.stats.total_seconds);
    qtable.AddRow({q[0] ? q : "(none)", Fmt("%.2f", AuthFraction(fx, "u", q)),
                   "skip",
                   Fmt("%llu", (unsigned long long)with.stats.bytes_transferred),
                   Fmt("%llu", (unsigned long long)with.stats.bytes_decrypted),
                   Fmt("%.2f", with.stats.total_seconds),
                   Fmt("%.2fx", without.stats.total_seconds /
                                    with.stats.total_seconds)});
    qtable.AddRow(
        {"", "", "noskip",
         Fmt("%llu", (unsigned long long)without.stats.bytes_transferred),
         Fmt("%llu", (unsigned long long)without.stats.bytes_decrypted),
         Fmt("%.2f", without.stats.total_seconds), "1.00x"});
  }
  qtable.Print();
  return 0;
}
