// EXP-PIPE — the zero-copy event pipeline (parser / decoder / end-to-end).
//
// Wall-clock microbenchmarks of the borrowed-view (`EventView`) fast path
// against the owning-event path it replaced, at each stage of the
// producer→evaluator→writer pipeline:
//
//   BM_Parse/owning|view      textual XML pull parse (full document)
//   BM_Decode/owning|view     skip-index binary decode (full document)
//   BM_EndToEnd/owning|view   decode → StreamingEvaluator → CanonicalWriter
//
// Modeled on-card costs are byte-identical across the two modes (pinned by
// the oracle differential suite); what this bench demonstrates is the real
// CPU cost of the one-copy-per-text-event the owning path performs and the
// borrowed path eliminates.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/evaluator.h"
#include "skipindex/byte_source.h"
#include "skipindex/codec.h"
#include "xml/generator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

using namespace csxa;

constexpr size_t kDocElements = 2000;
constexpr size_t kTextAvg = 96;

std::string MakeDocText() {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = kDocElements;
  gp.seed = 71;
  gp.text_avg_len = kTextAvg;
  return xml::GenerateDocument(gp).Serialize();
}

Bytes MakeEncodedDoc(xml::DomDocument* doc_out = nullptr) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = kDocElements;
  gp.seed = 71;
  gp.text_avg_len = kTextAvg;
  auto doc = xml::GenerateDocument(gp);
  Bytes encoded = skipindex::EncodeDocument(doc, {}).value();
  if (doc_out != nullptr) *doc_out = std::move(doc);
  return encoded;
}

void SetRates(benchmark::State& state, size_t events, size_t bytes) {
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

void BM_Parse(benchmark::State& state, bool view_mode) {
  std::string text = MakeDocText();
  size_t events = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    xml::PullParser parser(text);
    for (;;) {
      if (view_mode) {
        auto v = parser.NextView();
        CSXA_CHECK(v.ok());
        if (v.value().type == xml::EventType::kEnd) break;
        benchmark::DoNotOptimize(v.value().name.data());
        benchmark::DoNotOptimize(v.value().text.data());
      } else {
        auto e = parser.Next();
        CSXA_CHECK(e.ok());
        if (e.value().type == xml::EventType::kEnd) break;
        benchmark::DoNotOptimize(e.value().name.data());
        benchmark::DoNotOptimize(e.value().text.data());
      }
      ++events;
    }
    bytes += text.size();
  }
  SetRates(state, events, bytes);
}
BENCHMARK_CAPTURE(BM_Parse, owning, false);
BENCHMARK_CAPTURE(BM_Parse, view, true);

void BM_Decode(benchmark::State& state, bool view_mode) {
  Bytes encoded = MakeEncodedDoc();
  size_t events = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    skipindex::MemorySource source{Span(encoded)};
    auto dec = skipindex::DocumentDecoder::Open(&source);
    CSXA_CHECK(dec.ok());
    for (;;) {
      if (view_mode) {
        auto v = dec.value()->NextView();
        CSXA_CHECK(v.ok());
        if (v.value().type == xml::EventType::kEnd) break;
        benchmark::DoNotOptimize(v.value().name.data());
        benchmark::DoNotOptimize(v.value().text.data());
      } else {
        auto e = dec.value()->Next();
        CSXA_CHECK(e.ok());
        if (e.value().type == xml::EventType::kEnd) break;
        benchmark::DoNotOptimize(e.value().name.data());
        benchmark::DoNotOptimize(e.value().text.data());
      }
      ++events;
    }
    bytes += encoded.size();
  }
  SetRates(state, events, bytes);
}
BENCHMARK_CAPTURE(BM_Decode, owning, false);
BENCHMARK_CAPTURE(BM_Decode, view, true);

void BM_EndToEnd(benchmark::State& state, bool view_mode) {
  Bytes encoded = MakeEncodedDoc();
  // Immediately-decidable rules (no value predicates): the pipeline stays
  // empty and delivered text streams through ComposeValue — the regime
  // where the borrowed path's copy elimination is visible end to end.
  // Predicate-heavy sessions buffer (and copy) pending output in both
  // modes; their cost is the evaluator's, not the event representation's.
  auto rules = core::RuleSet::ParseText(
                   "+ u //patient\n- u //patient/name\n- u //admin/billing\n")
                   .value();
  size_t events = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    skipindex::MemorySource source{Span(encoded)};
    auto dec = skipindex::DocumentDecoder::Open(&source);
    CSXA_CHECK(dec.ok());
    xml::CanonicalWriter writer;
    auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr,
                                               &writer);
    CSXA_CHECK(ev.ok());
    ev.value()->BindDocumentTags(dec.value()->tags());
    // Identical control flow in both modes (no skips): only the event
    // representation differs.
    for (;;) {
      if (view_mode) {
        auto v = dec.value()->NextView();
        CSXA_CHECK(v.ok());
        CSXA_CHECK(ev.value()->OnEventView(v.value()).ok());
        if (v.value().type == xml::EventType::kEnd) break;
      } else {
        auto e = dec.value()->Next();
        CSXA_CHECK(e.ok());
        CSXA_CHECK(ev.value()->OnEvent(e.value()).ok());
        if (e.value().type == xml::EventType::kEnd) break;
      }
    }
    benchmark::DoNotOptimize(writer.str().data());
    events += ev.value()->stats().events;
    bytes += encoded.size();
  }
  SetRates(state, events, bytes);
}
BENCHMARK_CAPTURE(BM_EndToEnd, owning, false);
BENCHMARK_CAPTURE(BM_EndToEnd, view, true);

}  // namespace

BENCHMARK_MAIN();
