// EXP-CRYPTO — the crypto substrate (§2.1: "the cost of decryption in the
// SOE" is one of the two limiting factors).
//
// Host throughput of each primitive plus, as counters, the modeled e-gate
// card time per kilobyte — the number the end-to-end decomposition in
// bench_end_to_end builds on.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/container.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/modes.h"
#include "crypto/sha256.h"
#include "soe/card_profile.h"

namespace {

using namespace csxa;
using crypto::Aes128;
using crypto::SymmetricKey;

Bytes RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

void BM_AesBlockEncrypt(benchmark::State& state) {
  auto aes = Aes128::New(RandomBytes(16, 1)).value();
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlockEncrypt);

void BM_CtrTransform(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto aes = Aes128::New(RandomBytes(16, 2)).value();
  Bytes data = RandomBytes(n, 3);
  crypto::Iv iv{};
  Bytes out;
  for (auto _ : state) {
    crypto::CtrTransform(aes, iv, data, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  // Modeled card time for this buffer (crypto coprocessor).
  soe::CardProfile card = soe::CardProfile::EGate();
  state.counters["card_ms"] =
      1e3 * static_cast<double>(n) * card.cycles_per_byte_decrypt /
      (card.cpu_mhz * 1e6);
}
BENCHMARK(BM_CtrTransform)->Arg(512)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Bytes data = RandomBytes(n, 4);
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(512)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = RandomBytes(16, 5);
  Bytes data = RandomBytes(512, 6);
  for (auto _ : state) {
    auto mac = crypto::HmacSha256(key, data);
    benchmark::DoNotOptimize(mac.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_HmacSha256);

void BM_MerkleBuild(benchmark::State& state) {
  size_t leaves = static_cast<size_t>(state.range(0));
  std::vector<Bytes> data;
  for (size_t i = 0; i < leaves; ++i) data.push_back(RandomBytes(512, 7 + i));
  for (auto _ : state) {
    auto tree = crypto::MerkleTree::Build(data);
    benchmark::DoNotOptimize(tree.root().data());
  }
  state.counters["leaves"] = static_cast<double>(leaves);
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(128)->Arg(1024);

void BM_MerkleVerify(benchmark::State& state) {
  size_t leaves = static_cast<size_t>(state.range(0));
  std::vector<Bytes> data;
  for (size_t i = 0; i < leaves; ++i) data.push_back(RandomBytes(512, 9 + i));
  auto tree = crypto::MerkleTree::Build(data);
  auto proof = tree.Prove(leaves / 2).value();
  for (auto _ : state) {
    bool ok = crypto::MerkleTree::Verify(tree.root(), leaves / 2, leaves,
                                         data[leaves / 2], proof);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["proof_nodes"] = static_cast<double>(proof.size());
}
BENCHMARK(BM_MerkleVerify)->Arg(16)->Arg(128)->Arg(1024);

void BM_ContainerSeal(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(10);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload = RandomBytes(n, 11);
  for (auto _ : state) {
    Bytes sealed = crypto::SecureContainer::Seal(key, payload, 512, &rng);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ContainerSeal)->Arg(4096)->Arg(65536);

void BM_ContainerOpenAll(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(12);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload = RandomBytes(n, 13);
  Bytes sealed = crypto::SecureContainer::Seal(key, payload, 512, &rng);
  for (auto _ : state) {
    auto opened = crypto::SecureContainer::OpenAll(key, sealed);
    CSXA_CHECK(opened.ok());
    benchmark::DoNotOptimize(opened.value().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ContainerOpenAll)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
