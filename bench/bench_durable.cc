/// \file bench_durable.cc
/// \brief Durable block store: publish throughput and open-path costs.
///
/// Runs dsp::DurableServer on the real filesystem (PosixEnv, a temp
/// directory, honest fsyncs) and measures what durability costs:
///
///  - publish throughput through the sealed block layer (data blocks +
///    fsync + manifest commit per document), against the in-memory
///    DspServer as the free baseline;
///  - warm open (clean-shutdown marker, lazy verification) vs cold open
///    (crash recovery: eager authentication of every stored block) of the
///    same store — the price of a crash is the cold-open delta;
///  - read path after each open, confirming lazy loads serve identical
///    bytes.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dsp/durable.h"
#include "dsp/store.h"

using namespace csxa;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/csxa-bench-durable-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  CSXA_CHECK(dir != nullptr);
  return dir;
}

}  // namespace

int main() {
  std::printf("== Durable block store: %s ==\n",
              bench::SmokeMode() ? "smoke workload" : "full workload");

  const size_t documents = bench::Smoke(64, 8);
  const size_t payload_bytes = bench::Smoke(20000, 4000);
  const std::string root = MakeTempDir();

  Rng rng(17);
  auto doc_key = crypto::SymmetricKey::Generate(&rng);
  std::vector<Bytes> containers;
  uint64_t published_bytes = 0;
  for (size_t i = 0; i < documents; ++i) {
    containers.push_back(crypto::SecureContainer::Seal(
        doc_key, Bytes(payload_bytes, static_cast<uint8_t>(i)), 512, &rng));
    published_bytes += containers.back().size();
  }
  Bytes rules(64, 0x2A);
  auto doc_id = [](size_t i) { return "doc-" + std::to_string(i); };

  bench::Table table(
      {"series", "docs", "time ms", "docs/s", "MB/s", "note"});

  // --- In-memory publish baseline ----------------------------------------
  double mem_publish_s = 0;
  {
    dsp::DspServer server;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < documents; ++i) {
      CSXA_CHECK(server.Publish(doc_id(i), containers[i], rules).ok());
    }
    mem_publish_s = SecondsSince(start);
  }

  // --- Durable publish (blocks + fsync + manifest commit per doc) --------
  dsp::DurableOptions options;
  options.directory = root + "/store";
  options.store_id = "bench";
  Rng key_rng(5);
  options.key = crypto::SymmetricKey::Generate(&key_rng);
  double durable_publish_s = 0;
  {
    auto server = std::move(dsp::DurableServer::Open(options)).value();
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < documents; ++i) {
      CSXA_CHECK(server->Publish(doc_id(i), containers[i], rules).ok());
    }
    durable_publish_s = SecondsSince(start);
    CSXA_CHECK(server->Close().ok());
  }

  // --- Warm open: marker present, nothing verified up front ---------------
  double warm_open_s = 0, warm_read_s = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    auto server = std::move(dsp::DurableServer::Open(options)).value();
    warm_open_s = SecondsSince(start);
    CSXA_CHECK(server->recovery().clean_shutdown);
    const auto read_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < documents; ++i) {  // lazy load pays here
      CSXA_CHECK(server->GetContainer(doc_id(i)).value() == containers[i]);
    }
    warm_read_s = SecondsSince(read_start);
    // Dropped WITHOUT Close(): the next open must take the crash path.
  }

  // --- Cold open: crash recovery, every block authenticated eagerly -------
  double cold_open_s = 0, cold_read_s = 0;
  uint64_t blocks_verified = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    auto server = std::move(dsp::DurableServer::Open(options)).value();
    cold_open_s = SecondsSince(start);
    CSXA_CHECK(!server->recovery().clean_shutdown);
    CSXA_CHECK(server->recovery().quarantined.empty());
    blocks_verified = server->recovery().blocks_verified;
    const auto read_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < documents; ++i) {  // already resident
      CSXA_CHECK(server->GetContainer(doc_id(i)).value() == containers[i]);
    }
    cold_read_s = SecondsSince(read_start);
    CSXA_CHECK(server->Close().ok());
  }

  const double mb = static_cast<double>(published_bytes) / 1e6;
  auto add = [&](const std::string& series, double seconds,
                 const std::string& note) {
    const double docs_per_s =
        seconds > 0 ? static_cast<double>(documents) / seconds : 0;
    const double mb_per_s = seconds > 0 ? mb / seconds : 0;
    table.AddRow({series, bench::Fmt("%zu", documents),
                  bench::Fmt("%.2f", seconds * 1e3),
                  bench::Fmt("%.0f", docs_per_s),
                  bench::Fmt("%.1f", mb_per_s), note});
    bench::JsonReport::Get().Add("durable/" + series, seconds * 1e9,
                                 docs_per_s,
                                 static_cast<double>(published_bytes) /
                                     (seconds > 0 ? seconds : 1));
  };
  add("publish_memory", mem_publish_s, "DspServer baseline");
  add("publish_durable", durable_publish_s, "blocks+fsync+manifest");
  add("open_warm", warm_open_s, "marker, lazy verify");
  add("read_after_warm", warm_read_s, "loads on first access");
  add("open_cold", cold_open_s,
      bench::Fmt("recovery, %llu blocks verified",
                 static_cast<unsigned long long>(blocks_verified)));
  add("read_after_cold", cold_read_s, "already resident");
  const double overhead = mem_publish_s > 0
                              ? durable_publish_s / mem_publish_s
                              : 0;
  bench::JsonReport::Get().AddValue("durable/publish_overhead_x", overhead);
  bench::JsonReport::Get().AddValue("durable/blocks_verified_cold",
                                    static_cast<double>(blocks_verified));

  table.Print();
  std::printf("durable publish costs %.1fx the in-memory baseline; "
              "cold open verifies %llu blocks where warm defers them\n",
              overhead, static_cast<unsigned long long>(blocks_verified));

  // Tidy the temp tree (segments, manifest, directories).
  const std::string cleanup = "rm -rf " + root;
  CSXA_CHECK(std::system(cleanup.c_str()) == 0);
  return 0;
}
