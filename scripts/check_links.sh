#!/usr/bin/env bash
# Docs job: checks every intra-repo markdown link in *.md (recursively,
# excluding build output) and fails on links whose target file does not
# exist. External links (http/https/mailto) and pure #anchors are not
# fetched — this guards the repo's own docs graph, not the internet.
set -euo pipefail

cd "$(dirname "$0")/.."

python3 - <<'EOF'
import os, re, sys

LINK = re.compile(r'(?<!\!)\[[^\]]*\]\(([^)\s]+)\)')
SKIP_DIRS = {"build", "bench-out", ".git", ".claude"}

errors = []
md_files = []
for root, dirs, files in os.walk("."):
    dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
    for f in files:
        if f.endswith(".md"):
            md_files.append(os.path.join(root, f))

for path in sorted(md_files):
    text = open(path, encoding="utf-8").read()
    # Fenced code blocks routinely contain example-link syntax; skip them.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for m in LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure anchor
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link -> {m.group(1)}")

for e in errors:
    print(e, file=sys.stderr)
if errors:
    print(f"link check FAILED: {len(errors)} broken link(s) "
          f"across {len(md_files)} markdown file(s)", file=sys.stderr)
    sys.exit(1)
print(f"link check OK: {len(md_files)} markdown files, 0 broken links")
EOF
