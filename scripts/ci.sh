#!/usr/bin/env bash
# Tier-1 verify: the exact line ROADMAP.md specifies. Run locally before
# pushing, or as the CI entrypoint. Exits non-zero on any configure,
# build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs first: a broken intra-repo link fails fast, before the build.
./scripts/check_links.sh

# -Werror in CI only: the tree is warning-clean and must stay so; local
# builds keep plain -Wall -Wextra so experiments aren't blocked.
cmake -B build -S . -DCSXA_WERROR=ON
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# The transport layer (dsp::Service protocol, sharding, caching,
# prefetching) gates separately so a regression names itself in CI logs.
ctest --output-on-failure -L transport
cd ..

# ThreadSanitizer pass over the serving-stack suites: the transport,
# concurrency and fault labels exercise the shared caches, sharded stores,
# the async dispatcher and the replicated fabric (failover, catch-up,
# retry storms) from many threads — TSan turns latent races into
# failures. Separate build dir (instrumentation is ABI-incompatible);
# benches and examples are skipped to keep the instrumented build small.
cmake -B build-tsan -S . -DCSXA_SANITIZE=thread \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -L "transport|concurrency|fault")
