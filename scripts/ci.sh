#!/usr/bin/env bash
# Tier-1 verify: the exact line ROADMAP.md specifies. Run locally before
# pushing, or as the CI entrypoint. Exits non-zero on any configure,
# build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"
