#!/usr/bin/env bash
# Tier-1 verify: the exact line ROADMAP.md specifies. Run locally before
# pushing, or as the CI entrypoint. Exits non-zero on any configure,
# build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs first: a broken intra-repo link fails fast, before the build.
./scripts/check_links.sh

# -Werror in CI only: the tree is warning-clean and must stay so; local
# builds keep plain -Wall -Wextra so experiments aren't blocked.
cmake -B build -S . -DCSXA_WERROR=ON
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# The transport layer (dsp::Service protocol, sharding, caching,
# prefetching) gates separately so a regression names itself in CI logs.
ctest --output-on-failure -L transport
