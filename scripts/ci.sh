#!/usr/bin/env bash
# Tier-1 verify: the exact line ROADMAP.md specifies. Run locally before
# pushing, or as the CI entrypoint. Exits non-zero on any configure,
# build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs first: a broken intra-repo link fails fast, before the build.
./scripts/check_links.sh

# -Werror in CI only: the tree is warning-clean and must stay so; local
# builds keep plain -Wall -Wextra so experiments aren't blocked.
cmake -B build -S . -DCSXA_WERROR=ON
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# The transport layer (dsp::Service protocol, sharding, caching,
# prefetching) gates separately so a regression names itself in CI logs,
# as does the fetch planner (the planned-vs-windowed-vs-per-chunk
# differential suite) and the scenario generator (seed-stability and
# oracle properties plus the IoT-fleet / e-health acceptance runs).
ctest --output-on-failure -L transport
ctest --output-on-failure -L planner
ctest --output-on-failure -L scengen
cd ..

# ThreadSanitizer pass over the serving-stack suites: the transport,
# concurrency, fault, planner, durable and scengen labels exercise the
# shared caches, sharded stores, the async dispatcher, the replicated
# fabric (failover, catch-up, retry storms), the multi-span planned fetch
# path, the durable block store and the generated-scenario load runs from
# many threads — TSan turns latent races into failures. Separate build dir
# (instrumentation is ABI-incompatible); benches and examples are skipped
# to keep the instrumented build small.
cmake -B build-tsan -S . -DCSXA_SANITIZE=thread \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -L "transport|concurrency|fault|durable|planner|scengen")

# AddressSanitizer pass over the durable store: the block layer, crash
# recovery and quarantine paths shuffle raw buffers, truncate files and
# replay torn tails — exactly where an off-by-one reads out of bounds.
cmake -B build-asan -S . -DCSXA_SANITIZE=address \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -L durable)

# Shared-library smoke: -DCSXA_SHARED=ON builds every csxa_<subsystem>
# library as a shared object (BUILD_SHARED_LIBS + PIC). This catches
# missing link edges that static archives paper over — an undefined
# symbol that a .a would defer to final-binary link time fails at .so
# link time instead. A fast label subset proves the .so stack serves.
cmake -B build-shared -S . -DCSXA_SHARED=ON \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-shared -j
(cd build-shared && ctest --output-on-failure -L "unit|scengen")
