#!/usr/bin/env bash
# Tier-1 verify: the exact line ROADMAP.md specifies. Run locally before
# pushing, or as the CI entrypoint. Exits non-zero on any configure,
# build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs first: a broken intra-repo link fails fast, before the build.
./scripts/check_links.sh

# -Werror in CI only: the tree is warning-clean and must stay so; local
# builds keep plain -Wall -Wextra so experiments aren't blocked.
cmake -B build -S . -DCSXA_WERROR=ON
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# The transport layer (dsp::Service protocol, sharding, caching,
# prefetching) gates separately so a regression names itself in CI logs,
# as does the fetch planner (the planned-vs-windowed-vs-per-chunk
# differential suite).
ctest --output-on-failure -L transport
ctest --output-on-failure -L planner
cd ..

# ThreadSanitizer pass over the serving-stack suites: the transport,
# concurrency, fault, planner and durable labels exercise the shared
# caches, sharded stores, the async dispatcher, the replicated fabric
# (failover, catch-up, retry storms), the multi-span planned fetch path
# and the durable block store from many threads — TSan turns latent races
# into failures. Separate build dir (instrumentation is ABI-incompatible);
# benches and examples are skipped to keep the instrumented build small.
cmake -B build-tsan -S . -DCSXA_SANITIZE=thread \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -L "transport|concurrency|fault|durable|planner")

# AddressSanitizer pass over the durable store: the block layer, crash
# recovery and quarantine paths shuffle raw buffers, truncate files and
# replay torn tails — exactly where an off-by-one reads out of bounds.
cmake -B build-asan -S . -DCSXA_SANITIZE=address \
  -DCSXA_BUILD_BENCH=OFF -DCSXA_BUILD_EXAMPLES=OFF
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -L durable)
