#!/usr/bin/env bash
# Runs every benchmark binary at full workload and saves the output under
# bench-out/ (one .txt per bench). This is the manual precursor to the
# BENCH_*.json tracking planned on the ROADMAP; `ctest -L bench-smoke`
# covers the fast keep-it-running check.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

# A stray smoke variable would silently record tiny-workload numbers as
# full-run baselines.
unset CSXA_BENCH_SMOKE

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — run scripts/ci.sh first" >&2
  exit 1
fi

mkdir -p bench-out
for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name"
  "$bin" | tee "bench-out/$name.txt"
done
echo "wrote bench-out/*.txt"
