#!/usr/bin/env bash
# Runs every benchmark binary at full workload and saves the output under
# bench-out/: one human-readable .txt per bench plus machine-readable
# BENCH_<name>.json files (name -> {time_ns, events_per_s, bytes_per_s})
# for perf tracking. `ctest -L bench-smoke` covers the fast
# keep-it-running check.
#
# Google Benchmark binaries (bench_automaton, bench_crypto,
# bench_pipeline) emit JSON via --benchmark_out, converted here; the plain
# table benches — including bench_transport (BENCH_transport.json, the
# tracked round-trip series), bench_fault (BENCH_fault.json, the tracked
# healthy-vs-degraded replicated-fabric series), bench_ablation and
# bench_baselines (both tracked at the repo root too), bench_dissemination
# bench_skip_index and bench_scenarios (BENCH_scenarios.json, the tracked
# elements x rules x update-rate scenario grid) — write their own report
# when CSXA_BENCH_JSON is set (bench/bench_util.h JsonReport). Any new
# bench_* binary is picked up automatically by the `*` case below.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

# A stray smoke variable would silently record tiny-workload numbers as
# full-run baselines.
unset CSXA_BENCH_SMOKE
unset CSXA_BENCH_JSON

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — run scripts/ci.sh first" >&2
  exit 1
fi

gbench_to_json() {
  # Flattens Google Benchmark's JSON into the BENCH_*.json schema.
  python3 - "$1" "$2" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
    out[b["name"]] = {
        "time_ns": b.get("real_time", 0.0) * scale,
        "events_per_s": b.get("events/s", 0.0),
        "bytes_per_s": b.get("bytes/s", b.get("bytes_per_second", 0.0)),
        "value": 0.0,
    }
json.dump(out, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])
EOF
}

mkdir -p bench-out
for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  short="${name#bench_}"
  echo "== $name"
  case "$name" in
    bench_automaton|bench_crypto|bench_pipeline)
      "$bin" --benchmark_out="bench-out/raw_$name.json" \
             --benchmark_out_format=json | tee "bench-out/$name.txt"
      gbench_to_json "bench-out/raw_$name.json" "bench-out/BENCH_$short.json"
      ;;
    *)
      CSXA_BENCH_JSON="bench-out/BENCH_$short.json" "$bin" \
        | tee "bench-out/$name.txt"
      ;;
  esac
done
echo "wrote bench-out/*.txt and bench-out/BENCH_*.json"
