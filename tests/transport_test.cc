// Transport-layer tests for the batch-first dsp::Service protocol: round
// trip accounting of batched vs per-chunk fetches (byte-identical views),
// sharded routing and failover, caching revalidation, and the prefetch
// window contract.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "crypto/container.h"
#include "dsp/caching.h"
#include "dsp/service.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "soe/prefetch.h"
#include "xml/generator.h"

namespace csxa {
namespace {

using proxy::Publisher;
using proxy::QueryOptions;
using proxy::Terminal;
using soe::CardProfile;

xml::DomDocument MakeDoc(size_t elements, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = elements;
  gp.seed = seed;
  gp.text_avg_len = 48;
  return xml::GenerateDocument(gp);
}

// --- Round-trip accounting -------------------------------------------------

TEST(TransportTest, BatchedFetchesCutRoundTripsByteIdentically) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 11);
  proxy::PublishOptions popt;
  popt.chunk_size = 128;  // fine chunks: many fetches, many skips
  ASSERT_TRUE(publisher
                  .Publish("h", MakeDoc(1500, 5),
                           "+ u //patient/admin\n", popt)
                  .ok());

  Terminal per_chunk("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(per_chunk.Provision("h").ok());
  QueryOptions q1;
  q1.max_prefetch = 1;  // every chunk is its own round trip
  auto a = per_chunk.Query("h", q1);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  Terminal batched("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(batched.Provision("h").ok());
  QueryOptions q8;
  q8.max_prefetch = 8;
  auto b = batched.Query("h", q8);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // Same delivered view, byte for byte.
  EXPECT_EQ(a.value().xml, b.value().xml);
  // Prefetched-but-unread chunks never cross the card link: transfer and
  // crypto costs are identical — only the round-trip count moves.
  EXPECT_EQ(a.value().card.bytes_transferred, b.value().card.bytes_transferred);
  EXPECT_EQ(a.value().card.bytes_decrypted, b.value().card.bytes_decrypted);
  EXPECT_DOUBLE_EQ(a.value().card.crypto_seconds, b.value().card.crypto_seconds);
  EXPECT_DOUBLE_EQ(a.value().card.transfer_seconds,
                   b.value().card.transfer_seconds);
  // Strictly fewer modeled round trips, hence strictly less modeled time.
  EXPECT_GT(a.value().card.dsp_round_trips, 0u);
  EXPECT_LT(b.value().card.dsp_round_trips, a.value().card.dsp_round_trips);
  EXPECT_LT(b.value().card.round_trip_seconds,
            a.value().card.round_trip_seconds);
  EXPECT_LT(b.value().card.total_seconds, a.value().card.total_seconds);
  EXPECT_LT(b.value().dsp_round_trips, a.value().dsp_round_trips);
}

TEST(TransportTest, OpenDocumentIsOneRoundTrip) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 12);
  ASSERT_TRUE(publisher.Publish("d", MakeDoc(100, 6), "+ u /hospital\n").ok());

  uint64_t before = dsp.stats().requests;
  auto open = dsp.OpenDocument("d");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(dsp.stats().requests, before + 1);
  EXPECT_FALSE(open.value().header.empty());
  EXPECT_FALSE(open.value().sealed_rules.empty());
  EXPECT_EQ(open.value().rules_version, 1u);
}

// --- Sharded backend -------------------------------------------------------

TEST(TransportTest, ShardedRoutingPlacesEachDocOnItsHomeShard) {
  dsp::DspServer s0, s1, s2;
  dsp::ShardedService sharded({&s0, &s1, &s2});
  pki::KeyRegistry registry;
  Publisher publisher(&sharded, &registry, 13);

  const char* ids[] = {"alpha", "bravo", "charlie", "delta", "echo", "fox"};
  for (const char* id : ids) {
    ASSERT_TRUE(publisher.Publish(id, MakeDoc(60, 7), "+ u /hospital\n").ok());
  }
  EXPECT_EQ(s0.size() + s1.size() + s2.size(), 6u);

  // Each document lives on exactly its home shard, and reads route there.
  dsp::DspServer* shards[] = {&s0, &s1, &s2};
  for (const char* id : ids) {
    size_t home = sharded.ShardFor(id);
    uint64_t home_before = shards[home]->stats().requests;
    ASSERT_TRUE(sharded.OpenDocument(id).ok());
    EXPECT_EQ(shards[home]->stats().requests, home_before + 1) << id;
  }
  EXPECT_EQ(sharded.failovers(), 0u);

  // The full stack works against a sharded fleet.
  Terminal u("u", CardProfile::EGate(), &sharded, &registry);
  ASSERT_TRUE(u.Provision("alpha").ok());
  auto result = u.Query("alpha", QueryOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().xml.empty());

  // Per-shard request accounting covers every shard that owns documents.
  uint64_t routed = 0;
  for (uint64_t n : sharded.shard_requests()) routed += n;
  EXPECT_GE(routed, 6u);
  EXPECT_EQ(sharded.stats().documents, 6u);
}

TEST(TransportTest, ShardedFailoverFindsMisplacedDocs) {
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});

  // Plant a document directly on the shard that is NOT its home (as after
  // a shard-count change): the router must fail over and find it.
  const std::string doc_id = "misplaced";
  size_t home = sharded.ShardFor(doc_id);
  dsp::DspServer* wrong = (home == 0) ? &s1 : &s0;
  Rng rng(1);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload(700, 0x42);
  Bytes container = crypto::SecureContainer::Seal(key, payload, 256, &rng);
  ASSERT_TRUE(wrong->Publish(doc_id, container, Bytes{1}).ok());

  auto open = sharded.OpenDocument(doc_id);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open.value().sealed_rules, (Bytes{1}));
  EXPECT_EQ(sharded.failovers(), 1u);

  // A document on no shard is NotFound after probing everywhere.
  EXPECT_EQ(sharded.OpenDocument("nowhere").status().code(),
            StatusCode::kNotFound);
}

// --- Caching client --------------------------------------------------------

TEST(TransportTest, CachingClientRevalidatesByRulesVersion) {
  dsp::DspServer dsp;
  dsp::CachingClient cached(&dsp);
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 14);  // writes bypass the cache
  auto receipt = publisher.Publish("folder", MakeDoc(200, 8),
                                   "+ doctor //patient\n");
  ASSERT_TRUE(receipt.ok());

  Terminal doctor("doctor", CardProfile::EGate(), &cached, &registry);
  ASSERT_TRUE(doctor.Provision("folder").ok());

  auto first = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cached.misses(), 1u);

  // Unchanged policy: the second open is a tiny not-modified revalidation
  // served from the cache — fewer DSP bytes for the same view.
  auto second = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(second.value().xml, first.value().xml);
  EXPECT_LT(second.value().dsp_bytes_fetched, first.value().dsp_bytes_fetched);
  EXPECT_EQ(dsp.stats().not_modified, 1u);

  // A policy update bumps the version even though it went straight to the
  // backend: revalidation invalidates and the new view takes effect.
  ASSERT_TRUE(publisher
                  .UpdateRules("folder", receipt.value().key,
                               "+ doctor //patient\n- doctor //patient/ssn\n")
                  .ok());
  auto third = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cached.invalidations(), 1u);
  EXPECT_EQ(third.value().xml.find("<ssn>"), std::string::npos);
  EXPECT_NE(first.value().xml.find("<ssn>"), std::string::npos);
}

TEST(TransportTest, CachingClientSurvivesRepublish) {
  // Republishing a document under the same id must bump the rules version
  // so the version-keyed cache cannot serve the old header against the new
  // container's chunks.
  dsp::DspServer dsp;
  dsp::CachingClient cached(&dsp);
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 15);
  ASSERT_TRUE(
      publisher.Publish("d", MakeDoc(150, 9), "+ u //patient\n").ok());

  Terminal u("u", CardProfile::EGate(), &cached, &registry);
  ASSERT_TRUE(u.Provision("d").ok());
  ASSERT_TRUE(u.Query("d", QueryOptions{}).ok());  // caches {header, v1}

  // Same id, brand-new content and key (fresh publication).
  ASSERT_TRUE(
      publisher.Publish("d", MakeDoc(300, 10), "+ u //patient\n").ok());
  ASSERT_TRUE(u.Provision("d").ok());  // pick up the new key grant
  EXPECT_GT(dsp.OpenDocument("d").value().rules_version, 1u);
  auto after = u.Query("d", QueryOptions{});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(cached.invalidations(), 1u);
  EXPECT_FALSE(after.value().xml.empty());
}

TEST(TransportTest, RepublishOfIdenticalContainerSkipsTheReparse) {
  // A publish whose container bytes match the stored ones (rules-only
  // republish, replication catch-up replay) must not re-parse the
  // container — and must still bump the version and swap the rules.
  dsp::DspServer dsp;
  Rng rng(77);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes container =
      crypto::SecureContainer::Seal(key, Bytes(700, 0x5A), 256, &rng);

  ASSERT_TRUE(dsp.Publish("d", container, Bytes(8, 1)).ok());
  EXPECT_EQ(dsp.publish_parse_skips(), 0u);

  ASSERT_TRUE(dsp.Publish("d", container, Bytes(8, 2)).ok());
  EXPECT_EQ(dsp.publish_parse_skips(), 1u);
  auto open = dsp.OpenDocument("d");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, 2u);
  EXPECT_EQ(open.value().sealed_rules, Bytes(8, 2));
  auto got = dsp.GetContainer("d");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), container);

  // Different bytes: the parse runs again, the skip counter stays put.
  Bytes other =
      crypto::SecureContainer::Seal(key, Bytes(900, 0x3C), 256, &rng);
  ASSERT_TRUE(dsp.Publish("d", other, Bytes(8, 3)).ok());
  EXPECT_EQ(dsp.publish_parse_skips(), 1u);
  EXPECT_EQ(dsp.OpenDocument("d").value().rules_version, 3u);
}

TEST(TransportTest, ShardedPublishAndRemoveClearStaleCopies) {
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  const std::string doc_id = "drifter";
  size_t home = sharded.ShardFor(doc_id);
  dsp::DspServer* wrong = (home == 0) ? &s1 : &s0;

  Rng rng(2);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes stale = crypto::SecureContainer::Seal(key, Bytes(600, 0x11), 256, &rng);
  ASSERT_TRUE(wrong->Publish(doc_id, stale, Bytes{1}).ok());

  // Republishing through the router supersedes the misplaced copy: reads
  // must never fail over to it again.
  Bytes fresh = crypto::SecureContainer::Seal(key, Bytes(900, 0x22), 256, &rng);
  ASSERT_TRUE(sharded.Publish(doc_id, fresh, Bytes{2}).ok());
  EXPECT_EQ(wrong->size(), 0u);
  // The publish cleared a live copy off a non-home shard while the home
  // shard had never seen the id: that is old-layout residency, and it is
  // counted as exactly one failover for the whole operation.
  EXPECT_EQ(sharded.failovers(), 1u);
  auto open = sharded.OpenDocument(doc_id);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().sealed_rules, (Bytes{2}));
  EXPECT_EQ(sharded.failovers(), 1u);  // the read was served by home

  // Removal leaves no copy behind on any shard; home held the document,
  // so removing it is not failover evidence.
  ASSERT_TRUE(sharded.Remove(doc_id).ok());
  EXPECT_EQ(sharded.OpenDocument(doc_id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(s0.size() + s1.size(), 0u);
  EXPECT_EQ(sharded.failovers(), 1u);
}

TEST(TransportTest, ShardedPublishOverHomeCopyCountsNoFailover) {
  // When the home shard already holds the document, sweeping stale copies
  // off other shards (there are none) must not count failovers: the
  // document was right where the current layout expects it.
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  const std::string doc_id = "settled";

  Rng rng(4);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes c1 = crypto::SecureContainer::Seal(key, Bytes(500, 0x01), 256, &rng);
  ASSERT_TRUE(sharded.Publish(doc_id, c1, Bytes{1}).ok());
  Bytes c2 = crypto::SecureContainer::Seal(key, Bytes(500, 0x02), 256, &rng);
  ASSERT_TRUE(sharded.Publish(doc_id, c2, Bytes{2}).ok());
  EXPECT_EQ(sharded.failovers(), 0u);
}

TEST(TransportTest, ShardedRemoveCountsFailoverOnlyWhenHomeMisses) {
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  const std::string doc_id = "mover";
  size_t home = sharded.ShardFor(doc_id);
  dsp::DspServer* home_shard = (home == 0) ? &s0 : &s1;
  dsp::DspServer* wrong = (home == 0) ? &s1 : &s0;

  Rng rng(5);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes container =
      crypto::SecureContainer::Seal(key, Bytes(500, 0x07), 256, &rng);

  // Copies on both home and a non-home shard: home satisfied the lookup,
  // the sweep merely cleaned up — no failover.
  ASSERT_TRUE(home_shard->Publish(doc_id, container, Bytes{1}).ok());
  ASSERT_TRUE(wrong->Publish(doc_id, container, Bytes{1}).ok());
  ASSERT_TRUE(sharded.Remove(doc_id).ok());
  EXPECT_EQ(s0.size() + s1.size(), 0u);
  EXPECT_EQ(sharded.failovers(), 0u);

  // Only a non-home copy (old layout): removing it required failing over,
  // counted once for the operation.
  ASSERT_TRUE(wrong->Publish(doc_id, container, Bytes{1}).ok());
  ASSERT_TRUE(sharded.Remove(doc_id).ok());
  EXPECT_EQ(s0.size() + s1.size(), 0u);
  EXPECT_EQ(sharded.failovers(), 1u);

  // No copy anywhere: NotFound, and still no extra failover evidence.
  EXPECT_EQ(sharded.Remove(doc_id).code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded.failovers(), 1u);
}

TEST(TransportTest, CachingClientDropsStaleEntryWhenDocumentVanishes) {
  // Regression: a cached document removed behind the cache's back used to
  // leave its entry in the map forever — the NotFound early-return skipped
  // the erase. The stale entry must be dropped on the failed open.
  dsp::DspServer dsp;
  dsp::CachingClient cached(&dsp);
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 16);  // talks straight to the backend
  ASSERT_TRUE(publisher.Publish("ghost", MakeDoc(80, 11), "+ u /hospital\n").ok());

  ASSERT_TRUE(cached.OpenDocument("ghost").ok());  // fill
  ASSERT_TRUE(cached.OpenDocument("ghost").ok());  // hit
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.cache_size(), 1u);

  // Removed directly on the backend: the cache cannot have seen it.
  ASSERT_TRUE(dsp.Remove("ghost").ok());
  auto open = cached.OpenDocument("ghost");
  EXPECT_EQ(open.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cached.cache_size(), 0u);  // the stale entry is gone

  // A republished incarnation is served fresh, not from the dead entry.
  ASSERT_TRUE(publisher.Publish("ghost", MakeDoc(90, 12), "+ u /hospital\n").ok());
  auto fresh = cached.OpenDocument("ghost");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value().rules_version, 1u);  // tombstone kept it monotone
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.cache_size(), 1u);
}

TEST(TransportTest, ShardedFailedPublishKeepsExistingCopies) {
  // A rejected publish must not destroy the only copy of the document
  // (the home shard is written first; stale clears happen on success).
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  const std::string doc_id = "survivor";
  size_t home = sharded.ShardFor(doc_id);
  dsp::DspServer* wrong = (home == 0) ? &s1 : &s0;

  Rng rng(3);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes good = crypto::SecureContainer::Seal(key, Bytes(600, 0x33), 256, &rng);
  ASSERT_TRUE(wrong->Publish(doc_id, good, Bytes{5}).ok());

  EXPECT_FALSE(sharded.Publish(doc_id, Bytes{1, 2, 3}, Bytes{}).ok());
  auto open = sharded.OpenDocument(doc_id);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open.value().sealed_rules, (Bytes{5}));
}

// --- Multi-span kGetChunks ---------------------------------------------------

// Seals a 10-chunk container (payload 2500 bytes, chunk 256) and returns
// the per-chunk reference fetched one span at a time.
std::vector<soe::ChunkData> PublishTenChunks(dsp::Service* dsp,
                                             const std::string& doc_id,
                                             uint64_t seed) {
  Rng rng(seed);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload(2500);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((seed * 37 + i) & 0xFF);
  }
  Bytes container = crypto::SecureContainer::Seal(key, payload, 256, &rng);
  EXPECT_TRUE(dsp->Publish(doc_id, container, Bytes{1}).ok());
  std::vector<soe::ChunkData> reference;
  for (uint32_t i = 0; i < 10; ++i) {
    auto one = dsp->GetChunks(doc_id, {dsp::ChunkSpan{i, 1}});
    EXPECT_TRUE(one.ok()) << i;
    reference.push_back(std::move(one.value()[0]));
  }
  return reference;
}

TEST(TransportTest, MultiSpanGetChunksServesSpansInRequestOrder) {
  dsp::DspServer dsp;
  std::vector<soe::ChunkData> reference = PublishTenChunks(&dsp, "m", 31);

  // Many disjoint spans, deliberately out of order, with an empty span
  // and an overlap thrown in: the response is the flattened concatenation
  // in REQUEST order (a chunk appearing in two spans is served twice) —
  // and the whole thing is exactly one request.
  std::vector<dsp::ChunkSpan> spans = {
      {7, 2}, {0, 3}, {4, 0}, {2, 2}, {9, 1}};
  const std::vector<uint32_t> expect = {7, 8, 0, 1, 2, 2, 3, 9};
  uint64_t requests_before = dsp.stats().requests;
  auto got = dsp.GetChunks("m", spans);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(dsp.stats().requests, requests_before + 1);
  ASSERT_EQ(got.value().size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got.value()[i].ciphertext, reference[expect[i]].ciphertext) << i;
  }

  // All-empty spans are a legal no-op request.
  auto none = dsp.GetChunks("m", {dsp::ChunkSpan{3, 0}, dsp::ChunkSpan{0, 0}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());

  // Any span reaching past the end fails the whole request: a planner bug
  // must surface as an error here, not as truncated data.
  EXPECT_FALSE(dsp.GetChunks("m", {dsp::ChunkSpan{0, 1}, dsp::ChunkSpan{9, 2}})
                   .ok());
  EXPECT_FALSE(dsp.GetChunks("m", {dsp::ChunkSpan{10, 1}}).ok());
}

TEST(TransportTest, MultiSpanGetChunksFailsOverOnShardedFleet) {
  // The planner's multi-span requests must survive the misplaced-document
  // path: the router probes, fails over, and the whole batch is served by
  // whichever shard holds the document.
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  const std::string doc_id = "misplaced-spans";
  size_t home = sharded.ShardFor(doc_id);
  dsp::DspServer* wrong = (home == 0) ? &s1 : &s0;
  std::vector<soe::ChunkData> reference =
      PublishTenChunks(wrong, doc_id, 32);

  auto got = sharded.GetChunks(
      doc_id, {dsp::ChunkSpan{8, 2}, dsp::ChunkSpan{1, 2}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(sharded.failovers(), 1u);
  ASSERT_EQ(got.value().size(), 4u);
  EXPECT_EQ(got.value()[0].ciphertext, reference[8].ciphertext);
  EXPECT_EQ(got.value()[1].ciphertext, reference[9].ciphertext);
  EXPECT_EQ(got.value()[2].ciphertext, reference[1].ciphertext);
  EXPECT_EQ(got.value()[3].ciphertext, reference[2].ciphertext);

  // And the span-order contract holds through the router exactly as it
  // does against a single store.
  auto again = sharded.GetChunks(
      doc_id, {dsp::ChunkSpan{0, 1}, dsp::ChunkSpan{0, 0}, dsp::ChunkSpan{5, 3}});
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().size(), 4u);
  EXPECT_EQ(again.value()[0].ciphertext, reference[0].ciphertext);
  EXPECT_EQ(again.value()[3].ciphertext, reference[7].ciphertext);
}

// --- Prefetch window contract ----------------------------------------------

// Counts backend batches without any store behind it.
class CountingProvider : public soe::ChunkProvider {
 public:
  explicit CountingProvider(uint32_t chunk_count) : chunk_count_(chunk_count) {}
  size_t batches = 0;
  uint32_t max_end_requested = 0;  // one-past-the-last chunk index asked for

 protected:
  Result<std::vector<soe::ChunkData>> FetchChunks(uint32_t first,
                                                  uint32_t count) override {
    if (first + count > max_end_requested) max_end_requested = first + count;
    if (first + count > chunk_count_) {
      return Status::NotFound("chunk out of range");
    }
    ++batches;
    std::vector<soe::ChunkData> chunks;
    for (uint32_t i = first; i < first + count; ++i) {
      soe::ChunkData chunk;
      chunk.ciphertext = Bytes{static_cast<uint8_t>(i)};
      chunks.push_back(std::move(chunk));
    }
    return chunks;
  }

 private:
  uint32_t chunk_count_;
};

TEST(TransportTest, PrefetchWindowGrowsSequentiallyAndCollapsesOnJumps) {
  CountingProvider backend(16);
  soe::PrefetchOptions opt;
  opt.max_window = 8;
  soe::PrefetchingProvider prefetch(&backend, /*chunk_count=*/16, opt);

  // Sequential scan of all 16 chunks: windows 2,4,8,2 -> 4 backend
  // batches instead of 16, and every chunk comes back intact.
  for (uint32_t i = 0; i < 16; ++i) {
    auto chunk = prefetch.GetChunk(i);
    ASSERT_TRUE(chunk.ok()) << i;
    EXPECT_EQ(chunk.value().ciphertext[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(backend.batches, 4u);
  EXPECT_EQ(prefetch.round_trips(), 4u);
  EXPECT_EQ(prefetch.chunks_fetched(), 16u);
  EXPECT_GT(prefetch.window_hits(), 0u);

  // A jump back (skip pattern) collapses the window to one chunk.
  size_t before = backend.batches;
  ASSERT_TRUE(prefetch.GetChunk(3).ok());
  EXPECT_EQ(backend.batches, before + 1);
  EXPECT_EQ(prefetch.chunks_fetched(), 17u);  // exactly one speculative-free chunk

  // Out-of-range propagates the backend error.
  EXPECT_FALSE(prefetch.GetChunk(99).ok());
}

TEST(TransportTest, PrefetchWindowClampsAtContainerEnd) {
  // 5 chunks with an 8-chunk window ceiling: the grown window straddles
  // the container end at chunk 2 (unclamped it would ask for [2, 6)) and
  // must be clamped to the real tail — the backend errors past the end.
  CountingProvider backend(5);
  soe::PrefetchOptions opt;
  opt.max_window = 8;
  soe::PrefetchingProvider prefetch(&backend, /*chunk_count=*/5, opt);

  for (uint32_t i = 0; i < 5; ++i) {
    auto chunk = prefetch.GetChunk(i);
    ASSERT_TRUE(chunk.ok()) << i;
    EXPECT_EQ(chunk.value().ciphertext[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(backend.max_end_requested, 5u);  // never past the end
  EXPECT_EQ(backend.batches, 2u);            // [0,2) then [2,5) clamped

  // An explicit out-of-range request still passes through (the backend's
  // error is the contract), rather than being clamped into a wrong answer.
  EXPECT_FALSE(prefetch.GetChunk(7).ok());
}

TEST(TransportTest, PrefetchBackwardJumpKeepsBufferConsistent) {
  // After a backward skip jump the window buffer is rebased; every chunk
  // served afterwards must still carry its own payload (buf_first_
  // bookkeeping), including window hits against the rebased buffer.
  CountingProvider backend(12);
  soe::PrefetchOptions opt;
  opt.max_window = 4;
  soe::PrefetchingProvider prefetch(&backend, 12, opt);

  for (uint32_t i = 0; i < 8; ++i) ASSERT_TRUE(prefetch.GetChunk(i).ok());

  // Jump back: collapses the window to one chunk, rebasing the buffer.
  auto back = prefetch.GetChunk(2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().ciphertext[0], 2u);

  // Resume after the jump target: sequential growth again, and each chunk
  // (fetched or window-hit) matches its index.
  for (uint32_t i = 3; i < 12; ++i) {
    auto chunk = prefetch.GetChunk(i);
    ASSERT_TRUE(chunk.ok()) << i;
    EXPECT_EQ(chunk.value().ciphertext[0], static_cast<uint8_t>(i)) << i;
  }
  EXPECT_EQ(backend.max_end_requested, 12u);
}

TEST(TransportTest, PrefetchWindowOneIsPerChunk) {
  CountingProvider backend(6);
  soe::PrefetchOptions opt;
  opt.max_window = 1;
  soe::PrefetchingProvider prefetch(&backend, 6, opt);
  for (uint32_t i = 0; i < 6; ++i) ASSERT_TRUE(prefetch.GetChunk(i).ok());
  EXPECT_EQ(backend.batches, 6u);
  EXPECT_EQ(prefetch.round_trips(), 6u);
}

}  // namespace
}  // namespace csxa
