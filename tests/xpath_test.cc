// XPath fragment tests: parser acceptance/rejection, printer round-trips,
// value comparison semantics, DOM evaluation.

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xpath/ast.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using xpath::Axis;
using xpath::CmpOp;
using xpath::ParsePath;
using xpath::PathExpr;

TEST(XPathParseTest, SimpleChildPath) {
  auto r = ParsePath("/a/b/c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().steps.size(), 3u);
  EXPECT_EQ(r.value().steps[0].axis, Axis::kChild);
  EXPECT_EQ(r.value().steps[2].tag, "c");
}

TEST(XPathParseTest, DescendantAndWildcard) {
  auto r = ParsePath("//a/*//b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().steps[0].axis, Axis::kDescendant);
  EXPECT_TRUE(r.value().steps[1].wildcard);
  EXPECT_EQ(r.value().steps[2].axis, Axis::kDescendant);
}

TEST(XPathParseTest, PredicateForms) {
  auto r = ParsePath("//a[b]/c[.//d/e]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().steps[0].predicates.size(), 1u);
  const auto& p2 = r.value().steps[1].predicates[0];
  EXPECT_EQ(p2.path.steps.size(), 2u);
  EXPECT_EQ(p2.path.steps[0].axis, Axis::kDescendant);
}

TEST(XPathParseTest, ValuePredicates) {
  struct Case {
    const char* text;
    CmpOp op;
    const char* literal;
  };
  const Case cases[] = {
      {"//a[b=\"x\"]", CmpOp::kEq, "x"},   {"//a[b!='y']", CmpOp::kNe, "y"},
      {"//a[b<\"10\"]", CmpOp::kLt, "10"}, {"//a[b<=\"10\"]", CmpOp::kLe, "10"},
      {"//a[b>\"10\"]", CmpOp::kGt, "10"}, {"//a[b>=\"10\"]", CmpOp::kGe, "10"},
      {"//a[b=42]", CmpOp::kEq, "42"},     {"//a[b=-1.5]", CmpOp::kEq, "-1.5"},
  };
  for (const Case& c : cases) {
    auto r = ParsePath(c.text);
    ASSERT_TRUE(r.ok()) << c.text << ": " << r.status().ToString();
    const auto& pred = r.value().steps[0].predicates[0];
    EXPECT_EQ(pred.op, c.op) << c.text;
    EXPECT_EQ(pred.literal, c.literal) << c.text;
  }
}

TEST(XPathParseTest, MultiplePredicatesOnOneStep) {
  auto r = ParsePath("//a[b][c=\"1\"]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().steps[0].predicates.size(), 2u);
}

TEST(XPathParseTest, WhitespaceTolerated) {
  auto r = ParsePath("  // a [ b = \"x y\" ] / c ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().steps.size(), 2u);
  EXPECT_EQ(r.value().steps[0].predicates[0].literal, "x y");
}

TEST(XPathParseTest, RejectsOutsideFragment) {
  const char* bad[] = {
      "",                 "a/b",           "/a[@id]",     "/a[3]",
      "/a/../b",          "/a[b=]",        "/a[",         "/a]b",
      "/a[/abs]",         "/a[b][",        "/a bc",       "//",
      "/a[text()=\"x\"]", "/a[b=\"unterminated]",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParsePath(text).ok()) << text;
  }
}

TEST(XPathPrintTest, RoundTripsThroughParser) {
  const char* exprs[] = {
      "/a/b/c", "//a//b", "/a/*", "//a[b]/c", "//a[.//b/c]",
      "//a[b=\"x\"]", "//a[b>=\"10\"]/d", "//*[k]",
  };
  for (const char* text : exprs) {
    auto first = ParsePath(text);
    ASSERT_TRUE(first.ok()) << text;
    std::string printed = xpath::ToString(first.value());
    auto second = ParsePath(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, xpath::ToString(second.value()));
  }
}

TEST(CompareValueTest, StringAndNumericEquality) {
  EXPECT_TRUE(xpath::CompareValue("abc", CmpOp::kEq, "abc"));
  EXPECT_TRUE(xpath::CompareValue(" abc ", CmpOp::kEq, "abc"));  // trimmed
  EXPECT_FALSE(xpath::CompareValue("abc", CmpOp::kEq, "abd"));
  EXPECT_TRUE(xpath::CompareValue("10", CmpOp::kEq, "10.0"));  // numeric
  EXPECT_TRUE(xpath::CompareValue("10", CmpOp::kNe, "11"));
}

TEST(CompareValueTest, OrderedRequiresNumeric) {
  EXPECT_TRUE(xpath::CompareValue("9", CmpOp::kLt, "10"));
  EXPECT_FALSE(xpath::CompareValue("abc", CmpOp::kLt, "abd"));
  EXPECT_TRUE(xpath::CompareValue("2.5", CmpOp::kGe, "2.5"));
  EXPECT_FALSE(xpath::CompareValue("", CmpOp::kLe, "1"));
}

xml::DomDocument Doc(const std::string& text) {
  return xml::DomDocument::Parse(text).value();
}

std::vector<std::string> Tags(const std::vector<const xml::DomNode*>& nodes) {
  std::vector<std::string> out;
  for (auto* n : nodes) out.push_back(n->tag());
  return out;
}

TEST(XPathEvalTest, AbsolutePaths) {
  auto doc = Doc("<a><b><c/></b><b><d/></b></a>");
  auto sel = xpath::SelectNodes(doc.root(), ParsePath("/a/b").value());
  EXPECT_EQ(sel.size(), 2u);
  sel = xpath::SelectNodes(doc.root(), ParsePath("/b").value());
  EXPECT_TRUE(sel.empty());
  sel = xpath::SelectNodes(doc.root(), ParsePath("//c").value());
  EXPECT_EQ(Tags(sel), std::vector<std::string>{"c"});
}

TEST(XPathEvalTest, DescendantIncludesRoot) {
  auto doc = Doc("<a><a><b/></a></a>");
  auto sel = xpath::SelectNodes(doc.root(), ParsePath("//a").value());
  EXPECT_EQ(sel.size(), 2u);
}

TEST(XPathEvalTest, DocumentOrderNoDuplicates) {
  auto doc = Doc("<a><x><b id=\"1\"/></x><x><b id=\"2\"/></x></a>");
  // Both /a/x//b and //b reach each <b>; the result must still be the two
  // nodes once each, in document order.
  auto sel = xpath::SelectNodes(doc.root(), ParsePath("//b").value());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0]->attrs()[0].value, "1");
  EXPECT_EQ(sel[1]->attrs()[0].value, "2");
}

TEST(XPathEvalTest, PredicatesExistenceAndValue) {
  auto doc = Doc(
      "<r><p><k/><v>5</v></p><p><v>15</v></p><p><k/><v>20</v></p></r>");
  auto with_k = xpath::SelectNodes(doc.root(), ParsePath("//p[k]").value());
  EXPECT_EQ(with_k.size(), 2u);
  auto big = xpath::SelectNodes(doc.root(), ParsePath("//p[v>\"10\"]").value());
  EXPECT_EQ(big.size(), 2u);
  auto both = xpath::SelectNodes(
      doc.root(), ParsePath("//p[k][v>\"10\"]").value());
  EXPECT_EQ(both.size(), 1u);
}

TEST(XPathEvalTest, PredicateUsesDirectText) {
  // <v> has text nested inside <w>; direct text of v is "ab" only.
  auto doc = Doc("<r><p><v>a<w>XX</w>b</v></p></r>");
  EXPECT_EQ(
      xpath::SelectNodes(doc.root(), ParsePath("//p[v=\"ab\"]").value()).size(),
      1u);
  EXPECT_TRUE(
      xpath::SelectNodes(doc.root(), ParsePath("//p[v=\"aXXb\"]").value())
          .empty());
}

TEST(XPathEvalTest, MatchesNode) {
  auto doc = Doc("<a><b><c/></b></a>");
  const xml::DomNode* c =
      doc.root()->children()[0]->children()[0].get();
  EXPECT_TRUE(xpath::MatchesNode(doc.root(), ParsePath("//c").value(), c));
  EXPECT_FALSE(xpath::MatchesNode(doc.root(), ParsePath("/a/c").value(), c));
}

TEST(XPathComplexityTest, CountsStepsAndPredicates) {
  auto expr = ParsePath("//a[b/c]/d[e=\"1\"][f]").value();
  EXPECT_EQ(expr.PredicateCount(), 3u);
  EXPECT_EQ(expr.TotalSteps(), 2u + 2u + 1u + 1u);
}

}  // namespace
}  // namespace csxa
