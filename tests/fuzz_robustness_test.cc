// Robustness suite: mutation fuzzing of every parser/decoder boundary in
// the system. Invariant: malformed input must yield a clean Status (or a
// correct parse), never a crash, hang or silent wrong answer.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "core/rule.h"
#include "crypto/container.h"
#include "skipindex/codec.h"
#include "skipindex/filter.h"
#include "soe/apdu.h"
#include "soe/chunk_source.h"
#include "soe/prefetch.h"
#include "xml/generator.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

// Every randomized loop below seeds from this fixed constant (plus a
// per-test salt), so default runs are byte-for-byte reproducible. Set
// CSXA_FUZZ_SEED to explore other seed universes; the effective seed is
// attached to every failure via SCOPED_TRACE, so a report reproduces with
//   CSXA_FUZZ_SEED=<seed> ./fuzz_robustness_test
constexpr uint64_t kDefaultFuzzSeed = 20260729;

uint64_t FuzzSeed() {
  static const uint64_t seed = [] {
    const char* v = std::getenv("CSXA_FUZZ_SEED");
    return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                        : kDefaultFuzzSeed;
  }();
  return seed;
}

std::string SeedTrace(uint64_t salt) {
  return "fuzz seed=" + std::to_string(FuzzSeed()) + " salt=" +
         std::to_string(salt) +
         " (reproduce: CSXA_FUZZ_SEED=" + std::to_string(FuzzSeed()) +
         " ./fuzz_robustness_test)";
}

// --- XML parser fuzz --------------------------------------------------------

TEST(FuzzTest, XmlParserSurvivesMutations) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kAgenda;
  gp.target_elements = 60;
  gp.seed = FuzzSeed() + 1;
  SCOPED_TRACE(SeedTrace(1));
  std::string base = xml::GenerateDocument(gp).Serialize();
  Rng rng(FuzzSeed() + 2);
  for (int iter = 0; iter < 300; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::string mutated = base;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        case 2:
          mutated.insert(pos, std::string(1 + rng.Uniform(3),
                                          static_cast<char>('<' + rng.Uniform(4))));
          break;
      }
      if (mutated.empty()) mutated = "<";
    }
    // Must terminate with either a parse error or a consistent DOM.
    auto doc = xml::DomDocument::Parse(mutated);
    if (doc.ok()) {
      auto reparsed = xml::DomDocument::Parse(doc.value().Serialize());
      ASSERT_TRUE(reparsed.ok()) << "roundtrip failed on accepted input";
      EXPECT_EQ(reparsed.value().Serialize(), doc.value().Serialize());
    }
  }
}

TEST(FuzzTest, XmlParserSurvivesTruncations) {
  std::string base = "<a x=\"1\"><b>text &amp; more</b><![CDATA[raw]]></a>";
  for (size_t cut = 0; cut < base.size(); ++cut) {
    auto doc = xml::DomDocument::Parse(base.substr(0, cut));
    // Every strict prefix is malformed for this document.
    EXPECT_FALSE(doc.ok()) << "prefix length " << cut;
  }
}

// --- XPath parser fuzz ------------------------------------------------------

TEST(FuzzTest, XPathParserSurvivesRandomStrings) {
  SCOPED_TRACE(SeedTrace(3));
  Rng rng(FuzzSeed() + 3);
  const char kChars[] = "/ab*[]=\"'<>!.0 @()";
  for (int iter = 0; iter < 1000; ++iter) {
    std::string s;
    size_t len = 1 + rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(kChars[rng.Uniform(sizeof(kChars) - 1)]);
    }
    auto expr = xpath::ParsePath(s);
    if (expr.ok()) {
      // Accepted expressions must round-trip through the printer.
      std::string printed = xpath::ToString(expr.value());
      auto again = xpath::ParsePath(printed);
      ASSERT_TRUE(again.ok()) << s << " -> " << printed;
      EXPECT_EQ(xpath::ToString(again.value()), printed);
    }
  }
}

// --- Document codec fuzz ----------------------------------------------------

TEST(FuzzTest, DocumentDecoderSurvivesMutations) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 80;
  gp.seed = FuzzSeed() + 4;
  SCOPED_TRACE(SeedTrace(4));
  auto doc = xml::GenerateDocument(gp);
  Bytes encoded = skipindex::EncodeDocument(doc, {}).value();
  Rng rng(FuzzSeed() + 5);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes mutated = encoded;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    skipindex::MemorySource src(mutated);
    auto dec = skipindex::DocumentDecoder::Open(&src);
    if (!dec.ok()) continue;
    // Drain with a hard event bound; decoding must stop cleanly.
    for (int events = 0; events < 100000; ++events) {
      auto ev = dec.value()->Next();
      if (!ev.ok() || ev.value().type == xml::EventType::kEnd) break;
    }
  }
}

TEST(FuzzTest, DocumentDecoderSurvivesTruncations) {
  auto doc = xml::DomDocument::Parse("<a><b>text</b><c><d/></c></a>").value();
  Bytes encoded = skipindex::EncodeDocument(doc, {}).value();
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes prefix(encoded.begin(), encoded.begin() + static_cast<long>(cut));
    skipindex::MemorySource src(prefix);
    auto dec = skipindex::DocumentDecoder::Open(&src);
    if (!dec.ok()) continue;
    Status st = Status::OK();
    for (int events = 0; events < 1000; ++events) {
      auto ev = dec.value()->Next();
      if (!ev.ok()) {
        st = ev.status();
        break;
      }
      if (ev.value().type == xml::EventType::kEnd) break;
    }
    EXPECT_FALSE(st.ok()) << "truncation at " << cut << " undetected";
  }
}

// --- Container parse fuzz ---------------------------------------------------

TEST(FuzzTest, ContainerParserSurvivesMutations) {
  SCOPED_TRACE(SeedTrace(6));
  Rng rng(FuzzSeed() + 6);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload(900, 0x77);
  Bytes sealed = crypto::SecureContainer::Seal(key, payload, 256, &rng);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes mutated = sealed;
    size_t n_edits = 1 + rng.Uniform(3);
    for (size_t e = 0; e < n_edits; ++e) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
    }
    if (rng.Chance(0.3)) {
      mutated.resize(rng.Uniform(mutated.size()));
    }
    auto container = crypto::SecureContainer::Parse(mutated);
    if (!container.ok()) continue;
    // Parsed containers with corrupt content must fail verification,
    // never deliver modified plaintext.
    auto opened = crypto::SecureContainer::OpenAll(key, mutated);
    if (opened.ok()) {
      EXPECT_EQ(opened.value(), payload);  // only the untouched original
    }
  }
}

// --- Rule set parse fuzz ----------------------------------------------------

TEST(FuzzTest, RuleSetBinaryDecoderSurvivesMutations) {
  auto set = core::RuleSet::ParseText("+ a //x\n- b //y[z=\"1\"]\n").value();
  ByteWriter w;
  set.EncodeTo(&w);
  Bytes encoded = w.bytes();
  SCOPED_TRACE(SeedTrace(7));
  Rng rng(FuzzSeed() + 7);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes mutated = encoded;
    mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
    if (rng.Chance(0.4)) mutated.resize(rng.Uniform(mutated.size() + 1));
    ByteReader r(mutated);
    auto decoded = core::RuleSet::DecodeFrom(&r);  // must not crash
    (void)decoded;
  }
}

// --- APDU codec fuzz --------------------------------------------------------

TEST(FuzzTest, ApduDecodersSurviveMutations) {
  soe::ApduCommand cmd;
  cmd.ins = soe::Ins::kRunQuery;
  cmd.data = Bytes(64, 0xAB);
  ByteWriter w;
  cmd.EncodeTo(&w);
  Bytes encoded = w.bytes();
  SCOPED_TRACE(SeedTrace(8));
  Rng rng(FuzzSeed() + 8);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes mutated = encoded;
    mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
    if (rng.Chance(0.4)) mutated.resize(rng.Uniform(mutated.size() + 1));
    ByteReader r(mutated);
    auto decoded = soe::ApduCommand::DecodeFrom(&r);
    (void)decoded;
  }
}

// --- Fetch plan fuzz --------------------------------------------------------

TEST(FuzzTest, CorruptedFetchPlansNeverChangeTheView) {
  // The advisory-plan contract under mutation fuzzing: ANY plan — shifted,
  // truncated, duplicated, pointing past the container, empty — fed to a
  // PlannedProvider must still deliver the DOM-oracle view. A bad plan may
  // cost fallback round trips; it must never change a byte of output or
  // smuggle an unverified chunk past the card (every chunk still goes
  // through verify-and-decrypt).
  SCOPED_TRACE(SeedTrace(11));
  Rng rng(FuzzSeed() + 11);
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 600;
  gp.seed = FuzzSeed() + 12;
  xml::DomDocument doc = xml::GenerateDocument(gp);
  auto rules = core::RuleSet::ParseText("+ u //patient/admin\n").value();
  std::vector<core::AccessRule> subject_rules = rules.ForSubject("u");
  Bytes encoded = skipindex::EncodeDocument(doc, {}).value();
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes sealed = crypto::SecureContainer::Seal(key, encoded, 128, &rng);
  auto container = crypto::SecureContainer::Parse(sealed).value();
  const uint32_t chunk_count = container.header().chunk_count;

  std::string expected =
      core::BuildAuthorizedView(doc, subject_rules, nullptr)
          .value()
          .Serialize();
  soe::FetchPlan good =
      soe::ComputeFetchPlan(Span(encoded), 128, subject_rules, nullptr, true)
          .value();

  auto scan_with_plan = [&](const soe::FetchPlan& plan) -> Result<std::string> {
    soe::ContainerChunkProvider backend(&container);
    soe::PlannedProvider provider(&backend, chunk_count, plan);
    soe::ChunkSource source(key, container.header(), &provider, nullptr);
    CSXA_ASSIGN_OR_RETURN(auto dec, skipindex::DocumentDecoder::Open(&source));
    xml::CanonicalWriter writer;
    CSXA_ASSIGN_OR_RETURN(
        auto ev, core::StreamingEvaluator::Create(subject_rules, nullptr,
                                                  &writer));
    skipindex::FilterOptions fopts;
    fopts.enable_skip = true;
    CSXA_RETURN_IF_ERROR(
        skipindex::RunFiltered(dec.get(), ev.get(), fopts, nullptr));
    return writer.str();
  };

  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    soe::FetchPlan mutated = good;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits && !mutated.runs.empty(); ++e) {
      size_t at = rng.Uniform(mutated.runs.size());
      switch (rng.Uniform(6)) {
        case 0:  // shift a run anywhere, including far past the end
          mutated.runs[at].first = static_cast<uint32_t>(
              rng.Uniform(chunk_count * 3 + 1));
          break;
        case 1:  // grow or shrink a run
          mutated.runs[at].count = static_cast<uint32_t>(
              rng.Uniform(chunk_count + 4));
          break;
        case 2:  // drop a run (under-covering plan: forces fallbacks)
          mutated.runs.erase(mutated.runs.begin() +
                             static_cast<long>(at));
          break;
        case 3:  // duplicate a run (overlap)
          mutated.runs.push_back(mutated.runs[at]);
          break;
        case 4:  // inject a random run
          mutated.runs.push_back(skipindex::ChunkRun{
              static_cast<uint32_t>(rng.Uniform(chunk_count * 2 + 1)),
              static_cast<uint32_t>(rng.Uniform(8))});
          break;
        case 5:  // truncate the plan entirely now and then
          if (rng.Chance(0.3)) mutated.runs.clear();
          break;
      }
    }
    auto view = scan_with_plan(mutated);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value(), expected);
  }
}

// --- CTR positional independence --------------------------------------------

TEST(CtrPropertyTest, ChunkStreamsAreIndependent) {
  // Decrypting chunk i never depends on other chunks: the property the
  // skip index relies on. Open chunks in reverse order and compare.
  SCOPED_TRACE(SeedTrace(9));
  Rng rng(FuzzSeed() + 9);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload;
  for (int i = 0; i < 2000; ++i) payload.push_back(static_cast<uint8_t>(rng.Next()));
  Bytes sealed = crypto::SecureContainer::Seal(key, payload, 256, &rng);
  auto container = crypto::SecureContainer::Parse(sealed).value();
  ASSERT_TRUE(crypto::SecureContainer::VerifyRoot(key, container.header()).ok());
  Bytes reassembled(payload.size());
  for (int i = static_cast<int>(container.header().chunk_count) - 1; i >= 0;
       --i) {
    auto cipher = container.ChunkCiphertext(static_cast<uint32_t>(i)).value();
    auto auth = container.GetChunkAuth(static_cast<uint32_t>(i)).value();
    auto plain = crypto::SecureContainer::VerifyAndDecryptChunk(
        key, container.header(), static_cast<uint32_t>(i), cipher, auth);
    ASSERT_TRUE(plain.ok());
    std::memcpy(reassembled.data() + static_cast<size_t>(i) * 256,
                plain.value().data(), plain.value().size());
  }
  EXPECT_EQ(reassembled, payload);
}

TEST(CtrPropertyTest, KeystreamNeverReused) {
  // Two documents sealed under the same key must not share keystream:
  // XOR of ciphertexts must not equal XOR of plaintexts.
  SCOPED_TRACE(SeedTrace(10));
  Rng rng(FuzzSeed() + 10);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes pa(256, 0x00), pb(256, 0xFF);
  Bytes sa = crypto::SecureContainer::Seal(key, pa, 256, &rng);
  Bytes sb = crypto::SecureContainer::Seal(key, pb, 256, &rng);
  auto ca = crypto::SecureContainer::Parse(sa).value().ChunkCiphertext(0).value();
  auto cb = crypto::SecureContainer::Parse(sb).value().ChunkCiphertext(0).value();
  size_t same = 0;
  for (size_t i = 0; i < 256; ++i) {
    if (static_cast<uint8_t>(ca[i] ^ cb[i]) == static_cast<uint8_t>(pa[i] ^ pb[i])) {
      ++same;
    }
  }
  EXPECT_LT(same, 16u);  // chance collisions only
}

}  // namespace
}  // namespace csxa
