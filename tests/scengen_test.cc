// The first-class generated scenarios, end to end: the IoT fleet (a
// thousand small capability documents) and the e-health mobility workload
// (deep folders, churning subscriber sets, heavy policy-update mix) run
// through the full replicated serving stack under a scripted fault
// schedule — and complete with zero failed operations and zero stale
// serves, the same acceptance bar the canonical load tests hold.

#include <gtest/gtest.h>

#include <string>

#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "scengen/publish.h"
#include "scengen/scenario.h"
#include "scengen/spec.h"
#include "workload/load.h"

namespace csxa {
namespace {

// The fault schedule both scenario runs share: one replica crashes and
// heals, another partitions and heals (windows disjoint — see
// fault_test.cc), with sprinkled lost responses for the retry edge.
workload::FaultPlan TurbulentPlan() {
  workload::FaultPlan plan;
  plan.enabled = true;
  plan.crash_replica = 1;
  plan.crash_at_op = 5;
  plan.crash_heal_at_op = 14;
  plan.partition_replica = 2;
  plan.partition_at_op = 18;
  plan.partition_heal_at_op = 30;
  plan.timeout_probability = 0.05;
  return plan;
}

TEST(ScenGenCatalog, IoTFleetIsAThousandSmallDocuments) {
  const scengen::ScenarioSpec spec = scengen::IoTFleetSpec();
  EXPECT_GE(spec.documents, 1000u);
  EXPECT_EQ(spec.doc.profile, xml::DocProfile::kIoT);
  EXPECT_LE(spec.doc.elements, 64u);  // small by design

  const scengen::GeneratedScenario gen = scengen::BuildScenario(spec);
  ASSERT_GE(gen.docs.size(), 1000u);
  // Spot-check the fleet: real device documents, parseable policies,
  // query-safe subjects.
  for (size_t d : {size_t{0}, size_t{511}, gen.docs.size() - 1}) {
    const scengen::ScenarioDoc& doc = gen.docs[d];
    xml::DomDocument dom = gen.Materialize(doc);
    ASSERT_NE(dom.root(), nullptr);
    EXPECT_EQ(dom.root()->tag(), "device");
    EXPECT_FALSE(doc.subjects.empty());
    EXPECT_TRUE(core::RuleSet::ParseText(doc.rules_text).ok());
  }
}

TEST(ScenGenCatalog, EHealthMobilityIsDeepAndUpdateHeavy) {
  const scengen::ScenarioSpec spec = scengen::EHealthMobilitySpec();
  EXPECT_EQ(spec.doc.profile, xml::DocProfile::kHospital);
  EXPECT_GE(spec.doc.folder_depth, 2u);          // deep patient folders
  EXPECT_GE(spec.churn.update_fraction, 0.2);    // ≥20% policy updates
  EXPECT_GT(spec.churn.subject_churn, 0.0);      // subscriber churn on

  const scengen::GeneratedScenario gen = scengen::BuildScenario(spec);
  ASSERT_FALSE(gen.docs.empty());
  // Deep folders actually materialize: the episode chain appears.
  const std::string bytes = gen.Materialize(gen.docs[0]).Serialize();
  EXPECT_NE(bytes.find("<episode>"), std::string::npos);
  // Churn actually rotates subscribers between consecutive revisions.
  EXPECT_NE(gen.RulesRevision(0, 0), gen.RulesRevision(0, 1));
}

TEST(ScenGenPublish, HelperPublishesAndServesACanonicalScenario) {
  dsp::DspServer server;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&server, &registry, 7);

  const scengen::Scenario scenario = scengen::AgendaScenario();
  auto pub = scengen::PublishScenarioDocument(&publisher, scenario, "agenda-0",
                                              /*elements=*/120, /*seed=*/3);
  ASSERT_TRUE(pub.ok()) << pub.status().ToString();
  EXPECT_FALSE(pub.value().subjects.empty());
  EXPECT_GT(pub.value().container_bytes, 0u);

  // A granted subject can provision and run the scenario's own queries.
  proxy::Terminal terminal(pub.value().subjects[0], soe::CardProfile::EGate(),
                           &server, &registry);
  ASSERT_TRUE(terminal.Provision("agenda-0").ok());
  proxy::QueryOptions qopt;
  qopt.query = scenario.queries[0].second;
  EXPECT_TRUE(terminal.Query("agenda-0", qopt).ok());
}

// --- The acceptance runs ----------------------------------------------------

TEST(ScenGenLoadTest, IoTFleetZeroFailuresUnderFaults) {
  workload::LoadOptions opt;
  opt.sessions = 6;
  opt.ops_per_session = 6;
  opt.shards = 4;
  opt.workers = 4;
  opt.seed = 42;
  opt.replicas = 3;
  opt.retry_attempts = 8;
  opt.faults = TurbulentPlan();
  opt.spec = scengen::IoTFleetSpec();

  workload::LoadReport report = workload::RunLoad(opt);
  // Turbulence below, calm above: the fleet absorbs the crash, the
  // partition and the lost responses without a single failed operation
  // or stale serve.
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stale_reads_served, 0u);
  EXPECT_EQ(report.retry_exhausted, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.throughput_ops_per_sec, 0.0);
  // A thousand-document fleet spread over the shards: every shard served.
  for (uint64_t n : report.shard_requests) EXPECT_GT(n, 0u);
}

TEST(ScenGenLoadTest, EHealthMobilityZeroFailuresUnderFaults) {
  workload::LoadOptions opt;
  opt.sessions = 8;
  opt.ops_per_session = 8;
  opt.shards = 2;
  opt.workers = 2;
  opt.seed = 1234;
  opt.replicas = 3;
  opt.retry_attempts = 8;
  opt.faults = TurbulentPlan();
  opt.spec = scengen::EHealthMobilitySpec();

  workload::LoadReport report = workload::RunLoad(opt);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stale_reads_served, 0u);
  EXPECT_EQ(report.retry_exhausted, 0u);
  EXPECT_GT(report.queries, 0u);
  // The update-heavy mix actually happened, and committed policy updates
  // fanned out to the shared cache.
  EXPECT_GT(report.updates, 0u);
  EXPECT_GT(report.notifications_delivered, 0u);
}

// Replaying the same spec + seed is the same experiment: identical op
// counts, identical modeled outcomes (the load harness is deterministic
// given options; wall time excluded).
TEST(ScenGenLoadTest, SpecRunsAreReproducible) {
  workload::LoadOptions opt;
  opt.sessions = 4;
  opt.ops_per_session = 5;
  opt.shards = 2;
  opt.workers = 2;
  opt.seed = 9;
  scengen::ScenarioSpec spec = scengen::EHealthMobilitySpec();
  spec.documents = 4;   // keep the reproducibility probe quick
  spec.doc.elements = 120;
  opt.spec = spec;

  workload::LoadReport a = workload::RunLoad(opt);
  workload::LoadReport b = workload::RunLoad(opt);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(b.failures, 0u);
  EXPECT_EQ(a.p50_latency_ms, b.p50_latency_ms);
}

}  // namespace
}  // namespace csxa
