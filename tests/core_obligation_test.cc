// Unit tests for predicate instances (PredRun) and the obligation
// registry — the "pending" machinery of §2.3.

#include <gtest/gtest.h>

#include "core/automaton.h"
#include "core/obligation.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using core::CompiledPath;
using core::CompileRelative;
using core::ObligationSet;
using core::PredRun;

CompiledPath CompilePred(const std::string& body) {
  auto pred = xpath::ParsePredicateBody(body);
  EXPECT_TRUE(pred.ok()) << body;
  auto compiled = CompileRelative(pred.value().path, pred.value().op,
                                  pred.value().literal);
  EXPECT_TRUE(compiled.ok()) << body;
  return std::move(compiled).value();
}

TEST(PredRunTest, ExistenceSatisfiedOnOpen) {
  CompiledPath p = CompilePred("c");
  PredRun run(&p, /*ctx_depth=*/2);
  EXPECT_FALSE(run.satisfied());
  EXPECT_FALSE(run.OnOpen("x", 3));  // wrong tag
  EXPECT_TRUE(run.OnClose(3) == false);
  EXPECT_TRUE(run.OnOpen("c", 3));  // child c: satisfied
  EXPECT_TRUE(run.satisfied());
}

TEST(PredRunTest, ChildAxisDoesNotMatchGrandchild) {
  CompiledPath p = CompilePred("c");
  PredRun run(&p, 2);
  EXPECT_FALSE(run.OnOpen("x", 3));
  EXPECT_FALSE(run.OnOpen("c", 4));  // c is a grandchild: no match
  EXPECT_FALSE(run.satisfied());
}

TEST(PredRunTest, DescendantAxisMatchesDeep) {
  CompiledPath p = CompilePred(".//c");
  PredRun run(&p, 2);
  EXPECT_FALSE(run.OnOpen("x", 3));
  EXPECT_TRUE(run.OnOpen("c", 4));
  EXPECT_TRUE(run.satisfied());
}

TEST(PredRunTest, MultiStepPath) {
  CompiledPath p = CompilePred("b/c");
  PredRun run(&p, 1);
  EXPECT_FALSE(run.OnOpen("b", 2));
  EXPECT_TRUE(run.OnOpen("c", 3));
}

TEST(PredRunTest, ValueTestResolvesAtClose) {
  CompiledPath p = CompilePred("v=\"yes\"");
  PredRun run(&p, 1);
  EXPECT_FALSE(run.OnOpen("v", 2));  // capture opens, not yet satisfied
  run.OnValue("yes", 2);
  EXPECT_FALSE(run.satisfied());     // only at close is the text complete
  EXPECT_TRUE(run.OnClose(2));
  EXPECT_TRUE(run.satisfied());
}

TEST(PredRunTest, ValueTestFailsOnMismatch) {
  CompiledPath p = CompilePred("v=\"yes\"");
  PredRun run(&p, 1);
  run.OnOpen("v", 2);
  run.OnValue("no", 2);
  EXPECT_FALSE(run.OnClose(2));
  EXPECT_FALSE(run.satisfied());
}

TEST(PredRunTest, ValueTestSecondCandidateSucceeds) {
  CompiledPath p = CompilePred("v=\"yes\"");
  PredRun run(&p, 1);
  run.OnOpen("v", 2);
  run.OnValue("no", 2);
  EXPECT_FALSE(run.OnClose(2));
  run.OnOpen("v", 2);
  run.OnValue("yes", 2);
  EXPECT_TRUE(run.OnClose(2));
}

TEST(PredRunTest, DirectTextOnlyIsCompared) {
  // <v>a<w>XX</w>b</v>: direct text is "ab".
  CompiledPath p = CompilePred("v=\"ab\"");
  PredRun run(&p, 1);
  run.OnOpen("v", 2);
  run.OnValue("a", 2);
  run.OnOpen("w", 3);
  run.OnValue("XX", 3);
  run.OnClose(3);
  run.OnValue("b", 2);
  EXPECT_TRUE(run.OnClose(2));
}

TEST(PredRunTest, NumericComparison) {
  CompiledPath p = CompilePred("age>=\"18\"");
  PredRun run(&p, 1);
  run.OnOpen("age", 2);
  run.OnValue("30", 2);
  EXPECT_TRUE(run.OnClose(2));
}

TEST(PredRunTest, CaptureTracking) {
  CompiledPath p = CompilePred("v=\"x\"");
  PredRun run(&p, 1);
  run.OnOpen("v", 2);
  EXPECT_TRUE(run.HasCaptureAtDepth(2));
  EXPECT_FALSE(run.HasCaptureAtDepth(3));
  run.OnClose(2);
  EXPECT_FALSE(run.HasCaptureAtDepth(2));
}

TEST(PredRunTest, ModeledBytesGrowWithDepth) {
  CompiledPath p = CompilePred(".//c");
  PredRun run(&p, 1);
  size_t before = run.ModeledBytes();
  run.OnOpen("x", 2);
  run.OnOpen("y", 3);
  EXPECT_GT(run.ModeledBytes(), before);
}

TEST(ObligationSetTest, ResolvesFalseAtContextClose) {
  CompiledPath p = CompilePred("c");
  ObligationSet set;
  int id = set.Create(&p, /*ctx_depth=*/2);
  EXPECT_EQ(set.state(id), ObligationSet::State::kPending);
  set.OnOpen("x", 3);
  set.OnClose(3);
  EXPECT_TRUE(set.OnClose(2));  // context closes: resolve false
  EXPECT_EQ(set.state(id), ObligationSet::State::kFalse);
  EXPECT_EQ(set.live_count(), 0u);
}

TEST(ObligationSetTest, ResolvesTrueOnMatch) {
  CompiledPath p = CompilePred("c");
  ObligationSet set;
  int id = set.Create(&p, 2);
  EXPECT_TRUE(set.OnOpen("c", 3));
  EXPECT_EQ(set.state(id), ObligationSet::State::kTrue);
}

TEST(ObligationSetTest, IndependentInstances) {
  // Document shape: <ctx1><x><c/></x></ctx1> with the outer obligation at
  // ctx1 (depth 1) and the inner one at x (depth 2). Every open/close of
  // the stream is fed, as the evaluator does.
  CompiledPath p = CompilePred("c");
  ObligationSet set;
  int outer = set.Create(&p, 1);
  set.OnOpen("x", 2);  // child of ctx1, not a c
  int inner = set.Create(&p, 2);
  set.OnOpen("c", 3);  // child of x: inner satisfied, outer unaffected
  EXPECT_EQ(set.state(inner), ObligationSet::State::kTrue);
  EXPECT_EQ(set.state(outer), ObligationSet::State::kPending);
  set.OnClose(3);
  set.OnClose(2);
  set.OnClose(1);
  EXPECT_EQ(set.state(outer), ObligationSet::State::kFalse);
}

TEST(ObligationSetTest, BlocksSkipWhenResolvableInside) {
  CompiledPath p = CompilePred(".//c");
  ObligationSet set;
  set.Create(&p, 1);
  auto has_c = [](std::string_view t) { return t == "c"; };
  auto no_c = [](std::string_view t) { return t == "z"; };
  EXPECT_TRUE(set.BlocksSkip(has_c, true, 2));
  EXPECT_FALSE(set.BlocksSkip(no_c, true, 2));
  EXPECT_FALSE(set.BlocksSkip(has_c, false, 2));
}

TEST(ObligationSetTest, BlocksSkipForOpenCaptureAtDepth) {
  CompiledPath p = CompilePred("v=\"x\"");
  ObligationSet set;
  set.Create(&p, 1);
  set.OnOpen("v", 2);  // capture opens at depth 2
  auto none = [](std::string_view) { return false; };
  EXPECT_TRUE(set.BlocksSkip(none, false, 2));   // direct text pending here
  EXPECT_FALSE(set.BlocksSkip(none, false, 3));  // deeper content: no
}

TEST(ObligationSetTest, TransitionAccountingSurvivesResolution) {
  CompiledPath p = CompilePred("c");
  ObligationSet set;
  set.Create(&p, 1);
  set.OnOpen("c", 2);
  size_t after_true = set.transitions();
  EXPECT_GT(after_true, 0u);
  set.Create(&p, 1);
  set.OnOpen("x", 2);
  set.OnClose(2);
  set.OnClose(1);
  EXPECT_GE(set.transitions(), after_true);
}

}  // namespace
}  // namespace csxa
