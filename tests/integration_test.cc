// End-to-end integration: publisher -> DSP -> PKI -> terminal proxy ->
// APDU -> card -> delivered view, across the demo scenarios; dynamic rule
// updates; DSP tampering; multi-user isolation.

#include <gtest/gtest.h>

#include "core/ref_evaluator.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "workload/scenarios.h"
#include "xml/generator.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using proxy::Publisher;
using proxy::QueryOptions;
using proxy::Terminal;
using soe::CardProfile;

struct World {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher{&dsp, &registry, 4242};
};

xml::DomDocument MakeDoc(xml::DocProfile profile, size_t elements,
                         uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = profile;
  gp.target_elements = elements;
  gp.seed = seed;
  return xml::GenerateDocument(gp);
}

// Reference view computed on a fresh copy of the same generated document.
std::string RefView(xml::DocProfile profile, size_t elements, uint64_t seed,
                    const std::string& rules_text, const std::string& subject,
                    const std::string& query) {
  auto doc = MakeDoc(profile, elements, seed);
  auto rules = core::RuleSet::ParseText(rules_text).value();
  xpath::PathExpr qexpr;
  const xpath::PathExpr* qptr = nullptr;
  if (!query.empty()) {
    qexpr = xpath::ParsePath(query).value();
    qptr = &qexpr;
  }
  return core::BuildAuthorizedView(doc, rules.ForSubject(subject), qptr)
      .value()
      .Serialize();
}

TEST(IntegrationTest, FullPullPathMatchesOracle) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kAgenda, 300, 7);
  auto scenario = workload::AgendaScenario();
  auto receipt = w.publisher.Publish("agenda", doc, scenario.rules_text);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();

  Terminal secretary("secretary", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(secretary.Provision("agenda").ok());
  QueryOptions qo;
  auto result = secretary.Query("agenda", qo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().xml,
            RefView(xml::DocProfile::kAgenda, 300, 7, scenario.rules_text,
                    "secretary", ""));
  EXPECT_GT(result.value().apdu_round_trips, 3u);
  EXPECT_GT(result.value().card.total_seconds, 0.0);
}

TEST(IntegrationTest, AllScenariosAllSubjectsAllQueries) {
  for (const workload::Scenario& scenario : workload::AllScenarios()) {
    World w;
    auto doc = MakeDoc(scenario.profile, 250, 11);
    std::string doc_id = xml::DocProfileName(scenario.profile);
    ASSERT_TRUE(w.publisher.Publish(doc_id, doc, scenario.rules_text).ok());
    auto rules = core::RuleSet::ParseText(scenario.rules_text).value();
    for (const std::string& subject : rules.Subjects()) {
      Terminal term(subject, CardProfile::EGate(), &w.dsp, &w.registry);
      ASSERT_TRUE(term.Provision(doc_id).ok());
      for (const auto& [label, query] : scenario.queries) {
        QueryOptions qo;
        qo.query = query;
        auto result = term.Query(doc_id, qo);
        ASSERT_TRUE(result.ok())
            << doc_id << "/" << subject << "/" << label << ": "
            << result.status().ToString();
        EXPECT_EQ(result.value().xml,
                  RefView(scenario.profile, 250, 11, scenario.rules_text,
                          subject, query))
            << doc_id << "/" << subject << "/" << label;
      }
    }
  }
}

TEST(IntegrationTest, UnprovisionedUserCannotQuery) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kAgenda, 100, 3);
  ASSERT_TRUE(
      w.publisher.Publish("agenda", doc, "+ alice /agenda\n").ok());
  Terminal mallory("mallory", CardProfile::EGate(), &w.dsp, &w.registry);
  // No grant in the registry: provisioning fails.
  EXPECT_FALSE(mallory.Provision("agenda").ok());
  // Even issuing a query without a key fails at the card.
  QueryOptions qo;
  EXPECT_FALSE(mallory.Query("agenda", qo).ok());
}

TEST(IntegrationTest, SubjectWithNoRulesGetsNothing) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kAgenda, 100, 3);
  ASSERT_TRUE(w.publisher
                  .Publish("agenda", doc,
                           "+ alice /agenda\n+ bob //meeting/title\n")
                  .ok());
  // bob is granted a key (he appears in the rules) but his rules only
  // expose titles; carol has a key grant but no rules at all.
  w.registry.RegisterUser("carol");
  auto key = w.registry.Fetch("agenda", "alice").value();
  ASSERT_TRUE(w.registry.Grant("agenda", "carol", key).ok());
  Terminal carol("carol", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(carol.Provision("agenda").ok());
  auto result = carol.Query("agenda", QueryOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().xml, "");  // closed policy
}

TEST(IntegrationTest, DynamicRuleUpdateTakesEffect) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kHospital, 200, 5);
  std::string rules_v1 = "+ doctor //patient\n";
  auto receipt = w.publisher.Publish("folder", doc, rules_v1);
  ASSERT_TRUE(receipt.ok());

  Terminal doctor("doctor", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(doctor.Provision("folder").ok());
  auto before = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before.value().xml.find("<ssn>"), std::string::npos);

  // The patient's situation changes: hide identity going forward. No
  // re-encryption, no key redistribution — just a new sealed rule set.
  std::string rules_v2 =
      "+ doctor //patient\n- doctor //patient/ssn\n- doctor //patient/name\n";
  auto update =
      w.publisher.UpdateRules("folder", receipt.value().key, rules_v2);
  ASSERT_TRUE(update.ok());
  EXPECT_LT(update.value(), 1024u);  // the whole cost of the policy change

  auto after = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().xml.find("<ssn>"), std::string::npos);
  EXPECT_EQ(after.value().xml,
            RefView(xml::DocProfile::kHospital, 200, 5, rules_v2, "doctor",
                    ""));
  auto open = w.dsp.OpenDocument("folder");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, 2u);
}

TEST(IntegrationTest, StaleRulesRollbackIsRejected) {
  // The access-rights update protocol (demo objective 2): a malicious DSP
  // re-serves an old, more permissive sealed rule set after the owner
  // restricted the policy. The card's version anchor must refuse it.
  World w;
  auto doc = MakeDoc(xml::DocProfile::kHospital, 150, 21);
  auto receipt =
      w.publisher.Publish("folder", doc, "+ doctor //patient\n");
  ASSERT_TRUE(receipt.ok());
  Bytes permissive_blob = w.dsp.OpenDocument("folder").value().sealed_rules;

  Terminal doctor("doctor", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(doctor.Provision("folder").ok());
  ASSERT_TRUE(doctor.Query("folder", QueryOptions{}).ok());  // sees v1

  // Owner restricts the policy; the doctor's card observes version 2.
  ASSERT_TRUE(w.publisher
                  .UpdateRules("folder", receipt.value().key,
                               "+ doctor //patient\n- doctor //patient/ssn\n")
                  .ok());
  auto restricted = doctor.Query("folder", QueryOptions{});
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted.value().xml.find("<ssn>"), std::string::npos);

  // The DSP rolls back to the captured permissive blob.
  auto container = w.dsp.GetContainer("folder").value();
  ASSERT_TRUE(
      w.dsp.Publish("folder", std::move(container), permissive_blob).ok());
  auto rollback = doctor.Query("folder", QueryOptions{});
  EXPECT_FALSE(rollback.ok());
  EXPECT_EQ(rollback.status().code(), StatusCode::kIntegrityError);
}

TEST(IntegrationTest, DspTamperingIsDetected) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kAgenda, 150, 9);
  ASSERT_TRUE(w.publisher.Publish("agenda", doc, "+ u /agenda\n").ok());

  // A malicious DSP flips one ciphertext byte of a stored chunk.
  auto container = w.dsp.GetContainer("agenda").value();
  Bytes tampered = container;
  tampered[tampered.size() - 10] ^= 0x40;
  auto sealed_rules = w.dsp.OpenDocument("agenda").value().sealed_rules;
  ASSERT_TRUE(w.dsp.Publish("agenda", std::move(tampered),
                            std::move(sealed_rules))
                  .ok());

  Terminal u("u", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(u.Provision("agenda").ok());
  auto result = u.Query("agenda", QueryOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityError);
}

TEST(IntegrationTest, SkipAndNoSkipAgreeThroughFullStack) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kHospital, 600, 13);
  auto scenario = workload::HospitalScenario();
  ASSERT_TRUE(w.publisher.Publish("h", doc, scenario.rules_text).ok());
  Terminal researcher("researcher", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(researcher.Provision("h").ok());

  QueryOptions with_skip;
  with_skip.query = "//treatment";
  QueryOptions no_skip = with_skip;
  no_skip.use_skip = false;
  auto a = researcher.Query("h", with_skip);
  auto b = researcher.Query("h", no_skip);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().xml, b.value().xml);
  EXPECT_LE(a.value().card.chunks_fetched, b.value().card.chunks_fetched);
  EXPECT_LT(a.value().card.total_seconds, b.value().card.total_seconds);
}

TEST(IntegrationTest, QueryErrorsSurfaceCleanly) {
  World w;
  auto doc = MakeDoc(xml::DocProfile::kAgenda, 80, 2);
  ASSERT_TRUE(w.publisher.Publish("a", doc, "+ u /agenda\n").ok());
  Terminal u("u", CardProfile::EGate(), &w.dsp, &w.registry);
  ASSERT_TRUE(u.Provision("a").ok());
  QueryOptions bad;
  bad.query = "not an xpath";
  EXPECT_FALSE(u.Query("a", bad).ok());
  EXPECT_FALSE(u.Query("missing-doc", QueryOptions{}).ok());
}

TEST(IntegrationTest, RamStaysUnderEGateBudgetOnScenarioWorkloads) {
  // The paper's claim: the streaming engine fits the e-gate's 1 KB of RAM
  // on realistic documents and rule sets.
  for (const workload::Scenario& scenario : workload::AllScenarios()) {
    World w;
    auto doc = MakeDoc(scenario.profile, 400, 17);
    std::string doc_id = xml::DocProfileName(scenario.profile);
    ASSERT_TRUE(w.publisher.Publish(doc_id, doc, scenario.rules_text).ok());
    auto rules = core::RuleSet::ParseText(scenario.rules_text).value();
    for (const std::string& subject : rules.Subjects()) {
      Terminal term(subject, CardProfile::EGate(), &w.dsp, &w.registry);
      ASSERT_TRUE(term.Provision(doc_id).ok());
      QueryOptions qo;
      qo.strict_ram = false;
      auto result = term.Query(doc_id, qo);
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result.value().card.ram_peak, 4096u)
          << doc_id << "/" << subject << " peak "
          << result.value().card.ram_peak;
    }
  }
}

}  // namespace
}  // namespace csxa
