// Property suite for the sealed block layer (`ctest -L durable`): random
// payloads round-trip exactly through SealBlock/OpenBlock and through
// BlockLog/ManifestLog on the in-RAM filesystem, and EVERY corruption —
// single-bit flips anywhere in a block, truncation, block swaps within a
// store, transplants across stores — is detected as kIntegrityError.
// Nothing ever silently decrypts to wrong bytes: a corrupted block either
// authenticates to exactly the original payload (impossible) or fails.
//
// Seeds are fixed for reproducibility; CSXA_SEED_OFFSET=<n> shifts every
// seed to explore fresh cases:
//   CSXA_SEED_OFFSET=7 ./blockstore_property_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "crypto/blockseal.h"
#include "crypto/keys.h"
#include "dsp/blockfile.h"

namespace csxa {
namespace {

uint64_t SeedOffset() {
  const char* v = std::getenv("CSXA_SEED_OFFSET");
  return v == nullptr ? 0 : std::strtoull(v, nullptr, 10);
}

Bytes RandomPayload(Rng* rng, size_t max_size) {
  Bytes payload(rng->Uniform(max_size + 1));
  for (uint8_t& b : payload) b = static_cast<uint8_t>(rng->Next());
  return payload;
}

// --- SealBlock / OpenBlock ---------------------------------------------------

TEST(BlockSealPropertyTest, RandomPayloadsRoundTripExactly) {
  for (uint64_t round = 0; round < 50; ++round) {
    const uint64_t seed = 1000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto key = crypto::SymmetricKey::Generate(&rng);
    const std::string store_id = "store-" + rng.Ident(6);
    const uint64_t index = rng.Uniform(1u << 20);
    Bytes payload = RandomPayload(&rng, crypto::kBlockPayloadCapacity);

    crypto::NonceSequence nonces(rng.Next());
    Bytes sealed = crypto::SealBlock(key, store_id, index, payload, &nonces);
    ASSERT_EQ(sealed.size(), crypto::kSealedBlockSize);
    auto opened = crypto::OpenBlock(key, store_id, index, sealed);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened.value(), payload);
  }
}

TEST(BlockSealPropertyTest, AnySingleBitFlipIsDetected) {
  for (uint64_t round = 0; round < 40; ++round) {
    const uint64_t seed = 2000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto key = crypto::SymmetricKey::Generate(&rng);
    Bytes payload = RandomPayload(&rng, crypto::kBlockPayloadCapacity);
    crypto::NonceSequence nonces(rng.Next());
    Bytes sealed = crypto::SealBlock(key, "s", 7, payload, &nonces);

    // Flip one random bit anywhere: nonce, tag or ciphertext.
    Bytes damaged = sealed;
    const size_t byte = rng.Uniform(damaged.size());
    damaged[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    auto opened = crypto::OpenBlock(key, "s", 7, damaged);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityError);
  }
}

TEST(BlockSealPropertyTest, RelocationForeignStoreAndTruncationAreDetected) {
  for (uint64_t round = 0; round < 30; ++round) {
    const uint64_t seed = 3000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto key = crypto::SymmetricKey::Generate(&rng);
    Bytes payload = RandomPayload(&rng, crypto::kBlockPayloadCapacity);
    const uint64_t index = rng.Uniform(1000);
    crypto::NonceSequence nonces(rng.Next());
    Bytes sealed = crypto::SealBlock(key, "here", index, payload, &nonces);

    // Untouched bytes presented at the wrong index: relocation.
    EXPECT_EQ(crypto::OpenBlock(key, "here", index + 1, sealed)
                  .status()
                  .code(),
              StatusCode::kIntegrityError);
    // Untouched bytes presented in another store: transplant.
    EXPECT_EQ(
        crypto::OpenBlock(key, "there", index, sealed).status().code(),
        StatusCode::kIntegrityError);
    // Under a different key.
    auto other_key = crypto::SymmetricKey::Generate(&rng);
    EXPECT_EQ(
        crypto::OpenBlock(other_key, "here", index, sealed).status().code(),
        StatusCode::kIntegrityError);
    // Truncated block.
    Bytes cut(sealed.begin(), sealed.end() - 1 - rng.Uniform(64));
    EXPECT_EQ(crypto::OpenBlock(key, "here", index, cut).status().code(),
              StatusCode::kIntegrityError);
  }
}

// --- BlockLog over the in-RAM filesystem -------------------------------------

struct LogRig {
  dsp::MemEnv env;
  crypto::SymmetricKey key;
  std::vector<Bytes> payloads;

  explicit LogRig(uint64_t seed, size_t blocks) {
    Rng rng(seed);
    key = crypto::SymmetricKey::Generate(&rng);
    crypto::NonceSequence nonces(rng.Next());
    // Small segments so the run spans several files.
    auto log = std::move(dsp::BlockLog::Open(&env, "d", key, "s",
                                             4 * crypto::kSealedBlockSize))
                   .value();
    for (size_t i = 0; i < blocks; ++i) {
      payloads.push_back(RandomPayload(&rng, crypto::kBlockPayloadCapacity));
      auto index = log.AppendBlock(payloads.back(), &nonces);
      EXPECT_TRUE(index.ok());
      EXPECT_EQ(index.value(), i);
    }
    EXPECT_TRUE(log.Sync().ok());
  }

  dsp::BlockLog Reopen() {
    return std::move(
               dsp::BlockLog::Open(&env, "d", key, "s",
                                   4 * crypto::kSealedBlockSize))
        .value();
  }
};

TEST(BlockLogPropertyTest, RandomBlocksRoundTripAcrossSegmentsAndReopen) {
  for (uint64_t round = 0; round < 8; ++round) {
    const uint64_t seed = 4000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    LogRig rig(seed, 10);
    dsp::BlockLog log = rig.Reopen();
    ASSERT_EQ(log.block_count(), rig.payloads.size());
    for (size_t i = 0; i < rig.payloads.size(); ++i) {
      auto got = log.ReadBlock(i);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), rig.payloads[i]);
    }
  }
}

TEST(BlockLogPropertyTest, BitFlipsSwapsTransplantsAndTruncationDetected) {
  for (uint64_t round = 0; round < 8; ++round) {
    const uint64_t seed = 5000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 77 + 3);
    LogRig rig(seed, 8);  // 2 segments of 4 blocks

    // Single-bit flip in a random block of segment 0: exactly that block
    // fails, every other block still round-trips.
    {
      const uint64_t victim = rng.Uniform(4);
      auto file = std::move(rig.env.Open("d/data-000000.seg", false)).value();
      const uint64_t offset = victim * crypto::kSealedBlockSize +
                              rng.Uniform(crypto::kSealedBlockSize);
      Bytes byte = std::move(file->ReadAt(offset, 1)).value();
      byte[0] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
      ASSERT_TRUE(file->WriteAt(offset, byte).ok());

      dsp::BlockLog log = rig.Reopen();
      for (uint64_t i = 0; i < log.block_count(); ++i) {
        auto got = log.ReadBlock(i);
        if (i == victim) {
          EXPECT_EQ(got.status().code(), StatusCode::kIntegrityError);
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got.value(), rig.payloads[i]);
        }
      }
    }

    // Swap two blocks (fresh rig): both fail authentication, the rest
    // keep round-tripping.
    {
      LogRig swap_rig(seed + 100, 8);
      auto file =
          std::move(swap_rig.env.Open("d/data-000001.seg", false)).value();
      Bytes b0 = std::move(file->ReadAt(0, crypto::kSealedBlockSize)).value();
      Bytes b1 = std::move(file->ReadAt(crypto::kSealedBlockSize,
                                        crypto::kSealedBlockSize))
                     .value();
      ASSERT_TRUE(file->WriteAt(0, b1).ok());
      ASSERT_TRUE(file->WriteAt(crypto::kSealedBlockSize, b0).ok());

      dsp::BlockLog log = swap_rig.Reopen();
      for (uint64_t i = 0; i < log.block_count(); ++i) {
        auto got = log.ReadBlock(i);
        if (i == 4 || i == 5) {  // segment 1 holds global indices 4..7
          EXPECT_EQ(got.status().code(), StatusCode::kIntegrityError);
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got.value(), swap_rig.payloads[i]);
        }
      }
    }

    // Transplant a block from a same-key store with a different id.
    {
      LogRig rig_a(seed + 200, 4);
      dsp::MemEnv env_b;
      auto log_b = std::move(dsp::BlockLog::Open(
                                 &env_b, "d", rig_a.key, "other",
                                 4 * crypto::kSealedBlockSize))
                       .value();
      Rng rng_b(seed + 201);
      crypto::NonceSequence nonces_b(rng_b.Next());
      ASSERT_TRUE(
          log_b.AppendBlock(RandomPayload(&rng_b, 100), &nonces_b).ok());
      ASSERT_TRUE(log_b.Sync().ok());
      auto from = std::move(env_b.Open("d/data-000000.seg", false)).value();
      Bytes foreign =
          std::move(from->ReadAt(0, crypto::kSealedBlockSize)).value();
      auto to = std::move(rig_a.env.Open("d/data-000000.seg", false)).value();
      ASSERT_TRUE(to->WriteAt(0, foreign).ok());

      dsp::BlockLog log = rig_a.Reopen();
      EXPECT_EQ(log.ReadBlock(0).status().code(),
                StatusCode::kIntegrityError);
      auto got = log.ReadBlock(1);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), rig_a.payloads[1]);
    }

    // Truncation: a partial trailing block is dropped at open (a torn
    // write), and reads past the new end are typed errors, not data.
    {
      LogRig cut_rig(seed + 300, 3);
      auto file =
          std::move(cut_rig.env.Open("d/data-000000.seg", false)).value();
      const uint64_t cut =
          2 * crypto::kSealedBlockSize + 1 + rng.Uniform(1000);
      ASSERT_TRUE(file->Truncate(cut).ok());

      uint64_t torn = 0;
      auto log = std::move(dsp::BlockLog::Open(
                               &cut_rig.env, "d", cut_rig.key, "s",
                               4 * crypto::kSealedBlockSize, &torn))
                     .value();
      EXPECT_EQ(log.block_count(), 2u);
      EXPECT_EQ(torn, cut - 2 * crypto::kSealedBlockSize);
      EXPECT_EQ(log.ReadBlock(2).status().code(),
                StatusCode::kIntegrityError);
      auto got = log.ReadBlock(1);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), cut_rig.payloads[1]);
    }
  }
}

// --- ManifestLog -------------------------------------------------------------

TEST(ManifestLogPropertyTest, RecordsRoundTripAndTornTailsTruncate) {
  for (uint64_t round = 0; round < 8; ++round) {
    const uint64_t seed = 6000 + round + SeedOffset();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    dsp::MemEnv env;
    auto key = crypto::SymmetricKey::Generate(&rng);
    crypto::NonceSequence nonces(rng.Next());
    std::vector<Bytes> records;
    {
      dsp::ManifestScan scan;
      auto log = std::move(dsp::ManifestLog::Open(&env, "MANIFEST", key, "s",
                                                  &scan))
                     .value();
      for (int i = 0; i < 5; ++i) {
        records.push_back(RandomPayload(&rng, dsp::kManifestPayloadCapacity));
        ASSERT_TRUE(log.Append(records.back(), &nonces).ok());
      }
    }
    // Tear the tail: a partial final frame plus bit-damage in the last
    // full frame — exactly what one interrupted append can leave.
    {
      auto file = std::move(env.Open("MANIFEST", false)).value();
      ASSERT_TRUE(
          file->Append(Bytes(1 + rng.Uniform(dsp::kManifestRecordSize - 1),
                             0xAB))
              .ok());
      const uint64_t offset =
          4 * dsp::kManifestRecordSize + rng.Uniform(dsp::kManifestRecordSize);
      Bytes byte = std::move(file->ReadAt(offset, 1)).value();
      byte[0] ^= 0x20;
      ASSERT_TRUE(file->WriteAt(offset, byte).ok());
    }
    dsp::ManifestScan scan;
    auto log = std::move(
                   dsp::ManifestLog::Open(&env, "MANIFEST", key, "s", &scan))
                   .value();
    ASSERT_EQ(scan.records.size(), 4u);
    EXPECT_EQ(scan.torn_tail_records, 1u);
    for (size_t i = 0; i < 4; ++i) EXPECT_EQ(scan.records[i], records[i]);
    EXPECT_EQ(log.next_seq(), 4u);

    // An INTERIOR invalid record (valid records after it) must refuse.
    {
      auto file = std::move(env.Open("MANIFEST", false)).value();
      Bytes byte = std::move(file->ReadAt(60, 1)).value();
      byte[0] ^= 0x01;
      ASSERT_TRUE(file->WriteAt(60, byte).ok());
    }
    auto tampered =
        dsp::ManifestLog::Open(&env, "MANIFEST", key, "s", nullptr);
    ASSERT_FALSE(tampered.ok());
    EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityError);
  }
}

// --- Non-crash I/O errors (transient ENOSPC-style partial appends) -----------

// Env decorator whose files fail ONE scripted Append after persisting a
// prefix of it — the disk-full/partial-write case where the process stays
// alive — unlike FaultyEnv, whose env is dead after a fault.
class PartialAppendFile : public dsp::File {
 public:
  PartialAppendFile(std::unique_ptr<dsp::File> base, size_t* fail_after,
                    size_t* partial)
      : base_(std::move(base)), fail_after_(fail_after), partial_(partial) {}

  Result<Bytes> ReadAt(uint64_t offset, size_t n) const override {
    return base_->ReadAt(offset, n);
  }
  Status Append(Span data) override {
    if (*fail_after_ > 0 && --*fail_after_ == 0) {
      size_t keep = std::min(*partial_, data.size());
      if (keep > 0) {
        EXPECT_TRUE(base_->Append(data.subspan(0, keep)).ok());
      }
      return Status::IoError("disk full (partial append persisted)");
    }
    return base_->Append(data);
  }
  Status WriteAt(uint64_t offset, Span data) override {
    return base_->WriteAt(offset, data);
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<dsp::File> base_;
  size_t* fail_after_;
  size_t* partial_;
};

class PartialAppendEnv : public dsp::Env {
 public:
  explicit PartialAppendEnv(dsp::Env* base) : base_(base) {}

  Result<std::unique_ptr<dsp::File>> Open(const std::string& path,
                                          bool create) override {
    auto opened = base_->Open(path, create);
    if (!opened.ok()) return opened.status();
    return std::unique_ptr<dsp::File>(new PartialAppendFile(
        std::move(opened).value(), &fail_after_appends, &partial_bytes));
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status SyncDir(const std::string& path) override {
    return base_->SyncDir(path);
  }
  Result<Bytes> RandomBytes(size_t n) override {
    return base_->RandomBytes(n);
  }

  /// The N-th Append from now (1 = next) fails, persisting this prefix.
  size_t fail_after_appends = 0;
  size_t partial_bytes = 0;

 private:
  dsp::Env* base_;
};

TEST(BlockLogIoErrorTest, FailedAppendRealignsAndTheLogStaysUsable) {
  Rng rng(97);
  dsp::MemEnv mem;
  PartialAppendEnv env(&mem);
  auto key = crypto::SymmetricKey::Generate(&rng);
  crypto::NonceSequence nonces(rng.Next());
  auto log = std::move(dsp::BlockLog::Open(&env, "d", key, "s",
                                           4 * crypto::kSealedBlockSize))
                 .value();
  Bytes first = RandomPayload(&rng, 500);
  ASSERT_TRUE(log.AppendBlock(first, &nonces).ok());

  // One append dies midway, leaving 1000 bytes of a torn block behind.
  env.fail_after_appends = 1;
  env.partial_bytes = 1000;
  EXPECT_FALSE(log.AppendBlock(RandomPayload(&rng, 600), &nonces).ok());
  EXPECT_EQ(log.block_count(), 1u);

  // The partial tail was truncated away, so the next append lands on the
  // frame boundary and EVERY block still authenticates.
  Bytes second = RandomPayload(&rng, 700);
  auto index = log.AppendBlock(second, &nonces);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value(), 1u);
  ASSERT_TRUE(log.Sync().ok());
  auto got0 = log.ReadBlock(0);
  auto got1 = log.ReadBlock(1);
  ASSERT_TRUE(got0.ok() && got1.ok());
  EXPECT_EQ(got0.value(), first);
  EXPECT_EQ(got1.value(), second);
}

TEST(ManifestLogIoErrorTest, FailedAppendRealignsAndTheLogStaysUsable) {
  Rng rng(98);
  dsp::MemEnv mem;
  PartialAppendEnv env(&mem);
  auto key = crypto::SymmetricKey::Generate(&rng);
  crypto::NonceSequence nonces(rng.Next());
  std::vector<Bytes> records;
  {
    auto log = std::move(
                   dsp::ManifestLog::Open(&env, "MANIFEST", key, "s", nullptr))
                   .value();
    records.push_back(RandomPayload(&rng, dsp::kManifestPayloadCapacity));
    ASSERT_TRUE(log.Append(records.back(), &nonces).ok());

    env.fail_after_appends = 1;
    env.partial_bytes = 100;
    EXPECT_FALSE(
        log.Append(RandomPayload(&rng, dsp::kManifestPayloadCapacity),
                   &nonces)
            .ok());
    EXPECT_EQ(log.next_seq(), 1u);

    // Realigned: the failed record left no misaligned tail behind, and the
    // next append commits cleanly at sequence 1.
    records.push_back(RandomPayload(&rng, dsp::kManifestPayloadCapacity));
    ASSERT_TRUE(log.Append(records.back(), &nonces).ok());
    EXPECT_EQ(log.next_seq(), 2u);
  }
  // Everything the log reported committed is there and authenticates; the
  // failed middle append left no trace.
  dsp::ManifestScan scan;
  auto log = std::move(
                 dsp::ManifestLog::Open(&env, "MANIFEST", key, "s", &scan))
                 .value();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.torn_tail_records, 0u);
  EXPECT_EQ(scan.records[0], records[0]);
  EXPECT_EQ(scan.records[1], records[1]);
}

// --- Nonce discipline --------------------------------------------------------

TEST(NonceSequenceTest, EmitsUniqueNoncesAndDistinctEpochsDiverge) {
  crypto::NonceSequence a(1);
  crypto::NonceSequence b(2);
  auto a0 = a.Next();
  auto a1 = a.Next();
  auto b0 = b.Next();
  EXPECT_NE(a0, a1);  // counter advances within an epoch
  EXPECT_NE(a0, b0);  // different epochs never collide, same counter or not
}

TEST(MemEnvEntropyTest, SuccessiveDrawsDifferAcrossSimulatedReboots) {
  // The entropy stream lives in the env (the machine), not the process:
  // a store reopened after a simulated crash draws a fresh epoch.
  dsp::MemEnv env;
  Bytes first = std::move(env.RandomBytes(8)).value();
  Bytes second = std::move(env.RandomBytes(8)).value();
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace csxa
