// Dissemination channel tests (push application) and baseline tests
// (subset encryption, trusted server).

#include <gtest/gtest.h>

#include "baseline/server_acl.h"
#include "baseline/subset_encryption.h"
#include "core/ref_evaluator.h"
#include "dissem/channel.h"
#include "workload/scenarios.h"
#include "xml/generator.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using dissem::Channel;
using dissem::ChannelOptions;
using dissem::Subscriber;

xml::DomDocument MakeFeed(size_t elements, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kNewsFeed;
  gp.target_elements = elements;
  gp.seed = seed;
  return xml::GenerateDocument(gp);
}

TEST(ChannelTest, DeliveriesMatchPerSubjectOracle) {
  auto scenario = workload::NewsFeedScenario();
  Channel channel("feed", scenario.rules_text, ChannelOptions{}, 99);
  Subscriber child("child", soe::CardProfile::EGate());
  Subscriber teen("teen", soe::CardProfile::EGate());
  Subscriber premium("premium", soe::CardProfile::EGate());
  channel.Subscribe(&child);
  channel.Subscribe(&teen);
  channel.Subscribe(&premium);

  auto item = MakeFeed(200, 31);
  auto report = channel.Publish(item);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().deliveries.size(), 3u);

  auto rules = core::RuleSet::ParseText(scenario.rules_text).value();
  for (const auto& d : report.value().deliveries) {
    auto ref = core::BuildAuthorizedView(item, rules.ForSubject(d.subscriber),
                                         nullptr);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(d.view_xml, ref.value().Serialize()) << d.subscriber;
  }
  // The child profile receives strictly less than premium.
  const auto& dv = report.value().deliveries;
  EXPECT_LT(dv[0].view_xml.size(), dv[2].view_xml.size());
}

TEST(ChannelTest, PushChargesBroadcastToEveryCard) {
  ChannelOptions copt;
  copt.chunk_size = 128;  // fine-grained so skips clear whole chunks
  // Subscriber b only reads channel genres: whole <item> subtrees (far
  // larger than a chunk) are skipped contiguously.
  Channel channel("feed", "+ a /feed\n+ b //channel/genre\n", copt, 7);
  Subscriber a("a", soe::CardProfile::EGate());
  Subscriber b("b", soe::CardProfile::EGate());
  channel.Subscribe(&a);
  channel.Subscribe(&b);
  auto report = channel.Publish(MakeFeed(150, 5));
  ASSERT_TRUE(report.ok());
  for (const auto& d : report.value().deliveries) {
    EXPECT_GE(d.stats.bytes_transferred, report.value().broadcast_wire_bytes)
        << d.subscriber;
  }
  // The selective subscriber decrypts less than the full one.
  EXPECT_LT(report.value().deliveries[1].stats.bytes_decrypted,
            report.value().deliveries[0].stats.bytes_decrypted);
}

TEST(ChannelTest, RuleUpdateAffectsNextItem) {
  Channel channel("feed", "+ kid //item\n", ChannelOptions{}, 8);
  Subscriber kid("kid", soe::CardProfile::EGate());
  channel.Subscribe(&kid);
  auto before = channel.Publish(MakeFeed(100, 6));
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before.value().deliveries[0].view_xml, "");

  ASSERT_TRUE(channel.UpdateRules("+ kid //item[rating=\"G\"]\n").ok());
  auto after = channel.Publish(MakeFeed(100, 6));
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().deliveries[0].view_xml.size(),
            before.value().deliveries[0].view_xml.size());
}

TEST(ChannelTest, RejectsBadRuleUpdate) {
  Channel channel("feed", "+ kid //item\n", ChannelOptions{}, 9);
  EXPECT_FALSE(channel.UpdateRules("not rules").ok());
}

// --- Subset-encryption baseline -------------------------------------------

TEST(SubsetBaselineTest, PartitionCoversPermittedElements) {
  auto doc = MakeFeed(150, 12);
  auto rules = core::RuleSet::ParseText(
                   "+ child //item[rating=\"G\"]\n+ premium /feed\n")
                   .value();
  Rng rng(1);
  auto store = baseline::SubsetEncryptionStore::Build(&doc, rules, &rng);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const auto& stats = store.value().build_stats();
  EXPECT_GT(stats.class_count, 0u);
  EXPECT_GT(stats.encrypted_bytes, 0u);

  // premium reads everything permitted; child reads a subset of that.
  auto premium = store.value().QueryCost("premium");
  auto child = store.value().QueryCost("child");
  EXPECT_GT(premium.elements_delivered, child.elements_delivered);
  EXPECT_GT(child.elements_delivered, 0u);
  // Unknown subjects read nothing.
  EXPECT_EQ(store.value().QueryCost("nobody").classes_read, 0u);
}

TEST(SubsetBaselineTest, PolicyChangeForcesReencryption) {
  auto doc = MakeFeed(300, 13);
  auto rules_v1 = core::RuleSet::ParseText(
                      "+ child //item[rating=\"G\"]\n+ premium /feed\n")
                      .value();
  Rng rng(2);
  auto store = baseline::SubsetEncryptionStore::Build(&doc, rules_v1, &rng);
  ASSERT_TRUE(store.ok());

  // The parent relaxes the policy: PG items become visible to the child.
  // Elements move between existing classes: re-encryption but no re-keying.
  auto rules_v2 =
      core::RuleSet::ParseText(
          "+ child //item[rating=\"G\"]\n+ child //item[rating=\"PG\"]\n"
          "+ premium /feed\n")
          .value();
  auto change = store.value().ApplyPolicyChange(rules_v2, &rng);
  ASSERT_TRUE(change.ok());
  EXPECT_GT(change.value().elements_moved, 0u);
  EXPECT_GT(change.value().bytes_reencrypted, 0u);

  // A new subject with its own visibility splits classes: now keys must
  // also be redistributed.
  auto rules_v3 =
      core::RuleSet::ParseText(
          "+ child //item[rating=\"G\"]\n+ child //item[rating=\"PG\"]\n"
          "+ teen //item[rating=\"PG13\"]\n+ premium /feed\n")
          .value();
  auto change2 = store.value().ApplyPolicyChange(rules_v3, &rng);
  ASSERT_TRUE(change2.ok());
  EXPECT_GT(change2.value().elements_moved, 0u);
  EXPECT_GT(change2.value().keys_redistributed, 0u);
}

TEST(SubsetBaselineTest, NoOpPolicyChangeIsFree) {
  auto doc = MakeFeed(100, 14);
  auto rules =
      core::RuleSet::ParseText("+ a //item\n").value();
  Rng rng(3);
  auto store = baseline::SubsetEncryptionStore::Build(&doc, rules, &rng);
  ASSERT_TRUE(store.ok());
  auto change = store.value().ApplyPolicyChange(rules, &rng);
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(change.value().elements_moved, 0u);
  EXPECT_EQ(change.value().bytes_reencrypted, 0u);
}

// --- Trusted-server baseline -----------------------------------------------

TEST(ServerBaselineTest, MatchesReferenceView) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 200;
  gp.seed = 15;
  auto doc = xml::GenerateDocument(gp);
  std::string rules = "+ doctor //patient\n- doctor //admin\n";
  auto ref_rules = core::RuleSet::ParseText(rules).value();
  auto expected =
      core::BuildAuthorizedView(doc, ref_rules.ForSubject("doctor"), nullptr)
          .value()
          .Serialize();

  baseline::TrustedServerBaseline server;
  ASSERT_TRUE(server.AddDocument("h", std::move(doc), rules).ok());
  auto result = server.Query("h", "doctor", "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().xml, expected);
  EXPECT_GT(result.value().modeled_seconds, 0.0);
}

TEST(ServerBaselineTest, UnknownDocumentFails) {
  baseline::TrustedServerBaseline server;
  EXPECT_FALSE(server.Query("nope", "u", "").ok());
}

}  // namespace
}  // namespace csxa
