// SOE substrate tests: cost model arithmetic, RAM metering, APDU codec,
// chunk source behaviour under skips and tampering, card engine sessions.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rule.h"
#include "core/rule_envelope.h"
#include "crypto/container.h"
#include "proxy/publisher.h"
#include "skipindex/codec.h"
#include "soe/apdu.h"
#include "soe/card_engine.h"
#include "soe/chunk_source.h"
#include "soe/cost_model.h"
#include "soe/ram_meter.h"
#include "xml/generator.h"

namespace csxa {
namespace {

using crypto::SecureContainer;
using crypto::SymmetricKey;
using soe::CardProfile;
using soe::ChunkData;
using soe::CostModel;

TEST(CostModelTest, TransferTimeMatchesLinkRate) {
  CardProfile p = CardProfile::EGate();
  CostModel cost(p);
  cost.AddTransfer(2048);  // exactly one second of payload at 2 KB/s
  EXPECT_NEAR(cost.TransferSeconds(),
              1.0 + static_cast<double>(cost.apdu_exchanges()) * p.apdu_latency_sec,
              1e-9);
  EXPECT_EQ(cost.apdu_exchanges(), (2048u + 254u) / 255u);
}

TEST(CostModelTest, CryptoAndEvaluatorCycles) {
  CardProfile p = CardProfile::EGate();
  CostModel cost(p);
  cost.AddDecrypt(1000);
  cost.AddHash(500);
  cost.AddEvaluator(10, 100);
  double cycles = 1000 * p.cycles_per_byte_decrypt + 500 * p.cycles_per_byte_hash;
  EXPECT_NEAR(cost.CryptoSeconds(), cycles / (p.cpu_mhz * 1e6), 1e-12);
  double ecycles = 10 * p.cycles_per_event + 100 * p.cycles_per_nfa_transition;
  EXPECT_NEAR(cost.EvaluatorSeconds(), ecycles / (p.cpu_mhz * 1e6), 1e-12);
  EXPECT_NEAR(cost.TotalSeconds(),
              cost.TransferSeconds() + cost.CryptoSeconds() +
                  cost.EvaluatorSeconds(),
              1e-12);
}

TEST(RamMeterTest, TracksPeakAndBudget) {
  soe::RamMeter lax(100, /*strict=*/false);
  EXPECT_TRUE(lax.Update(50).ok());
  EXPECT_TRUE(lax.Update(150).ok());  // over budget but not strict
  EXPECT_TRUE(lax.Update(20).ok());
  EXPECT_EQ(lax.peak(), 150u);
  EXPECT_EQ(lax.current(), 20u);

  soe::RamMeter strict(100, /*strict=*/true);
  EXPECT_TRUE(strict.Update(100).ok());
  Status st = strict.Update(101);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ApduTest, CommandCodecRoundTrip) {
  soe::ApduCommand cmd;
  cmd.ins = soe::Ins::kPutRules;
  cmd.p1 = 3;
  cmd.data = Bytes{1, 2, 3, 4, 5};
  ByteWriter w;
  cmd.EncodeTo(&w);
  ByteReader r(w.bytes());
  auto back = soe::ApduCommand::DecodeFrom(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().ins, soe::Ins::kPutRules);
  EXPECT_EQ(back.value().p1, 3);
  EXPECT_EQ(back.value().data, cmd.data);
}

TEST(ApduTest, ResponseCodecRoundTrip) {
  soe::ApduResponse resp;
  resp.data = Bytes{9, 8, 7};
  resp.sw = soe::kSwMoreData;
  ByteWriter w;
  resp.EncodeTo(&w);
  ByteReader r(w.bytes());
  auto back = soe::ApduResponse::DecodeFrom(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sw, soe::kSwMoreData);
  EXPECT_TRUE(back.value().ok());
}

// In-memory provider over a parsed container, with optional tampering.
class TestProvider : public soe::ChunkProvider {
 public:
  explicit TestProvider(const SecureContainer* c) : container_(c) {}
  uint64_t TotalWireBytes() const override {
    uint64_t total = crypto::ContainerHeader::kWireSize;
    for (uint32_t i = 0; i < container_->header().chunk_count; ++i) {
      auto cipher = container_->ChunkCiphertext(i);
      auto auth = container_->GetChunkAuth(i);
      if (cipher.ok() && auth.ok()) {
        total += cipher.value().size() +
                 auth.value().WireBytes(container_->header().integrity);
      }
    }
    return total;
  }
  uint32_t tamper_index_ = UINT32_MAX;
  uint32_t swap_with_ok_proof_ = UINT32_MAX;
  size_t fetches_ = 0;

 protected:
  Result<std::vector<ChunkData>> FetchChunks(uint32_t first,
                                             uint32_t count) override {
    std::vector<ChunkData> chunks;
    for (uint32_t index = first; index < first + count; ++index) {
      ChunkData chunk;
      CSXA_ASSIGN_OR_RETURN(Span cipher, container_->ChunkCiphertext(index));
      chunk.ciphertext = cipher.ToBytes();
      CSXA_ASSIGN_OR_RETURN(chunk.auth, container_->GetChunkAuth(index));
      if (index == tamper_index_) chunk.ciphertext[0] ^= 0xFF;
      if (index == swap_with_ok_proof_) {
        // Substitute another chunk's ciphertext, keep this index's auth.
        auto other = container_->ChunkCiphertext(0);
        if (other.ok()) chunk.ciphertext = other.value().ToBytes();
      }
      ++fetches_;
      chunks.push_back(std::move(chunk));
    }
    return chunks;
  }

 private:
  const SecureContainer* container_;
};

struct SealedDoc {
  SymmetricKey key;
  Bytes container_bytes;
  SecureContainer container;
  crypto::ContainerHeader header;
};

SealedDoc MakeSealed(size_t payload_size, size_t chunk_size, uint64_t seed) {
  Rng rng(seed);
  SealedDoc doc;
  doc.key = SymmetricKey::Generate(&rng);
  Bytes payload;
  payload.reserve(payload_size);
  for (size_t i = 0; i < payload_size; ++i) {
    payload.push_back(static_cast<uint8_t>(rng.Next()));
  }
  doc.container_bytes =
      SecureContainer::Seal(doc.key, payload, chunk_size, &rng);
  doc.container = SecureContainer::Parse(doc.container_bytes).value();
  doc.header = doc.container.header();
  return doc;
}

TEST(ChunkSourceTest, SequentialReadMatchesPayload) {
  SealedDoc doc = MakeSealed(3000, 512, 21);
  TestProvider provider(&doc.container);
  CostModel cost(CardProfile::EGate());
  soe::ChunkSource src(doc.key, doc.header, &provider, &cost);
  Bytes read(3000);
  ASSERT_TRUE(src.ReadExact(read.data(), read.size()).ok());
  EXPECT_TRUE(src.AtEnd());
  auto full = SecureContainer::OpenAll(doc.key, doc.container_bytes).value();
  EXPECT_EQ(read, full);
  EXPECT_EQ(src.chunks_fetched(), doc.header.chunk_count);
  EXPECT_GT(cost.bytes_decrypted(), 0u);
}

TEST(ChunkSourceTest, SkipAvoidsFetchingChunks) {
  SealedDoc doc = MakeSealed(512 * 10, 512, 22);
  TestProvider provider(&doc.container);
  CostModel cost(CardProfile::EGate());
  soe::ChunkSource src(doc.key, doc.header, &provider, &cost);
  uint8_t buf[16];
  ASSERT_TRUE(src.ReadExact(buf, 16).ok());       // chunk 0
  ASSERT_TRUE(src.Skip(512 * 7).ok());            // land in chunk 7
  ASSERT_TRUE(src.ReadExact(buf, 16).ok());
  EXPECT_LE(provider.fetches_, 3u);
  EXPECT_GE(src.chunks_avoided(), 6u);
}

TEST(ChunkSourceTest, TamperedChunkRejected) {
  SealedDoc doc = MakeSealed(2048, 512, 23);
  TestProvider provider(&doc.container);
  provider.tamper_index_ = 2;
  CostModel cost(CardProfile::EGate());
  soe::ChunkSource src(doc.key, doc.header, &provider, &cost);
  Bytes read(2048);
  Status st = src.ReadExact(read.data(), read.size());
  EXPECT_EQ(st.code(), StatusCode::kIntegrityError);
}

TEST(ChunkSourceTest, SubstitutedChunkRejected) {
  SealedDoc doc = MakeSealed(2048, 512, 24);
  TestProvider provider(&doc.container);
  provider.swap_with_ok_proof_ = 3;
  CostModel cost(CardProfile::EGate());
  soe::ChunkSource src(doc.key, doc.header, &provider, &cost);
  Bytes read(2048);
  EXPECT_EQ(read.size(), 2048u);
  Status st = src.ReadExact(read.data(), read.size());
  EXPECT_EQ(st.code(), StatusCode::kIntegrityError);
}

TEST(ChunkSourceTest, ReadPastEndFails) {
  SealedDoc doc = MakeSealed(100, 64, 25);
  TestProvider provider(&doc.container);
  soe::ChunkSource src(doc.key, doc.header, &provider, nullptr);
  Bytes read(101);
  EXPECT_FALSE(src.ReadExact(read.data(), read.size()).ok());
}

// --- Card engine sessions -------------------------------------------------

struct EngineFixture {
  Rng rng{77};
  SymmetricKey key;
  Bytes header_bytes;
  Bytes sealed_rules;
  Bytes container_bytes;
  std::unique_ptr<SecureContainer> container;
  std::unique_ptr<TestProvider> provider;

  explicit EngineFixture(const std::string& rules_text,
                         size_t doc_elements = 400, size_t chunk_size = 512) {
    key = SymmetricKey::Generate(&rng);
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kHospital;
    gp.target_elements = doc_elements;
    gp.seed = 100;
    auto doc = xml::GenerateDocument(gp);
    auto encoded = skipindex::EncodeDocument(doc, {}).value();
    container_bytes = SecureContainer::Seal(key, encoded, chunk_size, &rng);
    container = std::make_unique<SecureContainer>(
        SecureContainer::Parse(container_bytes).value());
    ByteWriter hw;
    container->header().EncodeTo(&hw);
    header_bytes = hw.Take();
    auto rules = core::RuleSet::ParseText(rules_text).value();
    sealed_rules = core::SealRuleSet(key, rules, /*version=*/1, &rng);
    provider = std::make_unique<TestProvider>(container.get());
  }
};

TEST(CardEngineTest, SessionDeliversAuthorizedView) {
  EngineFixture fx("+ doctor //patient\n- doctor //admin/billing\n");
  soe::CardEngine card(CardProfile::EGate());
  card.InstallKey("doc", fx.key);
  soe::SessionOptions opts;
  opts.subject = "doctor";
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out.value().view_xml.find("<patient"), std::string::npos);
  EXPECT_EQ(out.value().view_xml.find("<amount>"), std::string::npos);
  EXPECT_GT(out.value().stats.total_seconds, 0.0);
  EXPECT_GT(out.value().stats.evaluator.events, 0u);
}

TEST(CardEngineTest, MissingKeyFails) {
  EngineFixture fx("+ u //patient\n");
  soe::CardEngine card(CardProfile::EGate());
  soe::SessionOptions opts;
  opts.subject = "u";
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(CardEngineTest, TamperedRulesRejected) {
  EngineFixture fx("+ u //patient\n");
  fx.sealed_rules[20] ^= 0x01;
  soe::CardEngine card(CardProfile::EGate());
  card.InstallKey("doc", fx.key);
  soe::SessionOptions opts;
  opts.subject = "u";
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  EXPECT_EQ(out.status().code(), StatusCode::kIntegrityError);
}

TEST(CardEngineTest, SkipReducesDecryption) {
  // Small chunks so skipped subtrees clear whole chunks (the paper's card
  // fetched small APDU-sized units anyway).
  EngineFixture fx("+ accountant //patient/admin\n", 2000, 128);
  soe::CardEngine card(CardProfile::EGate());
  card.InstallKey("doc", fx.key);

  soe::SessionOptions with_skip;
  with_skip.subject = "accountant";
  auto a = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                           fx.provider.get(), with_skip);
  ASSERT_TRUE(a.ok());

  soe::SessionOptions no_skip = with_skip;
  no_skip.use_skip = false;
  auto b = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                           fx.provider.get(), no_skip);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a.value().view_xml, b.value().view_xml);
  EXPECT_LT(a.value().stats.bytes_decrypted, b.value().stats.bytes_decrypted);
  EXPECT_LT(a.value().stats.total_seconds, b.value().stats.total_seconds);
  EXPECT_GT(a.value().stats.skips, 0u);
}

TEST(CardEngineTest, PushModeChargesFullBroadcast) {
  EngineFixture fx("+ u //patient/admin\n", 600, 128);
  soe::CardEngine card(CardProfile::EGate());
  card.InstallKey("doc", fx.key);
  soe::SessionOptions opts;
  opts.subject = "u";
  opts.push_mode = true;
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  ASSERT_TRUE(out.ok());
  // Transfer must be at least the broadcast (payload) size even though
  // many chunks were never decrypted.
  EXPECT_GE(out.value().stats.bytes_transferred,
            fx.container->header().payload_size);
  EXPECT_GT(out.value().stats.chunks_avoided, 0u);
}

TEST(CardEngineTest, StrictRamViolationSurfaces) {
  EngineFixture fx("+ u //patient\n", 800);
  CardProfile tiny = CardProfile::EGate();
  tiny.ram_budget = 64;  // absurdly small: must trip
  soe::CardEngine card(tiny);
  card.InstallKey("doc", fx.key);
  soe::SessionOptions opts;
  opts.subject = "u";
  opts.strict_ram = true;
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(CardEngineTest, RamPeakReported) {
  EngineFixture fx("+ u //patient\n", 300);
  soe::CardEngine card(CardProfile::EGate());
  card.InstallKey("doc", fx.key);
  soe::SessionOptions opts;
  opts.subject = "u";
  auto out = card.RunSession("doc", fx.header_bytes, fx.sealed_rules,
                             fx.provider.get(), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value().stats.ram_peak, 0u);
  EXPECT_EQ(out.value().stats.ram_budget, CardProfile::EGate().ram_budget);
}

}  // namespace
}  // namespace csxa
