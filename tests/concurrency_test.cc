// Concurrency suite for the multi-tenant serving stack (`ctest -L
// concurrency`; scripts/ci.sh also runs it under ThreadSanitizer).
//
// What is pinned here:
//  - racing publish / policy-update / open traffic through a CachingClient
//    over a ShardedService never serves a torn {sealed_rules,
//    rules_version} pair, and every reader observes monotonically
//    non-decreasing rules versions;
//  - AsyncDispatcher executes one document's requests in submission order
//    (per-document FIFO) and drains every queued request on destruction;
//  - the full load harness (terminals, publishers, cache, dispatcher,
//    shards) completes a mixed workload with zero failed operations.
//
// Workload sizes are deliberately small: the suite must stay fast on a
// single-core CI machine and under TSan's ~10x slowdown.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "crypto/container.h"
#include "dsp/async.h"
#include "dsp/caching.h"
#include "dsp/service.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "workload/load.h"

namespace csxa {
namespace {

// A version-keyed sealed-rules blob: any response whose sealed_rules does
// not equal RulesBlobFor(its rules_version) is a torn pair.
Bytes RulesBlobFor(uint64_t version) {
  return Bytes(16, static_cast<uint8_t>(version & 0xFF));
}

Bytes MakeContainer(uint64_t seed, size_t payload_bytes = 600) {
  Rng rng(seed);
  auto key = crypto::SymmetricKey::Generate(&rng);
  return crypto::SecureContainer::Seal(
      key, Bytes(payload_bytes, static_cast<uint8_t>(seed)), 256, &rng);
}

// --- Readers vs. policy updates --------------------------------------------

TEST(ConcurrencyTest, ReadersSeeMonotoneUntornVersionsUnderUpdates) {
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  dsp::CachingClient cached(&sharded);

  const std::string doc_id = "hot";
  ASSERT_TRUE(sharded.Publish(doc_id, MakeContainer(1), RulesBlobFor(1)).ok());
  Bytes expected_header = sharded.OpenDocument(doc_id).value().header;
  ASSERT_FALSE(expected_header.empty());

  constexpr uint64_t kUpdates = 40;
  constexpr size_t kReaders = 4;
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    for (uint64_t v = 2; v <= kUpdates; ++v) {
      dsp::Request req;
      req.op = dsp::Op::kUpdateRules;
      req.doc_id = doc_id;
      req.sealed_rules = RulesBlobFor(v);
      auto resp = cached.Execute(std::move(req));
      ASSERT_TRUE(resp.ok());
      // Single writer: the server's version counter advances by exactly 1.
      ASSERT_EQ(resp.value().rules_version, v);
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::vector<uint64_t> final_versions(kReaders, 0);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last = 0;
      do {
        auto open = cached.OpenDocument(doc_id);
        ASSERT_TRUE(open.ok()) << open.status().ToString();
        const dsp::Response& resp = open.value();
        // Monotone: the stack never serves a version older than one this
        // reader already saw (cache fills are version-guarded).
        ASSERT_GE(resp.rules_version, last);
        last = resp.rules_version;
        // Untorn: sealed rules always belong to the reported version, and
        // the header never changes under pure policy updates.
        ASSERT_EQ(resp.sealed_rules, RulesBlobFor(resp.rules_version));
        ASSERT_EQ(resp.header, expected_header);
      } while (!writer_done.load(std::memory_order_acquire));
      final_versions[r] = last;
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  // Everyone converges on the final version once the writer stops.
  auto final_open = cached.OpenDocument(doc_id);
  ASSERT_TRUE(final_open.ok());
  EXPECT_EQ(final_open.value().rules_version, kUpdates);
}

// --- Racing publish / update / open (mixed writers) ------------------------

TEST(ConcurrencyTest, MixedPublishUpdateOpenTrafficStaysConsistent) {
  dsp::DspServer s0, s1;
  dsp::ShardedService sharded({&s0, &s1});
  dsp::CachingClient cached(&sharded);

  const std::string doc_id = "contested";
  ASSERT_TRUE(cached.Publish(doc_id, MakeContainer(2), RulesBlobFor(1)).ok());

  // Two writers race: a republisher (new container + rules each time) and
  // a policy updater. Server-side versions are strictly monotone and each
  // write carries a distinct blob, so each version maps to exactly one
  // blob — any disagreement between observations is a torn read.
  constexpr int kWrites = 15;
  std::atomic<bool> done{false};

  std::thread republisher([&] {
    for (int k = 0; k < kWrites; ++k) {
      dsp::Request req;
      req.op = dsp::Op::kPublish;
      req.doc_id = doc_id;
      req.container = MakeContainer(10 + k);
      req.sealed_rules = Bytes(16, static_cast<uint8_t>(200 + k));
      auto resp = cached.Execute(std::move(req));
      ASSERT_TRUE(resp.ok());
    }
  });
  std::thread updater([&] {
    for (int k = 0; k < kWrites; ++k) {
      dsp::Request req;
      req.op = dsp::Op::kUpdateRules;
      req.doc_id = doc_id;
      req.sealed_rules = Bytes(16, static_cast<uint8_t>(100 + k));
      auto resp = cached.Execute(std::move(req));
      ASSERT_TRUE(resp.ok());
    }
  });

  constexpr size_t kReaders = 3;
  std::vector<std::map<uint64_t, Bytes>> observed(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last = 0;
      do {
        auto open = cached.OpenDocument(doc_id);
        ASSERT_TRUE(open.ok()) << open.status().ToString();
        const dsp::Response& resp = open.value();
        ASSERT_GE(resp.rules_version, last);
        last = resp.rules_version;
        ASSERT_EQ(resp.header.size(), crypto::ContainerHeader::kWireSize);
        auto [it, inserted] =
            observed[r].emplace(resp.rules_version, resp.sealed_rules);
        if (!inserted) {
          // Re-observing a version must reproduce the identical blob.
          ASSERT_EQ(it->second, resp.sealed_rules) << "torn pair at version "
                                                   << resp.rules_version;
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }

  republisher.join();
  updater.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Cross-reader agreement: a version observed by two readers carries the
  // same blob in both.
  std::map<uint64_t, Bytes> merged;
  for (const auto& m : observed) {
    for (const auto& [version, blob] : m) {
      auto [it, inserted] = merged.emplace(version, blob);
      if (!inserted) {
        EXPECT_EQ(it->second, blob) << "version " << version;
      }
    }
  }
  EXPECT_FALSE(merged.empty());
}

// --- AsyncDispatcher ordering and drain ------------------------------------

// Records the order requests reach the backend, per document.
class RecordingService : public dsp::Service {
 public:
  Result<dsp::Response> Execute(dsp::Request request) override {
    {
      std::lock_guard lock(mu_);
      order_[request.doc_id].push_back(request.known_rules_version);
    }
    dsp::Response resp;
    resp.rules_version = request.known_rules_version;
    return resp;
  }
  dsp::ServiceStats stats() const override { return {}; }

  std::map<std::string, std::vector<uint64_t>> TakeOrder() {
    std::lock_guard lock(mu_);
    return order_;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::vector<uint64_t>> order_;
};

TEST(ConcurrencyTest, AsyncDispatcherKeepsPerDocumentFifoAndDrainsOnExit) {
  RecordingService backend;
  const std::vector<std::string> docs = {"alpha", "bravo", "charlie", "delta"};
  constexpr uint64_t kPerDoc = 25;

  std::vector<std::future<Result<dsp::Response>>> futures;
  {
    dsp::AsyncDispatcher::Options opt;
    opt.workers = 3;
    dsp::AsyncDispatcher dispatcher(&backend, opt);
    // Interleave submissions across documents without ever waiting: the
    // dispatcher's destructor must drain all of them.
    for (uint64_t seq = 1; seq <= kPerDoc; ++seq) {
      for (const std::string& doc : docs) {
        dsp::Request req;
        req.doc_id = doc;
        req.known_rules_version = seq;  // per-doc sequence number
        futures.push_back(dispatcher.Submit(std::move(req)));
      }
    }
    EXPECT_EQ(dispatcher.worker_count(), 3u);
  }  // destruction == drain barrier

  // Every future was fulfilled (none abandoned), with its own sequence.
  ASSERT_EQ(futures.size(), docs.size() * kPerDoc);
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "future " << i << " abandoned";
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().rules_version, i / docs.size() + 1);
  }

  // Per-document FIFO: each document's requests reached the backend in
  // submission order, whatever the worker interleaving was.
  auto order = backend.TakeOrder();
  ASSERT_EQ(order.size(), docs.size());
  for (const std::string& doc : docs) {
    const std::vector<uint64_t>& seq = order[doc];
    ASSERT_EQ(seq.size(), kPerDoc) << doc;
    for (uint64_t i = 0; i < kPerDoc; ++i) {
      EXPECT_EQ(seq[i], i + 1) << doc << " position " << i;
    }
  }
}

TEST(ConcurrencyTest, AsyncDispatcherConcurrentSubmittersAllComplete) {
  dsp::DspServer store;
  ASSERT_TRUE(store.Publish("doc", MakeContainer(3), RulesBlobFor(1)).ok());

  dsp::AsyncDispatcher::Options opt;
  opt.workers = 4;
  dsp::AsyncDispatcher dispatcher(&store, opt);

  constexpr size_t kThreads = 4;
  constexpr size_t kOpsEach = 20;
  std::vector<std::thread> submitters;
  std::atomic<uint64_t> ok_count{0};
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (size_t i = 0; i < kOpsEach; ++i) {
        auto open = dispatcher.OpenDocument("doc");
        if (open.ok() && open.value().rules_version >= 1) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kOpsEach);
  EXPECT_EQ(dispatcher.executed(), kThreads * kOpsEach);
  EXPECT_GT(dispatcher.modeled_busy_seconds(), 0.0);
  EXPECT_LE(dispatcher.modeled_makespan_seconds(),
            dispatcher.modeled_busy_seconds());
}

// --- Full stack under load ---------------------------------------------------

TEST(ConcurrencyTest, FullStackLoadHarnessCompletesWithZeroFailures) {
  workload::LoadOptions opt;
  opt.sessions = 6;
  opt.ops_per_session = 3;
  opt.shards = 2;
  opt.workers = 2;
  opt.documents = 3;
  opt.elements_per_doc = 60;
  opt.seed = 42;

  workload::LoadReport report = workload::RunLoad(opt);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.backend.requests, 0u);
  EXPECT_GT(report.throughput_ops_per_sec, 0.0);
  EXPECT_GT(report.modeled_makespan_seconds, 0.0);
  EXPECT_GE(report.modeled_busy_seconds, report.modeled_makespan_seconds);
  EXPECT_EQ(report.shard_requests.size(), 2u);
  EXPECT_EQ(report.lane_busy_seconds.size(), 2u);
  EXPECT_GT(report.p99_latency_ms, 0.0);
  EXPECT_GE(report.p99_latency_ms, report.p50_latency_ms);
}

}  // namespace
}  // namespace csxa
