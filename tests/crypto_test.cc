// Crypto substrate tests: FIPS-197 AES vectors, FIPS 180-4 SHA-256
// vectors, RFC 4231 HMAC vectors, mode round-trips, Merkle proofs and the
// container's tamper-detection property (every flipped bit is caught).

#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/container.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/modes.h"
#include "crypto/sha256.h"

namespace csxa {
namespace {

using crypto::Aes128;
using crypto::Digest;
using crypto::MerkleTree;
using crypto::SecureContainer;
using crypto::Sha256;
using crypto::SymmetricKey;

Bytes FromHex(const std::string& h) { return HexDecode(h).value(); }

TEST(AesTest, Fips197AppendixCVector) {
  // FIPS-197 C.1: AES-128 with key 000102...0f on plaintext 00112233...
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes plain = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes128::New(key);
  ASSERT_TRUE(aes.ok());
  uint8_t out[16];
  aes.value().EncryptBlock(plain.data(), out);
  EXPECT_EQ(HexEncode(Span(out, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.value().DecryptBlock(out, back);
  EXPECT_EQ(HexEncode(Span(back, 16)), HexEncode(plain));
}

TEST(AesTest, Fips197KeyExpansionVector) {
  // Appendix B known ciphertext for key 2b7e1516... / plaintext 3243f6a8...
  Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes plain = FromHex("3243f6a8885a308d313198a2e0370734");
  auto aes = Aes128::New(key).value();
  uint8_t out[16];
  aes.EncryptBlock(plain.data(), out);
  EXPECT_EQ(HexEncode(Span(out, 16)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, RejectsBadKeySize) {
  Bytes key(15, 0);
  EXPECT_FALSE(Aes128::New(key).ok());
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Span(Sha256::Hash(Span(std::string("abc"))).data(), 32)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexEncode(Span(Sha256::Hash(Span(std::string(""))).data(), 32)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HexEncode(Span(
          Sha256::Hash(Span(std::string(
                           "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))
              .data(),
          32)),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(Span(chunk));
  EXPECT_EQ(HexEncode(Span(h.Finish().data(), 32)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(5);
  Bytes data;
  for (int i = 0; i < 3000; ++i) data.push_back(static_cast<uint8_t>(rng.Next()));
  Digest oneshot = Sha256::Hash(data);
  Sha256 h;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t n = 1 + rng.Uniform(97);
    if (n > data.size() - pos) n = data.size() - pos;
    h.Update(Span(data.data() + pos, n));
    pos += n;
  }
  EXPECT_EQ(HexEncode(Span(h.Finish().data(), 32)),
            HexEncode(Span(oneshot.data(), 32)));
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = crypto::HmacSha256(key, Span(std::string("Hi There")));
  EXPECT_EQ(HexEncode(Span(mac.data(), 32)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Digest mac = crypto::HmacSha256(Span(std::string("Jefe")),
                                  Span(std::string("what do ya want for nothing?")));
  EXPECT_EQ(HexEncode(Span(mac.data(), 32)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(ModesTest, CtrRoundTripAllLengths) {
  auto aes = Aes128::New(FromHex("000102030405060708090a0b0c0d0e0f")).value();
  crypto::Iv iv{};
  Rng rng(9);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes plain;
    for (size_t i = 0; i < len; ++i) plain.push_back(static_cast<uint8_t>(rng.Next()));
    Bytes cipher, back;
    crypto::CtrTransform(aes, iv, plain, &cipher);
    crypto::CtrTransform(aes, iv, cipher, &back);
    EXPECT_EQ(plain, back) << len;
    if (len >= 16) {
      EXPECT_NE(plain, cipher);
    }
  }
}

TEST(ModesTest, CbcRoundTripAndPadding) {
  auto aes = Aes128::New(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).value();
  crypto::Iv iv{};
  iv[0] = 0x42;
  for (size_t len : {0u, 1u, 16u, 31u, 32u, 257u}) {
    Bytes plain(len, 0x5A);
    Bytes cipher = crypto::CbcEncrypt(aes, iv, plain);
    EXPECT_EQ(cipher.size() % 16, 0u);
    EXPECT_GT(cipher.size(), plain.size());  // PKCS#7 always pads
    auto back = crypto::CbcDecrypt(aes, iv, cipher);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), plain);
  }
}

TEST(ModesTest, CbcDetectsBadPadding) {
  auto aes = Aes128::New(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).value();
  crypto::Iv iv{};
  Bytes cipher = crypto::CbcEncrypt(aes, iv, Bytes(20, 1));
  cipher.back() ^= 0xFF;
  EXPECT_FALSE(crypto::CbcDecrypt(aes, iv, cipher).ok());
}

TEST(ModesTest, DerivedIvsDiffer) {
  Bytes nonce(16, 7);
  auto iv0 = crypto::DeriveCtrIv(nonce, 0);
  auto iv1 = crypto::DeriveCtrIv(nonce, 1);
  EXPECT_NE(HexEncode(Span(iv0.data(), 16)), HexEncode(Span(iv1.data(), 16)));
}

TEST(MerkleTest, ProofsVerifyForAllLeaves) {
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 64u}) {
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < n; ++i) leaves.push_back(Bytes(10, static_cast<uint8_t>(i)));
    MerkleTree tree = MerkleTree::Build(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = tree.Prove(i);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(MerkleTree::Verify(tree.root(), i, n, leaves[i], proof.value()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafFailsVerification) {
  std::vector<Bytes> leaves = {Bytes{1}, Bytes{2}, Bytes{3}};
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.Prove(1).value();
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), 1, 3, Bytes{9}, proof));
  // Substitution: leaf 2's payload at index 1 must fail.
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), 1, 3, leaves[2], proof));
}

TEST(MerkleTest, ProofCodecRoundTrips) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(Bytes(4, static_cast<uint8_t>(i)));
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.Prove(6).value();
  ByteWriter w;
  MerkleTree::EncodeProof(proof, &w);
  ByteReader r(w.bytes());
  auto back = MerkleTree::DecodeProof(&r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), proof.size());
  EXPECT_TRUE(MerkleTree::Verify(tree.root(), 6, 9, leaves[6], back.value()));
}

TEST(KeysTest, DerivationIsLabelSeparated) {
  Rng rng(1);
  SymmetricKey k = SymmetricKey::Generate(&rng);
  EXPECT_FALSE(k.Derive("enc") == k.Derive("mac"));
  EXPECT_TRUE(k.Derive("enc") == k.Derive("enc"));
}

// Container tests run in both integrity modes: per-chunk keyed MACs (the
// default) and Merkle proofs (keyless verifiability).
class ContainerModeTest
    : public ::testing::TestWithParam<crypto::IntegrityMode> {};

TEST_P(ContainerModeTest, SealOpenRoundTrip) {
  Rng rng(2);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload;
  for (int i = 0; i < 5000; ++i) payload.push_back(static_cast<uint8_t>(i * 7));
  Bytes sealed = SecureContainer::Seal(key, payload, 512, &rng, GetParam());
  auto opened = SecureContainer::OpenAll(key, sealed);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value(), payload);
}

TEST_P(ContainerModeTest, EmptyPayload) {
  Rng rng(3);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes sealed = SecureContainer::Seal(key, Bytes{}, 256, &rng, GetParam());
  auto opened = SecureContainer::OpenAll(key, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

TEST_P(ContainerModeTest, WrongKeyFailsRootMac) {
  Rng rng(4);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  SymmetricKey other = SymmetricKey::Generate(&rng);
  Bytes sealed = SecureContainer::Seal(key, Bytes(1000, 1), 256, &rng,
                                       GetParam());
  auto opened = SecureContainer::OpenAll(other, sealed);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityError);
}

// Property: every single-bit flip anywhere in the container is detected.
TEST_P(ContainerModeTest, AnyBitFlipIsDetected) {
  Rng rng(5);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload;
  for (int i = 0; i < 700; ++i) payload.push_back(static_cast<uint8_t>(rng.Next()));
  Bytes sealed = SecureContainer::Seal(key, payload, 128, &rng, GetParam());
  // Sample bit positions across the whole container (every byte would be
  // slow; step through with a prime stride).
  for (size_t pos = 0; pos < sealed.size(); pos += 13) {
    Bytes tampered = sealed;
    tampered[pos] ^= 0x01;
    auto opened = SecureContainer::OpenAll(key, tampered);
    EXPECT_FALSE(opened.ok()) << "undetected flip at byte " << pos;
  }
}

TEST_P(ContainerModeTest, ChunkSubstitutionDetected) {
  Rng rng(6);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload(1024, 0xAA);
  Bytes sealed = SecureContainer::Seal(key, payload, 256, &rng, GetParam());
  auto container = SecureContainer::Parse(sealed).value();
  ASSERT_TRUE(SecureContainer::VerifyRoot(key, container.header()).ok());
  // Serve chunk 2's ciphertext with chunk 1's auth material and index.
  auto cipher2 = container.ChunkCiphertext(2).value();
  auto auth1 = container.GetChunkAuth(1).value();
  auto res = SecureContainer::VerifyAndDecryptChunk(key, container.header(), 1,
                                                    cipher2, auth1);
  EXPECT_FALSE(res.ok());
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, ContainerModeTest,
    ::testing::Values(crypto::IntegrityMode::kChunkMac,
                      crypto::IntegrityMode::kMerkle),
    [](const ::testing::TestParamInfo<crypto::IntegrityMode>& info) {
      return info.param == crypto::IntegrityMode::kChunkMac ? "ChunkMac"
                                                            : "Merkle";
    });

TEST(ContainerTest, ModesProduceDifferentAuthTables) {
  Rng rng(61);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  Bytes payload(600, 0x33);
  Bytes mac_sealed = SecureContainer::Seal(key, payload, 128, &rng,
                                           crypto::IntegrityMode::kChunkMac);
  auto mac_container = SecureContainer::Parse(mac_sealed).value();
  EXPECT_EQ(mac_container.header().integrity,
            crypto::IntegrityMode::kChunkMac);
  auto auth = mac_container.GetChunkAuth(0).value();
  EXPECT_TRUE(auth.proof.empty());
  // MAC-mode auth is constant-size; Merkle-mode auth grows with the tree.
  EXPECT_EQ(auth.WireBytes(crypto::IntegrityMode::kChunkMac), 32u);
}

TEST(RecordTest, SealOpenRoundTripAndTamper) {
  Rng rng(7);
  SymmetricKey key = SymmetricKey::Generate(&rng);
  std::string msg = "+ alice //meeting\n- bob //note\n";
  Bytes sealed = crypto::SealRecord(key, Span(msg), &rng);
  auto opened = crypto::OpenRecord(key, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(Span(opened.value()).ToString(), msg);
  for (size_t pos = 0; pos < sealed.size(); pos += 7) {
    Bytes bad = sealed;
    bad[pos] ^= 0x80;
    EXPECT_FALSE(crypto::OpenRecord(key, bad).ok()) << pos;
  }
}

}  // namespace
}  // namespace csxa
