// The central property test: on randomized documents × randomized rule
// sets × randomized queries, the streaming evaluator's delivered view must
// equal the DOM oracle's, byte for byte in canonical form.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "workload/rulegen.h"
#include "xml/generator.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

struct PropertyParams {
  xml::DocProfile profile;
  size_t doc_elements;
  size_t num_rules;
  double predicate_prob;
  bool with_query;
  uint64_t seed_base;
  int iterations;
};

class OracleAgreement : public ::testing::TestWithParam<PropertyParams> {};

// Each instantiation seeds from its fixed seed_base constant, so default
// runs are fully deterministic. CSXA_SEED_OFFSET shifts every seed to
// explore new universes; the effective seed is attached to every failure
// (SCOPED_TRACE), so any report reproduces with
//   CSXA_SEED_OFFSET=<offset> ./core_oracle_property_test
uint64_t SeedOffset() {
  static const uint64_t offset = [] {
    const char* v = std::getenv("CSXA_SEED_OFFSET");
    return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                        : 0ull;
  }();
  return offset;
}

std::string StreamView(const xml::DomDocument& doc,
                       const std::vector<core::AccessRule>& rules,
                       const xpath::PathExpr* query, Status* status_out) {
  xml::CanonicalWriter out;
  auto ev = core::StreamingEvaluator::Create(rules, query, &out);
  if (!ev.ok()) {
    *status_out = ev.status();
    return "";
  }
  Status st = doc.root()->EmitEvents(ev.value().get());
  if (st.ok()) st = ev.value()->Finish();
  *status_out = st;
  return out.str();
}

TEST_P(OracleAgreement, StreamingMatchesDom) {
  const PropertyParams& p = GetParam();
  for (int iter = 0; iter < p.iterations; ++iter) {
    uint64_t seed = p.seed_base + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " (seed_base=" +
                 std::to_string(p.seed_base) +
                 ", CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) +
                 ", iter=" + std::to_string(iter) + ")");
    xml::GeneratorParams gp;
    gp.profile = p.profile;
    gp.target_elements = p.doc_elements;
    gp.seed = seed;
    gp.vocabulary = 6;
    gp.max_depth = 7;
    xml::DomDocument doc = xml::GenerateDocument(gp);
    ASSERT_NE(doc.root(), nullptr);

    Rng rng(seed * 7919 + 13);
    workload::RuleGenParams rp;
    rp.num_rules = p.num_rules;
    rp.path.predicate_prob = p.predicate_prob;
    core::RuleSet rules = workload::GenerateRules(doc, "u", rp, &rng);

    xpath::PathExpr qexpr;
    const xpath::PathExpr* qptr = nullptr;
    if (p.with_query) {
      auto tags = workload::CollectTags(doc);
      auto values = workload::CollectValues(doc);
      workload::PathGenParams qp;
      qp.predicate_prob = p.predicate_prob;
      std::string qtext = workload::GeneratePathText(tags, values, qp, &rng);
      auto q = xpath::ParsePath(qtext);
      ASSERT_TRUE(q.ok()) << qtext;
      qexpr = std::move(q).value();
      qptr = &qexpr;
    }

    Status st = Status::OK();
    std::string streamed =
        StreamView(doc, rules.ForSubject("u"), qptr, &st);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nseed=" << seed
                         << "\nrules:\n" << rules.ToText();
    auto ref = core::BuildAuthorizedView(doc, rules.ForSubject("u"), qptr);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_EQ(streamed, ref.value().Serialize())
        << "seed=" << seed << "\nrules:\n"
        << rules.ToText()
        << (qptr ? ("query: " + xpath::ToString(*qptr)) : std::string());
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDocs, OracleAgreement,
    ::testing::Values(
        // Adversarial random structure, no predicates.
        PropertyParams{xml::DocProfile::kRandom, 60, 5, 0.0, false, 1000, 40},
        // Random structure with predicates (pending machinery).
        PropertyParams{xml::DocProfile::kRandom, 60, 5, 0.5, false, 2000, 40},
        // Random structure, predicates and queries together.
        PropertyParams{xml::DocProfile::kRandom, 80, 6, 0.4, true, 3000, 40},
        // Realistic profiles.
        PropertyParams{xml::DocProfile::kAgenda, 150, 6, 0.3, true, 4000, 15},
        PropertyParams{xml::DocProfile::kHospital, 150, 6, 0.3, true, 5000, 15},
        PropertyParams{xml::DocProfile::kNewsFeed, 150, 6, 0.3, true, 6000, 15},
        // Many rules, heavier conflict interaction.
        PropertyParams{xml::DocProfile::kRandom, 100, 16, 0.3, false, 7000, 20},
        // Deep narrow documents (stack stress).
        PropertyParams{xml::DocProfile::kRandom, 40, 4, 0.5, true, 8000, 40}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      const PropertyParams& p = info.param;
      std::string name = xml::DocProfileName(p.profile);
      name += "_r" + std::to_string(p.num_rules);
      name += p.with_query ? "_q1" : "_q0";
      name += "_p" + std::to_string(static_cast<int>(p.predicate_prob * 100));
      name += "_s" + std::to_string(p.seed_base);
      return name;
    });

}  // namespace
}  // namespace csxa
