// The central property test: on randomized documents × randomized rule
// sets × randomized queries, the streaming evaluator's delivered view must
// equal the DOM oracle's, byte for byte in canonical form.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "crypto/container.h"
#include "skipindex/byte_source.h"
#include "skipindex/codec.h"
#include "skipindex/filter.h"
#include "soe/chunk_source.h"
#include "soe/prefetch.h"
#include "scengen/rulegen.h"
#include "xml/generator.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

struct PropertyParams {
  xml::DocProfile profile;
  size_t doc_elements;
  size_t num_rules;
  double predicate_prob;
  bool with_query;
  uint64_t seed_base;
  int iterations;
};

class OracleAgreement : public ::testing::TestWithParam<PropertyParams> {};

// Each instantiation seeds from its fixed seed_base constant, so default
// runs are fully deterministic. CSXA_SEED_OFFSET shifts every seed to
// explore new universes; the effective seed is attached to every failure
// (SCOPED_TRACE), so any report reproduces with
//   CSXA_SEED_OFFSET=<offset> ./core_oracle_property_test
uint64_t SeedOffset() {
  static const uint64_t offset = [] {
    const char* v = std::getenv("CSXA_SEED_OFFSET");
    return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                        : 0ull;
  }();
  return offset;
}

// Borrowed mode: EmitEvents delivers views straight into the evaluator's
// OnEventView fast path.
std::string StreamView(const xml::DomDocument& doc,
                       const std::vector<core::AccessRule>& rules,
                       const xpath::PathExpr* query, Status* status_out,
                       core::EvaluatorStats* stats_out = nullptr) {
  xml::CanonicalWriter out;
  auto ev = core::StreamingEvaluator::Create(rules, query, &out);
  if (!ev.ok()) {
    *status_out = ev.status();
    return "";
  }
  Status st = doc.root()->EmitEvents(ev.value().get());
  if (st.ok()) st = ev.value()->Finish();
  *status_out = st;
  if (stats_out != nullptr) *stats_out = ev.value()->stats();
  return out.str();
}

// Owning mode: the same stream recorded as owning events and fed through
// OnEvent. The borrowed path must be indistinguishable from this — same
// delivered bytes, same counters, same modeled RAM peak.
std::string StreamViewOwning(const xml::DomDocument& doc,
                             const std::vector<core::AccessRule>& rules,
                             const xpath::PathExpr* query, Status* status_out,
                             core::EvaluatorStats* stats_out = nullptr) {
  xml::EventRecorder recorder;
  Status st = doc.root()->EmitEvents(&recorder);
  if (!st.ok()) {
    *status_out = st;
    return "";
  }
  xml::CanonicalWriter out;
  auto ev = core::StreamingEvaluator::Create(rules, query, &out);
  if (!ev.ok()) {
    *status_out = ev.status();
    return "";
  }
  for (const xml::Event& e : recorder.events()) {
    st = ev.value()->OnEvent(e);
    if (!st.ok()) break;
  }
  if (st.ok()) st = ev.value()->Finish();
  *status_out = st;
  if (stats_out != nullptr) *stats_out = ev.value()->stats();
  return out.str();
}

size_t OraclePermittedCount(const xml::DomDocument& doc,
                            const std::vector<core::AccessRule>& rules) {
  size_t n = 0;
  for (bool b : core::AuthorizeAll(doc, rules)) {
    if (b) ++n;
  }
  return n;
}

TEST_P(OracleAgreement, StreamingMatchesDom) {
  const PropertyParams& p = GetParam();
  for (int iter = 0; iter < p.iterations; ++iter) {
    uint64_t seed = p.seed_base + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " (seed_base=" +
                 std::to_string(p.seed_base) +
                 ", CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) +
                 ", iter=" + std::to_string(iter) + ")");
    xml::GeneratorParams gp;
    gp.profile = p.profile;
    gp.target_elements = p.doc_elements;
    gp.seed = seed;
    gp.vocabulary = 6;
    gp.max_depth = 7;
    xml::DomDocument doc = xml::GenerateDocument(gp);
    ASSERT_NE(doc.root(), nullptr);

    Rng rng(seed * 7919 + 13);
    scengen::RuleGenParams rp;
    rp.num_rules = p.num_rules;
    rp.path.predicate_prob = p.predicate_prob;
    core::RuleSet rules = scengen::GenerateRules(doc, "u", rp, &rng);

    xpath::PathExpr qexpr;
    const xpath::PathExpr* qptr = nullptr;
    if (p.with_query) {
      auto tags = scengen::CollectTags(doc);
      auto values = scengen::CollectValues(doc);
      scengen::PathGenParams qp;
      qp.predicate_prob = p.predicate_prob;
      std::string qtext = scengen::GeneratePathText(tags, values, qp, &rng);
      auto q = xpath::ParsePath(qtext);
      ASSERT_TRUE(q.ok()) << qtext;
      qexpr = std::move(q).value();
      qptr = &qexpr;
    }

    Status st = Status::OK();
    core::EvaluatorStats stats;
    std::string streamed =
        StreamView(doc, rules.ForSubject("u"), qptr, &st, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nseed=" << seed
                         << "\nrules:\n" << rules.ToText();
    auto ref = core::BuildAuthorizedView(doc, rules.ForSubject("u"), qptr);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_EQ(streamed, ref.value().Serialize())
        << "seed=" << seed << "\nrules:\n"
        << rules.ToText()
        << (qptr ? ("query: " + xpath::ToString(*qptr)) : std::string());
    // Borrowed vs owning differential: the zero-copy path must deliver
    // the same bytes at byte-identical modeled end-to-end cost.
    Status owning_st = Status::OK();
    core::EvaluatorStats owning_stats;
    std::string owned =
        StreamViewOwning(doc, rules.ForSubject("u"), qptr, &owning_st,
                         &owning_stats);
    ASSERT_TRUE(owning_st.ok()) << owning_st.ToString();
    EXPECT_EQ(streamed, owned) << "seed=" << seed;
    EXPECT_EQ(stats.modeled_ram_peak, owning_stats.modeled_ram_peak)
        << "seed=" << seed;
    EXPECT_EQ(stats.events, owning_stats.events) << "seed=" << seed;
    EXPECT_EQ(stats.nfa_transitions, owning_stats.nfa_transitions)
        << "seed=" << seed;
    EXPECT_EQ(stats.obligations_created, owning_stats.obligations_created)
        << "seed=" << seed;
    EXPECT_EQ(stats.buffered_events_peak, owning_stats.buffered_events_peak)
        << "seed=" << seed;
    // Counter invariants, pinned to the DOM oracle: every element decides
    // exactly once, and (absent a query) the permitted count equals the
    // reference authorization.
    EXPECT_EQ(stats.nodes_permitted + stats.nodes_denied,
              doc.CountElements())
        << "seed=" << seed;
    if (!p.with_query) {
      EXPECT_EQ(stats.nodes_permitted,
                OraclePermittedCount(doc, rules.ForSubject("u")))
          << "seed=" << seed << "\nrules:\n" << rules.ToText();
    }
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDocs, OracleAgreement,
    ::testing::Values(
        // Adversarial random structure, no predicates.
        PropertyParams{xml::DocProfile::kRandom, 60, 5, 0.0, false, 1000, 40},
        // Random structure with predicates (pending machinery).
        PropertyParams{xml::DocProfile::kRandom, 60, 5, 0.5, false, 2000, 40},
        // Random structure, predicates and queries together.
        PropertyParams{xml::DocProfile::kRandom, 80, 6, 0.4, true, 3000, 40},
        // Realistic profiles.
        PropertyParams{xml::DocProfile::kAgenda, 150, 6, 0.3, true, 4000, 15},
        PropertyParams{xml::DocProfile::kHospital, 150, 6, 0.3, true, 5000, 15},
        PropertyParams{xml::DocProfile::kNewsFeed, 150, 6, 0.3, true, 6000, 15},
        // Many rules, heavier conflict interaction.
        PropertyParams{xml::DocProfile::kRandom, 100, 16, 0.3, false, 7000, 20},
        // Deep narrow documents (stack stress).
        PropertyParams{xml::DocProfile::kRandom, 40, 4, 0.5, true, 8000, 40},
        // High rule counts: the indexed (rule, state, TagId) dispatch and
        // dormant-rule suppression are only exercised at this scale.
        PropertyParams{xml::DocProfile::kRandom, 80, 64, 0.0, false, 9000, 10},
        PropertyParams{xml::DocProfile::kRandom, 80, 64, 0.3, true, 9100, 8},
        PropertyParams{xml::DocProfile::kRandom, 60, 128, 0.2, false, 9200,
                       6}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      const PropertyParams& p = info.param;
      std::string name = xml::DocProfileName(p.profile);
      name += "_r" + std::to_string(p.num_rules);
      name += p.with_query ? "_q1" : "_q0";
      name += "_p" + std::to_string(static_cast<int>(p.predicate_prob * 100));
      name += "_s" + std::to_string(p.seed_base);
      return name;
    });

// ---------------------------------------------------------------------------
// Skip-index-enabled differential runs: the full encode → decode →
// RunFiltered path (interned-tag events, BindDocumentTags, subtree skips)
// against the DOM oracle, with skip-on vs skip-off counter agreement.
// ---------------------------------------------------------------------------

struct SkipParams {
  size_t doc_elements;
  size_t num_rules;
  double predicate_prob;
  uint64_t seed_base;
  int iterations;
};

class SkipOracleAgreement : public ::testing::TestWithParam<SkipParams> {};

struct FilteredRun {
  std::string view;
  core::EvaluatorStats stats;
  size_t skips = 0;
};

FilteredRun RunFilteredView(Span encoded,
                            const std::vector<core::AccessRule>& rules,
                            bool enable_skip, Status* status_out) {
  FilteredRun out;
  skipindex::MemorySource source(encoded);
  auto dec = skipindex::DocumentDecoder::Open(&source);
  if (!dec.ok()) {
    *status_out = dec.status();
    return out;
  }
  xml::CanonicalWriter writer;
  auto ev = core::StreamingEvaluator::Create(rules, nullptr, &writer);
  if (!ev.ok()) {
    *status_out = ev.status();
    return out;
  }
  skipindex::FilterOptions fopts;
  fopts.enable_skip = enable_skip;
  skipindex::FilterStats fstats;
  *status_out =
      skipindex::RunFiltered(dec.value().get(), ev.value().get(), fopts,
                             &fstats);
  out.view = writer.str();
  out.stats = ev.value()->stats();
  out.skips = fstats.skips;
  return out;
}

TEST_P(SkipOracleAgreement, FilteredStreamMatchesDom) {
  const SkipParams& p = GetParam();
  for (int iter = 0; iter < p.iterations; ++iter) {
    uint64_t seed = p.seed_base + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) + ")");
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kRandom;
    gp.target_elements = p.doc_elements;
    gp.seed = seed;
    gp.vocabulary = 6;
    gp.max_depth = 7;
    xml::DomDocument doc = xml::GenerateDocument(gp);
    ASSERT_NE(doc.root(), nullptr);

    Rng rng(seed * 6271 + 17);
    scengen::RuleGenParams rp;
    rp.num_rules = p.num_rules;
    rp.path.predicate_prob = p.predicate_prob;
    core::RuleSet rules = scengen::GenerateRules(doc, "u", rp, &rng);
    std::vector<core::AccessRule> subject_rules = rules.ForSubject("u");

    auto encoded = skipindex::EncodeDocument(doc, {});
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

    Status st = Status::OK();
    FilteredRun with_skip =
        RunFilteredView(Span(encoded.value()), subject_rules, true, &st);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nrules:\n" << rules.ToText();
    FilteredRun no_skip =
        RunFilteredView(Span(encoded.value()), subject_rules, false, &st);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nrules:\n" << rules.ToText();

    auto ref = core::BuildAuthorizedView(doc, subject_rules, nullptr);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    std::string expected = ref.value().Serialize();
    EXPECT_EQ(with_skip.view, expected)
        << "seed=" << seed << "\nrules:\n" << rules.ToText();
    EXPECT_EQ(no_skip.view, expected)
        << "seed=" << seed << "\nrules:\n" << rules.ToText();

    // Skips never change what is delivered — only what is examined.
    EXPECT_EQ(with_skip.stats.nodes_permitted, no_skip.stats.nodes_permitted)
        << "seed=" << seed;
    EXPECT_LE(with_skip.stats.nodes_denied, no_skip.stats.nodes_denied);
    EXPECT_LE(with_skip.stats.obligations_created,
              no_skip.stats.obligations_created);
    EXPECT_EQ(with_skip.stats.subtrees_skipped, with_skip.skips);
    // The no-skip run decides every element exactly once.
    EXPECT_EQ(no_skip.stats.nodes_permitted + no_skip.stats.nodes_denied,
              doc.CountElements());
    EXPECT_EQ(no_skip.stats.nodes_permitted,
              OraclePermittedCount(doc, subject_rules));
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EncodedDocs, SkipOracleAgreement,
    ::testing::Values(
        // Baseline mix with predicates (pending machinery + skip safety).
        SkipParams{80, 6, 0.4, 11000, 12},
        // Dispatch-index scale: rule counts where the transition index
        // and dormant-rule suppression carry the load.
        SkipParams{80, 64, 0.25, 12000, 8},
        SkipParams{60, 128, 0.0, 13000, 6}),
    [](const ::testing::TestParamInfo<SkipParams>& info) {
      const SkipParams& p = info.param;
      return "r" + std::to_string(p.num_rules) + "_p" +
             std::to_string(static_cast<int>(p.predicate_prob * 100)) +
             "_s" + std::to_string(p.seed_base);
    });

// ---------------------------------------------------------------------------
// Fetch-plan soundness: the owner-side planning pass (ComputeFetchPlan over
// the plaintext encoding) must predict EXACTLY the chunk set a real
// sealed-container scan fetches — CTR preserves byte positions, so the
// plaintext probe and the encrypted scan touch the same offsets. Soundness
// (plan ⊇ fetched) is what keeps a planned session miss-free; exactness
// (plan = fetched) is what keeps it from over-fetching.
// ---------------------------------------------------------------------------

struct PlanParams {
  size_t doc_elements;
  size_t num_rules;
  double predicate_prob;
  bool with_query;
  uint32_t chunk_size;
  bool use_skip;
  uint64_t seed_base;
  int iterations;
};

class FetchPlanSoundness : public ::testing::TestWithParam<PlanParams> {};

TEST_P(FetchPlanSoundness, PlanEqualsSealedScanChunkSet) {
  const PlanParams& p = GetParam();
  for (int iter = 0; iter < p.iterations; ++iter) {
    uint64_t seed = p.seed_base + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) + ")");
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kRandom;
    gp.target_elements = p.doc_elements;
    gp.seed = seed;
    gp.vocabulary = 6;
    gp.max_depth = 7;
    xml::DomDocument doc = xml::GenerateDocument(gp);
    ASSERT_NE(doc.root(), nullptr);

    Rng rng(seed * 5227 + 29);
    scengen::RuleGenParams rp;
    rp.num_rules = p.num_rules;
    rp.path.predicate_prob = p.predicate_prob;
    core::RuleSet rules = scengen::GenerateRules(doc, "u", rp, &rng);
    std::vector<core::AccessRule> subject_rules = rules.ForSubject("u");

    xpath::PathExpr qexpr;
    const xpath::PathExpr* qptr = nullptr;
    if (p.with_query) {
      auto tags = scengen::CollectTags(doc);
      auto values = scengen::CollectValues(doc);
      scengen::PathGenParams qp;
      qp.predicate_prob = p.predicate_prob;
      std::string qtext = scengen::GeneratePathText(tags, values, qp, &rng);
      auto q = xpath::ParsePath(qtext);
      ASSERT_TRUE(q.ok()) << qtext;
      qexpr = std::move(q).value();
      qptr = &qexpr;
    }

    auto encoded = skipindex::EncodeDocument(doc, {});
    ASSERT_TRUE(encoded.ok());

    auto plan = soe::ComputeFetchPlan(Span(encoded.value()), p.chunk_size,
                                      subject_rules, qptr, p.use_skip);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // Ground truth: the scan the card actually performs, over the SEALED
    // container, with every fetched chunk recorded.
    auto key = crypto::SymmetricKey::Generate(&rng);
    Bytes sealed = crypto::SecureContainer::Seal(key, encoded.value(),
                                                 p.chunk_size, &rng);
    auto container = crypto::SecureContainer::Parse(sealed);
    ASSERT_TRUE(container.ok());
    soe::ContainerChunkProvider backend(&container.value());
    soe::RecordingProvider recorder(&backend);
    soe::ChunkSource source(key, container.value().header(), &recorder,
                            nullptr);
    auto dec = skipindex::DocumentDecoder::Open(&source);
    ASSERT_TRUE(dec.ok()) << dec.status().ToString();
    xml::CanonicalWriter writer;
    auto ev = core::StreamingEvaluator::Create(subject_rules, qptr, &writer);
    ASSERT_TRUE(ev.ok());
    skipindex::FilterOptions fopts;
    fopts.enable_skip = p.use_skip;
    Status st = skipindex::RunFiltered(dec.value().get(), ev.value().get(),
                                       fopts, nullptr);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nrules:\n" << rules.ToText();

    std::set<uint32_t> fetched(recorder.requested().begin(),
                               recorder.requested().end());
    std::set<uint32_t> planned;
    for (const skipindex::ChunkRun& r : plan.value().runs) {
      for (uint32_t i = 0; i < r.count; ++i) planned.insert(r.first + i);
    }
    // Soundness: every chunk the sealed scan fetched was planned.
    for (uint32_t c : fetched) {
      EXPECT_TRUE(plan.value().Covers(c))
          << "fetched chunk " << c << " not in plan; seed=" << seed
          << "\nrules:\n" << rules.ToText();
    }
    // Exactness: and nothing else was.
    EXPECT_EQ(planned, fetched)
        << "seed=" << seed << "\nrules:\n" << rules.ToText();

    // The scan the plan was computed for delivers the oracle view.
    auto ref = core::BuildAuthorizedView(doc, subject_rules, qptr);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(writer.str(), ref.value().Serialize()) << "seed=" << seed;
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlannedDocs, FetchPlanSoundness,
    ::testing::Values(
        // Skip-heavy scans at fine chunking — the planner's home turf.
        PlanParams{100, 6, 0.3, false, 64, true, 14000, 10},
        PlanParams{100, 6, 0.3, false, 256, true, 14100, 10},
        // Queries narrow the scan further; the plan must follow.
        PlanParams{120, 6, 0.4, true, 128, true, 14200, 10},
        // Skip disabled: the "plan" is the whole container, still exact.
        PlanParams{80, 5, 0.2, false, 128, false, 14300, 5},
        // Chunk size larger than the document: everything in chunk 0.
        PlanParams{40, 4, 0.3, false, 65536, true, 14400, 5}),
    [](const ::testing::TestParamInfo<PlanParams>& info) {
      const PlanParams& p = info.param;
      std::string name = "c" + std::to_string(p.chunk_size);
      name += p.use_skip ? "_skip1" : "_skip0";
      name += p.with_query ? "_q1" : "_q0";
      name += "_s" + std::to_string(p.seed_base);
      return name;
    });

}  // namespace
}  // namespace csxa
