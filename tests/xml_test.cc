// XML substrate tests: pull parser conformance on the supported subset,
// escaping, DOM building/serialization, canonical writer, generators.

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/generator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace csxa {
namespace {

using xml::DomDocument;
using xml::Event;
using xml::EventType;
using xml::PullParser;

std::vector<Event> Parse(const std::string& text) {
  auto r = PullParser::ParseToEvents(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : std::vector<Event>{};
}

TEST(EscapeTest, RoundTrip) {
  std::string raw = "a<b&c>\"d'e";
  auto back = xml::Unescape(xml::Escape(raw));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(EscapeTest, NumericReferences) {
  EXPECT_EQ(xml::Unescape("&#65;&#x42;").value(), "AB");
  EXPECT_EQ(xml::Unescape("&#233;").value(), "\xC3\xA9");  // é in UTF-8
  EXPECT_FALSE(xml::Unescape("&#zz;").ok());
  EXPECT_FALSE(xml::Unescape("&bogus;").ok());
  EXPECT_FALSE(xml::Unescape("&unterminated").ok());
}

TEST(ParserTest, SimpleDocument) {
  auto events = Parse("<a><b>text</b></a>");
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].type, EventType::kOpen);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[2].type, EventType::kValue);
  EXPECT_EQ(events[2].text, "text");
  EXPECT_EQ(events[4].type, EventType::kClose);
}

TEST(ParserTest, AttributesBothQuoteStyles) {
  auto events = Parse("<a x=\"1\" y='two &amp; three'/>");
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].attrs.size(), 2u);
  EXPECT_EQ(events[0].attrs[0].name, "x");
  EXPECT_EQ(events[0].attrs[0].value, "1");
  EXPECT_EQ(events[0].attrs[1].value, "two & three");
}

TEST(ParserTest, SelfClosingEmitsOpenClose) {
  auto events = Parse("<a><b/><c/></a>");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[1].type, EventType::kOpen);
  EXPECT_EQ(events[2].type, EventType::kClose);
  EXPECT_EQ(events[2].name, "b");
}

TEST(ParserTest, CommentsAndPisAreSkipped) {
  auto events =
      Parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- in -->x<?pi data?></a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "x");
}

TEST(ParserTest, CdataIsText) {
  auto events = Parse("<a><![CDATA[<not><markup>&amp;]]></a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "<not><markup>&amp;");
}

TEST(ParserTest, TextCoalescingAroundComments) {
  auto events = Parse("<a>one<!-- x -->two</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "onetwo");
}

TEST(ParserTest, WhitespaceOnlyTextSkippedByDefault) {
  auto events = Parse("<a>\n  <b>x</b>\n</a>");
  ASSERT_EQ(events.size(), 5u);
}

TEST(ParserTest, WhitespaceKeptWhenConfigured) {
  xml::ParserOptions opt;
  opt.skip_whitespace_text = false;
  auto r = PullParser::ParseToEvents("<a> <b>x</b></a>", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 6u);
}

TEST(ParserTest, EntityEscapesInText) {
  auto events = Parse("<a>&lt;tag&gt; &amp; &quot;q&quot;</a>");
  EXPECT_EQ(events[1].text, "<tag> & \"q\"");
}

TEST(ParserTest, ErrorMismatchedTags) {
  EXPECT_FALSE(PullParser::ParseToEvents("<a><b></a></b>").ok());
}

TEST(ParserTest, ErrorUnterminated) {
  EXPECT_FALSE(PullParser::ParseToEvents("<a><b>").ok());
  EXPECT_FALSE(PullParser::ParseToEvents("<a attr=>").ok());
  EXPECT_FALSE(PullParser::ParseToEvents("<a><!-- unterminated").ok());
}

TEST(ParserTest, ErrorMultipleRoots) {
  EXPECT_FALSE(PullParser::ParseToEvents("<a/><b/>").ok());
}

TEST(ParserTest, ErrorTextOutsideRoot) {
  EXPECT_FALSE(PullParser::ParseToEvents("text<a/>").ok());
  EXPECT_FALSE(PullParser::ParseToEvents("<a/>trailing").ok());
}

TEST(ParserTest, ErrorDoctype) {
  auto r = PullParser::ParseToEvents("<!DOCTYPE html><a/>");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST(ParserTest, LineNumbersInErrors) {
  auto r = PullParser::ParseToEvents("<a>\n\n<b=</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(DomTest, ParseAndSerializeCanonical) {
  auto doc = DomDocument::Parse("<a x=\"1\"><b>t</b><c/></a>").value();
  EXPECT_EQ(doc.Serialize(), "<a x=\"1\"><b>t</b><c></c></a>");
}

TEST(DomTest, PrettySerialization) {
  auto doc = DomDocument::Parse("<a><b>t</b></a>").value();
  std::string pretty = doc.SerializePretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

TEST(DomTest, CountsAndDepth) {
  auto doc = DomDocument::Parse("<a><b><c/></b><d/></a>").value();
  EXPECT_EQ(doc.CountElements(), 4u);
  EXPECT_EQ(doc.MaxDepth(), 3);
}

TEST(DomTest, StringValueAndDirectText) {
  auto doc = DomDocument::Parse("<a>x<b>y</b>z</a>").value();
  EXPECT_EQ(doc.root()->StringValue(), "xyz");
  EXPECT_EQ(doc.root()->DirectText(), "xz");
}

TEST(DomTest, EventsRoundTripThroughBuilder) {
  auto doc =
      DomDocument::Parse("<r><a k=\"v\">one</a><b><c>two</c></b></r>").value();
  xml::DomBuilder builder;
  ASSERT_TRUE(doc.root()->EmitEvents(&builder).ok());
  ASSERT_TRUE(builder.complete());
  EXPECT_EQ(builder.TakeDocument().Serialize(), doc.Serialize());
}

TEST(WriterTest, CanonicalOutputMatchesDomSerialize) {
  std::string text = "<a x=\"1\"><b>t&amp;u</b><c/></a>";
  auto doc = DomDocument::Parse(text).value();
  xml::CanonicalWriter w;
  ASSERT_TRUE(doc.root()->EmitEvents(&w).ok());
  EXPECT_EQ(w.str(), doc.Serialize());
}

TEST(WriterTest, RejectsUnbalanced) {
  std::vector<Event> events = {Event::Close("a")};
  EXPECT_FALSE(xml::RenderEvents(events).ok());
  std::vector<Event> open_only = {Event::Open("a")};
  EXPECT_FALSE(xml::RenderEvents(open_only).ok());
}

TEST(GeneratorTest, DeterministicForSeed) {
  xml::GeneratorParams p;
  p.profile = xml::DocProfile::kAgenda;
  p.target_elements = 100;
  p.seed = 5;
  auto a = xml::GenerateDocument(p);
  auto b = xml::GenerateDocument(p);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  p.seed = 6;
  auto c = xml::GenerateDocument(p);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

TEST(GeneratorTest, RespectsApproximateSize) {
  for (auto profile : {xml::DocProfile::kAgenda, xml::DocProfile::kHospital,
                       xml::DocProfile::kNewsFeed, xml::DocProfile::kRandom}) {
    xml::GeneratorParams p;
    p.profile = profile;
    p.target_elements = 500;
    p.seed = 3;
    auto doc = xml::GenerateDocument(p);
    size_t n = doc.CountElements();
    EXPECT_GT(n, 150u) << xml::DocProfileName(profile);
    EXPECT_LT(n, 2000u) << xml::DocProfileName(profile);
  }
}

TEST(GeneratorTest, GeneratedDocsReparse) {
  for (auto profile : {xml::DocProfile::kAgenda, xml::DocProfile::kHospital,
                       xml::DocProfile::kNewsFeed, xml::DocProfile::kRandom}) {
    xml::GeneratorParams p;
    p.profile = profile;
    p.target_elements = 120;
    p.seed = 8;
    auto doc = xml::GenerateDocument(p);
    auto reparsed = DomDocument::Parse(doc.Serialize());
    ASSERT_TRUE(reparsed.ok()) << xml::DocProfileName(profile);
    EXPECT_EQ(reparsed.value().Serialize(), doc.Serialize());
  }
}

TEST(GeneratorTest, RandomProfileRespectsDepthBound) {
  xml::GeneratorParams p;
  p.profile = xml::DocProfile::kRandom;
  p.target_elements = 300;
  p.max_depth = 5;
  p.seed = 13;
  auto doc = xml::GenerateDocument(p);
  EXPECT_LE(doc.MaxDepth(), 5);
}

}  // namespace
}  // namespace csxa
